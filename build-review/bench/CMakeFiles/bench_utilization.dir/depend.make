# Empty dependencies file for bench_utilization.
# This may be replaced when dependencies are built.
