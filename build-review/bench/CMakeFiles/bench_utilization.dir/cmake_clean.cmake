file(REMOVE_RECURSE
  "CMakeFiles/bench_utilization.dir/bench_utilization.cc.o"
  "CMakeFiles/bench_utilization.dir/bench_utilization.cc.o.d"
  "bench_utilization"
  "bench_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
