# Empty dependencies file for bench_buddy_alloc.
# This may be replaced when dependencies are built.
