file(REMOVE_RECURSE
  "CMakeFiles/bench_buddy_alloc.dir/bench_buddy_alloc.cc.o"
  "CMakeFiles/bench_buddy_alloc.dir/bench_buddy_alloc.cc.o.d"
  "bench_buddy_alloc"
  "bench_buddy_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buddy_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
