file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_threshold.dir/bench_adaptive_threshold.cc.o"
  "CMakeFiles/bench_adaptive_threshold.dir/bench_adaptive_threshold.cc.o.d"
  "bench_adaptive_threshold"
  "bench_adaptive_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
