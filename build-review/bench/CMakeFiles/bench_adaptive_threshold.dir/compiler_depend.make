# Empty compiler generated dependencies file for bench_adaptive_threshold.
# This may be replaced when dependencies are built.
