file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_baselines.dir/bench_vs_baselines.cc.o"
  "CMakeFiles/bench_vs_baselines.dir/bench_vs_baselines.cc.o.d"
  "bench_vs_baselines"
  "bench_vs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
