# Empty dependencies file for bench_vs_baselines.
# This may be replaced when dependencies are built.
