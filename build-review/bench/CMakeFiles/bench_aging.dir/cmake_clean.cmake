file(REMOVE_RECURSE
  "CMakeFiles/bench_aging.dir/bench_aging.cc.o"
  "CMakeFiles/bench_aging.dir/bench_aging.cc.o.d"
  "bench_aging"
  "bench_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
