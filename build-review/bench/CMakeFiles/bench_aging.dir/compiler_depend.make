# Empty compiler generated dependencies file for bench_aging.
# This may be replaced when dependencies are built.
