# Empty compiler generated dependencies file for bench_create_append.
# This may be replaced when dependencies are built.
