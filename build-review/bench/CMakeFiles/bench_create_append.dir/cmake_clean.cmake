file(REMOVE_RECURSE
  "CMakeFiles/bench_create_append.dir/bench_create_append.cc.o"
  "CMakeFiles/bench_create_append.dir/bench_create_append.cc.o.d"
  "bench_create_append"
  "bench_create_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_create_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
