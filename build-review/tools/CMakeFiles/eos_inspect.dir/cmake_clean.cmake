file(REMOVE_RECURSE
  "CMakeFiles/eos_inspect.dir/eos_inspect.cc.o"
  "CMakeFiles/eos_inspect.dir/eos_inspect.cc.o.d"
  "eos_inspect"
  "eos_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
