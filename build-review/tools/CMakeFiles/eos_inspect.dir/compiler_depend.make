# Empty compiler generated dependencies file for eos_inspect.
# This may be replaced when dependencies are built.
