
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/buffer_pool.cc" "src/io/CMakeFiles/eos_io.dir/buffer_pool.cc.o" "gcc" "src/io/CMakeFiles/eos_io.dir/buffer_pool.cc.o.d"
  "/root/repo/src/io/chaos_device.cc" "src/io/CMakeFiles/eos_io.dir/chaos_device.cc.o" "gcc" "src/io/CMakeFiles/eos_io.dir/chaos_device.cc.o.d"
  "/root/repo/src/io/io_executor.cc" "src/io/CMakeFiles/eos_io.dir/io_executor.cc.o" "gcc" "src/io/CMakeFiles/eos_io.dir/io_executor.cc.o.d"
  "/root/repo/src/io/page_device.cc" "src/io/CMakeFiles/eos_io.dir/page_device.cc.o" "gcc" "src/io/CMakeFiles/eos_io.dir/page_device.cc.o.d"
  "/root/repo/src/io/pager.cc" "src/io/CMakeFiles/eos_io.dir/pager.cc.o" "gcc" "src/io/CMakeFiles/eos_io.dir/pager.cc.o.d"
  "/root/repo/src/io/verified_device.cc" "src/io/CMakeFiles/eos_io.dir/verified_device.cc.o" "gcc" "src/io/CMakeFiles/eos_io.dir/verified_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/eos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/eos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
