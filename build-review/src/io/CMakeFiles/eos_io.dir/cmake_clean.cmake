file(REMOVE_RECURSE
  "CMakeFiles/eos_io.dir/buffer_pool.cc.o"
  "CMakeFiles/eos_io.dir/buffer_pool.cc.o.d"
  "CMakeFiles/eos_io.dir/chaos_device.cc.o"
  "CMakeFiles/eos_io.dir/chaos_device.cc.o.d"
  "CMakeFiles/eos_io.dir/io_executor.cc.o"
  "CMakeFiles/eos_io.dir/io_executor.cc.o.d"
  "CMakeFiles/eos_io.dir/page_device.cc.o"
  "CMakeFiles/eos_io.dir/page_device.cc.o.d"
  "CMakeFiles/eos_io.dir/pager.cc.o"
  "CMakeFiles/eos_io.dir/pager.cc.o.d"
  "CMakeFiles/eos_io.dir/verified_device.cc.o"
  "CMakeFiles/eos_io.dir/verified_device.cc.o.d"
  "libeos_io.a"
  "libeos_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
