# Empty compiler generated dependencies file for eos_io.
# This may be replaced when dependencies are built.
