file(REMOVE_RECURSE
  "libeos_io.a"
)
