file(REMOVE_RECURSE
  "libeos_txn.a"
)
