file(REMOVE_RECURSE
  "CMakeFiles/eos_txn.dir/byte_range_locks.cc.o"
  "CMakeFiles/eos_txn.dir/byte_range_locks.cc.o.d"
  "CMakeFiles/eos_txn.dir/log_manager.cc.o"
  "CMakeFiles/eos_txn.dir/log_manager.cc.o.d"
  "CMakeFiles/eos_txn.dir/release_locks.cc.o"
  "CMakeFiles/eos_txn.dir/release_locks.cc.o.d"
  "libeos_txn.a"
  "libeos_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
