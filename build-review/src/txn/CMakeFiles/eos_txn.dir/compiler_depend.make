# Empty compiler generated dependencies file for eos_txn.
# This may be replaced when dependencies are built.
