
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/byte_range_locks.cc" "src/txn/CMakeFiles/eos_txn.dir/byte_range_locks.cc.o" "gcc" "src/txn/CMakeFiles/eos_txn.dir/byte_range_locks.cc.o.d"
  "/root/repo/src/txn/log_manager.cc" "src/txn/CMakeFiles/eos_txn.dir/log_manager.cc.o" "gcc" "src/txn/CMakeFiles/eos_txn.dir/log_manager.cc.o.d"
  "/root/repo/src/txn/release_locks.cc" "src/txn/CMakeFiles/eos_txn.dir/release_locks.cc.o" "gcc" "src/txn/CMakeFiles/eos_txn.dir/release_locks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/eos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/eos_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/eos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
