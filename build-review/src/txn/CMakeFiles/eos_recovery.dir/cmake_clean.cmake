file(REMOVE_RECURSE
  "CMakeFiles/eos_recovery.dir/recovery.cc.o"
  "CMakeFiles/eos_recovery.dir/recovery.cc.o.d"
  "CMakeFiles/eos_recovery.dir/transaction.cc.o"
  "CMakeFiles/eos_recovery.dir/transaction.cc.o.d"
  "libeos_recovery.a"
  "libeos_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
