file(REMOVE_RECURSE
  "libeos_recovery.a"
)
