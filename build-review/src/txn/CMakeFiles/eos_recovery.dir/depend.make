# Empty dependencies file for eos_recovery.
# This may be replaced when dependencies are built.
