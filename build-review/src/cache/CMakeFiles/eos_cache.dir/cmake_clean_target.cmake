file(REMOVE_RECURSE
  "libeos_cache.a"
)
