file(REMOVE_RECURSE
  "CMakeFiles/eos_cache.dir/extent_cache.cc.o"
  "CMakeFiles/eos_cache.dir/extent_cache.cc.o.d"
  "libeos_cache.a"
  "libeos_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
