# Empty dependencies file for eos_cache.
# This may be replaced when dependencies are built.
