file(REMOVE_RECURSE
  "libeos_lob.a"
)
