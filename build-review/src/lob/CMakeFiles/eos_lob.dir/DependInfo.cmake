
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lob/adaptive.cc" "src/lob/CMakeFiles/eos_lob.dir/adaptive.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/adaptive.cc.o.d"
  "/root/repo/src/lob/appender.cc" "src/lob/CMakeFiles/eos_lob.dir/appender.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/appender.cc.o.d"
  "/root/repo/src/lob/defrag.cc" "src/lob/CMakeFiles/eos_lob.dir/defrag.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/defrag.cc.o.d"
  "/root/repo/src/lob/delete.cc" "src/lob/CMakeFiles/eos_lob.dir/delete.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/delete.cc.o.d"
  "/root/repo/src/lob/insert.cc" "src/lob/CMakeFiles/eos_lob.dir/insert.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/insert.cc.o.d"
  "/root/repo/src/lob/leaf_io.cc" "src/lob/CMakeFiles/eos_lob.dir/leaf_io.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/leaf_io.cc.o.d"
  "/root/repo/src/lob/lob_manager.cc" "src/lob/CMakeFiles/eos_lob.dir/lob_manager.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/lob_manager.cc.o.d"
  "/root/repo/src/lob/node.cc" "src/lob/CMakeFiles/eos_lob.dir/node.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/node.cc.o.d"
  "/root/repo/src/lob/reshuffle.cc" "src/lob/CMakeFiles/eos_lob.dir/reshuffle.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/reshuffle.cc.o.d"
  "/root/repo/src/lob/scrub.cc" "src/lob/CMakeFiles/eos_lob.dir/scrub.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/scrub.cc.o.d"
  "/root/repo/src/lob/walker.cc" "src/lob/CMakeFiles/eos_lob.dir/walker.cc.o" "gcc" "src/lob/CMakeFiles/eos_lob.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/eos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/eos_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cache/CMakeFiles/eos_cache.dir/DependInfo.cmake"
  "/root/repo/build-review/src/buddy/CMakeFiles/eos_buddy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/txn/CMakeFiles/eos_txn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/eos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
