# Empty compiler generated dependencies file for eos_lob.
# This may be replaced when dependencies are built.
