file(REMOVE_RECURSE
  "CMakeFiles/eos_lob.dir/adaptive.cc.o"
  "CMakeFiles/eos_lob.dir/adaptive.cc.o.d"
  "CMakeFiles/eos_lob.dir/appender.cc.o"
  "CMakeFiles/eos_lob.dir/appender.cc.o.d"
  "CMakeFiles/eos_lob.dir/defrag.cc.o"
  "CMakeFiles/eos_lob.dir/defrag.cc.o.d"
  "CMakeFiles/eos_lob.dir/delete.cc.o"
  "CMakeFiles/eos_lob.dir/delete.cc.o.d"
  "CMakeFiles/eos_lob.dir/insert.cc.o"
  "CMakeFiles/eos_lob.dir/insert.cc.o.d"
  "CMakeFiles/eos_lob.dir/leaf_io.cc.o"
  "CMakeFiles/eos_lob.dir/leaf_io.cc.o.d"
  "CMakeFiles/eos_lob.dir/lob_manager.cc.o"
  "CMakeFiles/eos_lob.dir/lob_manager.cc.o.d"
  "CMakeFiles/eos_lob.dir/node.cc.o"
  "CMakeFiles/eos_lob.dir/node.cc.o.d"
  "CMakeFiles/eos_lob.dir/reshuffle.cc.o"
  "CMakeFiles/eos_lob.dir/reshuffle.cc.o.d"
  "CMakeFiles/eos_lob.dir/scrub.cc.o"
  "CMakeFiles/eos_lob.dir/scrub.cc.o.d"
  "CMakeFiles/eos_lob.dir/walker.cc.o"
  "CMakeFiles/eos_lob.dir/walker.cc.o.d"
  "libeos_lob.a"
  "libeos_lob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_lob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
