file(REMOVE_RECURSE
  "CMakeFiles/eos_db.dir/database.cc.o"
  "CMakeFiles/eos_db.dir/database.cc.o.d"
  "libeos_db.a"
  "libeos_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
