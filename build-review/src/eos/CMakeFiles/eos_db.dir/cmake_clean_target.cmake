file(REMOVE_RECURSE
  "libeos_db.a"
)
