# Empty compiler generated dependencies file for eos_db.
# This may be replaced when dependencies are built.
