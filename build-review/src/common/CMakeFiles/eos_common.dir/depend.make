# Empty dependencies file for eos_common.
# This may be replaced when dependencies are built.
