file(REMOVE_RECURSE
  "CMakeFiles/eos_common.dir/compress.cc.o"
  "CMakeFiles/eos_common.dir/compress.cc.o.d"
  "CMakeFiles/eos_common.dir/crc32c.cc.o"
  "CMakeFiles/eos_common.dir/crc32c.cc.o.d"
  "CMakeFiles/eos_common.dir/retry.cc.o"
  "CMakeFiles/eos_common.dir/retry.cc.o.d"
  "CMakeFiles/eos_common.dir/status.cc.o"
  "CMakeFiles/eos_common.dir/status.cc.o.d"
  "libeos_common.a"
  "libeos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
