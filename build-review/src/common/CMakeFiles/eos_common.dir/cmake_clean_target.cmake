file(REMOVE_RECURSE
  "libeos_common.a"
)
