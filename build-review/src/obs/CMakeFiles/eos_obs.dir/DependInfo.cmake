
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/cost_model.cc" "src/obs/CMakeFiles/eos_obs.dir/cost_model.cc.o" "gcc" "src/obs/CMakeFiles/eos_obs.dir/cost_model.cc.o.d"
  "/root/repo/src/obs/event_journal.cc" "src/obs/CMakeFiles/eos_obs.dir/event_journal.cc.o" "gcc" "src/obs/CMakeFiles/eos_obs.dir/event_journal.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/obs/CMakeFiles/eos_obs.dir/json.cc.o" "gcc" "src/obs/CMakeFiles/eos_obs.dir/json.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/eos_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/eos_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/op_tracer.cc" "src/obs/CMakeFiles/eos_obs.dir/op_tracer.cc.o" "gcc" "src/obs/CMakeFiles/eos_obs.dir/op_tracer.cc.o.d"
  "/root/repo/src/obs/snapshot.cc" "src/obs/CMakeFiles/eos_obs.dir/snapshot.cc.o" "gcc" "src/obs/CMakeFiles/eos_obs.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/eos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
