file(REMOVE_RECURSE
  "CMakeFiles/eos_obs.dir/cost_model.cc.o"
  "CMakeFiles/eos_obs.dir/cost_model.cc.o.d"
  "CMakeFiles/eos_obs.dir/event_journal.cc.o"
  "CMakeFiles/eos_obs.dir/event_journal.cc.o.d"
  "CMakeFiles/eos_obs.dir/json.cc.o"
  "CMakeFiles/eos_obs.dir/json.cc.o.d"
  "CMakeFiles/eos_obs.dir/metrics.cc.o"
  "CMakeFiles/eos_obs.dir/metrics.cc.o.d"
  "CMakeFiles/eos_obs.dir/op_tracer.cc.o"
  "CMakeFiles/eos_obs.dir/op_tracer.cc.o.d"
  "CMakeFiles/eos_obs.dir/snapshot.cc.o"
  "CMakeFiles/eos_obs.dir/snapshot.cc.o.d"
  "libeos_obs.a"
  "libeos_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
