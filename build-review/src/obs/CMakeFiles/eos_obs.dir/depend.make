# Empty dependencies file for eos_obs.
# This may be replaced when dependencies are built.
