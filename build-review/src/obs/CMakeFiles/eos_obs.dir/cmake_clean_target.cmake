file(REMOVE_RECURSE
  "libeos_obs.a"
)
