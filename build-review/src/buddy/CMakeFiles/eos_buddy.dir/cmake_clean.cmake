file(REMOVE_RECURSE
  "CMakeFiles/eos_buddy.dir/alloc_map.cc.o"
  "CMakeFiles/eos_buddy.dir/alloc_map.cc.o.d"
  "CMakeFiles/eos_buddy.dir/buddy_space.cc.o"
  "CMakeFiles/eos_buddy.dir/buddy_space.cc.o.d"
  "CMakeFiles/eos_buddy.dir/segment_allocator.cc.o"
  "CMakeFiles/eos_buddy.dir/segment_allocator.cc.o.d"
  "CMakeFiles/eos_buddy.dir/space_reservation.cc.o"
  "CMakeFiles/eos_buddy.dir/space_reservation.cc.o.d"
  "libeos_buddy.a"
  "libeos_buddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_buddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
