# Empty dependencies file for eos_buddy.
# This may be replaced when dependencies are built.
