file(REMOVE_RECURSE
  "libeos_buddy.a"
)
