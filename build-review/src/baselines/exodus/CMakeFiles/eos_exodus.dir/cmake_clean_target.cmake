file(REMOVE_RECURSE
  "libeos_exodus.a"
)
