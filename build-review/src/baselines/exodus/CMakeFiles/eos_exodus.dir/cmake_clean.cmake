file(REMOVE_RECURSE
  "CMakeFiles/eos_exodus.dir/exodus_manager.cc.o"
  "CMakeFiles/eos_exodus.dir/exodus_manager.cc.o.d"
  "libeos_exodus.a"
  "libeos_exodus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_exodus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
