# Empty compiler generated dependencies file for eos_exodus.
# This may be replaced when dependencies are built.
