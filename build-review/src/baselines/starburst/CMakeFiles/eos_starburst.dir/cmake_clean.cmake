file(REMOVE_RECURSE
  "CMakeFiles/eos_starburst.dir/starburst_manager.cc.o"
  "CMakeFiles/eos_starburst.dir/starburst_manager.cc.o.d"
  "libeos_starburst.a"
  "libeos_starburst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_starburst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
