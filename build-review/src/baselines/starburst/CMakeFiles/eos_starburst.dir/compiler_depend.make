# Empty compiler generated dependencies file for eos_starburst.
# This may be replaced when dependencies are built.
