file(REMOVE_RECURSE
  "libeos_starburst.a"
)
