file(REMOVE_RECURSE
  "CMakeFiles/audio_streaming.dir/audio_streaming.cpp.o"
  "CMakeFiles/audio_streaming.dir/audio_streaming.cpp.o.d"
  "audio_streaming"
  "audio_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
