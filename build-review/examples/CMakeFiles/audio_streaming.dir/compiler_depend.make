# Empty compiler generated dependencies file for audio_streaming.
# This may be replaced when dependencies are built.
