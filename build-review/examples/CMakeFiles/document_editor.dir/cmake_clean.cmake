file(REMOVE_RECURSE
  "CMakeFiles/document_editor.dir/document_editor.cpp.o"
  "CMakeFiles/document_editor.dir/document_editor.cpp.o.d"
  "document_editor"
  "document_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
