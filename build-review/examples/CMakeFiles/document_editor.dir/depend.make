# Empty dependencies file for document_editor.
# This may be replaced when dependencies are built.
