file(REMOVE_RECURSE
  "CMakeFiles/video_editor.dir/video_editor.cpp.o"
  "CMakeFiles/video_editor.dir/video_editor.cpp.o.d"
  "video_editor"
  "video_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
