# Empty dependencies file for video_editor.
# This may be replaced when dependencies are built.
