# Empty dependencies file for persistent_list.
# This may be replaced when dependencies are built.
