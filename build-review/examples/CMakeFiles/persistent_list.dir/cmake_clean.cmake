file(REMOVE_RECURSE
  "CMakeFiles/persistent_list.dir/persistent_list.cpp.o"
  "CMakeFiles/persistent_list.dir/persistent_list.cpp.o.d"
  "persistent_list"
  "persistent_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
