# Empty dependencies file for database_log_test.
# This may be replaced when dependencies are built.
