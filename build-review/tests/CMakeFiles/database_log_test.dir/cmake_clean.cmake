file(REMOVE_RECURSE
  "CMakeFiles/database_log_test.dir/database_log_test.cc.o"
  "CMakeFiles/database_log_test.dir/database_log_test.cc.o.d"
  "database_log_test"
  "database_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
