# Empty compiler generated dependencies file for segment_allocator_test.
# This may be replaced when dependencies are built.
