file(REMOVE_RECURSE
  "CMakeFiles/segment_allocator_test.dir/segment_allocator_test.cc.o"
  "CMakeFiles/segment_allocator_test.dir/segment_allocator_test.cc.o.d"
  "segment_allocator_test"
  "segment_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
