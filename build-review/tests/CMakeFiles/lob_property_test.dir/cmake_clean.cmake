file(REMOVE_RECURSE
  "CMakeFiles/lob_property_test.dir/lob_property_test.cc.o"
  "CMakeFiles/lob_property_test.dir/lob_property_test.cc.o.d"
  "lob_property_test"
  "lob_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lob_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
