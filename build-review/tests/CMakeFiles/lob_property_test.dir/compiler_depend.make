# Empty compiler generated dependencies file for lob_property_test.
# This may be replaced when dependencies are built.
