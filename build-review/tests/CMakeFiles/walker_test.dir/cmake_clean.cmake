file(REMOVE_RECURSE
  "CMakeFiles/walker_test.dir/walker_test.cc.o"
  "CMakeFiles/walker_test.dir/walker_test.cc.o.d"
  "walker_test"
  "walker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
