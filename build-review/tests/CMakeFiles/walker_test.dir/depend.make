# Empty dependencies file for walker_test.
# This may be replaced when dependencies are built.
