# Empty compiler generated dependencies file for parallel_io_test.
# This may be replaced when dependencies are built.
