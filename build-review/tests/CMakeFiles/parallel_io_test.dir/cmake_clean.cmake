file(REMOVE_RECURSE
  "CMakeFiles/parallel_io_test.dir/parallel_io_test.cc.o"
  "CMakeFiles/parallel_io_test.dir/parallel_io_test.cc.o.d"
  "parallel_io_test"
  "parallel_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
