# Empty dependencies file for mvcc_torture_test.
# This may be replaced when dependencies are built.
