file(REMOVE_RECURSE
  "CMakeFiles/mvcc_torture_test.dir/mvcc_torture_test.cc.o"
  "CMakeFiles/mvcc_torture_test.dir/mvcc_torture_test.cc.o.d"
  "mvcc_torture_test"
  "mvcc_torture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcc_torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
