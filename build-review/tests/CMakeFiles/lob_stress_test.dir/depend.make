# Empty dependencies file for lob_stress_test.
# This may be replaced when dependencies are built.
