file(REMOVE_RECURSE
  "CMakeFiles/lob_stress_test.dir/lob_stress_test.cc.o"
  "CMakeFiles/lob_stress_test.dir/lob_stress_test.cc.o.d"
  "lob_stress_test"
  "lob_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lob_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
