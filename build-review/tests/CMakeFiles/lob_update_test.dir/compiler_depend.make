# Empty compiler generated dependencies file for lob_update_test.
# This may be replaced when dependencies are built.
