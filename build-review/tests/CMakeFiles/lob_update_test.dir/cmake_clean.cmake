file(REMOVE_RECURSE
  "CMakeFiles/lob_update_test.dir/lob_update_test.cc.o"
  "CMakeFiles/lob_update_test.dir/lob_update_test.cc.o.d"
  "lob_update_test"
  "lob_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lob_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
