file(REMOVE_RECURSE
  "CMakeFiles/cache_torture_test.dir/cache_torture_test.cc.o"
  "CMakeFiles/cache_torture_test.dir/cache_torture_test.cc.o.d"
  "cache_torture_test"
  "cache_torture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
