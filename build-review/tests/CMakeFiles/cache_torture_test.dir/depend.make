# Empty dependencies file for cache_torture_test.
# This may be replaced when dependencies are built.
