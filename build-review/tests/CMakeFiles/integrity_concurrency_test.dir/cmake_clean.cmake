file(REMOVE_RECURSE
  "CMakeFiles/integrity_concurrency_test.dir/integrity_concurrency_test.cc.o"
  "CMakeFiles/integrity_concurrency_test.dir/integrity_concurrency_test.cc.o.d"
  "integrity_concurrency_test"
  "integrity_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
