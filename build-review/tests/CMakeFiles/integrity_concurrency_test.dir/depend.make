# Empty dependencies file for integrity_concurrency_test.
# This may be replaced when dependencies are built.
