file(REMOVE_RECURSE
  "CMakeFiles/reshuffle_test.dir/reshuffle_test.cc.o"
  "CMakeFiles/reshuffle_test.dir/reshuffle_test.cc.o.d"
  "reshuffle_test"
  "reshuffle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reshuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
