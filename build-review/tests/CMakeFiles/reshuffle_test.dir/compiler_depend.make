# Empty compiler generated dependencies file for reshuffle_test.
# This may be replaced when dependencies are built.
