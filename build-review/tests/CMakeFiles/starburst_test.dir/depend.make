# Empty dependencies file for starburst_test.
# This may be replaced when dependencies are built.
