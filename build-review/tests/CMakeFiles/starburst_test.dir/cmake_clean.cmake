file(REMOVE_RECURSE
  "CMakeFiles/starburst_test.dir/starburst_test.cc.o"
  "CMakeFiles/starburst_test.dir/starburst_test.cc.o.d"
  "starburst_test"
  "starburst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starburst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
