file(REMOVE_RECURSE
  "CMakeFiles/io_executor_test.dir/io_executor_test.cc.o"
  "CMakeFiles/io_executor_test.dir/io_executor_test.cc.o.d"
  "io_executor_test"
  "io_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
