# Empty compiler generated dependencies file for eos_test_oracle.
# This may be replaced when dependencies are built.
