file(REMOVE_RECURSE
  "CMakeFiles/eos_test_oracle.dir/model_oracle.cc.o"
  "CMakeFiles/eos_test_oracle.dir/model_oracle.cc.o.d"
  "libeos_test_oracle.a"
  "libeos_test_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_test_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
