file(REMOVE_RECURSE
  "libeos_test_oracle.a"
)
