file(REMOVE_RECURSE
  "CMakeFiles/integrity_torture_test.dir/integrity_torture_test.cc.o"
  "CMakeFiles/integrity_torture_test.dir/integrity_torture_test.cc.o.d"
  "integrity_torture_test"
  "integrity_torture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
