# Empty dependencies file for integrity_torture_test.
# This may be replaced when dependencies are built.
