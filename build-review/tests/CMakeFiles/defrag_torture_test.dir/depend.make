# Empty dependencies file for defrag_torture_test.
# This may be replaced when dependencies are built.
