file(REMOVE_RECURSE
  "CMakeFiles/defrag_torture_test.dir/defrag_torture_test.cc.o"
  "CMakeFiles/defrag_torture_test.dir/defrag_torture_test.cc.o.d"
  "defrag_torture_test"
  "defrag_torture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defrag_torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
