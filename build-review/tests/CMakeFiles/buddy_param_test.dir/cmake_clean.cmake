file(REMOVE_RECURSE
  "CMakeFiles/buddy_param_test.dir/buddy_param_test.cc.o"
  "CMakeFiles/buddy_param_test.dir/buddy_param_test.cc.o.d"
  "buddy_param_test"
  "buddy_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
