# Empty dependencies file for buddy_param_test.
# This may be replaced when dependencies are built.
