# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for byte_range_locks_test.
