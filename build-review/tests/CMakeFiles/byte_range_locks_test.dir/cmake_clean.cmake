file(REMOVE_RECURSE
  "CMakeFiles/byte_range_locks_test.dir/byte_range_locks_test.cc.o"
  "CMakeFiles/byte_range_locks_test.dir/byte_range_locks_test.cc.o.d"
  "byte_range_locks_test"
  "byte_range_locks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_range_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
