# Empty dependencies file for byte_range_locks_test.
# This may be replaced when dependencies are built.
