# Empty compiler generated dependencies file for lob_basic_test.
# This may be replaced when dependencies are built.
