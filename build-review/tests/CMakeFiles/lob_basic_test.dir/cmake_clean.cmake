file(REMOVE_RECURSE
  "CMakeFiles/lob_basic_test.dir/lob_basic_test.cc.o"
  "CMakeFiles/lob_basic_test.dir/lob_basic_test.cc.o.d"
  "lob_basic_test"
  "lob_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lob_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
