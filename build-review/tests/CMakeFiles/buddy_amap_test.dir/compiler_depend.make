# Empty compiler generated dependencies file for buddy_amap_test.
# This may be replaced when dependencies are built.
