file(REMOVE_RECURSE
  "CMakeFiles/buddy_amap_test.dir/buddy_amap_test.cc.o"
  "CMakeFiles/buddy_amap_test.dir/buddy_amap_test.cc.o.d"
  "buddy_amap_test"
  "buddy_amap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_amap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
