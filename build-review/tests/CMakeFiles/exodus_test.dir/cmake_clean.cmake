file(REMOVE_RECURSE
  "CMakeFiles/exodus_test.dir/exodus_test.cc.o"
  "CMakeFiles/exodus_test.dir/exodus_test.cc.o.d"
  "exodus_test"
  "exodus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exodus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
