file(REMOVE_RECURSE
  "CMakeFiles/event_journal_test.dir/event_journal_test.cc.o"
  "CMakeFiles/event_journal_test.dir/event_journal_test.cc.o.d"
  "event_journal_test"
  "event_journal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
