# Empty dependencies file for event_journal_test.
# This may be replaced when dependencies are built.
