file(REMOVE_RECURSE
  "CMakeFiles/buddy_space_test.dir/buddy_space_test.cc.o"
  "CMakeFiles/buddy_space_test.dir/buddy_space_test.cc.o.d"
  "buddy_space_test"
  "buddy_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
