# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for buddy_space_test.
