# Empty compiler generated dependencies file for buddy_space_test.
# This may be replaced when dependencies are built.
