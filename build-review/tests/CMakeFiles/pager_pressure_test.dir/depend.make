# Empty dependencies file for pager_pressure_test.
# This may be replaced when dependencies are built.
