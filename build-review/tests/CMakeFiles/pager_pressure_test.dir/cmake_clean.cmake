file(REMOVE_RECURSE
  "CMakeFiles/pager_pressure_test.dir/pager_pressure_test.cc.o"
  "CMakeFiles/pager_pressure_test.dir/pager_pressure_test.cc.o.d"
  "pager_pressure_test"
  "pager_pressure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pager_pressure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
