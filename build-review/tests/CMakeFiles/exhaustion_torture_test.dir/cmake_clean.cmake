file(REMOVE_RECURSE
  "CMakeFiles/exhaustion_torture_test.dir/exhaustion_torture_test.cc.o"
  "CMakeFiles/exhaustion_torture_test.dir/exhaustion_torture_test.cc.o.d"
  "exhaustion_torture_test"
  "exhaustion_torture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustion_torture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
