# Empty dependencies file for exhaustion_torture_test.
# This may be replaced when dependencies are built.
