file(REMOVE_RECURSE
  "CMakeFiles/leaf_io_test.dir/leaf_io_test.cc.o"
  "CMakeFiles/leaf_io_test.dir/leaf_io_test.cc.o.d"
  "leaf_io_test"
  "leaf_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
