
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/leaf_io_test.cc" "tests/CMakeFiles/leaf_io_test.dir/leaf_io_test.cc.o" "gcc" "tests/CMakeFiles/leaf_io_test.dir/leaf_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/eos/CMakeFiles/eos_db.dir/DependInfo.cmake"
  "/root/repo/build-review/src/txn/CMakeFiles/eos_recovery.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/exodus/CMakeFiles/eos_exodus.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baselines/starburst/CMakeFiles/eos_starburst.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lob/CMakeFiles/eos_lob.dir/DependInfo.cmake"
  "/root/repo/build-review/src/txn/CMakeFiles/eos_txn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/buddy/CMakeFiles/eos_buddy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/eos_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/eos_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/eos_common.dir/DependInfo.cmake"
  "/root/repo/build-review/tests/CMakeFiles/eos_test_oracle.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cache/CMakeFiles/eos_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
