# Empty compiler generated dependencies file for leaf_io_test.
# This may be replaced when dependencies are built.
