file(REMOVE_RECURSE
  "CMakeFiles/appender_test.dir/appender_test.cc.o"
  "CMakeFiles/appender_test.dir/appender_test.cc.o.d"
  "appender_test"
  "appender_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
