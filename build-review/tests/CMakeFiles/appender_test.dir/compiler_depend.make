# Empty compiler generated dependencies file for appender_test.
# This may be replaced when dependencies are built.
