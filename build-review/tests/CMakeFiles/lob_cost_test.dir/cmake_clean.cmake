file(REMOVE_RECURSE
  "CMakeFiles/lob_cost_test.dir/lob_cost_test.cc.o"
  "CMakeFiles/lob_cost_test.dir/lob_cost_test.cc.o.d"
  "lob_cost_test"
  "lob_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lob_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
