# Empty dependencies file for lob_cost_test.
# This may be replaced when dependencies are built.
