// eos_inspect — command-line volume inspector.
//
//   eos_inspect <volume> [--page-size N]        overview + object list
//   eos_inspect <volume> --object <id>          one object's structure
//   eos_inspect <volume> --check                full integrity check
//   eos_inspect <volume> verify                 integrity + read every byte
//   eos_inspect <volume> --spaces               buddy free-list report
//   eos_inspect <volume> stats                  metrics snapshot summary
//   eos_inspect <volume> cache                  extent-cache effectiveness
//                                               (hits, admission, eviction,
//                                               compression ratio)
//   eos_inspect <volume> trace                  recent operation spans
//   eos_inspect <volume> trace --chrome=out.json  export spans as Chrome
//                                               trace events (chrome://tracing)
//   eos_inspect <volume> top [--interval MS] [--count N]
//                                               live rates from successive
//                                               sidecar snapshots
//   eos_inspect <volume> scrub                  checksum-verify every page
//   eos_inspect <volume> repair                 scrub, then rebuild damaged
//                                               objects (lossy: see holes)
//   eos_inspect <volume> leak-check             allocation maps vs object
//                                               reachability
//   eos_inspect <m0> volumes <m1> [<m2> ...]    multi-volume set health:
//                                               per-member fill, watermark
//                                               state, quarantined pages,
//                                               repairs from replica
//   eos_inspect <volume> defrag [--apply] [--min-scatter X]
//                                               per-object layout-drift
//                                               report; --apply migrates
//                                               the offenders (DESIGN §12)
//
// `stats` and `trace` read the "<volume>.obs.json" sidecar written by
// instrumented processes (see src/obs/snapshot.h); they do not open the
// volume itself. Everything else is read-only except the superblock flush
// performed on clean close.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eos/database.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/snapshot.h"

namespace {

using eos::Database;
using eos::DatabaseOptions;
using eos::LobStats;
using eos::SpaceReport;
using eos::Status;

int Usage() {
  std::fprintf(stderr,
               "usage: eos_inspect <volume> [--page-size N] "
               "[--object ID | versions ID | --check | verify | --spaces | "
               "stats | cache | trace [--chrome=OUT] | top [--interval MS] "
               "[--count N] | scrub | repair | leak-check | "
               "defrag [--apply] [--min-scatter X] | "
               "volumes <member1> [<member2> ...]]\n");
  return 2;
}

void Fail(const Status& s, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  std::exit(1);
}

void PrintOverview(Database* db) {
  auto ids = db->ListObjects();
  if (!ids.ok()) Fail(ids.status(), "list");
  std::printf("volume: page_size=%u spaces=%u (%.1f MB managed)\n",
              db->device()->page_size(), db->allocator()->num_spaces(),
              db->allocator()->num_spaces() *
                  static_cast<double>(db->allocator()->geometry().space_pages) *
                  db->device()->page_size() / 1048576.0);
  auto free_pages = db->allocator()->TotalFreePages();
  if (!free_pages.ok()) Fail(free_pages.status(), "free pages");
  std::printf("free: %llu pages\n",
              static_cast<unsigned long long>(*free_pages));
  std::printf("%8s %14s %10s %10s %8s %8s\n", "object", "bytes", "segments",
              "leaf pgs", "depth", "util");
  for (uint64_t id : *ids) {
    auto st = db->ObjectStats(id);
    if (!st.ok()) Fail(st.status(), "stats");
    std::printf("%8llu %14llu %10llu %10llu %8u %7.1f%%\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(st->size_bytes),
                static_cast<unsigned long long>(st->num_segments),
                static_cast<unsigned long long>(st->leaf_pages), st->depth,
                100.0 * st->leaf_utilization);
  }
}

void PrintObject(Database* db, uint64_t id) {
  auto root = db->GetRoot(id);
  if (!root.ok()) Fail(root.status(), "object");
  auto st = db->ObjectStats(id);
  if (!st.ok()) Fail(st.status(), "stats");
  std::printf("object %llu: %llu bytes, lsn %llu\n",
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(root->size()),
              static_cast<unsigned long long>(root->lsn));
  std::printf(
      "  tree: depth %u, %llu index pages, %llu segments "
      "(min %llu / avg %.1f / max %llu pages)\n",
      st->depth, static_cast<unsigned long long>(st->index_pages),
      static_cast<unsigned long long>(st->num_segments),
      static_cast<unsigned long long>(st->min_segment_pages),
      st->avg_segment_pages,
      static_cast<unsigned long long>(st->max_segment_pages));
  std::printf("  utilization: %.2f%% leaf, %.2f%% incl. index\n",
              100.0 * st->leaf_utilization, 100.0 * st->total_utilization);
  std::printf("  root entries (cumulative count -> page):\n");
  uint64_t cum = 0;
  for (const eos::LobEntry& e : root->root.entries) {
    cum += e.count;
    std::printf("    %12llu -> page %llu\n",
                static_cast<unsigned long long>(cum),
                static_cast<unsigned long long>(e.page));
  }
}

void PrintSpaces(Database* db) {
  auto report = db->allocator()->Report();
  if (!report.ok()) Fail(report.status(), "report");
  std::printf("%6s %12s %14s   free segments by size (pages x count)\n",
              "space", "free pages", "largest free");
  for (const SpaceReport& r : *report) {
    std::printf("%6u %12llu %14s   ", r.space,
                static_cast<unsigned long long>(r.free_pages),
                r.max_free_type < 0
                    ? "-"
                    : std::to_string(uint64_t{1} << r.max_free_type)
                          .c_str());
    for (size_t t = 0; t < r.free_counts.size(); ++t) {
      if (r.free_counts[t] > 0) {
        std::printf("%llux%u ",
                    static_cast<unsigned long long>(uint64_t{1} << t),
                    r.free_counts[t]);
      }
    }
    std::printf("\n");
  }
}

// Deep verification, the post-recovery health check the crash torture
// relies on programmatically: structural invariants of every space and
// every object, then a full read of every object's bytes (exercising each
// leaf segment and index node on disk). Exit 1 on the first problem.
void Verify(Database* db) {
  Status s = db->CheckIntegrity();
  if (!s.ok()) Fail(s, "integrity");
  auto ids = db->ListObjects();
  if (!ids.ok()) Fail(ids.status(), "list");
  uint64_t objects = 0;
  uint64_t bytes = 0;
  for (uint64_t id : *ids) {
    auto size = db->Size(id);
    if (!size.ok()) Fail(size.status(), "size");
    auto data = db->Read(id, 0, *size);
    if (!data.ok()) Fail(data.status(), "read");
    if (data->size() != *size) {
      std::fprintf(stderr,
                   "object %llu: read returned %llu of %llu bytes\n",
                   static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(data->size()),
                   static_cast<unsigned long long>(*size));
      std::exit(1);
    }
    ++objects;
    bytes += *size;
  }
  std::printf("verify OK: %llu objects, %llu bytes read back\n",
              static_cast<unsigned long long>(objects),
              static_cast<unsigned long long>(bytes));
}

// Loads the "<volume>.obs.json" sidecar; prints the satellite-friendly
// "no stats recorded" line and exits 0 when it is absent (uninstrumented
// or never-exercised volumes are not an error).
eos::obs::JsonValue LoadSnapshotOrExit(const std::string& volume) {
  std::string path = eos::obs::SnapshotPathFor(volume);
  auto snap = eos::obs::ReadSnapshotFile(path);
  if (snap.status().IsNotFound()) {
    std::printf("no stats recorded for %s (missing %s)\n", volume.c_str(),
                path.c_str());
    std::exit(0);
  }
  if (!snap.ok()) Fail(snap.status(), "stats snapshot");
  return std::move(snap).value();
}

double CounterOf(const eos::obs::JsonValue& snap, const char* name) {
  const eos::obs::JsonValue* metrics = snap.Find("metrics");
  const eos::obs::JsonValue* counters =
      metrics == nullptr ? nullptr : metrics->Find("counters");
  return counters == nullptr ? 0.0 : counters->NumberOr(name, 0.0);
}

double GaugeOf(const eos::obs::JsonValue& snap, const char* name) {
  const eos::obs::JsonValue* metrics = snap.Find("metrics");
  const eos::obs::JsonValue* gauges =
      metrics == nullptr ? nullptr : metrics->Find("gauges");
  return gauges == nullptr ? 0.0 : gauges->NumberOr(name, 0.0);
}

void PrintStats(const std::string& volume) {
  namespace obs = eos::obs;
  obs::JsonValue snap = LoadSnapshotOrExit(volume);

  double hits = CounterOf(snap, obs::kPagerHit);
  double misses = CounterOf(snap, obs::kPagerMiss);
  double fetches = hits + misses;
  std::printf("pager: %.0f fetches, %.1f%% hit rate, %.0f evictions, "
              "%.0f dirty writebacks\n",
              fetches, fetches == 0 ? 0.0 : 100.0 * hits / fetches,
              CounterOf(snap, obs::kPagerEviction),
              CounterOf(snap, obs::kPagerWriteback));

  double managed = GaugeOf(snap, obs::kBuddyManagedPages);
  double free_pages = GaugeOf(snap, obs::kBuddyFreePages);
  std::printf("buddy: %.0f allocs, %.0f frees (%.0f deferred), "
              "%.0f splits, %.0f coalesces\n",
              CounterOf(snap, obs::kBuddyAlloc),
              CounterOf(snap, obs::kBuddyFree),
              CounterOf(snap, obs::kBuddyFreeDeferred),
              CounterOf(snap, obs::kBuddySplit),
              CounterOf(snap, obs::kBuddyCoalesce));
  std::printf("buddy: %.0f/%.0f pages in use (%.1f%% utilization), "
              "%.0f directory visits\n",
              managed - free_pages, managed,
              managed == 0 ? 0.0 : 100.0 * (managed - free_pages) / managed,
              CounterOf(snap, obs::kBuddyDirectoryVisit));

  std::printf("reshuffle: %.0f plans (%.0f page-mode, %.0f byte-mode), "
              "%.0f unsafe-run compactions\n",
              CounterOf(snap, obs::kLobReshufflePlans),
              CounterOf(snap, obs::kLobReshufflePageMode),
              CounterOf(snap, obs::kLobReshuffleByteMode),
              CounterOf(snap, obs::kLobCompactUnsafeRuns));
  std::printf("txn: %.0f log records (%.0f bytes), %.0f redo, %.0f undo\n",
              CounterOf(snap, obs::kTxnLogRecords),
              CounterOf(snap, obs::kTxnLogBytes),
              CounterOf(snap, obs::kTxnRedoApplied),
              CounterOf(snap, obs::kTxnUndoApplied));

  const obs::JsonValue* metrics = snap.Find("metrics");
  const obs::JsonValue* hists =
      metrics == nullptr ? nullptr : metrics->Find("histograms");
  if (hists != nullptr && hists->is_object()) {
    bool header = false;
    for (const auto& [name, h] : hists->members()) {
      if (name.rfind("op.", 0) != 0) continue;
      if (!header) {
        std::printf("%-28s %10s %10s %10s %10s\n", "operation latency",
                    "count", "p50 us", "p99 us", "max us");
        header = true;
      }
      std::printf("%-28s %10.0f %10.0f %10.0f %10.0f\n", name.c_str(),
                  h.NumberOr("count", 0), h.NumberOr("p50", 0),
                  h.NumberOr("p99", 0), h.NumberOr("max", 0));
    }
  }
}

// Extent-cache effectiveness from the sidecar (DESIGN.md §14): hit rate,
// admission-filter behaviour, eviction/invalidation churn, and how far the
// probation-segment compression stretches the configured budget.
void PrintCacheStats(const std::string& volume) {
  namespace obs = eos::obs;
  obs::JsonValue snap = LoadSnapshotOrExit(volume);

  double hits = CounterOf(snap, obs::kCacheHit);
  double misses = CounterOf(snap, obs::kCacheMiss);
  double lookups = hits + misses;
  double admitted = CounterOf(snap, obs::kCacheAdmit);
  double rejected = CounterOf(snap, obs::kCacheReject);
  double offered = admitted + rejected;
  double resident = GaugeOf(snap, obs::kCacheResidentBytes);
  double logical = GaugeOf(snap, obs::kCacheLogicalBytes);

  if (lookups == 0 && offered == 0) {
    std::printf("cache: no activity recorded (cache_bytes=0 or no reads)\n");
    return;
  }
  std::printf("%-22s %14s %14s\n", "extent cache", "count", "rate");
  std::printf("%-22s %14.0f %13.1f%%\n", "  hits", hits,
              lookups == 0 ? 0.0 : 100.0 * hits / lookups);
  std::printf("%-22s %14.0f %13.1f%%\n", "  misses", misses,
              lookups == 0 ? 0.0 : 100.0 * misses / lookups);
  std::printf("%-22s %14.0f %13.1f%%\n", "  admitted", admitted,
              offered == 0 ? 0.0 : 100.0 * admitted / offered);
  std::printf("%-22s %14.0f %13.1f%%\n", "  rejected (TinyLFU)", rejected,
              offered == 0 ? 0.0 : 100.0 * rejected / offered);
  std::printf("%-22s %14.0f\n", "  evicted",
              CounterOf(snap, obs::kCacheEvict));
  std::printf("%-22s %14.0f\n", "  invalidated",
              CounterOf(snap, obs::kCacheInvalidate));
  std::printf("%-22s %14.0f\n", "  fill failures",
              CounterOf(snap, obs::kCacheFillFail));
  std::printf("resident: %.1f MB holding %.1f MB logical "
              "(compression ratio %.2fx)\n",
              resident / 1048576.0, logical / 1048576.0,
              resident == 0 ? 1.0 : logical / resident);
}

void PrintTrace(const std::string& volume) {
  eos::obs::JsonValue snap = LoadSnapshotOrExit(volume);
  const eos::obs::JsonValue* trace = snap.Find("trace");
  if (trace == nullptr || !trace->is_array() || trace->elements().empty()) {
    std::printf("no trace spans recorded\n");
    return;
  }
  std::printf("%6s %5s %-22s %6s %9s %6s %6s %9s %3s\n", "seq", "depth",
              "op", "obj", "us", "seeks", "xfers", "hit/miss", "ok");
  for (const eos::obs::JsonValue& s : trace->elements()) {
    const eos::obs::JsonValue* op = s.Find("op");
    char hm[32];
    std::snprintf(hm, sizeof(hm), "%.0f/%.0f", s.NumberOr("pager_hits", 0),
                  s.NumberOr("pager_misses", 0));
    std::printf("%6.0f %5.0f %-22s %6.0f %9.0f %6.0f %6.0f %9s %3s\n",
                s.NumberOr("seq", 0), s.NumberOr("depth", 0),
                op != nullptr && op->is_string() ? op->str().c_str() : "?",
                s.NumberOr("object", 0), s.NumberOr("wall_us", 0),
                s.NumberOr("seeks", 0),
                s.NumberOr("pages_read", 0) + s.NumberOr("pages_written", 0),
                hm,
                s.Find("ok") != nullptr && s.Find("ok")->boolean() ? "ok"
                                                                   : "ERR");
  }
}

// Writes the sidecar's spans as Chrome trace-event JSON; load the file in
// chrome://tracing or https://ui.perfetto.dev.
void ExportChromeTrace(const std::string& volume, const std::string& out) {
  eos::obs::JsonValue snap = LoadSnapshotOrExit(volume);
  std::string json = eos::obs::ChromeTraceJson(snap);
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chrome trace: cannot open %s\n", out.c_str());
    std::exit(1);
  }
  size_t put = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  if (std::fclose(f) != 0 || put != json.size()) {
    std::fprintf(stderr, "chrome trace: write to %s failed\n", out.c_str());
    std::exit(1);
  }
  const eos::obs::JsonValue* trace = snap.Find("trace");
  std::printf("chrome trace: %zu span(s) -> %s\n",
              trace != nullptr && trace->is_array()
                  ? trace->elements().size()
                  : size_t{0},
              out.c_str());
}

// ----- top: rate deltas between successive snapshots -------------------------

// The cumulative quantities `top` differentiates, pulled from one sidecar
// snapshot.
struct TopSample {
  bool valid = false;
  double ops = 0;            // total op.* span count
  double bytes_read = 0;
  double bytes_written = 0;
  double cost_sum = 0;       // cost.read_actual_over_model sum (percent)
  double cost_count = 0;
  double cache_hits = 0;     // extent-cache lookups
  double cache_misses = 0;
  double busiest_count = 0;  // for picking the latency line
  std::string busiest_op;
  double p50 = 0;
  double p99 = 0;
};

TopSample ReadTopSample(const std::string& volume) {
  TopSample t;
  std::string path = eos::obs::SnapshotPathFor(volume);
  auto snap = eos::obs::ReadSnapshotFile(path);
  if (!snap.ok()) return t;
  t.valid = true;
  t.bytes_read = CounterOf(*snap, eos::obs::kIoBytesRead);
  t.bytes_written = CounterOf(*snap, eos::obs::kIoBytesWritten);
  t.cache_hits = CounterOf(*snap, eos::obs::kCacheHit);
  t.cache_misses = CounterOf(*snap, eos::obs::kCacheMiss);
  const eos::obs::JsonValue* metrics = snap->Find("metrics");
  const eos::obs::JsonValue* hists =
      metrics == nullptr ? nullptr : metrics->Find("histograms");
  if (hists == nullptr || !hists->is_object()) return t;
  for (const auto& [name, h] : hists->members()) {
    if (name.rfind("op.", 0) == 0) {
      double c = h.NumberOr("count", 0);
      t.ops += c;
      if (c > t.busiest_count) {
        t.busiest_count = c;
        t.busiest_op = name;
        t.p50 = h.NumberOr("p50", 0);
        t.p99 = h.NumberOr("p99", 0);
      }
    } else if (name == eos::obs::kCostReadRatio) {
      t.cost_sum = h.NumberOr("sum", 0);
      t.cost_count = h.NumberOr("count", 0);
    }
  }
  return t;
}

// Renders rate deltas between successive sidecar snapshots, like top(1)
// for a volume: ops/s and MB/s are per-interval rates, the latency
// percentiles are the busiest operation's cumulative histogram, `conf` is
// the interval's mean read conformance ratio (actual/model I/O — creeping
// above 1.00 means fragmentation; see DESIGN.md), and `cache%` is the
// interval's extent-cache hit rate ("-" when the cache saw no lookups).
void Top(const std::string& volume, uint64_t interval_ms, uint64_t count) {
  if (interval_ms == 0) interval_ms = 1000;
  std::printf("%8s %9s %9s %9s %22s %8s %8s %6s %6s\n", "ops/s", "rd MB/s",
              "wr MB/s", "total ops", "busiest op", "p50 us", "p99 us",
              "conf", "cache%");
  TopSample prev = ReadTopSample(volume);
  if (!prev.valid) {
    std::printf("waiting for %s ...\n",
                eos::obs::SnapshotPathFor(volume).c_str());
  }
  for (uint64_t i = 0; count == 0 || i < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    TopSample cur = ReadTopSample(volume);
    if (!cur.valid) continue;
    double dt = static_cast<double>(interval_ms) / 1000.0;
    double ops_s = prev.valid ? (cur.ops - prev.ops) / dt : 0;
    double rd = prev.valid
                    ? (cur.bytes_read - prev.bytes_read) / dt / 1048576.0
                    : 0;
    double wr = prev.valid
                    ? (cur.bytes_written - prev.bytes_written) / dt / 1048576.0
                    : 0;
    // Interval-local conformance when new samples arrived, else cumulative.
    double dsum = cur.cost_sum - (prev.valid ? prev.cost_sum : 0);
    double dcount = cur.cost_count - (prev.valid ? prev.cost_count : 0);
    double conf = dcount > 0 ? dsum / dcount / 100.0
                             : (cur.cost_count > 0
                                    ? cur.cost_sum / cur.cost_count / 100.0
                                    : 0);
    double dhits = cur.cache_hits - (prev.valid ? prev.cache_hits : 0);
    double dlookups =
        dhits + cur.cache_misses - (prev.valid ? prev.cache_misses : 0);
    char cache_col[16];
    if (dlookups > 0) {
      std::snprintf(cache_col, sizeof(cache_col), "%5.1f%%",
                    100.0 * dhits / dlookups);
    } else {
      std::snprintf(cache_col, sizeof(cache_col), "%6s", "-");
    }
    std::printf("%8.1f %9.2f %9.2f %9.0f %22s %8.0f %8.0f %6.2f %6s\n",
                ops_s, rd, wr, cur.ops,
                cur.busiest_op.empty() ? "-" : cur.busiest_op.c_str(),
                cur.p50, cur.p99, conf, cache_col);
    std::fflush(stdout);
    prev = cur;
  }
}

void PrintScrubReport(const eos::ScrubReport& report) {
  std::printf("scrub: %llu pages verified, %zu issue(s)\n",
              static_cast<unsigned long long>(report.pages_verified),
              report.issues.size());
  if (report.repaired_from_replica > 0) {
    std::printf("  %llu page(s) repaired from their mirror copy\n",
                static_cast<unsigned long long>(report.repaired_from_replica));
  }
  for (const eos::ScrubIssue& i : report.issues) {
    std::printf("  [%s] object %llu page %llu: %s\n",
                eos::PageRoleName(i.role),
                static_cast<unsigned long long>(i.object_id),
                static_cast<unsigned long long>(i.page), i.message.c_str());
  }
}

void Scrub(Database* db) {
  eos::ScrubReport report;
  Status s = db->Scrub(&report);
  if (!s.ok()) Fail(s, "scrub");
  PrintScrubReport(report);
  if (!report.clean()) std::exit(1);
}

// Scrub, then rebuild every damaged object in place. Unreadable byte
// ranges come back as zeroes and are reported (and persisted) as the
// object's hole map. Damage outside object trees (superblock, allocation
// maps, the directory itself) is beyond object-level repair and exits 1.
void Repair(Database* db) {
  eos::ScrubReport report;
  Status s = db->Scrub(&report);
  if (!s.ok()) Fail(s, "scrub");
  PrintScrubReport(report);
  if (report.clean()) {
    std::printf("repair: nothing to do\n");
    return;
  }
  bool unrepairable = false;
  std::vector<uint64_t> damaged;
  for (const eos::ScrubIssue& i : report.issues) {
    if (i.role == eos::PageRole::kLeaf ||
        i.role == eos::PageRole::kIndexNode) {
      if (damaged.empty() || damaged.back() != i.object_id) {
        damaged.push_back(i.object_id);
      }
    } else {
      std::fprintf(stderr, "repair: %s damage is not object-repairable\n",
                   eos::PageRoleName(i.role));
      unrepairable = true;
    }
  }
  for (uint64_t id : damaged) {
    Status r = db->RepairObject(id);
    if (!r.ok()) Fail(r, "repair");
    auto holes = db->GetHoles(id);
    uint64_t lost = 0;
    for (const eos::HoleRange& h : holes) lost += h.length;
    std::printf("repair: object %llu rebuilt, %zu hole(s), %llu bytes "
                "zero-filled\n",
                static_cast<unsigned long long>(id), holes.size(),
                static_cast<unsigned long long>(lost));
    for (const eos::HoleRange& h : holes) {
      std::printf("    hole [%llu, %llu)\n",
                  static_cast<unsigned long long>(h.offset),
                  static_cast<unsigned long long>(h.offset + h.length));
    }
  }
  if (unrepairable) std::exit(1);
  eos::ScrubReport again;
  s = db->Scrub(&again);
  if (!s.ok()) Fail(s, "re-scrub");
  if (!again.clean()) {
    PrintScrubReport(again);
    std::fprintf(stderr, "repair: volume still has issues\n");
    std::exit(1);
  }
  std::printf("repair: volume clean\n");
}

// Cross-checks the buddy allocation maps against the union of every
// reachable extent: pages held by no reference are leaked storage, pages
// held by more than one are a double allocation. Read-only; exit 1 when
// the volume lost (or double-booked) any storage.
void LeakCheck(Database* db) {
  eos::LeakCheckReport report;
  Status s = db->LeakCheck(&report);
  std::printf("leak-check: %llu pages allocated, %llu reachable\n",
              static_cast<unsigned long long>(report.allocated_pages),
              static_cast<unsigned long long>(report.reachable_pages));
  for (const eos::Extent& e : report.leaked) {
    std::printf("  leaked: pages [%llu, %llu) (%u pages)\n",
                static_cast<unsigned long long>(e.first),
                static_cast<unsigned long long>(e.first + e.pages), e.pages);
  }
  for (const eos::Extent& e : report.doubly_referenced) {
    std::printf("  doubly referenced: pages [%llu, %llu) (%u pages)\n",
                static_cast<unsigned long long>(e.first),
                static_cast<unsigned long long>(e.first + e.pages), e.pages);
  }
  if (!s.ok()) Fail(s, "leak-check");
  std::printf("leak-check OK: no leaked or doubly-referenced storage\n");
}

// Layout-drift report (DESIGN.md §12): every object's scatter score — the
// seek-weighted cost of scanning its current layout over the ideal one —
// plus the buddy free-list fragmentation gauges. With `apply`, drains the
// defragmenter: one tick to establish the cold horizon (a tool session
// has no foreground mutators, so everything is cold on the next tick),
// then migrating ticks until a round moves nothing.
void Defrag(Database* db, bool apply) {
  auto ids = db->ListObjects();
  if (!ids.ok()) Fail(ids.status(), "list");
  const double threshold = db->defragmenter()->options().min_scatter;
  std::printf("%8s %12s %6s %6s %6s %9s\n", "id", "bytes", "segs", "leaf",
              "index", "scatter");
  size_t over = 0;
  for (uint64_t id : *ids) {
    auto stats = db->ObjectStats(id);
    if (!stats.ok()) Fail(stats.status(), "stats");
    double scatter = eos::Defragmenter::ScatterOf(
        *stats, db->lob()->page_size(), db->lob()->max_segment_pages());
    if (scatter >= threshold) ++over;
    std::printf("%8llu %12llu %6llu %6llu %6llu %8.2fx%s\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(stats->size_bytes),
                static_cast<unsigned long long>(stats->num_segments),
                static_cast<unsigned long long>(stats->leaf_pages),
                static_cast<unsigned long long>(stats->index_pages), scatter,
                scatter >= threshold ? "  <- candidate" : "");
  }
  auto frag = db->allocator()->FragStats();
  if (!frag.ok()) Fail(frag.status(), "frag stats");
  std::printf("free list: entropy %.2f, %llu free segments, largest run "
              "%llu pages\n",
              frag->free_entropy,
              static_cast<unsigned long long>(frag->free_segments),
              static_cast<unsigned long long>(frag->largest_free_pages));
  std::printf("%zu of %zu objects at or above the %.2fx migration "
              "threshold\n",
              over, ids->size(), threshold);
  if (!apply) return;
  // On a fresh open nothing has a recorded mutation, so the very first
  // tick already migrates; later ticks catch anything a per-tick cap
  // deferred. A sub-1.0 threshold never converges (a fresh layout still
  // scores 1.0), so the drain is additionally round-bounded.
  eos::DefragReport total;
  eos::DefragReport rep;
  int rounds = 0;
  do {
    Status s = db->DefragTick(&rep);
    if (!s.ok()) Fail(s, "defrag");
    total.migrated += rep.migrated;
    total.migrated_bytes += rep.migrated_bytes;
    total.skipped_hot += rep.skipped_hot;
    total.refused += rep.refused;
    total.failed += rep.failed;
  } while (rep.migrated > 0 && ++rounds < 16);
  std::printf("defrag: %llu object(s) migrated (%.1f MB), %llu refused, "
              "%llu failed\n",
              static_cast<unsigned long long>(total.migrated),
              total.migrated_bytes / 1048576.0,
              static_cast<unsigned long long>(total.refused),
              static_cast<unsigned long long>(total.failed));
  if (total.refused > 0 || total.failed > 0) std::exit(1);
}

// Health of a multi-volume set (DESIGN.md §15): per-member fill against
// the capacity cap, placement state (shedding/offline), quarantined pages
// in each member's integrity layer, and how many pages each member had
// rewritten from its mirror copy. argv[1] is member 0; the remaining
// paths are the other members in formatted order.
void PrintVolumes(const std::string& first,
                  const std::vector<std::string>& rest,
                  const DatabaseOptions& options) {
  std::vector<std::unique_ptr<eos::PageDevice>> members;
  auto add = [&](const std::string& p) {
    auto dev = eos::FilePageDevice::Open(p, options.page_size);
    if (!dev.ok()) Fail(dev.status(), p.c_str());
    members.push_back(std::move(dev).value());
  };
  add(first);
  for (const std::string& p : rest) add(p);
  eos::VolumeSetOptions vopt;
  auto db = Database::OpenOnVolumeSet(std::move(members), vopt, options);
  if (!db.ok()) Fail(db.status(), "open volume set");
  eos::VolumeSetDevice::Health h = (*db)->volume_set()->GetHealth();
  std::printf("volume set: %zu member(s), %s, chunk %u pages, %llu chunk(s)\n",
              h.members.size(), h.mirrored ? "mirrored" : "unmirrored",
              h.chunk_pages, static_cast<unsigned long long>(h.chunks));
  std::printf("set totals: %llu failover read(s), %llu degraded write(s), "
              "%llu shed placement(s), %llu page(s) repaired from replica\n",
              static_cast<unsigned long long>(h.failover_reads),
              static_cast<unsigned long long>(h.degraded_writes),
              static_cast<unsigned long long>(h.shed_placements),
              static_cast<unsigned long long>(h.repaired_pages));
  std::printf("%6s %-10s %7s %8s %8s %8s %12s %9s\n", "member", "state",
              "fill", "blocks", "primary", "replica", "quarantined",
              "repaired");
  for (const eos::VolumeSetDevice::MemberHealth& m : h.members) {
    const char* state =
        !m.online ? "OFFLINE" : (m.shedding ? "shedding" : "ok");
    std::printf("%6d %-10s %6.1f%% %8llu %8llu %8llu %12llu %9llu\n",
                m.index, state, m.fill_percent,
                static_cast<unsigned long long>(m.data_blocks),
                static_cast<unsigned long long>(m.primary_chunks),
                static_cast<unsigned long long>(m.replica_chunks),
                static_cast<unsigned long long>(m.quarantined_pages),
                static_cast<unsigned long long>(m.repaired_pages));
  }
}

// Prints an object's version chain (DESIGN.md §13). Version chains are
// in-process state: a freshly opened volume shows the single seeded
// current version; inside a live mvcc process the chain also lists every
// superseded version some snapshot still pins.
void PrintVersions(Database* db, uint64_t id) {
  auto chain = db->ListVersions(id);
  if (!chain.ok()) Fail(chain.status(), "versions");
  std::printf("object %llu: %zu version%s\n",
              static_cast<unsigned long long>(id), chain->size(),
              chain->size() == 1 ? "" : "s");
  std::printf("%8s %12s %12s %14s %6s %8s %s\n", "vseq", "root pg", "lsn",
              "bytes", "pins", "retired", "state");
  for (const auto& v : *chain) {
    char root_pg[24];
    if (v.root_page == eos::kInvalidPage) {
      std::snprintf(root_pg, sizeof(root_pg), "-");
    } else {
      std::snprintf(root_pg, sizeof(root_pg), "%llu",
                    static_cast<unsigned long long>(v.root_page));
    }
    std::printf("%8llu %12s %12llu %14llu %6llu %8u %s\n",
                static_cast<unsigned long long>(v.vseq), root_pg,
                static_cast<unsigned long long>(v.lsn),
                static_cast<unsigned long long>(v.size),
                static_cast<unsigned long long>(v.pins), v.retired_extents,
                v.dead ? "dead" : (v.current ? "current" : "superseded"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string path = argv[1];
  DatabaseOptions options;
  std::string mode = "overview";
  uint64_t object_id = 0;
  std::string chrome_out;
  uint64_t top_interval_ms = 1000;
  uint64_t top_count = 0;  // 0 = forever
  bool defrag_apply = false;
  std::vector<std::string> member_paths;
  // A tool session drains in one pass; the per-tick throttles exist for
  // background ticks racing a live foreground, which a CLI run has none of.
  options.defrag.max_objects_per_tick = 256;
  options.defrag.max_bytes_per_tick = 1ull << 30;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--page-size" && i + 1 < argc) {
      options.page_size = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--object" && i + 1 < argc) {
      mode = "object";
      object_id = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if ((arg == "versions" || arg == "--versions") && i + 1 < argc) {
      mode = "versions";
      object_id = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--check") {
      mode = "check";
    } else if (arg == "verify" || arg == "--verify") {
      mode = "verify";
    } else if (arg == "--spaces") {
      mode = "spaces";
    } else if (arg == "stats" || arg == "--stats") {
      mode = "stats";
    } else if (arg == "cache" || arg == "--cache") {
      mode = "cache";
    } else if (arg == "trace" || arg == "--trace") {
      mode = "trace";
    } else if (arg == "top" || arg == "--top") {
      mode = "top";
    } else if (arg.rfind("--chrome=", 0) == 0) {
      chrome_out = arg.substr(std::strlen("--chrome="));
    } else if (arg == "--chrome" && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (arg == "--interval" && i + 1 < argc) {
      top_interval_ms = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--count" && i + 1 < argc) {
      top_count = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "scrub" || arg == "--scrub") {
      mode = "scrub";
    } else if (arg == "repair" || arg == "--repair") {
      mode = "repair";
    } else if (arg == "leak-check" || arg == "--leak-check") {
      mode = "leak-check";
    } else if (arg == "defrag" || arg == "--defrag") {
      mode = "defrag";
    } else if (arg == "--apply") {
      defrag_apply = true;
    } else if (arg == "--min-scatter" && i + 1 < argc) {
      options.defrag.min_scatter = std::atof(argv[++i]);
    } else if (arg == "volumes" || arg == "--volumes") {
      mode = "volumes";
    } else if (mode == "volumes" && !arg.empty() && arg[0] != '-') {
      member_paths.push_back(arg);
    } else {
      return Usage();
    }
  }
  // The snapshot subcommands read only the sidecar; no volume open needed.
  if (mode == "stats") {
    PrintStats(path);
    return 0;
  }
  if (mode == "cache") {
    PrintCacheStats(path);
    return 0;
  }
  if (mode == "trace") {
    if (!chrome_out.empty()) {
      ExportChromeTrace(path, chrome_out);
    } else {
      PrintTrace(path);
    }
    return 0;
  }
  if (mode == "top") {
    Top(path, top_interval_ms, top_count);
    return 0;
  }
  if (mode == "volumes") {
    if (member_paths.empty()) return Usage();
    PrintVolumes(path, member_paths, options);
    return 0;
  }
  auto db = Database::Open(path, options);
  if (!db.ok()) Fail(db.status(), "open");
  if (mode == "overview") {
    PrintOverview(db->get());
  } else if (mode == "object") {
    PrintObject(db->get(), object_id);
  } else if (mode == "versions") {
    PrintVersions(db->get(), object_id);
  } else if (mode == "spaces") {
    PrintSpaces(db->get());
  } else if (mode == "check") {
    Status s = (*db)->CheckIntegrity();
    if (!s.ok()) Fail(s, "integrity");
    std::printf("integrity OK\n");
  } else if (mode == "verify") {
    Verify(db->get());
  } else if (mode == "scrub") {
    Scrub(db->get());
  } else if (mode == "repair") {
    Repair(db->get());
  } else if (mode == "defrag") {
    Defrag(db->get(), defrag_apply);
  } else if (mode == "leak-check") {
    LeakCheck(db->get());
  }
  return 0;
}
