// eos_inspect — command-line volume inspector.
//
//   eos_inspect <volume> [--page-size N]        overview + object list
//   eos_inspect <volume> --object <id>          one object's structure
//   eos_inspect <volume> --check                full integrity check
//   eos_inspect <volume> --spaces               buddy free-list report
//
// Read-only except for the superblock flush performed on clean close.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eos/database.h"

namespace {

using eos::Database;
using eos::DatabaseOptions;
using eos::LobStats;
using eos::SpaceReport;
using eos::Status;

int Usage() {
  std::fprintf(stderr,
               "usage: eos_inspect <volume> [--page-size N] "
               "[--object ID | --check | --spaces]\n");
  return 2;
}

void Fail(const Status& s, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  std::exit(1);
}

void PrintOverview(Database* db) {
  auto ids = db->ListObjects();
  if (!ids.ok()) Fail(ids.status(), "list");
  std::printf("volume: page_size=%u spaces=%u (%.1f MB managed)\n",
              db->device()->page_size(), db->allocator()->num_spaces(),
              db->allocator()->num_spaces() *
                  static_cast<double>(db->allocator()->geometry().space_pages) *
                  db->device()->page_size() / 1048576.0);
  auto free_pages = db->allocator()->TotalFreePages();
  if (!free_pages.ok()) Fail(free_pages.status(), "free pages");
  std::printf("free: %llu pages\n",
              static_cast<unsigned long long>(*free_pages));
  std::printf("%8s %14s %10s %10s %8s %8s\n", "object", "bytes", "segments",
              "leaf pgs", "depth", "util");
  for (uint64_t id : *ids) {
    auto st = db->ObjectStats(id);
    if (!st.ok()) Fail(st.status(), "stats");
    std::printf("%8llu %14llu %10llu %10llu %8u %7.1f%%\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(st->size_bytes),
                static_cast<unsigned long long>(st->num_segments),
                static_cast<unsigned long long>(st->leaf_pages), st->depth,
                100.0 * st->leaf_utilization);
  }
}

void PrintObject(Database* db, uint64_t id) {
  auto root = db->GetRoot(id);
  if (!root.ok()) Fail(root.status(), "object");
  auto st = db->ObjectStats(id);
  if (!st.ok()) Fail(st.status(), "stats");
  std::printf("object %llu: %llu bytes, lsn %llu\n",
              static_cast<unsigned long long>(id),
              static_cast<unsigned long long>(root->size()),
              static_cast<unsigned long long>(root->lsn));
  std::printf(
      "  tree: depth %u, %llu index pages, %llu segments "
      "(min %llu / avg %.1f / max %llu pages)\n",
      st->depth, static_cast<unsigned long long>(st->index_pages),
      static_cast<unsigned long long>(st->num_segments),
      static_cast<unsigned long long>(st->min_segment_pages),
      st->avg_segment_pages,
      static_cast<unsigned long long>(st->max_segment_pages));
  std::printf("  utilization: %.2f%% leaf, %.2f%% incl. index\n",
              100.0 * st->leaf_utilization, 100.0 * st->total_utilization);
  std::printf("  root entries (cumulative count -> page):\n");
  uint64_t cum = 0;
  for (const eos::LobEntry& e : root->root.entries) {
    cum += e.count;
    std::printf("    %12llu -> page %llu\n",
                static_cast<unsigned long long>(cum),
                static_cast<unsigned long long>(e.page));
  }
}

void PrintSpaces(Database* db) {
  auto report = db->allocator()->Report();
  if (!report.ok()) Fail(report.status(), "report");
  std::printf("%6s %12s %14s   free segments by size (pages x count)\n",
              "space", "free pages", "largest free");
  for (const SpaceReport& r : *report) {
    std::printf("%6u %12llu %14s   ", r.space,
                static_cast<unsigned long long>(r.free_pages),
                r.max_free_type < 0
                    ? "-"
                    : std::to_string(uint64_t{1} << r.max_free_type)
                          .c_str());
    for (size_t t = 0; t < r.free_counts.size(); ++t) {
      if (r.free_counts[t] > 0) {
        std::printf("%llux%u ",
                    static_cast<unsigned long long>(uint64_t{1} << t),
                    r.free_counts[t]);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string path = argv[1];
  DatabaseOptions options;
  std::string mode = "overview";
  uint64_t object_id = 0;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--page-size" && i + 1 < argc) {
      options.page_size = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--object" && i + 1 < argc) {
      mode = "object";
      object_id = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--check") {
      mode = "check";
    } else if (arg == "--spaces") {
      mode = "spaces";
    } else {
      return Usage();
    }
  }
  auto db = Database::Open(path, options);
  if (!db.ok()) Fail(db.status(), "open");
  if (mode == "overview") {
    PrintOverview(db->get());
  } else if (mode == "object") {
    PrintObject(db->get(), object_id);
  } else if (mode == "spaces") {
    PrintSpaces(db->get());
  } else if (mode == "check") {
    Status s = (*db)->CheckIntegrity();
    if (!s.ok()) Fail(s, "integrity");
    std::printf("integrity OK\n");
  }
  return 0;
}
