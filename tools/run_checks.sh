#!/usr/bin/env bash
# Three-tier check runner (DESIGN.md "Testing & fault model"):
#
#   1. fast + sanitizer-labelled tests under ASan/UBSan (the `asan` preset);
#   2. the `tsan`-labelled concurrency suites (concurrent scrub + readers,
#      parallel allocator use) under ThreadSanitizer (the `tsan` preset);
#   3. the full suite, including the `torture` crash-recovery, bit-rot and
#      stress tests, in the default RelWithDebInfo build.
#
# Usage: tools/run_checks.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

echo "== [1/3] sanitizer tier (ASan/UBSan, label: sanitizer) =="
cmake --preset asan
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L sanitizer --output-on-failure -j "$JOBS"

echo "== [2/3] concurrency tier (TSan, label: tsan) =="
cmake --preset tsan
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir build-tsan -L tsan --output-on-failure -j "$JOBS"

echo "== [3/3] full suite incl. torture (default build) =="
cmake --preset default
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "all checks passed"
