#!/usr/bin/env bash
# Two-tier check runner (DESIGN.md "Testing & fault model"):
#
#   1. fast + sanitizer-labelled tests under ASan/UBSan (the `asan` preset);
#   2. the full suite, including the `torture` crash-recovery and stress
#      tests, in the default RelWithDebInfo build.
#
# Usage: tools/run_checks.sh [-j N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

echo "== [1/2] sanitizer tier (ASan/UBSan, label: sanitizer) =="
cmake --preset asan
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L sanitizer --output-on-failure -j "$JOBS"

echo "== [2/2] full suite incl. torture (default build) =="
cmake --preset default
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "all checks passed"
