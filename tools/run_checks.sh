#!/usr/bin/env bash
# Check runner (DESIGN.md "Testing & fault model"): a metric-name lint,
# the committed aging-curve gate, plus four build tiers:
#
#   0. tools/check_metric_names.py — metric_names.h <-> instrumentation
#      <-> DESIGN.md table consistency — and the BENCH_7.json aging gate
#      (DESIGN.md §12): the committed bench_aging curve must show churn
#      provoking >= 1.5x read-cost drift with the defragmenter off,
#      recovery to <= 1.25x the §4 cost model with it on (the PR-6
#      fresh-volume bar), and foreground read p99 within 20% of the
#      defrag-off run (no build needed); plus the BENCH_9.json cache gate
#      (DESIGN.md §14): hot-set speedup >= 3x with the extent cache on,
#      hit rate >= 80% at Zipf(0.99), cold-set regression <= 10%, p99
#      flat; plus the BENCH_10.json volume gate (DESIGN.md §15):
#      parallel per-volume scrub >= 1.3x serial and degraded-mode reads
#      (1 of 3 members offline) >= 0.5x healthy throughput;
#   1. fast + sanitizer-, obs-, mvcc-, cache- and volume-labelled tests
#      under ASan/UBSan (the `asan` preset);
#   2. the `tsan`-, obs-, mvcc-, cache- and volume-labelled concurrency suites
#      (concurrent scrub + readers, parallel allocator use, concurrent
#      journal writers, snapshot readers racing writers, cache torture)
#      under ThreadSanitizer (the `tsan` preset);
#   3. the full suite, including the `torture` crash-recovery, bit-rot and
#      stress tests, in the default RelWithDebInfo build;
#   4. the seed sweep: every `aging`-, `mvcc`-, `cache`- or
#      `volume`-labelled suite
#      re-run under an EOS_TEST_SEED matrix, so single-seed latent bugs
#      (like the pinned 4242 recovery case) cannot hide behind the
#      default seed.
#
# The `exhaustion` label (resource-exhaustion/deadline suites, DESIGN.md
# §11) rides in tiers 1 and 2 via its sanitizer/tsan labels and can be
# run alone with `ctest --test-dir build -L exhaustion`.
#
# Torture tiers run with EOS_JOURNAL_DIR pointed at build/postmortems so
# any flight-recorder post-mortem dumps (DESIGN.md §6) survive the run;
# retained dumps are listed at the end.
#
# Usage: tools/run_checks.sh [-j N]
#        tools/run_checks.sh perf-smoke [-j N]
#
# perf-smoke builds the default preset, runs the micro and throughput
# benches, and prints each throughput metric against the committed
# BENCH_4.json baseline (the throughput bench runs twice: once with the
# dispatched CRC32C kernel, once forced to software via EOS_CRC32C).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=checks
if [[ "${1:-}" == "perf-smoke" ]]; then
  MODE=perf
  shift
fi

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [perf-smoke] [-j N]" >&2; exit 2 ;;
  esac
done

if [[ "$MODE" == "perf" ]]; then
  echo "== perf-smoke: default build =="
  cmake --preset default
  cmake --build build -j "$JOBS" --target bench_micro bench_throughput

  echo "== perf-smoke: bench_micro (smoke pass) =="
  ./build/bench/bench_micro --benchmark_min_time=0.05

  echo "== perf-smoke: bench_throughput (dispatched + forced-software CRC) =="
  OUT=build/bench_throughput.jsonl
  ./build/bench/bench_throughput | tee /dev/stderr | grep '^{"bench"' > "$OUT"
  EOS_CRC32C=software ./build/bench/bench_throughput | grep '^{"bench"' >> "$OUT"

  echo "== perf-smoke: deltas vs BENCH_4.json =="
  python3 - "$OUT" BENCH_4.json <<'PY'
import json, sys

def load(path):
    out = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "metric" in rec:
                out[rec["metric"]] = rec["value"]
    return out

now, base = load(sys.argv[1]), load(sys.argv[2])
width = max(len(m) for m in now)
regressed = []
for metric in sorted(now):
    cur = now[metric]
    ref = base.get(metric)
    if ref is None or ref == 0:
        print(f"  {metric:<{width}}  {cur:12.1f}  (no baseline)")
        continue
    delta = (cur - ref) / ref * 100.0
    print(f"  {metric:<{width}}  {cur:12.1f}  vs {ref:12.1f}  {delta:+7.1f}%")
    if metric.endswith("_mbps") and delta < -30.0:
        regressed.append((metric, delta))
if regressed:
    print("perf-smoke: regressions beyond the 30% noise floor:")
    for metric, delta in regressed:
        print(f"  {metric}: {delta:+.1f}%")
    sys.exit(1)
print("perf-smoke: within noise floor of baseline")
PY
  exit 0
fi

echo "== [0/4] metric-name lint =="
python3 tools/check_metric_names.py

echo "== [0/4] aging-curve gate (committed BENCH_7.json, DESIGN.md §12) =="
python3 - BENCH_7.json <<'PY'
import json, sys

vals = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if "metric" in rec:
            vals[rec["metric"]] = rec["value"]

def need(metric):
    if metric not in vals:
        print(f"aging gate: BENCH_7.json is missing '{metric}'")
        sys.exit(1)
    return vals[metric]

failures = []
drift_off = need("drift_off_final")
drift_on = need("drift_on_final")
migrated = need("objects_migrated")
p99_ratio = need("read_p99_ratio")
if drift_off < 1.5:
    failures.append(f"churn no longer provokes aging: drift_off_final "
                    f"{drift_off:.3f} < 1.5x")
if drift_on > 1.25:
    failures.append(f"post-defrag read cost above the cost model bar: "
                    f"drift_on_final {drift_on:.3f} > 1.25x")
if migrated <= 0:
    failures.append("the defragmenter migrated nothing")
if p99_ratio > 1.2:
    failures.append(f"foreground read p99 with defrag on is "
                    f"{p99_ratio:.2f}x the defrag-off run (> 1.2x)")
if failures:
    for f in failures:
        print(f"aging gate: {f}")
    sys.exit(1)
print(f"aging gate: drift {need('drift_off_first'):.2f}x -> "
      f"{drift_off:.2f}x (defrag off), recovered to {drift_on:.2f}x "
      f"(defrag on, {int(migrated)} migrations, p99 {p99_ratio:.2f}x)")
PY

echo "== [0/4] cache gate (committed BENCH_9.json, DESIGN.md §14) =="
python3 - BENCH_9.json <<'PY'
import json, sys

vals = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if "metric" in rec:
            vals[rec["metric"]] = rec["value"]

def need(metric):
    if metric not in vals:
        print(f"cache gate: BENCH_9.json is missing '{metric}'")
        sys.exit(1)
    return vals[metric]

failures = []
speedup = need("zipf_hot_speedup")
hit_rate = need("zipf_hit_rate")
cold_ratio = need("zipf_cold_ratio")
p99_ratio = need("zipf_hot_p99_ratio")
if speedup < 3.0:
    failures.append(f"hot-set speedup with the cache on is only "
                    f"{speedup:.2f}x (< 3x)")
if hit_rate < 80.0:
    failures.append(f"hot-phase hit rate {hit_rate:.1f}% < 80% at "
                    f"Zipf(0.99)")
if cold_ratio < 0.9:
    failures.append(f"uniform cold-set throughput with the cache on is "
                    f"{cold_ratio:.2f}x cache-off (> 10% regression)")
if p99_ratio > 1.2:
    failures.append(f"hot-phase foreground p99 with the cache on is "
                    f"{p99_ratio:.2f}x cache-off (> 1.2x)")
if failures:
    for f in failures:
        print(f"cache gate: {f}")
    sys.exit(1)
print(f"cache gate: hot {speedup:.2f}x (hit {hit_rate:.1f}%, "
      f"nocomp {need('zipf_hot_speedup_nocomp'):.2f}x), cold "
      f"{cold_ratio:.2f}x, p99 {p99_ratio:.2f}x")
PY

echo "== [0/4] volume gate (committed BENCH_10.json, DESIGN.md §15) =="
python3 - BENCH_10.json <<'PY'
import json, sys

vals = {}
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if "metric" in rec:
            vals[rec["metric"]] = rec["value"]

def need(metric):
    if metric not in vals:
        print(f"volume gate: BENCH_10.json is missing '{metric}'")
        sys.exit(1)
    return vals[metric]

failures = []
speedup = need("scrub_parallel_speedup")
ratio = need("degraded_read_ratio")
failovers = need("failover_reads")
if speedup < 1.3:
    failures.append(f"parallel per-volume scrub is only {speedup:.2f}x "
                    f"serial (< 1.3x) on an IO-bound 3-member set")
if ratio < 0.5:
    failures.append(f"degraded-mode read throughput (1 of 3 members "
                    f"offline) is {ratio:.2f}x healthy (> 50% collapse)")
if failovers <= 0:
    failures.append("the degraded pass never failed over to a replica")
if failures:
    for f in failures:
        print(f"volume gate: {f}")
    sys.exit(1)
print(f"volume gate: scrub {speedup:.2f}x parallel, degraded reads "
      f"{ratio:.2f}x healthy ({int(failovers)} failovers)")
PY

POSTMORTEM_DIR="$PWD/build/postmortems"
mkdir -p "$POSTMORTEM_DIR"

echo "== [1/4] sanitizer tier (ASan/UBSan, labels: sanitizer|obs|mvcc|cache|volume) =="
cmake --preset asan
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
EOS_JOURNAL_DIR="$POSTMORTEM_DIR" \
  ctest --test-dir build-asan -L 'sanitizer|obs|mvcc|cache|volume' --output-on-failure \
  -j "$JOBS"

echo "== [2/4] concurrency tier (TSan, labels: tsan|obs|mvcc|cache|volume) =="
cmake --preset tsan
cmake --build build-tsan -j "$JOBS"
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
EOS_JOURNAL_DIR="$POSTMORTEM_DIR" \
  ctest --test-dir build-tsan -L 'tsan|obs|mvcc|cache|volume' --output-on-failure \
  -j "$JOBS"

echo "== [3/4] full suite incl. torture (default build) =="
cmake --preset default
cmake --build build -j "$JOBS"
EOS_JOURNAL_DIR="$POSTMORTEM_DIR" \
  ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== [4/4] seed sweep (labels: aging|mvcc|cache|volume, EOS_TEST_SEED matrix) =="
for SEED in 4242 31337 99991; do
  echo "-- seed $SEED --"
  EOS_TEST_SEED="$SEED" EOS_JOURNAL_DIR="$POSTMORTEM_DIR" \
    ctest --test-dir build -L 'aging|mvcc|cache|volume' --output-on-failure -j "$JOBS"
done

if compgen -G "$POSTMORTEM_DIR/eos_postmortem.*.json" > /dev/null; then
  echo "retained post-mortem journals (flight recorder, DESIGN.md §6):"
  ls -1 "$POSTMORTEM_DIR"/eos_postmortem.*.json | sed 's/^/  /'
fi
echo "all checks passed"
