#!/usr/bin/env python3
"""Metric-name contract lint (wired into tools/run_checks.sh).

The observability layer names every metric once, in
src/obs/metric_names.h.  This check keeps the three places a name can
appear from drifting apart:

  1. every k* constant in metric_names.h is referenced by at least one
     instrumentation site (src/, bench/, tools/ — a constant nobody
     records into is dead telemetry);
  2. every constant's metric string is documented in DESIGN.md's metric
     table (between the `<!-- metrics:begin -->` / `<!-- metrics:end -->`
     markers);
  3. every metric string documented in that table maps back to a
     constant (docs cannot invent metrics that do not exist);
  4. no instrumentation site under src/ passes a raw string literal to
     MetricsRegistry::{counter,gauge,histogram} — names must flow
     through the constants so 1–3 can see them.  (Dynamically composed
     names, e.g. the per-op "op.<name>.us" histograms, are exempt: the
     lint only matches literals.)

Exits non-zero listing every violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
NAMES_H = os.path.join(REPO, "src", "obs", "metric_names.h")
DESIGN = os.path.join(REPO, "DESIGN.md")

CONST_RE = re.compile(
    r"inline\s+constexpr\s+char\s+(k\w+)\[\]\s*=\s*\"([^\"]+)\"")
# A raw literal fed straight to the registry, e.g. counter("pager.hit").
RAW_LOOKUP_RE = re.compile(r"\b(?:counter|gauge|histogram)\(\s*\"([^\"]+)\"")
MARKER_BEGIN = "<!-- metrics:begin -->"
MARKER_END = "<!-- metrics:end -->"


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def source_files(*roots):
    for root in roots:
        for dirpath, _, files in os.walk(os.path.join(REPO, root)):
            for name in files:
                if name.endswith((".cc", ".h")):
                    yield os.path.join(dirpath, name)


def main():
    constants = CONST_RE.findall(read(NAMES_H))
    if not constants:
        print(f"check_metric_names: no constants parsed from {NAMES_H}")
        return 1
    errors = []

    by_const = dict(constants)
    by_name = {}
    for const, name in constants:
        if name in by_name:
            errors.append(
                f"duplicate metric string {name!r}: {by_name[name]} and "
                f"{const} in metric_names.h")
        by_name[name] = const

    # 1. every constant referenced from some instrumentation site, and
    # 4. no raw literal registry lookups in src/.
    referenced = set()
    for path in source_files("src", "bench", "tools", "tests"):
        if os.path.samefile(path, NAMES_H):
            continue
        text = read(path)
        for const in by_const:
            if re.search(rf"\b{const}\b", text):
                referenced.add(const)
        if path.startswith(os.path.join(REPO, "src")):
            for raw in RAW_LOOKUP_RE.findall(text):
                rel = os.path.relpath(path, REPO)
                hint = (f" (use obs::{by_name[raw]})"
                        if raw in by_name else "")
                errors.append(
                    f"{rel}: raw metric literal {raw!r} passed to the "
                    f"registry{hint}")
    for const, name in constants:
        if const not in referenced:
            errors.append(
                f"metric_names.h: {const} ({name!r}) is referenced by no "
                f"instrumentation site")

    # 2 & 3. DESIGN.md table <-> constants, both directions.
    design = read(DESIGN)
    begin = design.find(MARKER_BEGIN)
    end = design.find(MARKER_END)
    if begin < 0 or end < 0 or end < begin:
        errors.append(
            f"DESIGN.md: missing {MARKER_BEGIN} / {MARKER_END} markers "
            f"around the metric table")
        table = ""
    else:
        table = design[begin:end]
    documented = set(re.findall(r"`([a-z][a-z0-9_.]*[a-z0-9_])`", table))
    # Only rows that name a metric: must contain a dot, like the names do.
    documented = {d for d in documented if "." in d}
    for const, name in constants:
        if name not in documented:
            errors.append(
                f"DESIGN.md: metric {name!r} ({const}) missing from the "
                f"documented table")
    for name in sorted(documented):
        if name not in by_name and not name.startswith("op."):
            errors.append(
                f"DESIGN.md: documented metric {name!r} has no constant in "
                f"metric_names.h")

    if errors:
        for e in errors:
            print(f"check_metric_names: {e}")
        print(f"check_metric_names: {len(errors)} violation(s)")
        return 1
    print(f"check_metric_names: OK ({len(constants)} metrics, "
          f"{len(documented)} documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
