// Long-horizon aging harness (DESIGN.md §12, ROADMAP item 4): compresses
// weeks of create/append/delete/update churn into epochs and charts the
// degrade-then-recover curve the fragmentation literature predicts
// (Sears/van Ingen/Gray, "To BLOB or Not To BLOB"):
//
//   phase aging_off — churn with the defragmenter disabled; cold-read cost
//     drifts away from the §4 model as segments shatter.
//   phase aging_on  — identical seeded churn with the online defragmenter;
//     the drift is reversed and cold reads return to near-model cost.
//
// Per epoch it reports the modeled cold-read drift (actual/model 1992-disk
// milliseconds), the cost.read conformance of the sweep, free-list entropy
// and mean object scatter. Gates: the harness must *provoke* drift >= 1.5x
// with defrag off and *recover* to <= 1.25x with defrag on; foreground
// read p99 with the defragmenter live must stay near the defrag-off run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "eos/database.h"
#include "lob/defrag.h"
#include "obs/cost_model.h"
#include "tests/churn_driver.h"

namespace eos {
namespace {

using bench::EmitJsonResult;
using bench::Stack;

constexpr uint32_t kPage = 4096;
constexpr int kEpochs = 12;
constexpr char kBench[] = "aging";

struct PhaseResult {
  double drift_first = 0.0;  // cold-read actual/model ms, epoch 1
  double drift_final = 0.0;  // same, last epoch
  double conf_final = 0.0;   // cost.read conformance of the final sweep
  double entropy_final = 0.0;
  double scatter_final = 0.0;  // mean object scatter, last epoch
  double read_p99_us = 0.0;    // foreground read latency during churn
  uint64_t migrated = 0;
  uint64_t migrated_bytes = 0;
};

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * (v.size() - 1));
  return v[idx];
}

// Delta probe over one cumulative conformance histogram.
struct HistProbe {
  uint64_t n = 0;
  uint64_t sum = 0;
  static HistProbe Snap(const char* metric) {
    const obs::Histogram* h =
        obs::MetricsRegistry::Default().histogram(metric);
    return HistProbe{h->count(), h->sum()};
  }
  double MeanSince(const char* metric) const {
    const obs::Histogram* h =
        obs::MetricsRegistry::Default().histogram(metric);
    uint64_t dn = h->count() - n;
    if (dn == 0) return 0.0;
    return static_cast<double>(h->sum() - sum) / dn / 100.0;
  }
};

PhaseResult RunPhase(const std::string& phase, bool defrag_on,
                     uint64_t seed) {
  // Each phase gets a clean registry so its counters and latency
  // histograms describe this phase alone.
  obs::MetricsRegistry::Default().ResetAll();

  DatabaseOptions o;
  o.page_size = kPage;
  o.pager_frames = 256;
  // Small spaces keep the volume near real utilization: the buddy
  // allocator must place extents into partially-filled spaces instead of
  // carving every request out of one huge contiguous run, which is what
  // lets the free list shatter the way an aged volume's does.
  o.space_pages = 1024;
  o.defrag.enabled = defrag_on;  // live background thread during churn
  o.defrag.interval_ms = 10;
  o.defrag.min_scatter = 1.3;
  o.defrag.max_objects_per_tick = 8;
  o.defrag.max_bytes_per_tick = 64ull << 20;
  auto mem = std::make_unique<MemPageDevice>(kPage, 1);
  MemPageDevice* dev = mem.get();
  auto db = Stack::Unwrap(Database::CreateOnDevice(std::move(mem), o),
                          "create database");

  testing_util::ChurnOptions copt;
  copt.num_objects = 64;
  copt.max_edit_bytes = 16384;  // multi-page inserts cut leaves fastest
  testing_util::ChurnDriver churn(db.get(), seed, copt);
  Stack::Check(churn.SetUp(), "churn setup");

  DiskModel model;
  std::vector<double> read_us;
  PhaseResult res;

  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    // Churn interleaved with foreground read probes (hot objects, 8 KiB
    // ranges) — the latency a live application would see while the
    // defragmenter competes for the writer latch.
    for (uint32_t i = 0; i < copt.ops_per_epoch; ++i) {
      Stack::Check(churn.Step(), "churn step");
      if (i % 4 == 0) {
        const auto& ids = churn.ids();
        size_t hot = std::max<size_t>(1, churn.HotCount());
        uint64_t id = ids[(i / 4) % hot];
        auto t0 = std::chrono::steady_clock::now();
        auto r = db->Read(id, 0, 8192);
        auto t1 = std::chrono::steady_clock::now();
        if (r.ok()) {
          read_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      }
    }

    // Maintenance window: quiesce the background thread and drain the
    // defragmenter deterministically, so the sweep below measures the
    // post-defrag layout (and only it).
    if (defrag_on) {
      db->defragmenter()->Stop();
      DefragReport rep;
      do {
        Stack::Check(db->DefragTick(&rep), "defrag tick");
        res.migrated += rep.migrated;
        res.migrated_bytes += rep.migrated_bytes;
      } while (rep.migrated > 0);
    }

    // Cold-read sweep: every object read in full from a cold cache, its
    // physical I/O priced by the 1992 disk model against the §4 ideal.
    HistProbe conf = HistProbe::Snap(obs::kCostReadRatio);
    double actual_ms = 0.0;
    double model_ms = 0.0;
    double scatter_sum = 0.0;
    size_t scatter_n = 0;
    for (uint64_t id : churn.ids()) {
      LobDescriptor d = Stack::Unwrap(db->GetRoot(id), "root");
      if (d.size() == 0) continue;
      Stack::Check(db->pager()->FlushAll(), "flush");
      Stack::Check(db->pager()->EvictAll(), "evict");
      dev->ForgetHeadPosition();
      dev->ResetStats();
      (void)Stack::Unwrap(db->Read(id, 0, d.size()), "sweep read");
      IoStats io = dev->stats();
      actual_ms += model.seek_ms * io.seeks +
                   model.transfer_ms_per_page * io.pages_read;
      obs::CostEstimate est =
          obs::ExpectedReadCost(db->lob()->CostFacts(d), 0, d.size());
      model_ms += model.seek_ms * est.seeks +
                  model.transfer_ms_per_page * est.transfers();
      LobStats stats = Stack::Unwrap(db->ObjectStats(id), "stats");
      scatter_sum += Defragmenter::ScatterOf(stats, db->lob()->page_size(),
                                             db->lob()->max_segment_pages());
      ++scatter_n;
    }
    double drift = model_ms > 0 ? actual_ms / model_ms : 0.0;
    double conf_mean = conf.MeanSince(obs::kCostReadRatio);
    FragmentationStats frag =
        Stack::Unwrap(db->allocator()->FragStats(), "frag stats");
    double scatter =
        scatter_n > 0 ? scatter_sum / static_cast<double>(scatter_n) : 0.0;

    std::string p = phase + ".epoch" + std::to_string(epoch);
    EmitJsonResult(kBench, p + ".drift", drift);
    EmitJsonResult(kBench, p + ".conf_read", conf_mean);
    EmitJsonResult(kBench, p + ".free_entropy", frag.free_entropy);
    EmitJsonResult(kBench, p + ".object_scatter", scatter);

    if (epoch == 1) res.drift_first = drift;
    res.drift_final = drift;
    res.conf_final = conf_mean;
    res.entropy_final = frag.free_entropy;
    res.scatter_final = scatter;

    if (defrag_on && epoch < kEpochs) db->defragmenter()->Start();
  }

  Stack::Check(churn.VerifyAll(), "oracle verify");
  res.read_p99_us = Percentile(read_us, 0.99);
  return res;
}

int Run() {
  bench::PrintHeader("aging: degrade (defrag off), recover (defrag on)");
  uint64_t seed = 0xA617;
  if (const char* env = std::getenv("EOS_TEST_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  EmitJsonResult(kBench, "seed", static_cast<double>(seed));

  PhaseResult off = RunPhase("off", /*defrag_on=*/false, seed);
  PhaseResult on = RunPhase("on", /*defrag_on=*/true, seed);

  EmitJsonResult(kBench, "drift_off_first", off.drift_first);
  EmitJsonResult(kBench, "drift_off_final", off.drift_final);
  EmitJsonResult(kBench, "drift_on_final", on.drift_final);
  EmitJsonResult(kBench, "conf_read_off_final", off.conf_final);
  EmitJsonResult(kBench, "conf_read_on_final", on.conf_final);
  EmitJsonResult(kBench, "entropy_off_final", off.entropy_final);
  EmitJsonResult(kBench, "entropy_on_final", on.entropy_final);
  EmitJsonResult(kBench, "scatter_off_final", off.scatter_final);
  EmitJsonResult(kBench, "scatter_on_final", on.scatter_final);
  EmitJsonResult(kBench, "objects_migrated",
                 static_cast<double>(on.migrated));
  EmitJsonResult(kBench, "bytes_migrated",
                 static_cast<double>(on.migrated_bytes));
  EmitJsonResult(kBench, "read_p99_us_off", off.read_p99_us);
  EmitJsonResult(kBench, "read_p99_us_on", on.read_p99_us);
  double p99_ratio =
      off.read_p99_us > 0 ? on.read_p99_us / off.read_p99_us : 0.0;
  EmitJsonResult(kBench, "read_p99_ratio", p99_ratio);

  bench::EmitMetricsBlock(kBench);

  // Gates. Drift numbers are modeled I/O, fully deterministic for a seed:
  // the harness must provoke real aging, and the defragmenter must undo it
  // to within the same 1.25x bar the fresh-volume benches hold (PR 6).
  bool ok = true;
  if (off.drift_final < 1.5) {
    std::fprintf(stderr,
                 "aging: churn failed to provoke drift (%.3f < 1.5x)\n",
                 off.drift_final);
    ok = false;
  }
  if (on.drift_final > 1.25) {
    std::fprintf(stderr,
                 "aging: defrag failed to recover drift (%.3f > 1.25x)\n",
                 on.drift_final);
    ok = false;
  }
  if (on.migrated == 0) {
    std::fprintf(stderr, "aging: defragmenter migrated nothing\n");
    ok = false;
  }
  // Foreground latency is wall clock, so the in-bench gate is a gross
  // check only; the committed BENCH_7.json run is held to the 1.2x bar by
  // tools/run_checks.sh.
  if (p99_ratio > 1.5) {
    std::fprintf(stderr,
                 "aging: defrag-on foreground read p99 %.1fx defrag-off\n",
                 p99_ratio);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace eos

int main() { return eos::Run(); }
