// Experiment E6 (Section 4.4): storage utilization vs the segment size
// threshold T. The paper's analytic claim: for segments of T pages the
// per-segment utilization averages 1 - 1/(2T) -> 87% / 97% / 99% for
// T = 4 / 16 / 64, and larger T also shrinks the index.

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void UtilizationVsThreshold() {
  PrintHeader(
      "E6: storage utilization vs threshold T after a mixed edit workload "
      "(4 KB pages, 4 MB object, 400 small inserts/deletes)");
  std::printf("%6s %12s %12s %12s %12s %12s %14s\n", "T", "segments",
              "avg pages", "leaf util", "paper 1-1/2T", "index pages",
              "total util");
  for (uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    LobConfig cfg;
    cfg.threshold_pages = t;
    Stack s = Stack::Make(4096, cfg, 8192);
    Random rng(1234);
    LobDescriptor d =
        Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 4 << 20)),
                      "create");
    EditWorkload(s.lob.get(), &d, &rng, 400, 2000);
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    double paper = 1.0 - 1.0 / (2.0 * t);
    std::printf("%6u %12llu %12.1f %11.1f%% %11.1f%% %12llu %13.1f%%\n", t,
                static_cast<unsigned long long>(st.num_segments),
                st.avg_segment_pages, 100.0 * st.leaf_utilization,
                100.0 * paper,
                static_cast<unsigned long long>(st.index_pages),
                100.0 * st.total_utilization);
    EmitJsonResult("bench_utilization",
                   "leaf_util_T" + std::to_string(t), st.leaf_utilization);
  }
  std::printf(
      "(the measured leaf utilization should track the paper's 1-1/2T "
      "formula and improve monotonically with T)\n");
}

void AppendOnlyUtilization() {
  PrintHeader(
      "E6b: utilization of freshly built objects is ~100% regardless of "
      "how they were built (only the very last page may be partial)");
  std::printf("%24s %12s %12s\n", "build method", "leaf pages", "leaf util");
  Random rng(7);
  {
    Stack s = Stack::Make(4096);
    LobDescriptor d = Stack::Unwrap(
        s.lob->CreateFrom(RandomBytes(&rng, (4 << 20) + 777)), "create");
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    std::printf("%24s %12llu %11.2f%%\n", "size known (one shot)",
                static_cast<unsigned long long>(st.leaf_pages),
                100.0 * st.leaf_utilization);
  }
  {
    Stack s = Stack::Make(4096);
    LobDescriptor d = s.lob->CreateEmpty();
    LobAppender app(s.lob.get(), &d);
    for (int i = 0; i < 1024; ++i) {
      Stack::Check(app.Append(RandomBytes(&rng, 4096 + 3)), "append");
    }
    Stack::Check(app.Finish(), "finish");
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    std::printf("%24s %12llu %11.2f%%\n", "unknown (doubling+trim)",
                static_cast<unsigned long long>(st.leaf_pages),
                100.0 * st.leaf_utilization);
  }
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::UtilizationVsThreshold();
  eos::bench::AppendOnlyUtilization();
  eos::bench::EmitMetricsBlock("bench_utilization");
  return 0;
}
