// Experiment E7 (Section 4.4): without the segment size threshold,
// "a reasonable number of operations evenly distributed over the object
// will deteriorate the physical continuity ... and leaf segments will be
// just 1-page long"; the threshold preserves clustering and scan speed.

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void ClusteringDecay() {
  PrintHeader(
      "E7: clustering decay over an edit timeline (4 KB pages, 2 MB "
      "object; small inserts/deletes uniformly distributed)");
  std::printf("%8s | %22s | %22s | %22s\n", "", "T=1 (no threshold)",
              "T=8", "T=16");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "updates",
              "avg pages", "scan ms", "avg pages", "scan ms", "avg pages",
              "scan ms");
  struct Run {
    Stack s;
    LobDescriptor d;
    Random rng{42};
  };
  std::vector<uint32_t> thresholds = {1, 8, 16};
  std::vector<Run> runs;
  for (uint32_t t : thresholds) {
    LobConfig cfg;
    cfg.threshold_pages = t;
    Run r{Stack::Make(4096, cfg, 8192), {}, Random(42)};
    r.d = Stack::Unwrap(
        r.s.lob->CreateFrom(RandomBytes(&r.rng, 2 << 20)), "create");
    runs.push_back(std::move(r));
  }
  for (int checkpoint = 0; checkpoint <= 1000; checkpoint += 200) {
    std::printf("%8d", checkpoint);
    for (Run& r : runs) {
      LobStats st = Stack::Unwrap(r.s.lob->Stats(r.d), "stats");
      r.s.Cold();
      Bytes out;
      Stack::Check(r.s.lob->Read(r.d, 0, r.d.size(), &out), "scan");
      double ms = r.s.model.EstimateMs(r.s.device->stats());
      std::printf(" | %10.1f %9.0fms", st.avg_segment_pages, ms);
      if (checkpoint < 1000) {
        EditWorkload(r.s.lob.get(), &r.d, &r.rng, 200, 1000);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "(with T=1 the average segment size collapses toward 1 page and the "
      "modeled scan time grows seek-bound; larger T holds both steady)\n");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::ClusteringDecay();
  eos::bench::EmitMetricsBlock("bench_clustering");
  return 0;
}
