// End-to-end wall-clock throughput of the parallel scatter-gather I/O
// engine on a real file-backed volume: sequential and fragmented reads
// (serial vs parallel, checksums off and on), bulk append, scrub, and the
// raw CRC32C kernels. Unlike the cost-model benches (which count seeks and
// transfers on a memory device), this one measures MB/s on FilePageDevice
// so the vectored syscalls, buffer recycling, and hardware checksums show
// up as time.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/crc32c.h"
#include "eos/database.h"
#include "io/io_executor.h"

namespace eos {
namespace bench {
namespace {

constexpr uint64_t kObjectBytes = 16u << 20;  // per-scenario object size
constexpr int kReadIters = 3;                 // best-of to damp noise

// Under EOS_CRC32C=software every metric gains a "swcrc_" prefix, so a
// hardware run and a forced-software run can share one baseline file and
// tools/run_checks.sh can report the end-to-end checksummed-read speedup.
std::string MetricPrefix() {
  return std::string(Crc32cBackend()).find("forced") != std::string::npos
             ? "swcrc_"
             : "";
}

void Emit(const std::string& metric, double value) {
  EmitJsonResult("throughput", MetricPrefix() + metric, value);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double Mbps(uint64_t bytes, double secs) {
  return secs > 0 ? (static_cast<double>(bytes) / (1 << 20)) / secs : 0.0;
}

std::string VolumePath(const std::string& tag) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/eos_bench_" + tag +
         ".vol";
}

struct Volume {
  std::unique_ptr<Database> db;
  uint64_t id = 0;
  uint64_t size = 0;
};

// Creates a file-backed volume holding one object of kObjectBytes.
// `fragmented` caps segments at 8 pages (>= 512 extents for 16 MiB at 4 KiB
// pages); otherwise segments are maximal (well-clustered layout).
Volume MakeVolume(const std::string& tag, bool checksums, bool fragmented) {
  DatabaseOptions opt;
  opt.page_size = 4096;
  opt.checksums = checksums;
  if (fragmented) opt.lob.max_segment_pages = 8;
  Volume v;
  v.db = Stack::Unwrap(Database::Create(VolumePath(tag), opt), "create");
  Random rng(42);
  // Append in 1 MiB chunks through an appender-backed object so creation
  // itself exercises the coalesced write path.
  v.id = Stack::Unwrap(v.db->CreateObject(), "create object");
  Bytes chunk = RandomBytes(&rng, 1u << 20);
  auto t0 = std::chrono::steady_clock::now();
  while (v.size < kObjectBytes) {
    Stack::Check(v.db->Append(v.id, ByteView(chunk)), "append");
    v.size += chunk.size();
  }
  Stack::Check(v.db->Flush(), "flush");
  double secs = SecondsSince(t0);
  Emit(std::string("append_") + (checksums ? "checksum_" : "") +
           (fragmented ? "frag" : "seq") + "_mbps",
       Mbps(v.size, secs));
  return v;
}

// Cold-ish full-object read (pager evicted, head position forgotten; the
// OS page cache stays warm, which is fine for relative comparisons).
double ReadMbps(Volume* v, bool parallel) {
  v->db->lob()->set_io_executor(parallel ? IoExecutor::Default() : nullptr);
  double best = 0;
  for (int i = 0; i < kReadIters; ++i) {
    Stack::Check(v->db->pager()->EvictAll(), "evict");
    v->db->device()->ForgetHeadPosition();
    auto t0 = std::chrono::steady_clock::now();
    auto data = Stack::Unwrap(v->db->Read(v->id, 0, v->size), "read");
    double secs = SecondsSince(t0);
    if (data.size() != v->size) {
      std::fprintf(stderr, "short read: %zu\n", data.size());
      std::abort();
    }
    best = std::max(best, Mbps(v->size, secs));
  }
  v->db->lob()->set_io_executor(nullptr);
  return best;
}

void ReadScenario(const std::string& tag, bool checksums, bool fragmented) {
  Volume v = MakeVolume(tag, checksums, fragmented);
  double serial = ReadMbps(&v, /*parallel=*/false);
  double parallel = ReadMbps(&v, /*parallel=*/true);
  std::string base = std::string(fragmented ? "frag" : "seq") + "_read_" +
                     (checksums ? "checksum_" : "");
  Emit(base + "serial_mbps", serial);
  Emit(base + "parallel_mbps", parallel);
  Emit(base + "speedup", serial > 0 ? parallel / serial : 0.0);
  std::printf("%-28s serial %8.1f MB/s   parallel %8.1f MB/s   (%.2fx)\n",
              (tag + ":").c_str(), serial, parallel,
              serial > 0 ? parallel / serial : 0.0);

  if (checksums) {
    // Scrub: full-volume verified read-back through the device.
    auto t0 = std::chrono::steady_clock::now();
    ScrubReport report;
    Stack::Check(v.db->Scrub(&report), "scrub");
    double secs = SecondsSince(t0);
    if (!report.clean()) {
      std::fprintf(stderr, "scrub found %zu issues\n", report.issues.size());
      std::abort();
    }
    double mbps =
        Mbps(report.pages_verified * v.db->device()->page_size(), secs);
    Emit(std::string(fragmented ? "frag" : "seq") + "_scrub_mbps", mbps);
    std::printf("%-28s scrub  %8.1f MB/s (%llu pages)\n", (tag + ":").c_str(),
                mbps,
                static_cast<unsigned long long>(report.pages_verified));
  }
  v.db.reset();
  std::remove(VolumePath(tag).c_str());
}

void CrcKernels() {
  Bytes buf(8u << 20);
  Random rng(7);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  auto time_kernel = [&](uint32_t (*fn)(uint32_t, const void*, size_t)) {
    // One warmup pass, then the timed sweeps.
    uint32_t acc = fn(Crc32cInit(), buf.data(), buf.size());
    auto t0 = std::chrono::steady_clock::now();
    const int sweeps = 8;
    for (int i = 0; i < sweeps; ++i) {
      acc ^= fn(acc, buf.data(), buf.size());
    }
    double secs = SecondsSince(t0);
    if (acc == 0xDEADBEEF) std::printf(" ");  // defeat dead-code elimination
    return Mbps(uint64_t{sweeps} * buf.size(), secs);
  };
  double dispatched = time_kernel(&Crc32cExtend);
  double software = time_kernel(&Crc32cExtendSoftware);
  Emit("crc32c_dispatched_mbps", dispatched);
  Emit("crc32c_software_mbps", software);
  Emit("crc32c_kernel_speedup", software > 0 ? dispatched / software : 0.0);
  std::printf("crc32c [%s]:               %8.1f MB/s   (slice-by-8 %8.1f "
              "MB/s, %.2fx)\n",
              Crc32cBackend(), dispatched, software,
              software > 0 ? dispatched / software : 0.0);
}

void Main() {
  PrintHeader("I/O throughput on FilePageDevice (parallel engine)");
  std::printf("crc32c backend: %s, io threads: %zu\n", Crc32cBackend(),
              IoExecutor::Default()->threads());
  CrcKernels();
  ReadScenario("seq", /*checksums=*/false, /*fragmented=*/false);
  ReadScenario("seq_crc", /*checksums=*/true, /*fragmented=*/false);
  ReadScenario("frag", /*checksums=*/false, /*fragmented=*/true);
  ReadScenario("frag_crc", /*checksums=*/true, /*fragmented=*/true);
  EmitMetricsBlock("throughput");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::Main();
  return 0;
}
