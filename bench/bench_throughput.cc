// End-to-end wall-clock throughput of the parallel scatter-gather I/O
// engine on a real file-backed volume: sequential and fragmented reads
// (serial vs parallel, checksums off and on), bulk append, scrub, and the
// raw CRC32C kernels. Unlike the cost-model benches (which count seeks and
// transfers on a memory device), this one measures MB/s on FilePageDevice
// so the vectored syscalls, buffer recycling, and hardware checksums show
// up as time.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/extent_cache.h"
#include "common/crc32c.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "io/io_executor.h"
#include "io/page_device.h"

namespace eos {
namespace bench {
namespace {

constexpr uint64_t kObjectBytes = 16u << 20;  // per-scenario object size
constexpr int kReadIters = 3;                 // best-of to damp noise

// Under EOS_CRC32C=software every metric gains a "swcrc_" prefix, so a
// hardware run and a forced-software run can share one baseline file and
// tools/run_checks.sh can report the end-to-end checksummed-read speedup.
std::string MetricPrefix() {
  return std::string(Crc32cBackend()).find("forced") != std::string::npos
             ? "swcrc_"
             : "";
}

void Emit(const std::string& metric, double value) {
  EmitJsonResult("throughput", MetricPrefix() + metric, value);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double Mbps(uint64_t bytes, double secs) {
  return secs > 0 ? (static_cast<double>(bytes) / (1 << 20)) / secs : 0.0;
}

std::string VolumePath(const std::string& tag) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/eos_bench_" + tag +
         ".vol";
}

struct Volume {
  std::unique_ptr<Database> db;
  uint64_t id = 0;
  uint64_t size = 0;
};

// Creates a file-backed volume holding one object of kObjectBytes.
// `fragmented` caps segments at 8 pages (>= 512 extents for 16 MiB at 4 KiB
// pages); otherwise segments are maximal (well-clustered layout).
Volume MakeVolume(const std::string& tag, bool checksums, bool fragmented) {
  DatabaseOptions opt;
  opt.page_size = 4096;
  opt.checksums = checksums;
  if (fragmented) opt.lob.max_segment_pages = 8;
  Volume v;
  v.db = Stack::Unwrap(Database::Create(VolumePath(tag), opt), "create");
  Random rng(42);
  // Append in 1 MiB chunks through an appender-backed object so creation
  // itself exercises the coalesced write path.
  v.id = Stack::Unwrap(v.db->CreateObject(), "create object");
  Bytes chunk = RandomBytes(&rng, 1u << 20);
  auto t0 = std::chrono::steady_clock::now();
  while (v.size < kObjectBytes) {
    Stack::Check(v.db->Append(v.id, ByteView(chunk)), "append");
    v.size += chunk.size();
  }
  Stack::Check(v.db->Flush(), "flush");
  double secs = SecondsSince(t0);
  Emit(std::string("append_") + (checksums ? "checksum_" : "") +
           (fragmented ? "frag" : "seq") + "_mbps",
       Mbps(v.size, secs));
  return v;
}

// Cold-ish full-object read (pager evicted, head position forgotten; the
// OS page cache stays warm, which is fine for relative comparisons).
double ReadMbps(Volume* v, bool parallel) {
  v->db->lob()->set_io_executor(parallel ? IoExecutor::Default() : nullptr);
  double best = 0;
  for (int i = 0; i < kReadIters; ++i) {
    Stack::Check(v->db->pager()->EvictAll(), "evict");
    v->db->device()->ForgetHeadPosition();
    auto t0 = std::chrono::steady_clock::now();
    auto data = Stack::Unwrap(v->db->Read(v->id, 0, v->size), "read");
    double secs = SecondsSince(t0);
    if (data.size() != v->size) {
      std::fprintf(stderr, "short read: %zu\n", data.size());
      std::abort();
    }
    best = std::max(best, Mbps(v->size, secs));
  }
  v->db->lob()->set_io_executor(nullptr);
  return best;
}

void ReadScenario(const std::string& tag, bool checksums, bool fragmented) {
  Volume v = MakeVolume(tag, checksums, fragmented);
  double serial = ReadMbps(&v, /*parallel=*/false);
  double parallel = ReadMbps(&v, /*parallel=*/true);
  std::string base = std::string(fragmented ? "frag" : "seq") + "_read_" +
                     (checksums ? "checksum_" : "");
  Emit(base + "serial_mbps", serial);
  Emit(base + "parallel_mbps", parallel);
  Emit(base + "speedup", serial > 0 ? parallel / serial : 0.0);
  std::printf("%-28s serial %8.1f MB/s   parallel %8.1f MB/s   (%.2fx)\n",
              (tag + ":").c_str(), serial, parallel,
              serial > 0 ? parallel / serial : 0.0);

  if (checksums) {
    // Scrub: full-volume verified read-back through the device.
    auto t0 = std::chrono::steady_clock::now();
    ScrubReport report;
    Stack::Check(v.db->Scrub(&report), "scrub");
    double secs = SecondsSince(t0);
    if (!report.clean()) {
      std::fprintf(stderr, "scrub found %zu issues\n", report.issues.size());
      std::abort();
    }
    double mbps =
        Mbps(report.pages_verified * v.db->device()->page_size(), secs);
    Emit(std::string(fragmented ? "frag" : "seq") + "_scrub_mbps", mbps);
    std::printf("%-28s scrub  %8.1f MB/s (%llu pages)\n", (tag + ":").c_str(),
                mbps,
                static_cast<unsigned long long>(report.pages_verified));
  }
  v.db.reset();
  std::remove(VolumePath(tag).c_str());
}

void CrcKernels() {
  Bytes buf(8u << 20);
  Random rng(7);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  auto time_kernel = [&](uint32_t (*fn)(uint32_t, const void*, size_t)) {
    // One warmup pass, then the timed sweeps.
    uint32_t acc = fn(Crc32cInit(), buf.data(), buf.size());
    auto t0 = std::chrono::steady_clock::now();
    const int sweeps = 8;
    for (int i = 0; i < sweeps; ++i) {
      acc ^= fn(acc, buf.data(), buf.size());
    }
    double secs = SecondsSince(t0);
    if (acc == 0xDEADBEEF) std::printf(" ");  // defeat dead-code elimination
    return Mbps(uint64_t{sweeps} * buf.size(), secs);
  };
  double dispatched = time_kernel(&Crc32cExtend);
  double software = time_kernel(&Crc32cExtendSoftware);
  Emit("crc32c_dispatched_mbps", dispatched);
  Emit("crc32c_software_mbps", software);
  Emit("crc32c_kernel_speedup", software > 0 ? dispatched / software : 0.0);
  std::printf("crc32c [%s]:               %8.1f MB/s   (slice-by-8 %8.1f "
              "MB/s, %.2fx)\n",
              Crc32cBackend(), dispatched, software,
              software > 0 ? dispatched / software : 0.0);
}

// ----- Zipfian hot-key read mix (extent cache, DESIGN.md §14) ----------------
//
// A population of small objects on a checksummed fragmented file-backed
// volume, read with Zipf(0.99)-skewed partial reads — the hot-object
// workload the DRAM cache tier exists for. The volume sits behind a
// ChaosPageDevice injecting a fixed per-call read latency: the OS page
// cache would otherwise serve every "device" read from DRAM and hide
// exactly the cost the tier removes, so the bench models the storage a
// deployment actually has (a fast NVMe-class device) instead of the
// benchmark artifact. The same volume is reopened cache-off, cache-on
// (compression on) and cache-on (compression off); tools/run_checks.sh
// gates on the committed BENCH_9.json numbers: hot-set speedup >= 3x, hit
// rate >= 80%, cold-set (uniform, mostly-miss) within 10% of cache-off,
// and foreground p99 flat.

constexpr uint32_t kZipfObjects = 192;
constexpr uint64_t kZipfObjectBytes = 96u << 10;
constexpr double kZipfSkew = 0.99;
constexpr size_t kZipfCacheBytes = 8u << 20;
constexpr uint64_t kZipfReadBytes = 4096;
constexpr uint64_t kZipfDeviceReadUs = 20;  // injected per-call read latency
constexpr int kZipfWarmOps = 6000;
constexpr int kZipfHotOps = 16000;
constexpr int kZipfColdOps = 6000;

// Rank-indexed cumulative Zipf(s) distribution; Sample() maps a uniform
// draw to a rank, and a fixed coprime stride scatters ranks over object
// slots so popularity is uncorrelated with allocation order.
class ZipfPicker {
 public:
  ZipfPicker(uint32_t n, double s) : cdf_(n) {
    double sum = 0;
    for (uint32_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  uint32_t Sample(Random* rng) const {
    double u =
        static_cast<double>(rng->Next() % (1u << 30)) / (1u << 30);
    uint32_t rank = static_cast<uint32_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return (rank * 73u + 17u) % static_cast<uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;
};

// Mildly compressible payload (value runs with seeded switches), the shape
// the probation-compression scenario is about.
Bytes RunStructuredBytes(Random* rng, size_t n) {
  Bytes b(n);
  uint8_t v = static_cast<uint8_t>(rng->Next());
  for (size_t i = 0; i < n; ++i) {
    if (rng->OneIn(19)) v = static_cast<uint8_t>(rng->Next());
    b[i] = v;
  }
  return b;
}

struct ZipfPhase {
  double kops = 0;    // thousand reads per second
  double p99_us = 0;  // per-read latency tail
};

ZipfPhase RunZipfReads(Database* db, const std::vector<uint64_t>& ids,
                       const ZipfPicker* zipf, int ops, uint64_t seed) {
  Random rng(seed);
  std::vector<double> lat_us;
  lat_us.reserve(ops);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    uint64_t id = zipf != nullptr
                      ? ids[zipf->Sample(&rng)]
                      : ids[rng.Next() % ids.size()];
    uint64_t off = rng.Uniform(kZipfObjectBytes - kZipfReadBytes);
    auto op0 = std::chrono::steady_clock::now();
    auto data = Stack::Unwrap(db->Read(id, off, kZipfReadBytes), "zipf read");
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - op0)
            .count());
    if (data.size() != kZipfReadBytes) {
      std::fprintf(stderr, "zipf short read: %zu\n", data.size());
      std::abort();
    }
  }
  double secs = SecondsSince(t0);
  ZipfPhase r;
  r.kops = secs > 0 ? ops / secs / 1000.0 : 0.0;
  std::sort(lat_us.begin(), lat_us.end());
  r.p99_us = lat_us[static_cast<size_t>(lat_us.size() * 0.99)];
  return r;
}

struct ZipfRun {
  ZipfPhase hot;
  ZipfPhase cold;
  double hit_rate = 0;           // timed hot phase, percent
  double compression_ratio = 1;  // logical/resident at end of hot phase
};

ZipfRun RunZipfConfig(const std::string& path, size_t cache_bytes,
                      bool compression, const std::vector<uint64_t>& ids,
                      const ZipfPicker& zipf) {
  DatabaseOptions opt;
  opt.page_size = 4096;
  opt.checksums = true;
  opt.lob.max_segment_pages = 8;
  opt.cache_bytes = cache_bytes;
  opt.cache_compression = compression;
  auto file = Stack::Unwrap(FilePageDevice::Open(path, opt.page_size),
                            "zipf device");
  auto chaos = std::make_unique<ChaosPageDevice>(std::move(file));
  ChaosPageDevice* dev = chaos.get();
  auto db =
      Stack::Unwrap(Database::OpenOnDevice(std::move(chaos), opt), "zipf open");
  // Arm the device-latency model only after open: superblock/directory
  // loading is not part of the measured read path.
  dev->InjectLatency(kZipfDeviceReadUs, /*write_us=*/0);

  ZipfRun run;
  // Warmup: builds the admission sketch and fills the hot set (no-op for
  // the cache-off baseline beyond OS/pager warmup).
  (void)RunZipfReads(db.get(), ids, &zipf, kZipfWarmOps, /*seed=*/101);
  ExtentCache::Stats before;
  if (db->extent_cache() != nullptr) before = db->extent_cache()->GetStats();
  run.hot = RunZipfReads(db.get(), ids, &zipf, kZipfHotOps, /*seed=*/202);
  if (db->extent_cache() != nullptr) {
    ExtentCache::Stats after = db->extent_cache()->GetStats();
    uint64_t hits = after.hits - before.hits;
    uint64_t lookups = hits + after.misses - before.misses;
    run.hit_rate = lookups > 0 ? 100.0 * hits / lookups : 0.0;
    if (after.resident_bytes > 0) {
      run.compression_ratio = static_cast<double>(after.logical_bytes) /
                              static_cast<double>(after.resident_bytes);
    }
    // The cold phase measures the mostly-miss path, not a warm cache.
    db->extent_cache()->Clear();
  }
  run.cold = RunZipfReads(db.get(), ids, /*zipf=*/nullptr, kZipfColdOps,
                          /*seed=*/303);
  return run;
}

void ZipfScenario() {
  const std::string path = VolumePath("zipf");
  std::vector<uint64_t> ids;
  {
    DatabaseOptions opt;
    opt.page_size = 4096;
    opt.checksums = true;
    opt.lob.max_segment_pages = 8;
    auto db = Stack::Unwrap(Database::Create(path, opt), "zipf create");
    Random rng(4242);
    // Interleaved appends fragment every object's layout, so a cache miss
    // pays the scattered-extent read path the cache is hiding.
    for (uint32_t i = 0; i < kZipfObjects; ++i) {
      ids.push_back(Stack::Unwrap(db->CreateObject(), "zipf object"));
    }
    for (uint64_t grown = 0; grown < kZipfObjectBytes;
         grown += 16u << 10) {
      for (uint64_t id : ids) {
        Bytes chunk = RunStructuredBytes(&rng, 16u << 10);
        Stack::Check(db->Append(id, ByteView(chunk)), "zipf append");
      }
    }
    Stack::Check(db->Flush(), "zipf flush");
  }

  ZipfRun off = RunZipfConfig(path, 0, false, ids, ZipfPicker(kZipfObjects,
                                                              kZipfSkew));
  ZipfRun on = RunZipfConfig(path, kZipfCacheBytes, true, ids,
                             ZipfPicker(kZipfObjects, kZipfSkew));
  ZipfRun on_nc = RunZipfConfig(path, kZipfCacheBytes, false, ids,
                                ZipfPicker(kZipfObjects, kZipfSkew));
  std::remove(path.c_str());

  Emit("zipf_hot_cacheoff_kops", off.hot.kops);
  Emit("zipf_hot_cacheon_kops", on.hot.kops);
  Emit("zipf_hot_cacheon_nocomp_kops", on_nc.hot.kops);
  double speedup = off.hot.kops > 0 ? on.hot.kops / off.hot.kops : 0.0;
  double speedup_nc = off.hot.kops > 0 ? on_nc.hot.kops / off.hot.kops : 0.0;
  Emit("zipf_hot_speedup", speedup);
  Emit("zipf_hot_speedup_nocomp", speedup_nc);
  Emit("zipf_hit_rate", on.hit_rate);
  Emit("zipf_hit_rate_nocomp", on_nc.hit_rate);
  Emit("zipf_compression_ratio", on.compression_ratio);
  Emit("zipf_cold_cacheoff_kops", off.cold.kops);
  Emit("zipf_cold_cacheon_kops", on.cold.kops);
  Emit("zipf_cold_ratio",
       off.cold.kops > 0 ? on.cold.kops / off.cold.kops : 0.0);
  Emit("zipf_hot_p99_ratio",
       off.hot.p99_us > 0 ? on.hot.p99_us / off.hot.p99_us : 0.0);
  std::printf("zipf(%.2f) hot 4K reads:       off %7.1f kops/s   on %7.1f "
              "kops/s   (%.2fx, hit %.1f%%, packed %.2fx)\n",
              kZipfSkew, off.hot.kops, on.hot.kops, speedup, on.hit_rate,
              on.compression_ratio);
  std::printf("zipf uniform cold 4K reads:   off %7.1f kops/s   on %7.1f "
              "kops/s   (%.2fx)   p99 %.1f -> %.1f us\n",
              off.cold.kops, on.cold.kops,
              off.cold.kops > 0 ? on.cold.kops / off.cold.kops : 0.0,
              off.hot.p99_us, on.hot.p99_us);
}

void Main() {
  PrintHeader("I/O throughput on FilePageDevice (parallel engine)");
  std::printf("crc32c backend: %s, io threads: %zu\n", Crc32cBackend(),
              IoExecutor::Default()->threads());
  CrcKernels();
  ReadScenario("seq", /*checksums=*/false, /*fragmented=*/false);
  ReadScenario("seq_crc", /*checksums=*/true, /*fragmented=*/false);
  ReadScenario("frag", /*checksums=*/false, /*fragmented=*/true);
  ReadScenario("frag_crc", /*checksums=*/true, /*fragmented=*/true);
  ZipfScenario();
  EmitMetricsBlock("throughput");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::Main();
  return 0;
}
