// Experiment B10 (DESIGN.md §15): what the multi-volume layer costs and
// buys. Two questions:
//
//   * Scrub: with parallel_io on a 3-member mirrored set, Scrub fans the
//     per-object walk out across the members. With per-page device latency
//     injected (so the run is IO-bound like a real disk array), the
//     parallel pass should beat the serial one by well over the gate's
//     1.3x.
//   * Degraded reads: with 1 of 3 members offline, every read of a chunk
//     whose primary copy is on the dead member fails over to the replica.
//     Throughput must stay in the same ballpark as the healthy set — the
//     failover path marks the member offline after its first failure and
//     skips it thereafter, so the tax is one probe every few dozen reads,
//     not one failed attempt per read.
//
// Emits one {"bench":"volumes","metric":...,"value":...} line per result;
// tools/run_checks.sh gates the committed BENCH_10.json on
// scrub_parallel_speedup and degraded_read_ratio.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "io/volume_set.h"

namespace eos {
namespace bench {
namespace {

constexpr uint32_t kPage = 512;
constexpr int kMembers = 3;
constexpr int kObjects = 24;
constexpr uint64_t kObjectBytes = 32u << 10;
// Per-page read latency injected into every member, so both experiments
// measure an IO-bound stack rather than memcpy.
constexpr uint32_t kReadLatencyUs = 20;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct SetStack {
  std::unique_ptr<Database> db;
  std::vector<ChaosPageDevice*> chaos;
  std::vector<uint64_t> ids;
};

SetStack MakeSet(bool parallel_io, uint64_t seed) {
  SetStack s;
  std::vector<std::unique_ptr<PageDevice>> members;
  for (int i = 0; i < kMembers; ++i) {
    auto chaos = std::make_unique<ChaosPageDevice>(
        std::make_unique<MemPageDevice>(kPage, 0), seed + i);
    s.chaos.push_back(chaos.get());
    members.push_back(std::move(chaos));
  }
  DatabaseOptions opt;
  opt.page_size = kPage;
  // Small pager so reads actually reach the devices instead of the cache,
  // and small buddy spaces so chunks stripe finely across the members.
  opt.pager_frames = 32;
  opt.space_pages = 32;
  opt.parallel_io = parallel_io;
  s.db = Stack::Unwrap(Database::CreateOnVolumeSet(std::move(members),
                                                   VolumeSetOptions{}, opt),
                       "create volume set");
  Random rng(seed);
  for (int i = 0; i < kObjects; ++i) {
    Bytes payload = RandomBytes(&rng, kObjectBytes);
    s.ids.push_back(Stack::Unwrap(s.db->CreateObjectFrom(payload),
                                  "create object"));
  }
  Stack::Check(s.db->Flush(), "flush");
  // Populate ran at memory speed; the measured phases pay per-page IO.
  for (ChaosPageDevice* c : s.chaos) {
    c->InjectLatency(kReadLatencyUs, 0, 0);
  }
  return s;
}

double TimeScrubMs(Database* db) {
  auto t0 = std::chrono::steady_clock::now();
  ScrubReport rep;
  Stack::Check(db->Scrub(&rep), "scrub");
  if (!rep.clean()) {
    std::fprintf(stderr, "scrub reported %zu issue(s)\n", rep.issues.size());
    std::exit(1);
  }
  return MsSince(t0);
}

// Reads every object end to end; returns MB/s of payload delivered.
double ReadAllMbps(Database* db, const std::vector<uint64_t>& ids) {
  auto t0 = std::chrono::steady_clock::now();
  uint64_t bytes = 0;
  for (uint64_t id : ids) {
    uint64_t size = Stack::Unwrap(db->Size(id), "size");
    Bytes data = Stack::Unwrap(db->Read(id, 0, size), "read");
    bytes += data.size();
  }
  double ms = MsSince(t0);
  return static_cast<double>(bytes) / (1u << 20) / (ms / 1000.0);
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  using namespace eos;
  using namespace eos::bench;

  PrintHeader("B10: parallel per-volume scrub");
  SetStack serial = MakeSet(/*parallel_io=*/false, 4242);
  SetStack parallel = MakeSet(/*parallel_io=*/true, 4242);
  double serial_ms = TimeScrubMs(serial.db.get());
  double parallel_ms = TimeScrubMs(parallel.db.get());
  double speedup = serial_ms / parallel_ms;
  std::printf("scrub over %d objects x %llu KB on %d mirrored members "
              "(%u us/page read latency):\n  serial   %8.2f ms\n"
              "  parallel %8.2f ms  (%.2fx)\n",
              kObjects, (unsigned long long)(kObjectBytes >> 10), kMembers,
              kReadLatencyUs, serial_ms, parallel_ms, speedup);
  EmitJsonResult("volumes", "scrub_serial_ms", serial_ms);
  EmitJsonResult("volumes", "scrub_parallel_ms", parallel_ms);
  EmitJsonResult("volumes", "scrub_parallel_speedup", speedup);

  PrintHeader("B10: degraded-mode read throughput (1 of 3 offline)");
  double healthy = ReadAllMbps(parallel.db.get(), parallel.ids);
  parallel.chaos[1]->SetOffline(true);
  double degraded = ReadAllMbps(parallel.db.get(), parallel.ids);
  double ratio = degraded / healthy;
  VolumeSetDevice* set = parallel.db->volume_set();
  std::printf("  healthy  %8.2f MB/s\n  degraded %8.2f MB/s  (%.2fx, "
              "%llu failover reads)\n",
              healthy, degraded, ratio,
              (unsigned long long)set->failover_reads());
  EmitJsonResult("volumes", "read_healthy_mbps", healthy);
  EmitJsonResult("volumes", "read_degraded_mbps", degraded);
  EmitJsonResult("volumes", "degraded_read_ratio", ratio);
  EmitJsonResult("volumes", "failover_reads", (double)set->failover_reads());
  EmitMetricsBlock("volumes");
  return 0;
}
