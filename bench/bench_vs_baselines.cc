// Experiment E10 (Section 2 / [Bili91b]): EOS vs the Exodus large object
// manager and the Starburst long field manager on the same simulated disk.
// Expected shape:
//   * Starburst reads superbly but its length-changing updates copy every
//     byte right of the edit point — cost grows with object size.
//   * Exodus with small leaves updates cheaply but scans seek-bound; with
//     big leaves it scans well but wastes space after splits.
//   * EOS matches the best of both: near-transfer-rate scans, ~100%
//     utilization, and update cost independent of object size.

#include <cstdio>

#include "baselines/exodus/exodus_manager.h"
#include "baselines/starburst/starburst_manager.h"
#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

struct Row {
  const char* name;
  double scan_ms;
  double rand_ms;
  double edit_ms;
  double front_ins_ms;
  double util;
};

constexpr uint64_t kObjectBytes = 4 << 20;
constexpr int kRandReads = 32;
constexpr int kEdits = 50;

template <typename Mgr, typename Desc>
Row Measure(const char* name, Stack& s, Mgr* mgr, Desc* d, Random* rng,
            double util) {
  Row row{name, 0, 0, 0, 0, util};
  Bytes out;
  // Sequential scan.
  s.Cold();
  Stack::Check(mgr->Read(*d, 0, kObjectBytes * 2, &out), "scan");
  row.scan_ms = s.model.EstimateMs(s.device->stats());
  // Random 16 KB reads.
  for (int i = 0; i < kRandReads; ++i) {
    s.Cold();
    uint64_t off = rng->Uniform(kObjectBytes - 16384);
    Stack::Check(mgr->Read(*d, off, 16384, &out), "rand");
    row.rand_ms += s.model.EstimateMs(s.device->stats());
  }
  row.rand_ms /= kRandReads;
  // Small inserts at random offsets.
  for (int i = 0; i < kEdits; ++i) {
    Bytes data = RandomBytes(rng, 200);
    uint64_t off = rng->Uniform(kObjectBytes);
    s.Cold();
    Stack::Check(mgr->Insert(d, off, data), "insert");
    row.edit_ms += s.model.EstimateMs(s.device->stats());
  }
  row.edit_ms /= kEdits;
  // Insert near the front (Starburst's worst case).
  {
    Bytes data = RandomBytes(rng, 200);
    s.Cold();
    Stack::Check(mgr->Insert(d, 4096, data), "front insert");
    row.front_ins_ms = s.model.EstimateMs(s.device->stats());
  }
  return row;
}

void Compare() {
  PrintHeader(
      "E10: EOS vs Exodus vs Starburst (4 KB pages, 4 MB object, modeled "
      "1992 disk; ms per operation)");
  std::printf("%26s %10s %10s %12s %13s %10s\n", "system", "scan",
              "rand 16K", "small ins", "front ins", "util");
  std::vector<Row> rows;
  {
    LobConfig cfg;
    cfg.threshold_pages = 8;
    Stack s = Stack::Make(4096, cfg, 8192);
    Random rng(1);
    LobDescriptor d = Stack::Unwrap(
        s.lob->CreateFrom(RandomBytes(&rng, kObjectBytes)), "create");
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    rows.push_back(Measure("EOS (T=8)", s, s.lob.get(), &d, &rng,
                           st.leaf_utilization));
    st = Stack::Unwrap(s.lob->Stats(d), "stats");
    rows.back().util = st.leaf_utilization;
  }
  for (uint32_t leaf : {1u, 16u}) {
    Stack s = Stack::Make(4096, LobConfig{}, 8192);
    Random rng(1);
    ExodusConfig cfg;
    cfg.leaf_pages = leaf;
    ExodusManager mgr(s.pager.get(), s.allocator.get(), cfg);
    LobDescriptor d =
        Stack::Unwrap(mgr.CreateFrom(RandomBytes(&rng, kObjectBytes)),
                      "create");
    static char name[2][32];
    std::snprintf(name[leaf == 1 ? 0 : 1], 32, "Exodus (%u-page leaves)",
                  leaf);
    Row r = Measure(name[leaf == 1 ? 0 : 1], s, &mgr, &d, &rng, 0);
    LobStats st = Stack::Unwrap(mgr.Stats(d), "stats");
    r.util = st.leaf_utilization;
    rows.push_back(r);
  }
  {
    Stack s = Stack::Make(4096, LobConfig{}, 8192);
    Random rng(1);
    StarburstManager mgr(s.allocator.get(), s.device.get());
    StarburstDescriptor d = Stack::Unwrap(
        mgr.CreateFrom(RandomBytes(&rng, kObjectBytes)), "create");
    Row r = Measure("Starburst", s, &mgr, &d, &rng, 0);
    LobStats st = Stack::Unwrap(mgr.Stats(d), "stats");
    r.util = st.leaf_utilization;
    rows.push_back(r);
  }
  for (const Row& r : rows) {
    std::printf("%26s %9.0f %10.1f %12.1f %13.1f %9.1f%%\n", r.name,
                r.scan_ms, r.rand_ms, r.edit_ms, r.front_ins_ms,
                100.0 * r.util);
  }
  std::printf(
      "(who wins: EOS scans ~like Starburst, edits ~like small-leaf "
      "Exodus; Starburst's front insert costs the whole object; Exodus "
      "picks one side of the tradeoff per leaf size)\n");
}

void StarburstInsertScaling() {
  PrintHeader(
      "E10b: Starburst insert cost grows with the bytes right of the edit "
      "(EOS stays flat)");
  std::printf("%14s %18s %18s\n", "object MB", "starburst ins ms",
              "eos ins ms");
  for (uint64_t mb : {1u, 2u, 4u, 8u}) {
    Random rng(2);
    Bytes payload = RandomBytes(&rng, 200);
    double sb_ms, eos_ms;
    {
      Stack s = Stack::Make(4096, LobConfig{}, 8192);
      StarburstManager mgr(s.allocator.get(), s.device.get());
      StarburstDescriptor d = Stack::Unwrap(
          mgr.CreateFrom(RandomBytes(&rng, mb << 20)), "create");
      s.Cold();
      Stack::Check(mgr.Insert(&d, 4096, payload), "insert");
      sb_ms = s.model.EstimateMs(s.device->stats());
    }
    {
      LobConfig cfg;
      cfg.threshold_pages = 8;
      Stack s = Stack::Make(4096, cfg, 8192);
      LobDescriptor d = Stack::Unwrap(
          s.lob->CreateFrom(RandomBytes(&rng, mb << 20)), "create");
      s.Cold();
      Stack::Check(s.lob->Insert(&d, 4096, payload), "insert");
      eos_ms = s.model.EstimateMs(s.device->stats());
    }
    std::printf("%14llu %17.0f %18.1f\n",
                static_cast<unsigned long long>(mb), sb_ms, eos_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::Compare();
  eos::bench::StarburstInsertScaling();
  eos::bench::EmitMetricsBlock("bench_vs_baselines");
  return 0;
}
