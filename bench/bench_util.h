#ifndef EOS_BENCH_BENCH_UTIL_H_
#define EOS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "buddy/geometry.h"
#include "buddy/segment_allocator.h"
#include "common/random.h"
#include "io/page_device.h"
#include "io/pager.h"
#include "lob/lob_manager.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {
namespace bench {

// In-memory storage stack used by every bench; the seek/transfer counters
// and the 1992 disk model translate counts to modeled milliseconds.
struct Stack {
  std::unique_ptr<MemPageDevice> device;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<SegmentAllocator> allocator;
  std::unique_ptr<LobManager> lob;
  DiskModel model;

  static Stack Make(uint32_t page_size, const LobConfig& lob_config = {},
                    uint32_t space_pages = 0, size_t pager_frames = 256) {
    Stack s;
    auto geo = BuddyGeometry::Make(page_size, space_pages);
    if (!geo.ok()) {
      std::fprintf(stderr, "geometry: %s\n", geo.status().ToString().c_str());
      std::abort();
    }
    s.device = std::make_unique<MemPageDevice>(page_size,
                                               1 + geo->space_pages + 1);
    s.pager = std::make_unique<Pager>(s.device.get(), pager_frames);
    SegmentAllocator::Options opt;
    opt.initial_spaces = 1;
    opt.auto_grow = true;
    auto alloc = SegmentAllocator::Format(s.pager.get(), *geo, 1, opt);
    if (!alloc.ok()) {
      std::fprintf(stderr, "alloc: %s\n", alloc.status().ToString().c_str());
      std::abort();
    }
    s.allocator = std::move(alloc).value();
    s.lob = std::make_unique<LobManager>(s.pager.get(), s.allocator.get(),
                                         lob_config);
    return s;
  }

  // Makes the next operation cold: index cache dropped, head position lost.
  void Cold() {
    Status st = pager->FlushAll();
    Check(st, "flush");
    st = pager->EvictAll();
    Check(st, "evict");
    device->ForgetHeadPosition();
    device->ResetStats();
  }

  IoStats Take() {
    IoStats s2 = device->stats();
    device->ResetStats();
    return s2;
  }

  static void Check(const Status& s, const char* what) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
      std::abort();
    }
  }
  template <typename T>
  static T Unwrap(StatusOr<T> v, const char* what) {
    if (!v.ok()) {
      std::fprintf(stderr, "%s: %s\n", what, v.status().ToString().c_str());
      std::abort();
    }
    return std::move(v).value();
  }
};

inline Bytes RandomBytes(Random* rng, size_t n) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) b[i] = static_cast<uint8_t>(rng->Next());
  return b;
}

// Applies `ops` small inserts/deletes uniformly over the object, keeping
// its size roughly constant — the clustering-decay workload of Section 4.4.
inline void EditWorkload(LobManager* lob, LobDescriptor* d, Random* rng,
                         int ops, uint64_t max_edit_bytes) {
  for (int i = 0; i < ops; ++i) {
    uint64_t size = d->size();
    if (size < max_edit_bytes * 2 || rng->OneIn(2)) {
      Bytes data = RandomBytes(rng, rng->Range(1, max_edit_bytes));
      uint64_t off = rng->Uniform(size + 1);
      Stack::Check(lob->Insert(d, off, data), "insert");
    } else {
      uint64_t off = rng->Uniform(size);
      uint64_t n = std::min<uint64_t>(rng->Range(1, max_edit_bytes),
                                      size - off);
      Stack::Check(lob->Delete(d, off, n), "delete");
    }
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// One machine-readable result per line, greppable out of the human report:
//   {"bench":"...","metric":"...","value":...}
inline void EmitJsonResult(const std::string& bench, const std::string& metric,
                           double value) {
  obs::JsonValue o = obs::JsonValue::Object();
  o.Set("bench", obs::JsonValue::Str(bench));
  o.Set("metric", obs::JsonValue::Str(metric));
  o.Set("value", obs::JsonValue::Number(value));
  std::printf("%s\n", o.Dump().c_str());
}

// Whole-process metrics dump, emitted once at the end of each bench main:
//   {"bench":"...","metrics":{"counters":...,"gauges":...,"histograms":...}}
inline void EmitMetricsBlock(const std::string& bench) {
  obs::JsonValue o = obs::JsonValue::Object();
  o.Set("bench", obs::JsonValue::Str(bench));
  o.Set("metrics", obs::MetricsRegistry::Default().ToJsonValue());
  std::printf("%s\n", o.Dump().c_str());
}

// Mean measured/predicted transfer ratio for one cost.* conformance
// histogram (DESIGN.md §6); ratios are recorded as percent. Returns 0
// when no operation of that kind has been compared yet.
inline double CostConformanceMean(const char* metric) {
  const obs::Histogram* h = obs::MetricsRegistry::Default().histogram(metric);
  return h->count() == 0 ? 0.0 : h->mean() / 100.0;
}

// Machine-readable predicted-vs-actual summary, one line per bench run:
//   {"bench":"...","cost_conformance":{"read":{"mean_ratio":...,"ops":...},
//    ...,"model_pages":...,"actual_pages":...}}
inline void EmitCostConformanceBlock(const std::string& bench) {
  static constexpr struct {
    const char* key;
    const char* metric;
  } kOps[] = {{"read", obs::kCostReadRatio},
              {"insert", obs::kCostInsertRatio},
              {"append", obs::kCostAppendRatio},
              {"delete", obs::kCostDeleteRatio}};
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::JsonValue conf = obs::JsonValue::Object();
  for (const auto& op : kOps) {
    const obs::Histogram* h = reg.histogram(op.metric);
    if (h->count() == 0) continue;
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("mean_ratio", obs::JsonValue::Number(h->mean() / 100.0));
    entry.Set("p99_ratio",
              obs::JsonValue::Number(
                  static_cast<double>(h->Percentile(0.99)) / 100.0));
    entry.Set("ops", obs::JsonValue::Number(
                         static_cast<double>(h->count())));
    conf.Set(op.key, std::move(entry));
  }
  conf.Set("model_pages",
           obs::JsonValue::Number(static_cast<double>(
               reg.histogram(obs::kCostModelPages)->sum())));
  conf.Set("actual_pages",
           obs::JsonValue::Number(static_cast<double>(
               reg.histogram(obs::kCostActualPages)->sum())));
  obs::JsonValue o = obs::JsonValue::Object();
  o.Set("bench", obs::JsonValue::Str(bench));
  o.Set("cost_conformance", std::move(conf));
  std::printf("%s\n", o.Dump().c_str());
}

// Regression gate for fresh-volume runs: the model deliberately ignores
// caching, so on an unfragmented volume the measured mean must stay within
// `max_ratio` (default 1.25x) of prediction. Aborts the bench otherwise.
inline void AssertCostConformance(const std::string& bench, const char* key,
                                  const char* metric,
                                  double max_ratio = 1.25) {
  double mean = CostConformanceMean(metric);
  EmitJsonResult(bench, std::string("conformance_") + key + "_mean_ratio",
                 mean);
  if (mean > max_ratio) {
    std::fprintf(stderr,
                 "%s: %s cost conformance %.3f exceeds %.2fx of the paper "
                 "model on a fresh volume\n",
                 bench.c_str(), key, mean, max_ratio);
    std::abort();
  }
}

}  // namespace bench
}  // namespace eos

#endif  // EOS_BENCH_BENCH_UTIL_H_
