// Experiment E11 ([Bili91a] extension): fixed T vs fan-out-adaptive T.
// The adaptive policy raises the effective threshold as the parent index
// node fills and compacts runs of adjacent unsafe segments when the parent
// would otherwise split, trading update work for a smaller, shallower tree.

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void Ablation() {
  PrintHeader(
      "E11: fixed vs adaptive threshold after a heavy edit workload "
      "(4 KB pages, 4 MB object, 1500 small edits)");
  std::printf("%18s %10s %12s %12s %10s %12s\n", "policy", "segments",
              "index pages", "tree depth", "scan ms", "edit ms/op");
  for (int adaptive = 0; adaptive <= 1; ++adaptive) {
    for (uint32_t t : {4u, 8u}) {
      LobConfig cfg;
      cfg.threshold_pages = t;
      cfg.adaptive_threshold = adaptive != 0;
      // Small root so index pressure (the trigger for the adaptive policy)
      // actually materializes at this object size.
      cfg.max_root_bytes = 8 + 16 * 16 + 8;
      Stack s = Stack::Make(4096, cfg, 8192);
      Random rng(11);
      LobDescriptor d = Stack::Unwrap(
          s.lob->CreateFrom(RandomBytes(&rng, 4 << 20)), "create");
      double edit_ms = 0;
      const int kEdits = 1500;
      for (int i = 0; i < kEdits; ++i) {
        s.Cold();
        if (rng.OneIn(2)) {
          Bytes data = RandomBytes(&rng, rng.Range(1, 800));
          Stack::Check(s.lob->Insert(&d, rng.Uniform(d.size()), data),
                       "insert");
        } else {
          uint64_t off = rng.Uniform(d.size() - 900);
          Stack::Check(s.lob->Delete(&d, off, rng.Range(1, 800)), "delete");
        }
        edit_ms += s.model.EstimateMs(s.device->stats());
      }
      LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
      s.Cold();
      Bytes out;
      Stack::Check(s.lob->Read(d, 0, d.size(), &out), "scan");
      double scan_ms = s.model.EstimateMs(s.device->stats());
      char label[32];
      std::snprintf(label, sizeof(label), "%s T=%u",
                    adaptive ? "adaptive" : "fixed", t);
      std::printf("%18s %10llu %12llu %12u %9.0f %12.1f\n", label,
                  static_cast<unsigned long long>(st.num_segments),
                  static_cast<unsigned long long>(st.index_pages), st.depth,
                  scan_ms, edit_ms / kEdits);
    }
  }
  std::printf(
      "(the adaptive policy should hold the index smaller/shallower than "
      "fixed T at equal base threshold, at a modest edit-cost premium)\n");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::Ablation();
  eos::bench::EmitMetricsBlock("bench_adaptive_threshold");
  return 0;
}
