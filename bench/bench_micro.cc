// Google-benchmark microbenchmarks of the CPU-bound building blocks:
// buddy allocation arithmetic, allocation-map scans, node serialization,
// the reshuffle planner, and end-to-end LOB operations on the in-memory
// device.

#include <benchmark/benchmark.h>

#include <optional>

#include "bench/bench_util.h"
#include "lob/node.h"
#include "lob/reshuffle.h"
#include "lob/walker.h"

namespace eos {
namespace bench {
namespace {

void BM_BuddyAllocFree(benchmark::State& state) {
  Stack s = Stack::Make(4096, LobConfig{}, 8192, 64);
  uint32_t pages = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Extent e = Stack::Unwrap(s.allocator->Allocate(pages), "alloc");
    benchmark::DoNotOptimize(e);
    Stack::Check(s.allocator->Free(e), "free");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuddyAllocFree)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_AllocMapSkipScan(benchmark::State& state) {
  // A fragmented space: alternating allocated/free small segments, one
  // free 8-segment near the end.
  std::vector<uint8_t> bytes(1024, 0);
  AllocMap map(bytes.data(), 4096 - 64, 12);
  for (uint32_t p = 0; p + 4 <= 4096 - 64 - 8; p += 4) {
    map.WriteAllocated(p, 2);
  }
  map.WriteFree(4024, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.FindFree(3));
  }
}
BENCHMARK(BM_AllocMapSkipScan);

void BM_NodeSerializeRoundTrip(benchmark::State& state) {
  LobNode node;
  node.level = 1;
  for (int i = 0; i < 255; ++i) {
    node.entries.push_back(LobEntry{uint64_t(1000 + i), uint64_t(7000 + i)});
  }
  std::vector<uint8_t> page(4096);
  for (auto _ : state) {
    NodeFormat::Serialize(node, page.data(), 4096);
    LobNode out;
    benchmark::DoNotOptimize(NodeFormat::Deserialize(page.data(), 4096,
                                                     &out));
  }
}
BENCHMARK(BM_NodeSerializeRoundTrip);

void BM_ReshufflePlanner(benchmark::State& state) {
  ReshuffleInput in;
  in.lc = 12345;
  in.nc = 777;
  in.rc = 33333;
  in.page_size = 4096;
  in.threshold = static_cast<uint32_t>(state.range(0));
  in.max_segment_pages = 8192;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanReshuffle(in));
  }
}
BENCHMARK(BM_ReshufflePlanner)->Arg(1)->Arg(8)->Arg(64);

void BM_LobRandomRead(benchmark::State& state) {
  LobConfig cfg;
  cfg.threshold_pages = 8;
  Stack s = Stack::Make(4096, cfg, 8192);
  Random rng(1);
  LobDescriptor d =
      Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 8 << 20)), "create");
  Bytes out;
  uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    uint64_t off = rng.Uniform(d.size() - n);
    Stack::Check(s.lob->Read(d, off, n, &out), "read");
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LobRandomRead)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_LobInsert(benchmark::State& state) {
  LobConfig cfg;
  cfg.threshold_pages = static_cast<uint32_t>(state.range(0));
  Stack s = Stack::Make(4096, cfg, 8192);
  Random rng(2);
  LobDescriptor d =
      Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 4 << 20)), "create");
  Bytes payload = RandomBytes(&rng, 200);
  for (auto _ : state) {
    Stack::Check(s.lob->Insert(&d, rng.Uniform(d.size()), payload), "ins");
    if (d.size() > (64u << 20)) {
      state.PauseTiming();
      Stack::Check(s.lob->Truncate(&d, 4 << 20), "trim");
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LobInsert)->Arg(1)->Arg(8)->Arg(32);

void BM_LobAppend(benchmark::State& state) {
  Stack s = Stack::Make(4096, LobConfig{}, 8192);
  Random rng(3);
  Bytes chunk = RandomBytes(&rng, static_cast<size_t>(state.range(0)));
  LobDescriptor d = s.lob->CreateEmpty();
  std::optional<LobAppender> app;
  app.emplace(s.lob.get(), &d);
  for (auto _ : state) {
    Stack::Check(app->Append(chunk), "append");
    if (d.size() > (64u << 20)) {
      // Keep the in-memory volume bounded during long benchmark runs.
      state.PauseTiming();
      Stack::Check(app->Finish(), "finish");
      Stack::Check(s.lob->Destroy(&d), "destroy");
      app.emplace(s.lob.get(), &d);
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LobAppend)->Arg(512)->Arg(8192)->Arg(262144);

void BM_LobReaderStream(benchmark::State& state) {
  LobConfig cfg;
  cfg.threshold_pages = 8;
  Stack s = Stack::Make(4096, cfg, 8192);
  Random rng(4);
  LobDescriptor d =
      Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 16 << 20)), "create");
  size_t chunk = static_cast<size_t>(state.range(0));
  Bytes buf(chunk);
  LobReader reader(s.lob.get(), d);
  for (auto _ : state) {
    if (reader.AtEnd()) {
      state.PauseTiming();
      Stack::Check(reader.Seek(0), "seek");
      state.ResumeTiming();
    }
    auto got = reader.Read(chunk, buf.data());
    Stack::Check(got.status(), "read");
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk));
}
BENCHMARK(BM_LobReaderStream)->Arg(4096)->Arg(262144);

void BM_Reorganize(benchmark::State& state) {
  LobConfig cfg;
  cfg.threshold_pages = 1;
  Stack s = Stack::Make(4096, cfg, 8192);
  Random rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    LobDescriptor d = Stack::Unwrap(
        s.lob->CreateFrom(RandomBytes(&rng, 1 << 20)), "create");
    EditWorkload(s.lob.get(), &d, &rng, 50, 1000);
    state.ResumeTiming();
    Stack::Check(s.lob->Reorganize(&d), "reorganize");
    state.PauseTiming();
    Stack::Check(s.lob->Destroy(&d), "destroy");
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Reorganize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace eos

// Expanded BENCHMARK_MAIN() so the process can emit the observability
// metrics block after the benchmark report.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  eos::bench::EmitMetricsBlock("bench_micro");
  return 0;
}
