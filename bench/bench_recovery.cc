// Experiment E12 (Section 4.5): recovery-related costs. Insert/delete/
// append never overwrite leaf pages, so shadowing applies to index pages
// only; replace updates leaves in place under logging. Redo via the root
// LSN is idempotent and proportional to the log tail.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "txn/log_manager.h"
#include "txn/recovery.h"

namespace eos {
namespace bench {
namespace {

void ShadowingOverhead() {
  PrintHeader(
      "E12a: index-page shadowing overhead per update (4 KB pages, 2 MB "
      "object, 200 small inserts)");
  std::printf("%14s %16s %16s %14s\n", "mode", "pages written",
              "pages read", "model ms/op");
  for (int shadow = 0; shadow <= 1; ++shadow) {
    LobConfig cfg;
    cfg.threshold_pages = 8;
    // A small client root forces real index nodes, which are what
    // shadowing re-homes.
    cfg.max_root_bytes = 8 + 4 * 16 + 8;
    Stack s = Stack::Make(4096, cfg, 8192);
    s.lob->set_shadowing(shadow != 0);
    Random rng(21);
    LobDescriptor d = Stack::Unwrap(
        s.lob->CreateFrom(RandomBytes(&rng, 2 << 20)), "create");
    const int kOps = 200;
    double ms = 0;
    uint64_t written = 0, read = 0;
    for (int i = 0; i < kOps; ++i) {
      Bytes data = RandomBytes(&rng, 300);
      s.Cold();
      Stack::Check(s.lob->Insert(&d, rng.Uniform(d.size()), data), "insert");
      Stack::Check(s.pager->FlushAll(), "flush");
      IoStats io = s.Take();
      written += io.pages_written;
      read += io.pages_read;
      ms += s.model.EstimateMs(io);
    }
    std::printf("%14s %16.1f %16.1f %14.1f\n",
                shadow ? "shadowing" : "in-place",
                written / static_cast<double>(kOps),
                read / static_cast<double>(kOps), ms / kOps);
  }
  std::printf(
      "(identical I/O counts are the point: because insert/delete/append "
      "never overwrite leaf pages, shadowing the few modified index pages "
      "costs no extra transfers — had whole data segments required "
      "shadowing, every small update would rewrite its multi-page "
      "segment)\n");
}

void RedoCost() {
  PrintHeader("E12b: idempotent redo cost vs replayed log tail length");
  std::printf("%14s %16s %16s\n", "ops replayed", "wall ms", "2nd redo ms");
  for (int ops : {50, 200, 800}) {
    Stack s = Stack::Make(4096, LobConfig{}, 8192);
    LogManager log;
    s.lob->set_log_manager(&log);
    Random rng(31);
    LobDescriptor d = s.lob->CreateEmpty();
    Stack::Check(s.lob->Append(&d, RandomBytes(&rng, 1 << 20)), "seed");
    LobDescriptor checkpoint = d;  // root snapshot after the first op
    for (int i = 0; i < ops; ++i) {
      if (rng.OneIn(2)) {
        Stack::Check(
            s.lob->Insert(&d, rng.Uniform(d.size()), RandomBytes(&rng, 100)),
            "ins");
      } else {
        Stack::Check(s.lob->Delete(&d, rng.Uniform(d.size() - 200), 100),
                     "del");
      }
    }
    // Rebuild the checkpointed state in a fresh stack, then redo the tail.
    Stack s2 = Stack::Make(4096, LobConfig{}, 8192);
    LobDescriptor d2 = s2.lob->CreateEmpty();
    Stack::Check(s2.lob->Append(&d2, log.records()[0].data), "seed2");
    d2.lsn = 1;
    Recovery rec(s2.lob.get());
    auto t0 = std::chrono::steady_clock::now();
    Stack::Check(rec.Redo(&d2, 0, log.records()), "redo");
    auto t1 = std::chrono::steady_clock::now();
    Stack::Check(rec.Redo(&d2, 0, log.records()), "redo2");
    auto t2 = std::chrono::steady_clock::now();
    auto ms = [](auto a, auto b) {
      return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
                 .count() /
             1000.0;
    };
    std::printf("%14d %16.2f %16.3f\n", ops, ms(t0, t1), ms(t1, t2));
  }
  std::printf("(the second redo is a no-op thanks to the root LSN)\n");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::ShadowingOverhead();
  eos::bench::RedoCost();
  eos::bench::EmitMetricsBlock("bench_recovery");
  return 0;
}
