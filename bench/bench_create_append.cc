// Experiment E9 (Section 4.1): create/append behaviour. Known-size creation
// allocates just-large-enough segments; unknown-size multi-append doubles
// segment sizes and trims the last; both end near 100% utilization and
// near-transfer-rate write cost.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void CreatePatterns() {
  PrintHeader(
      "E9a: segment layout after creation (4 KB pages, 4 MB + 777 bytes)");
  std::printf("%28s %10s %12s %12s %12s\n", "method", "segments",
              "max seg pgs", "leaf util", "write ms");
  Random rng(3);
  Bytes data = RandomBytes(&rng, (4 << 20) + 777);
  {
    Stack s = Stack::Make(4096, LobConfig{}, 8192);
    s.Cold();
    LobDescriptor d = Stack::Unwrap(s.lob->CreateFrom(data), "create");
    IoStats io = s.Take();
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    std::printf("%28s %10llu %12llu %11.2f%% %11.0f\n",
                "size known in advance",
                static_cast<unsigned long long>(st.num_segments),
                static_cast<unsigned long long>(st.max_segment_pages),
                100.0 * st.leaf_utilization, s.model.EstimateMs(io));
  }
  for (uint32_t chunk : {1024u, 16384u, 262144u}) {
    Stack s = Stack::Make(4096, LobConfig{}, 8192);
    s.Cold();
    LobDescriptor d = s.lob->CreateEmpty();
    {
      LobAppender app(s.lob.get(), &d);
      for (size_t pos = 0; pos < data.size(); pos += chunk) {
        size_t n = std::min<size_t>(chunk, data.size() - pos);
        Stack::Check(app.Append(ByteView(data.data() + pos, n)), "append");
      }
      Stack::Check(app.Finish(), "finish");
    }
    IoStats io = s.Take();
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    char label[64];
    std::snprintf(label, sizeof(label), "unknown, %u-byte appends", chunk);
    std::printf("%28s %10llu %12llu %11.2f%% %11.0f\n", label,
                static_cast<unsigned long long>(st.num_segments),
                static_cast<unsigned long long>(st.max_segment_pages),
                100.0 * st.leaf_utilization, s.model.EstimateMs(io));
  }
  std::printf(
      "(doubling growth: segment count stays logarithmic in object size "
      "even for tiny appends, and trimming keeps utilization ~100%%)\n");
}

void AppendThroughput() {
  PrintHeader("E9b: wall-clock append throughput (in-memory device)");
  std::printf("%16s %14s\n", "chunk bytes", "MB/s (CPU)");
  Random rng(4);
  for (uint32_t chunk : {4096u, 65536u, 1048576u}) {
    Stack s = Stack::Make(4096, LobConfig{}, 8192);
    Bytes data = RandomBytes(&rng, chunk);
    LobDescriptor d = s.lob->CreateEmpty();
    LobAppender app(s.lob.get(), &d);
    const uint64_t kTotal = 64 << 20;
    auto start = std::chrono::steady_clock::now();
    for (uint64_t done = 0; done < kTotal; done += chunk) {
      Stack::Check(app.Append(data), "append");
    }
    Stack::Check(app.Finish(), "finish");
    auto end = std::chrono::steady_clock::now();
    double secs =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1e6;
    std::printf("%16u %14.0f\n", chunk, (kTotal / 1048576.0) / secs);
  }
}

void Figure5bShape() {
  PrintHeader(
      "E9c: Figure 5.b reproduction (PS=100, 20 appends of 91 bytes)");
  Stack s = Stack::Make(100);
  Random rng(5);
  Bytes data = RandomBytes(&rng, 1820);
  LobDescriptor d = s.lob->CreateEmpty();
  {
    LobAppender app(s.lob.get(), &d);
    for (int i = 0; i < 20; ++i) {
      Stack::Check(app.Append(ByteView(data.data() + i * 91, 91)), "append");
    }
    Stack::Check(app.Finish(), "finish");
  }
  std::printf("  cumulative counts:");
  uint64_t cum = 0;
  for (const LobEntry& e : d.root.entries) {
    cum += e.count;
    std::printf(" %llu", static_cast<unsigned long long>(cum));
  }
  std::printf("   (paper: 100 300 700 1500 1820)\n");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::CreatePatterns();
  eos::bench::AppendThroughput();
  eos::bench::Figure5bShape();
  eos::bench::EmitMetricsBlock("bench_create_append");
  return 0;
}
