// Experiment E5 (Section 4.2): the worked read-cost example, plus
// sequential/random read costs as a function of structure state.

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void WorkedExample() {
  PrintHeader(
      "E5a: Section 4.2 worked example (PS=100): read 320 bytes at byte "
      "1470");
  // Figure 5.a: one 19-page segment.
  {
    Stack s = Stack::Make(100);
    Random rng(1);
    LobDescriptor d =
        Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 1820)), "create");
    s.Cold();
    Bytes out;
    Stack::Check(s.lob->Read(d, 1470, 320, &out), "read");
    IoStats io = s.Take();
    std::printf(
        "  Figure 5.a (contiguous): %llu seeks + %llu transfers "
        "(paper: 1 seek + ~5 transfers)\n",
        static_cast<unsigned long long>(io.seeks),
        static_cast<unsigned long long>(io.pages_read));
  }
  std::printf(
      "  Figure 5.c (segmented, via tests/lob_basic_test): 3 seeks + 6 "
      "transfers, exactly the paper's numbers\n");
}

void ReadCostVsState() {
  PrintHeader(
      "E5b: read cost vs object state (4 KB pages, 4 MB object; modeled "
      "1992 disk: 16 ms seek, 2 ms/page)");
  std::printf("%22s %14s %14s %14s %14s\n", "object state", "scan seeks",
              "scan ms", "rand-64K seeks", "rand-64K ms");
  for (int edited = 0; edited <= 1; ++edited) {
    for (uint32_t t : {1u, 8u, 32u}) {
      LobConfig cfg;
      cfg.threshold_pages = t;
      Stack s = Stack::Make(4096, cfg, 8192);
      Random rng(9);
      LobDescriptor d = Stack::Unwrap(
          s.lob->CreateFrom(RandomBytes(&rng, 4 << 20)), "create");
      if (edited) EditWorkload(s.lob.get(), &d, &rng, 600, 1500);
      // Sequential scan.
      s.Cold();
      Bytes out;
      Stack::Check(s.lob->Read(d, 0, d.size(), &out), "scan");
      IoStats scan = s.Take();
      // 64 random 64 KB reads.
      double rseeks = 0, rms = 0;
      for (int i = 0; i < 64; ++i) {
        s.Cold();
        uint64_t off = rng.Uniform(d.size() - 65536);
        Stack::Check(s.lob->Read(d, off, 65536, &out), "rand");
        IoStats io = s.Take();
        rseeks += io.seeks;
        rms += s.model.EstimateMs(io);
      }
      char label[64];
      std::snprintf(label, sizeof(label), "%s T=%u",
                    edited ? "after 600 edits" : "freshly built", t);
      std::printf("%22s %14llu %13.0fms %14.1f %13.1fms\n", label,
                  static_cast<unsigned long long>(scan.seeks),
                  s.model.EstimateMs(scan), rseeks / 64, rms / 64);
      if (!edited) break;  // fresh objects are identical for every T
    }
  }
  std::printf(
      "(fresh objects scan at transfer rate; after edits, higher T keeps "
      "both scans and random reads near it)\n");
}

// Conformance gate (DESIGN.md §6): on a freshly built object the measured
// read I/O must track the Section 4.2 formula. The registry is reset first
// so the edited-object runs above don't contaminate the fresh sample.
void FreshReadConformance() {
  PrintHeader("E5c: fresh-volume read conformance vs the Section 4.2 model");
  obs::MetricsRegistry::Default().ResetAll();
  Stack s = Stack::Make(4096, {}, 8192);
  Random rng(17);
  LobDescriptor d =
      Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 4 << 20)), "create");
  Bytes out;
  s.Cold();
  Stack::Check(s.lob->Read(d, 0, d.size(), &out), "scan");
  for (int i = 0; i < 64; ++i) {
    s.Cold();
    uint64_t off = rng.Uniform(d.size() - 65536);
    Stack::Check(s.lob->Read(d, off, 65536, &out), "rand");
  }
  EmitCostConformanceBlock("bench_read_cost");
  AssertCostConformance("bench_read_cost", "read", obs::kCostReadRatio);
  std::printf("  mean actual/model ratio %.3f (gate: <= 1.25)\n",
              CostConformanceMean(obs::kCostReadRatio));
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::WorkedExample();
  eos::bench::ReadCostVsState();
  eos::bench::EmitMetricsBlock("bench_read_cost");
  eos::bench::FreshReadConformance();
  return 0;
}
