// Experiment E13 (Section 1, objective 3): "the cost of the piece-wise
// operations must depend on the number of bytes involved in the operation,
// rather than the size of the entire object." Sweep object sizes and show
// flat per-operation cost for every operation except whole-object scans.

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void CostVsObjectSize() {
  PrintHeader(
      "E13: per-operation modeled cost vs object size (4 KB pages, T=8; "
      "every op cold; costs should be flat across the sweep)");
  std::printf("%12s %12s %12s %12s %12s %14s\n", "object MB", "insert ms",
              "delete ms", "read-16K ms", "append ms", "depth/segments");
  for (uint64_t mb : {1u, 4u, 16u, 64u}) {
    LobConfig cfg;
    cfg.threshold_pages = 8;
    Stack s = Stack::Make(4096, cfg, 8192);
    Random rng(mb);
    LobDescriptor d = Stack::Unwrap(
        s.lob->CreateFrom(RandomBytes(&rng, mb << 20)), "create");
    const int kOps = 50;
    double ins = 0, del = 0, rd = 0, app = 0;
    Bytes out;
    for (int i = 0; i < kOps; ++i) {
      Bytes data = RandomBytes(&rng, 300);
      s.Cold();
      Stack::Check(s.lob->Insert(&d, rng.Uniform(d.size()), data), "ins");
      ins += s.model.EstimateMs(s.device->stats());
      s.Cold();
      Stack::Check(s.lob->Delete(&d, rng.Uniform(d.size() - 400), 300),
                   "del");
      del += s.model.EstimateMs(s.device->stats());
      s.Cold();
      Stack::Check(s.lob->Read(d, rng.Uniform(d.size() - 16384), 16384,
                               &out),
                   "read");
      rd += s.model.EstimateMs(s.device->stats());
      s.Cold();
      Stack::Check(s.lob->Append(&d, data), "append");
      app += s.model.EstimateMs(s.device->stats());
    }
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%u / %llu", st.depth,
                  static_cast<unsigned long long>(st.num_segments));
    std::printf("%12llu %12.1f %12.1f %12.1f %12.1f %14s\n",
                static_cast<unsigned long long>(mb), ins / kOps, del / kOps,
                rd / kOps, app / kOps, shape);
  }
  std::printf(
      "(contrast with Starburst in bench_vs_baselines E10b, whose insert "
      "cost is linear in the object size)\n");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::CostVsObjectSize();
  eos::bench::EmitMetricsBlock("bench_scaling");
  return 0;
}
