// Experiment E3 (Section 3.3): the entire allocate/free activity happens on
// the one-page space directory — at most one page I/O per request
// regardless of segment size — and the superdirectory eliminates visits to
// spaces that cannot satisfy a request.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void DirectoryOnlyIo() {
  PrintHeader(
      "E3a: page I/Os per allocate/free vs segment size (paper: one "
      "directory-page access regardless of size; we count the read and "
      "the write-back separately, hence 2)");
  std::printf("%12s %14s %14s %16s\n", "seg pages", "alloc page-IO",
              "free page-IO", "pages touched");
  for (uint32_t pages : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    Stack s = Stack::Make(4096, LobConfig{}, /*space_pages=*/8192,
                          /*pager_frames=*/4);
    s.Cold();
    Extent e = Stack::Unwrap(s.allocator->Allocate(pages), "alloc");
    Stack::Check(s.pager->FlushAll(), "flush");
    IoStats alloc_io = s.Take();
    s.Cold();
    Stack::Check(s.allocator->Free(e), "free");
    Stack::Check(s.pager->FlushAll(), "flush");
    IoStats free_io = s.Take();
    std::printf("%12u %14llu %14llu %16s\n", pages,
                static_cast<unsigned long long>(alloc_io.transfers()),
                static_cast<unsigned long long>(free_io.transfers()),
                "directory only");
  }
}

void AllocationThroughput() {
  PrintHeader("E3b: CPU cost of allocate+free (directory arithmetic only)");
  std::printf("%12s %16s\n", "seg pages", "ns per alloc+free");
  for (uint32_t pages : {1u, 8u, 64u, 512u, 4096u}) {
    Stack s = Stack::Make(4096, LobConfig{}, 8192, 64);
    const int kIters = 20000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      Extent e = Stack::Unwrap(s.allocator->Allocate(pages), "alloc");
      Stack::Check(s.allocator->Free(e), "free");
    }
    auto end = std::chrono::steady_clock::now();
    double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count() /
        static_cast<double>(kIters);
    std::printf("%12u %16.0f\n", pages, ns);
  }
}

void Superdirectory() {
  PrintHeader(
      "E3c: superdirectory eliminates unnecessary directory visits "
      "(paper: the first wrong guess corrects the entry)");
  std::printf("%10s %22s %22s\n", "spaces", "visits/alloc with SD",
              "visits/alloc without");
  for (uint32_t nspaces : {2u, 8u, 32u}) {
    for (int use_sd = 1; use_sd >= 0; --use_sd) {
      Stack s = Stack::Make(1024, LobConfig{}, 512, 256);
      // Fill all but the last space completely.
      for (uint32_t i = 0; i + 1 < nspaces; ++i) {
        Stack::Unwrap(s.allocator->Allocate(512), "fill");
      }
      s.allocator->set_use_superdirectory(use_sd != 0);
      // Warm-up allocation corrects the optimistic hints.
      std::vector<Extent> es;
      es.push_back(Stack::Unwrap(s.allocator->Allocate(64), "warm"));
      s.allocator->ResetDirectoryVisits();
      const int kIters = 100;
      for (int i = 0; i < kIters; ++i) {
        es.push_back(Stack::Unwrap(s.allocator->Allocate(4), "alloc"));
        Stack::Check(s.allocator->Free(es.back()), "free");
        es.pop_back();
      }
      double per = s.allocator->directory_visits() /
                   static_cast<double>(kIters);
      if (use_sd) {
        std::printf("%10u %22.2f ", nspaces, per);
      } else {
        std::printf("%22.2f\n", per);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::DirectoryOnlyIo();
  eos::bench::AllocationThroughput();
  eos::bench::Superdirectory();
  eos::bench::EmitMetricsBlock("bench_buddy_alloc");
  return 0;
}
