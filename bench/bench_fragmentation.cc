// Experiment E14 (Section 3, discussion of [Selt91]): the buddy policy is
// reputedly "prone to severe internal fragmentation", but EOS avoids it
// because the unused portion of an allocated segment is always less than a
// page (trimming), and partial frees + coalescing keep external
// fragmentation in check. This bench churns objects and reports both.

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void FragmentationUnderChurn() {
  PrintHeader(
      "E14: fragmentation under object churn (4 KB pages, create/destroy/"
      "edit mix; internal = unused bytes inside allocations, external = "
      "largest free segment vs total free)");
  std::printf("%8s %12s %14s %14s %16s %12s\n", "round", "live MB",
              "internal frag", "free pages", "largest free pg", "spaces");
  LobConfig cfg;
  cfg.threshold_pages = 8;
  Stack s = Stack::Make(4096, cfg, 8192);
  Random rng(5150);
  std::vector<LobDescriptor> live;
  for (int round = 1; round <= 6; ++round) {
    // Churn: create a few objects, edit them, destroy a random subset.
    for (int i = 0; i < 4; ++i) {
      live.push_back(Stack::Unwrap(
          s.lob->CreateFrom(RandomBytes(&rng, rng.Range(1 << 18, 3 << 20))),
          "create"));
    }
    for (LobDescriptor& d : live) {
      EditWorkload(s.lob.get(), &d, &rng, 30, 2000);
    }
    for (size_t i = 0; i < live.size();) {
      if (rng.OneIn(3)) {
        Stack::Check(s.lob->Destroy(&live[i]), "destroy");
        live.erase(live.begin() + i);
      } else {
        ++i;
      }
    }
    // Internal fragmentation: live bytes vs allocated leaf pages.
    uint64_t bytes = 0, pages = 0;
    for (const LobDescriptor& d : live) {
      LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
      bytes += st.size_bytes;
      pages += st.leaf_pages + st.index_pages;
    }
    double internal =
        pages == 0 ? 0.0
                   : 1.0 - static_cast<double>(bytes) / (pages * 4096.0);
    // External fragmentation from the per-space free-list report.
    auto report = Stack::Unwrap(s.allocator->Report(), "report");
    uint64_t free_pages = 0, largest = 0;
    for (const SpaceReport& r : report) {
      free_pages += r.free_pages;
      if (r.max_free_type >= 0) {
        largest = std::max<uint64_t>(largest,
                                     uint64_t{1} << r.max_free_type);
      }
    }
    std::printf("%8d %12.1f %13.1f%% %14llu %16llu %12u\n", round,
                bytes / 1048576.0, 100.0 * internal,
                static_cast<unsigned long long>(free_pages),
                static_cast<unsigned long long>(largest),
                s.allocator->num_spaces());
    Stack::Check(s.allocator->CheckInvariants(), "invariants");
  }
  std::printf(
      "(internal fragmentation stays in single digits — the unused part of "
      "any allocation is under one page per segment — and coalescing keeps "
      "large free segments available despite churn)\n");
}

// Conformance gate (DESIGN.md §6): on a fresh, unfragmented volume every
// operation's measured I/O must track the paper's formulas; the churn run
// above is reported but not gated — its ratio drift *is* the fragmentation
// signal this bench exists to show.
void FreshConformance() {
  PrintHeader(
      "E14b: fresh-volume cost conformance (the ungated churn ratios above "
      "drift up as clustering decays)");
  obs::MetricsRegistry::Default().ResetAll();
  LobConfig cfg;
  cfg.threshold_pages = 8;
  Stack s = Stack::Make(4096, cfg, 8192);
  Random rng(6021);
  LobDescriptor d =
      Stack::Unwrap(s.lob->CreateFrom(RandomBytes(&rng, 2 << 20)), "create");
  Bytes out;
  for (int i = 0; i < 32; ++i) {
    s.Cold();
    Stack::Check(s.lob->Read(d, rng.Uniform(d.size() - 32768), 32768, &out),
                 "read");
    Stack::Check(s.lob->Append(&d, RandomBytes(&rng, 8192)), "append");
  }
  EmitCostConformanceBlock("bench_fragmentation");
  AssertCostConformance("bench_fragmentation", "read", obs::kCostReadRatio);
  AssertCostConformance("bench_fragmentation", "append",
                        obs::kCostAppendRatio);
  std::printf("  mean actual/model: read %.3f, append %.3f (gate: <= 1.25)\n",
              CostConformanceMean(obs::kCostReadRatio),
              CostConformanceMean(obs::kCostAppendRatio));
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::FragmentationUnderChurn();
  eos::bench::EmitMetricsBlock("bench_fragmentation");
  eos::bench::EmitCostConformanceBlock("bench_fragmentation_churn");
  eos::bench::FreshConformance();
  return 0;
}
