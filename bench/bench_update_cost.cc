// Experiment E8 (Section 4.4): the threshold tradeoff. "Larger T values
// improve the storage utilization and the performance of append, read and
// replace operations; the only aspect that might be affected negatively by
// larger segments is the costs of inserts and deletes."

#include <cstdio>

#include "bench/bench_util.h"

namespace eos {
namespace bench {
namespace {

void UpdateVsReadTradeoff() {
  PrintHeader(
      "E8: per-operation modeled cost vs threshold T (4 KB pages, 4 MB "
      "object; 200 cold small inserts / deletes / 16 KB reads each)");
  std::printf("%6s %13s %13s %13s %13s %12s\n", "T", "insert ms",
              "delete ms", "read-16K ms", "scan ms", "leaf util");
  for (uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    LobConfig cfg;
    cfg.threshold_pages = t;
    Stack s = Stack::Make(4096, cfg, 8192);
    Random rng(77);
    LobDescriptor d = Stack::Unwrap(
        s.lob->CreateFrom(RandomBytes(&rng, 4 << 20)), "create");
    // Pre-age the object so segments reflect the steady state for this T.
    EditWorkload(s.lob.get(), &d, &rng, 300, 1500);

    double ins_ms = 0, del_ms = 0, read_ms = 0;
    const int kOps = 200;
    for (int i = 0; i < kOps; ++i) {
      Bytes data = RandomBytes(&rng, rng.Range(1, 500));
      uint64_t off = rng.Uniform(d.size());
      s.Cold();
      Stack::Check(s.lob->Insert(&d, off, data), "insert");
      ins_ms += s.model.EstimateMs(s.device->stats());
    }
    for (int i = 0; i < kOps; ++i) {
      uint64_t off = rng.Uniform(d.size() - 600);
      s.Cold();
      Stack::Check(s.lob->Delete(&d, off, rng.Range(1, 500)), "delete");
      del_ms += s.model.EstimateMs(s.device->stats());
    }
    Bytes out;
    for (int i = 0; i < kOps; ++i) {
      uint64_t off = rng.Uniform(d.size() - 16384);
      s.Cold();
      Stack::Check(s.lob->Read(d, off, 16384, &out), "read");
      read_ms += s.model.EstimateMs(s.device->stats());
    }
    s.Cold();
    Stack::Check(s.lob->Read(d, 0, d.size(), &out), "scan");
    double scan_ms = s.model.EstimateMs(s.device->stats());
    LobStats st = Stack::Unwrap(s.lob->Stats(d), "stats");
    std::printf("%6u %12.1f %12.1f %12.1f %12.0f %11.1f%%\n", t,
                ins_ms / kOps, del_ms / kOps, read_ms / kOps, scan_ms,
                100.0 * st.leaf_utilization);
  }
  std::printf(
      "(insert/delete cost rises with T — more pages shuffled per update — "
      "while reads, scans and utilization improve; the paper recommends T "
      "slightly above the typical read size)\n");
}

}  // namespace
}  // namespace bench
}  // namespace eos

int main() {
  eos::bench::UpdateVsReadTradeoff();
  eos::bench::EmitMetricsBlock("bench_update_cost");
  return 0;
}
