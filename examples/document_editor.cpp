// Office-automation scenario (Section 1): a long document edited in place
// with logged operations and transaction-style undo via the recovery
// machinery of Section 4.5.

#include <cstdio>
#include <string>

#include "buddy/segment_allocator.h"
#include "io/page_device.h"
#include "io/pager.h"
#include "lob/lob_manager.h"
#include "txn/log_manager.h"
#include "txn/recovery.h"

using namespace eos;  // example code; the library itself never does this

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

std::string Excerpt(LobManager* lob, const LobDescriptor& d, uint64_t off,
                    uint64_t n) {
  Bytes b;
  Check(lob->Read(d, off, n, &b), "read excerpt");
  return std::string(b.begin(), b.end());
}

}  // namespace

int main() {
  // Assemble the storage stack by hand (the lower-level API, without the
  // Database facade): device -> pager -> buddy allocator -> LOB manager.
  auto geo = BuddyGeometry::Make(4096);
  Check(geo.status(), "geometry");
  MemPageDevice device(4096, 1 + geo->space_pages + 1);
  Pager pager(&device, 128);
  SegmentAllocator::Options opt;
  auto alloc = SegmentAllocator::Format(&pager, *geo, 1, opt);
  Check(alloc.status(), "allocator");
  LobConfig cfg;
  cfg.threshold_pages = 4;
  LobManager lob(&pager, alloc->get(), cfg);
  LogManager log;
  lob.set_log_manager(&log);

  // The document: one paragraph repeated many times.
  std::string paragraph =
      "The manipulation of large objects is becoming an increasingly "
      "important issue of many so called unconventional database "
      "applications.\n";
  LobDescriptor doc = lob.CreateEmpty();
  for (int i = 0; i < 2000; ++i) {
    Check(lob.Append(&doc, paragraph), "append paragraph");
  }
  std::printf("document: %llu bytes, last LSN %llu\n",
              static_cast<unsigned long long>(doc.size()),
              static_cast<unsigned long long>(doc.lsn));

  // Editing session A (will be kept): fix wording near the front.
  Check(lob.Replace(&doc, 4, std::string("handling    ")), "replace");
  Check(lob.Insert(&doc, 0, std::string("== ABSTRACT ==\n")), "insert head");
  uint64_t keep_upto = doc.lsn;

  // Editing session B (will be undone): delete a big middle chunk and
  // scribble over the start.
  Check(lob.Delete(&doc, 50000, 100000), "big delete");
  Check(lob.Replace(&doc, 0, std::string("@@@@@@@@@@@@@@")), "scribble");
  std::printf("after session B : %s...\n",
              Excerpt(&lob, doc, 0, 30).c_str());

  // Undo session B only (rollback to the LSN where A committed).
  Recovery recovery(&lob);
  Check(recovery.Undo(&doc, 0, log.records(), keep_upto), "undo");
  std::printf("after undo of B : %s...\n",
              Excerpt(&lob, doc, 0, 30).c_str());
  std::printf("document size restored to %llu bytes (LSN %llu)\n",
              static_cast<unsigned long long>(doc.size()),
              static_cast<unsigned long long>(doc.lsn));

  Check(lob.CheckInvariants(doc), "invariants");
  std::printf("document_editor OK\n");
  return 0;
}
