// Multimedia scenario (Section 1): "playing digital sound recordings in
// real time" means sequentially scanning a large object in sizable chunks
// with I/O rates close to transfer rates. The example stores a recording,
// streams it, and shows how the modeled seek/transfer budget is spent —
// the property the buddy system's contiguous segments buy.

#include <cstdio>

#include "eos/database.h"
#include "io/io_stats.h"

using namespace eos;  // example code; the library itself never does this

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

// CD-quality-ish mono: 22.05 kHz * 2 bytes.
constexpr uint32_t kBytesPerSecond = 44100;
constexpr uint32_t kSeconds = 120;
constexpr uint32_t kChunk = kBytesPerSecond / 4;  // 250 ms of audio per read

void Stream(Database* db, uint64_t id, const char* label) {
  db->pager()->EvictAll();
  db->device()->ForgetHeadPosition();
  db->device()->ResetStats();
  uint64_t size;
  {
    auto s = db->Size(id);
    Check(s.status(), "size");
    size = *s;
  }
  for (uint64_t off = 0; off < size; off += kChunk) {
    auto chunk = db->Read(id, off, kChunk);
    Check(chunk.status(), "read chunk");
  }
  DiskModel model;
  IoStats io = db->device()->stats();
  double total_ms = model.EstimateMs(io);
  double audio_ms = 1000.0 * size / kBytesPerSecond;
  std::printf(
      "%-22s %5llu seeks %6llu transfers -> %7.0f ms disk for %7.0f ms "
      "audio (%.1fx real time)\n",
      label, static_cast<unsigned long long>(io.seeks),
      static_cast<unsigned long long>(io.transfers()), total_ms, audio_ms,
      audio_ms / total_ms);
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.page_size = 4096;
  options.lob.threshold_pages = 16;

  auto db_or = Database::CreateInMemory(options);
  Check(db_or.status(), "create");
  auto db = std::move(db_or).value();

  // "A more realistic scenario is that smaller (but sizable) chunks of
  // bytes will be successively appended at the end of the object."
  uint64_t id;
  {
    auto created = db->CreateObject();
    Check(created.status(), "create object");
    id = *created;
    auto root = db->GetRoot(id);
    Check(root.status(), "root");
    LobDescriptor d = *root;
    LobAppender app(db->lob(), &d);
    Bytes second(kBytesPerSecond);
    for (uint32_t t = 0; t < kSeconds; ++t) {
      for (size_t i = 0; i < second.size(); ++i) {
        second[i] = static_cast<uint8_t>((t * 7 + i) & 0xFF);
      }
      Check(app.Append(second), "append second");
    }
    Check(app.Finish(), "finish");
    Check(db->PutRoot(id, d), "put root");
  }
  std::printf("recording: %u s of audio, %.1f MB\n", kSeconds,
              kSeconds * double{kBytesPerSecond} / 1048576.0);

  Stream(db.get(), id, "stream (fresh)");

  // Edit the recording: cut 10 s from the middle, splice 5 s of new
  // material in, then stream again — the threshold keeps it real-time.
  Check(db->Delete(id, uint64_t{40} * kBytesPerSecond,
                   uint64_t{10} * kBytesPerSecond),
        "cut");
  Bytes jingle(uint64_t{5} * kBytesPerSecond, 0x55);
  Check(db->Insert(id, uint64_t{60} * kBytesPerSecond, jingle), "splice");
  Stream(db.get(), id, "stream (after edits)");

  auto st = db->ObjectStats(id);
  Check(st.status(), "stats");
  std::printf("structure: %llu segments, %.1f%% utilized\n",
              static_cast<unsigned long long>(st->num_segments),
              100.0 * st->leaf_utilization);
  Check(db->CheckIntegrity(), "integrity");
  return 0;
}
