// Quickstart: create an EOS volume, store a large object, and use every
// piece-wise operation the paper defines — append, read, replace, insert,
// delete — plus persistence across reopen.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "eos/database.h"
#include "obs/snapshot.h"

using eos::Bytes;
using eos::ByteView;
using eos::Database;
using eos::DatabaseOptions;
using eos::Status;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(eos::StatusOr<T> v, const char* what) {
  if (!v.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 v.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(v).value();
}

std::string AsString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace

int main() {
  const std::string path = "/tmp/eos_quickstart.vol";

  DatabaseOptions options;
  options.page_size = 4096;
  options.lob.threshold_pages = 8;  // the segment size threshold T

  auto db = Unwrap(Database::Create(path, options), "create volume");

  // Create an object from a full buffer (size known in advance: EOS
  // allocates one just-large-enough segment).
  uint64_t id = Unwrap(
      db->CreateObjectFrom(std::string("Large objects are byte strings "
                                       "stored in variable-size segments.")),
      "create object");

  // Append at the end.
  Check(db->Append(id, std::string(" They can grow.")), "append");

  // Insert bytes at an arbitrary position.
  Check(db->Insert(id, 13, std::string("(unstructured) ")), "insert");

  // Replace a byte range in place.
  Check(db->Replace(id, 0, std::string("LARGE")), "replace");

  // Delete a byte range.
  uint64_t size = Unwrap(db->Size(id), "size");
  Check(db->Delete(id, size - 15, 15), "delete");

  Bytes content = Unwrap(db->Read(id, 0, 1 << 20), "read");
  std::printf("object %llu (%zu bytes): %s\n",
              static_cast<unsigned long long>(id), content.size(),
              AsString(content).c_str());

  // Objects persist: flush, drop the handle, reopen.
  Check(db->Flush(), "flush");
  db.reset();
  auto db2 = Unwrap(Database::Open(path, options), "reopen");
  Bytes again = Unwrap(db2->Read(id, 0, 1 << 20), "read after reopen");
  std::printf("after reopen          : %s\n", AsString(again).c_str());

  // Structural statistics (segments, utilization).
  eos::LobStats st = Unwrap(db2->ObjectStats(id), "stats");
  std::printf("segments=%llu leaf_pages=%llu utilization=%.1f%%\n",
              static_cast<unsigned long long>(st.num_segments),
              static_cast<unsigned long long>(st.leaf_pages),
              100.0 * st.leaf_utilization);

  Check(db2->CheckIntegrity(), "integrity");

  // Leave the metrics/trace snapshot next to the volume so
  // `eos_inspect <volume> stats` (and `trace`) can read it back.
  Check(eos::obs::WriteSnapshotFile(eos::obs::SnapshotPathFor(path)),
        "write obs snapshot");

  std::printf("quickstart OK\n");
  return 0;
}
