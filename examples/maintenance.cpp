// Storage maintenance scenario: an often-edited object fragments over
// time; when it turns read-mostly, the administrator raises its threshold
// hint and reorganizes it back to the optimal layout ("for more static
// objects ... the larger the segment size the better", Section 4.4).
//
// Pairs with the `eos_inspect` tool: run it against /tmp/eos_maintenance.vol
// before and after to see the same numbers from outside.

#include <cstdio>

#include "eos/database.h"
#include "common/random.h"
#include "io/io_stats.h"
#include "obs/snapshot.h"

using namespace eos;  // example code; the library itself never does this

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

void Report(Database* db, uint64_t id, const char* phase) {
  auto st = db->ObjectStats(id);
  Check(st.status(), "stats");
  // Modeled cost of a full scan in this state.
  db->pager()->EvictAll();
  db->device()->ForgetHeadPosition();
  db->device()->ResetStats();
  auto size = db->Size(id);
  Check(size.status(), "size");
  auto all = db->Read(id, 0, *size);
  Check(all.status(), "scan");
  DiskModel model;
  std::printf(
      "%-18s %7llu segments  avg %6.1f pages  util %5.1f%%  scan %6.0f ms "
      "modeled\n",
      phase, static_cast<unsigned long long>(st->num_segments),
      st->avg_segment_pages, 100.0 * st->leaf_utilization,
      model.EstimateMs(db->device()->stats()));
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.page_size = 4096;
  options.lob.threshold_pages = 1;  // editing-era default: cheapest updates
  options.checksums = true;  // every page self-verifying; enables
                             // `eos_inspect scrub` / `repair` on the volume

  const std::string path = "/tmp/eos_maintenance.vol";
  auto db_or = Database::Create(path, options);
  Check(db_or.status(), "create");
  auto db = std::move(db_or).value();

  Bytes content(3 << 20);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  auto id_or = db->CreateObjectFrom(content);
  Check(id_or.status(), "create object");
  uint64_t id = *id_or;
  Report(db.get(), id, "fresh");

  // A long editing campaign with the minimal threshold shatters it.
  Random rng(99);
  for (int i = 0; i < 400; ++i) {
    auto size = db->Size(id);
    Check(size.status(), "size");
    uint64_t off = rng.Uniform(*size - 2000);
    if (rng.OneIn(2)) {
      Bytes ins(rng.Range(1, 1500));
      Check(db->Insert(id, off, ins), "insert");
    } else {
      Check(db->Delete(id, off, rng.Range(1, 1500)), "delete");
    }
  }
  Report(db.get(), id, "after 400 edits");

  // The object becomes read-mostly: raise its personal threshold (future
  // edits will keep it coarse) and rebuild the current layout.
  db->SetObjectThreshold(id, 32);
  Check(db->ReorganizeObject(id), "reorganize");
  Report(db.get(), id, "after reorganize");

  Check(db->CheckIntegrity(), "integrity");
  Check(db->Flush(), "flush");
  Check(obs::WriteSnapshotFile(obs::SnapshotPathFor(path)),
        "write obs snapshot");
  std::printf("volume left at %s — try: ./build/tools/eos_inspect %s\n"
              "(also: eos_inspect %s stats | trace)\n",
              path.c_str(), path.c_str(), path.c_str());
  return 0;
}
