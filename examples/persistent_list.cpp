// "Insertable array" / long-list scenario (Section 1): a persistent list
// of fixed-size records built directly on the large-object byte-string
// API — element insertion and removal at arbitrary positions map to byte
// range inserts and deletes, so small changes have small impact.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eos/database.h"

using namespace eos;  // example code; the library itself never does this

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

// A fixed-width record list layered over one large object.
template <typename Record>
class PersistentList {
 public:
  PersistentList(Database* db, uint64_t object_id)
      : db_(db), id_(object_id) {}

  uint64_t size() {
    auto s = db_->Size(id_);
    Check(s.status(), "list size");
    return *s / sizeof(Record);
  }

  Record Get(uint64_t index) {
    auto b = db_->Read(id_, index * sizeof(Record), sizeof(Record));
    Check(b.status(), "list get");
    Record r;
    std::memcpy(&r, b->data(), sizeof(Record));
    return r;
  }

  void PushBack(const Record& r) {
    Check(db_->Append(id_, View(r)), "list push_back");
  }

  void Insert(uint64_t index, const Record& r) {
    Check(db_->Insert(id_, index * sizeof(Record), View(r)), "list insert");
  }

  void Erase(uint64_t index) {
    Check(db_->Delete(id_, index * sizeof(Record), sizeof(Record)),
          "list erase");
  }

  void Set(uint64_t index, const Record& r) {
    Check(db_->Replace(id_, index * sizeof(Record), View(r)), "list set");
  }

 private:
  static ByteView View(const Record& r) {
    return ByteView(reinterpret_cast<const uint8_t*>(&r), sizeof(Record));
  }

  Database* db_;
  uint64_t id_;
};

struct Sample {
  uint64_t key;
  double value;
  char tag[16];
};

}  // namespace

int main() {
  DatabaseOptions options;
  options.page_size = 4096;
  options.lob.threshold_pages = 8;
  auto db_or = Database::CreateInMemory(options);
  Check(db_or.status(), "create db");
  auto db = std::move(db_or).value();

  auto id = db->CreateObject();
  Check(id.status(), "create object");
  PersistentList<Sample> list(db.get(), *id);

  // Build a long list.
  for (uint64_t k = 0; k < 50000; ++k) {
    Sample s{k, k * 0.5, {}};
    std::snprintf(s.tag, sizeof(s.tag), "rec-%llu",
                  static_cast<unsigned long long>(k));
    list.PushBack(s);
  }
  std::printf("list built: %llu records (%llu bytes)\n",
              static_cast<unsigned long long>(list.size()),
              static_cast<unsigned long long>(list.size() * sizeof(Sample)));

  // Element updates in the middle: "elements may be removed from or new
  // ones inserted at any place within the list".
  list.Insert(12345, Sample{999999, -1.0, "inserted"});
  list.Erase(40000);
  list.Set(0, Sample{0, 3.14159, "updated"});

  // Verify.
  Sample a = list.Get(12345);
  Sample b = list.Get(0);
  std::printf("list[12345] = {key=%llu, tag=%s}\n",
              static_cast<unsigned long long>(a.key), a.tag);
  std::printf("list[0]     = {key=%llu, value=%.5f, tag=%s}\n",
              static_cast<unsigned long long>(b.key), b.value, b.tag);
  if (a.key != 999999 || std::string(b.tag) != "updated" ||
      list.size() != 50000) {
    std::fprintf(stderr, "list verification failed!\n");
    return 1;
  }

  // Neighbors unaffected by the middle insert.
  if (list.Get(12344).key != 12344 || list.Get(12346).key != 12345) {
    std::fprintf(stderr, "neighbor verification failed!\n");
    return 1;
  }

  auto st = db->ObjectStats(*id);
  Check(st.status(), "stats");
  std::printf("storage: %llu segments, %.1f%% utilized, depth %u\n",
              static_cast<unsigned long long>(st->num_segments),
              100.0 * st->leaf_utilization, st->depth);
  Check(db->CheckIntegrity(), "integrity");
  std::printf("persistent_list OK\n");
  return 0;
}
