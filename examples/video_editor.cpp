// Video editing scenario from the paper's introduction: "movie spots may
// be edited to remove or add frames". A movie is one large object of
// fixed-size frames; cutting a scene is a byte-range delete, splicing one
// in is a byte-range insert — neither reorganizes the rest of the movie.
//
// The example also prints the modeled 1992-disk cost of frame-rate
// playback before and after editing, showing why the segment size
// threshold matters for real-time retrieval.

#include <cstdio>
#include <cstring>

#include "eos/database.h"
#include "io/io_stats.h"

using namespace eos;  // example code; the library itself never does this

namespace {

constexpr uint32_t kFrameBytes = 30000;  // ~qcif frame, paper-era codec
constexpr uint32_t kFrames = 500;
constexpr double kFps = 24.0;

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

Bytes MakeFrame(uint32_t index) {
  Bytes f(kFrameBytes);
  for (size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<uint8_t>(index * 31 + i);
  }
  return f;
}

// Streams the whole movie frame by frame and reports the modeled disk time
// per frame against the frame budget.
void Playback(Database* db, uint64_t id, const char* label) {
  db->device()->ResetStats();
  uint64_t size = 0;
  {
    auto s = db->Size(id);
    Check(s.status(), "size");
    size = *s;
  }
  for (uint64_t off = 0; off + kFrameBytes <= size; off += kFrameBytes) {
    auto frame = db->Read(id, off, kFrameBytes);
    Check(frame.status(), "read frame");
  }
  DiskModel model;
  IoStats io = db->device()->stats();
  double per_frame = model.EstimateMs(io) / (size / kFrameBytes);
  std::printf(
      "%-28s %6.1f ms/frame modeled (budget %.1f ms at %.0f fps) %s\n",
      label, per_frame, 1000.0 / kFps, kFps,
      per_frame <= 1000.0 / kFps ? "[real-time]" : "[TOO SLOW]");
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.page_size = 4096;
  // Threshold sized to the access unit: a frame is ~8 pages, so keep
  // segments at least that large (the paper's tuning advice).
  options.lob.threshold_pages = 16;

  auto db_or = Database::CreateInMemory(options);
  Check(db_or.status(), "create");
  auto db = std::move(db_or).value();

  // Shoot the movie: frames appended as they are produced (size unknown).
  uint64_t id;
  {
    auto created = db->CreateObject();
    Check(created.status(), "create object");
    id = *created;
    auto root = db->GetRoot(id);
    Check(root.status(), "root");
    LobDescriptor d = *root;
    LobAppender app(db->lob(), &d);
    for (uint32_t i = 0; i < kFrames; ++i) {
      Check(app.Append(MakeFrame(i)), "append frame");
    }
    Check(app.Finish(), "finish");
    Check(db->PutRoot(id, d), "put root");
  }
  std::printf("movie: %u frames x %u bytes = %.1f MB\n", kFrames,
              kFrameBytes, kFrames * double{kFrameBytes} / 1048576.0);
  Playback(db.get(), id, "playback (fresh)");

  // Edit: cut frames 100..149, splice a 30-frame scene at frame 200,
  // trim the last 25 frames.
  Check(db->Delete(id, uint64_t{100} * kFrameBytes, 50 * kFrameBytes),
        "cut scene");
  Bytes scene;
  for (uint32_t i = 0; i < 30; ++i) {
    Bytes f = MakeFrame(9000 + i);
    scene.insert(scene.end(), f.begin(), f.end());
  }
  Check(db->Insert(id, uint64_t{200} * kFrameBytes, scene), "splice scene");
  {
    auto size = db->Size(id);
    Check(size.status(), "size");
    Check(db->Delete(id, *size - uint64_t{25} * kFrameBytes,
                     uint64_t{25} * kFrameBytes),
          "trim tail");
  }

  // Verify a spliced frame survived intact.
  Bytes expect = MakeFrame(9007);
  auto got = db->Read(id, uint64_t{207} * kFrameBytes, kFrameBytes);
  Check(got.status(), "read spliced");
  if (std::memcmp(got->data(), expect.data(), kFrameBytes) != 0) {
    std::fprintf(stderr, "spliced frame corrupted!\n");
    return 1;
  }
  std::printf("edits verified: cut 50, spliced 30, trimmed 25 frames\n");

  Playback(db.get(), id, "playback (after editing)");

  auto st = db->ObjectStats(id);
  Check(st.status(), "stats");
  std::printf(
      "structure: %llu segments, avg %.1f pages/segment, %.1f%% utilized\n",
      static_cast<unsigned long long>(st->num_segments),
      st->avg_segment_pages, 100.0 * st->leaf_utilization);
  Check(db->CheckIntegrity(), "integrity");
  return 0;
}
