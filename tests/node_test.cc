// Node wire format, descriptor serialization, buddy geometry derivations.

#include "lob/node.h"

#include <gtest/gtest.h>

#include "buddy/geometry.h"
#include "lob/descriptor.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::Stack;

TEST(NodeFormatTest, CapacityMatchesLayout) {
  // 4 KB page: (4096 - 8) / 16 = 255 entries.
  EXPECT_EQ(NodeFormat::Capacity(4096), 255u);
  EXPECT_EQ(NodeFormat::MinEntries(4096), 127u);
  // The paper's 100-byte example pages: 5 entries.
  EXPECT_EQ(NodeFormat::Capacity(100), 5u);
}

TEST(NodeFormatTest, SerializeRoundTripCumulativeCounts) {
  LobNode node;
  node.level = 3;
  node.entries = {LobEntry{100, 11}, LobEntry{920, 12}, LobEntry{800, 13}};
  Bytes page(4096, 0xEE);
  NodeFormat::Serialize(node, page.data(), 4096);
  // On-disk counts are cumulative: 100, 1020, 1820 (Figure 5.c's root).
  EXPECT_EQ(DecodeU64(page.data() + 8), 100u);
  EXPECT_EQ(DecodeU64(page.data() + 24), 1020u);
  EXPECT_EQ(DecodeU64(page.data() + 40), 1820u);
  LobNode out;
  EOS_ASSERT_OK(NodeFormat::Deserialize(page.data(), 4096, &out));
  EXPECT_EQ(out.level, 3);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0], node.entries[0]);
  EXPECT_EQ(out.entries[1], node.entries[1]);
  EXPECT_EQ(out.entries[2], node.entries[2]);
  EXPECT_EQ(out.Total(), 1820u);
}

TEST(NodeFormatTest, DeserializeRejectsCorruption) {
  Bytes page(4096, 0);
  LobNode out;
  EXPECT_TRUE(NodeFormat::Deserialize(page.data(), 4096, &out)
                  .IsCorruption());  // bad magic
  LobNode node;
  node.level = 0;
  node.entries = {LobEntry{10, 1}, LobEntry{20, 2}};
  NodeFormat::Serialize(node, page.data(), 4096);
  // Corrupt the cumulative counts so they are not strictly increasing.
  EncodeU64(page.data() + 24, 5);
  EXPECT_TRUE(
      NodeFormat::Deserialize(page.data(), 4096, &out).IsCorruption());
}

TEST(NodeTest, FindChildRebasesOffset) {
  LobNode node;
  node.entries = {LobEntry{1020, 1}, LobEntry{800, 2}};
  uint64_t off = 1470;  // the Section 4.2 example
  EXPECT_EQ(node.FindChild(&off), 1);
  EXPECT_EQ(off, 450u);
  off = 0;
  EXPECT_EQ(node.FindChild(&off), 0);
  EXPECT_EQ(off, 0u);
  off = 1019;
  EXPECT_EQ(node.FindChild(&off), 0);
  EXPECT_EQ(off, 1019u);
  off = 1020;
  EXPECT_EQ(node.FindChild(&off), 1);
  EXPECT_EQ(off, 0u);
}

TEST(DescriptorTest, SerializeRoundTripWithLsn) {
  LobDescriptor d;
  d.root.level = 1;
  d.root.entries = {LobEntry{1020, 77}, LobEntry{800, 78}};
  d.lsn = 424242;
  Bytes wire = d.Serialize();
  EXPECT_EQ(wire.size(), 8u + 2 * 16u + 8u);
  auto back = LobDescriptor::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root.level, 1);
  EXPECT_EQ(back->root.entries.size(), 2u);
  EXPECT_EQ(back->lsn, 424242u);
  EXPECT_EQ(back->size(), 1820u);
}

TEST(DescriptorTest, DeserializeRejectsTruncation) {
  LobDescriptor d;
  d.root.entries = {LobEntry{5, 1}};
  Bytes wire = d.Serialize();
  wire.pop_back();
  EXPECT_TRUE(LobDescriptor::Deserialize(wire).status().IsCorruption());
  Bytes tiny(4, 0);
  EXPECT_TRUE(LobDescriptor::Deserialize(tiny).status().IsCorruption());
}

TEST(DescriptorTest, MaxEntriesFor) {
  EXPECT_EQ(LobDescriptor::MaxEntriesFor(8 + 8), 0u);
  EXPECT_EQ(LobDescriptor::MaxEntriesFor(8 + 16 + 8), 1u);
  EXPECT_EQ(LobDescriptor::MaxEntriesFor(256), (256u - 16) / 16);
}

TEST(NodeStoreTest, ShadowingRelocatesPages) {
  Stack s = Stack::Make(128);
  NodeStore* store = s.lob->node_store();
  LobNode node;
  node.level = 0;
  node.entries = {LobEntry{100, 5}, LobEntry{50, 9}};
  auto page = store->WriteNew(node);
  ASSERT_TRUE(page.ok());
  PageId p = *page;

  // In place: id stays.
  node.entries[0].count = 111;
  EOS_ASSERT_OK(store->Write(&p, node));
  EXPECT_EQ(p, *page);

  // Shadowing: id changes, old page freed, content identical.
  store->set_shadowing(true);
  node.entries[0].count = 222;
  EOS_ASSERT_OK(store->Write(&p, node));
  EXPECT_NE(p, *page);
  auto loaded = store->Load(p);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entries[0].count, 222u);
  store->set_shadowing(false);
  EOS_ASSERT_OK(store->FreePage(p));
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

TEST(GeometryTest, PaperNumbersFor4KPages) {
  auto geo = BuddyGeometry::Make(4096);
  ASSERT_TRUE(geo.ok());
  // k = log2(2 * 4096) = 13: maximum segment 2^13 pages = 32 MB.
  EXPECT_EQ(geo->max_type, 13u);
  EXPECT_EQ(geo->max_segment_pages(), 8192u);
  // One directory page maps ~4 * (4096 - header) pages (~63.5 MB spaces).
  EXPECT_GE(geo->space_pages, 16000u);
  EXPECT_LE(geo->space_pages, 16272u);
}

TEST(GeometryTest, BoundsChecked) {
  EXPECT_FALSE(BuddyGeometry::Make(32).ok());
  EXPECT_FALSE(BuddyGeometry::Make(65536).ok());
  EXPECT_FALSE(BuddyGeometry::Make(4096, 4).ok());       // too small
  EXPECT_FALSE(BuddyGeometry::Make(4096, 1 << 30).ok());  // beyond the map
  auto geo = BuddyGeometry::Make(4096, 100);
  ASSERT_TRUE(geo.ok());
  // Max segment capped by the space size: 2^6 = 64 <= 100.
  EXPECT_EQ(geo->max_type, 6u);
}

TEST(GeometryTest, SmallPagesStillWork) {
  for (uint32_t ps : {64u, 100u, 128u, 512u}) {
    auto geo = BuddyGeometry::Make(ps);
    ASSERT_TRUE(geo.ok()) << ps;
    EXPECT_GE(geo->space_pages, 8u);
    EXPECT_LE(uint64_t{1} << geo->max_type, geo->space_pages);
  }
}

}  // namespace
}  // namespace eos
