// Flight-recorder tests (DESIGN.md §6): global ordering across per-thread
// rings, wraparound accounting, lock-light concurrent recording (this
// suite runs under TSan via the `tsan` label), the disabled no-op path,
// and post-mortem dump round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using obs::EventJournal;
using obs::EventKind;
using obs::JournalEvent;
using obs::JsonValue;

struct EnabledGuard {
  bool was = obs::Enabled();
  ~EnabledGuard() { obs::SetEnabled(was); }
};

TEST(EventJournalTest, RecordsInGlobalOrderWithFields) {
  EventJournal j(64);
  j.Record(EventKind::kOpBegin, "lob.read", 7);
  j.Record(EventKind::kIoBatch, "read_runs", 3, 0);
  j.Record(EventKind::kOpEnd, "lob.read", 7, 120, 5, /*ok=*/false);
  std::vector<JournalEvent> events = j.MergedEvents();
  ASSERT_EQ(events.size(), 3u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1) << "seq is dense and ascending";
    EXPECT_EQ(events[i].tid, 0u) << "single writer gets ring 0";
  }
  EXPECT_EQ(events[0].kind, EventKind::kOpBegin);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_TRUE(events[0].ok);
  EXPECT_STREQ(events[1].label, "read_runs");
  EXPECT_EQ(events[1].b, 0u);
  EXPECT_EQ(events[2].b, 120u);
  EXPECT_EQ(events[2].c, 5u);
  EXPECT_FALSE(events[2].ok);
  EXPECT_GE(events[2].t_us, events[0].t_us) << "time is monotone per thread";
  EXPECT_EQ(j.total_recorded(), 3u);
  EXPECT_EQ(j.threads_seen(), 1u);
}

TEST(EventJournalTest, RingWrapsKeepingNewestAndCountsDrops) {
  EventJournal j(8);
  for (uint64_t i = 1; i <= 20; ++i) {
    j.Record(EventKind::kNote, "wrap", i);
  }
  EXPECT_EQ(j.total_recorded(), 20u);
  std::vector<JournalEvent> events = j.MergedEvents();
  ASSERT_EQ(events.size(), 8u) << "ring retains per_thread_capacity events";
  // The 8 newest survive, oldest-first: a = 13..20.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 13 + i);
    EXPECT_EQ(events[i].seq, 13 + i);
  }
  JsonValue json = j.ToJsonValue();
  EXPECT_EQ(json.NumberOr("recorded", 0), 20.0);
  EXPECT_EQ(json.NumberOr("dropped", 0), 12.0);

  j.Clear();
  EXPECT_EQ(j.total_recorded(), 0u);
  EXPECT_TRUE(j.MergedEvents().empty());
  j.Record(EventKind::kNote, "after_clear");
  EXPECT_EQ(j.MergedEvents().at(0).seq, 1u) << "Clear resets the sequence";
}

TEST(EventJournalTest, ConcurrentWritersKeepPerThreadOrderAndLoseNothing) {
  // Rings are big enough that nothing wraps: every event must survive,
  // seqs must be a permutation of 1..N, and each thread's own events must
  // appear in increasing seq. TSan (label `tsan`) checks the latching.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 500;
  EventJournal j(1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&j, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        j.Record(EventKind::kNote, "worker", static_cast<uint64_t>(t), i);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(j.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(j.threads_seen(), static_cast<size_t>(kThreads));
  std::vector<JournalEvent> events = j.MergedEvents();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::vector<uint64_t> last_b(kThreads, 0);
  std::vector<uint64_t> counts(kThreads, 0);
  uint64_t prev_seq = 0;
  for (const JournalEvent& e : events) {
    EXPECT_EQ(e.seq, prev_seq + 1) << "merged seqs are dense";
    prev_seq = e.seq;
    ASSERT_LT(e.a, static_cast<uint64_t>(kThreads));
    size_t owner = static_cast<size_t>(e.a);
    if (counts[owner] > 0) {
      EXPECT_GT(e.b, last_b[owner]) << "per-thread program order preserved";
    }
    last_b[owner] = e.b;
    ++counts[owner];
  }
  for (uint64_t c : counts) EXPECT_EQ(c, kPerThread);
}

TEST(EventJournalTest, DisabledPathRecordsNothingAndAllocatesNoRings) {
  EnabledGuard guard;
  EventJournal j(16);
  obs::SetEnabled(false);
  j.Record(EventKind::kCrash, "ignored", 1, 2, 3, false);
  obs::RecordEvent(EventKind::kNote, "ignored_too");
  EXPECT_EQ(j.total_recorded(), 0u);
  EXPECT_EQ(j.threads_seen(), 0u) << "disabled recording must not register "
                                     "a ring for the calling thread";
  EXPECT_TRUE(j.MergedEvents().empty());

  auto dump = obs::WritePostMortem("disabled");
  EXPECT_TRUE(dump.status().IsNotFound()) << dump.status().ToString();

  obs::SetEnabled(true);
  j.Record(EventKind::kNote, "live");
  EXPECT_EQ(j.total_recorded(), 1u);
}

TEST(EventJournalTest, JsonExportParsesWithSchemaFields) {
  EventJournal j(16);
  j.Record(EventKind::kChecksumFail, "verify_read", 42, 0, 0, /*ok=*/false);
  auto parsed = JsonValue::Parse(j.ToJsonValue().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->elements().size(), 1u);
  const JsonValue& e = events->elements()[0];
  EXPECT_EQ(e.NumberOr("seq", 0), 1.0);
  EXPECT_EQ(e.NumberOr("a", 0), 42.0);
  const JsonValue* kind = e.Find("kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(kind->str(), "checksum_fail");
  const JsonValue* label = e.Find("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->str(), "verify_read");
}

TEST(EventJournalTest, PostMortemDumpRoundTripsAndBundlesSeed) {
  const std::string dir = ::testing::TempDir();
  obs::SetPostMortemDir(dir);
  setenv("EOS_TEST_SEED", "12345", /*overwrite=*/1);
  obs::RecordEvent(EventKind::kChaosFault, "torn_write", 9, 2, 3, false);
  obs::RecordEvent(EventKind::kCrash, "chaos_crash");
  uint64_t dumps_before =
      obs::MetricsRegistry::Default().counter(obs::kJournalPostMortems)
          ->value();

  auto path = obs::WritePostMortem("unit_test");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_NE(path->find("eos_postmortem."), std::string::npos);
  EXPECT_NE(path->find(".unit_test.json"), std::string::npos);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .counter(obs::kJournalPostMortems)
                ->value(),
            dumps_before + 1);

  std::FILE* f = std::fopen(path->c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, got);
  }
  std::fclose(f);
  auto parsed = JsonValue::Parse(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* reason = parsed->Find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->str(), "unit_test");
  const JsonValue* seed = parsed->Find("eos_test_seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->str(), "12345");
  const JsonValue* journal = parsed->Find("journal");
  ASSERT_NE(journal, nullptr);
  const JsonValue* events = journal->Find("events");
  ASSERT_NE(events, nullptr);
  // The injected fault and the crash are both in the dumped narrative.
  bool saw_fault = false, saw_crash = false;
  for (const JsonValue& e : events->elements()) {
    const JsonValue* kind = e.Find("kind");
    if (kind == nullptr) continue;
    if (kind->str() == "chaos_fault") saw_fault = true;
    if (kind->str() == "crash") saw_crash = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_crash);
  std::remove(path->c_str());
  unsetenv("EOS_TEST_SEED");
}

TEST(EventJournalTest, DefaultJournalCountsIntoRegistry) {
  uint64_t before =
      obs::MetricsRegistry::Default().counter(obs::kJournalEvents)->value();
  obs::RecordEvent(EventKind::kNote, "metric_hook");
  EXPECT_EQ(
      obs::MetricsRegistry::Default().counter(obs::kJournalEvents)->value(),
      before + 1);
}

}  // namespace
}  // namespace eos
