// LeafWalker and LobReader: streaming traversal of large objects.

#include "lob/walker.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(LeafWalkerTest, VisitsEveryLeafInOrder) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes model;
  {
    LobAppender app(s.lob.get(), &d);
    for (int i = 0; i < 25; ++i) {
      Bytes chunk = PatternBytes(i, 230);
      EOS_ASSERT_OK(app.Append(chunk));
      model.insert(model.end(), chunk.begin(), chunk.end());
    }
    EOS_ASSERT_OK(app.Finish());
  }
  LeafWalker w(s.lob.get(), d);
  EOS_ASSERT_OK(w.Seek(0));
  uint64_t total = 0;
  Bytes gathered;
  for (;;) {
    Bytes leaf(w.leaf_bytes());
    EOS_ASSERT_OK(w.ReadLeafBytes(0, w.leaf_bytes(), leaf.data()));
    gathered.insert(gathered.end(), leaf.begin(), leaf.end());
    total += w.leaf_bytes();
    auto more = w.Next();
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  EXPECT_EQ(total, d.size());
  EXPECT_EQ(gathered, model);
}

TEST(LeafWalkerTest, SeekLandsMidLeaf) {
  Stack s = Stack::Make(100);
  auto d = s.lob->CreateFrom(PatternBytes(1, 2500));
  ASSERT_TRUE(d.ok());
  LeafWalker w(s.lob.get(), *d);
  EOS_ASSERT_OK(w.Seek(1234));
  EXPECT_EQ(w.local(), 1234u);  // single segment: local == global
}

TEST(LobReaderTest, StreamsWholeObject) {
  Stack s = Stack::Make(128);
  Bytes data = PatternBytes(2, 50000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  LobReader r(s.lob.get(), *d);
  Bytes gathered;
  while (!r.AtEnd()) {
    auto chunk = r.ReadNext(777);
    ASSERT_TRUE(chunk.ok());
    ASSERT_FALSE(chunk->empty());
    gathered.insert(gathered.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(gathered, data);
  EXPECT_EQ(r.position(), data.size());
}

TEST(LobReaderTest, SeekAndChunkedReads) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes model;
  {
    LobAppender app(s.lob.get(), &d);
    for (int i = 0; i < 40; ++i) {
      Bytes chunk = PatternBytes(100 + i, 333);
      EOS_ASSERT_OK(app.Append(chunk));
      model.insert(model.end(), chunk.begin(), chunk.end());
    }
    EOS_ASSERT_OK(app.Finish());
  }
  LobReader r(s.lob.get(), d);
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    uint64_t off = rng.Uniform(model.size());
    EOS_ASSERT_OK(r.Seek(off));
    uint64_t n = rng.Range(1, 2000);
    auto got = r.ReadNext(n);
    ASSERT_TRUE(got.ok());
    size_t want = std::min<size_t>(n, model.size() - off);
    ASSERT_EQ(got->size(), want);
    ASSERT_TRUE(std::equal(got->begin(), got->end(), model.begin() + off));
    EXPECT_EQ(r.position(), off + want);
  }
  // Consecutive reads continue from the position without re-seeking.
  EOS_ASSERT_OK(r.Seek(100));
  auto a = r.ReadNext(50);
  auto b = r.ReadNext(50);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(std::equal(a->begin(), a->end(), model.begin() + 100));
  EXPECT_TRUE(std::equal(b->begin(), b->end(), model.begin() + 150));
}

TEST(LobReaderTest, EmptyObjectAndBounds) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  LobReader r(s.lob.get(), d);
  EXPECT_TRUE(r.AtEnd());
  auto got = r.ReadNext(10);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  EXPECT_TRUE(r.Seek(1).IsOutOfRange());
}

TEST(ReorganizeTest, RestoresOptimalLayout) {
  LobConfig cfg;
  cfg.threshold_pages = 1;  // let the object shatter
  Stack s = Stack::Make(128, 0, cfg);
  Bytes model = PatternBytes(3, 60000);
  auto d = s.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  Random rng(9);
  for (int i = 0; i < 150; ++i) {
    uint64_t off = rng.Uniform(model.size() - 100);
    if (rng.OneIn(2)) {
      Bytes ins = PatternBytes(500 + i, rng.Range(1, 80));
      EOS_ASSERT_OK(s.lob->Insert(&*d, off, ins));
      model.insert(model.begin() + off, ins.begin(), ins.end());
    } else {
      uint64_t n = std::min<uint64_t>(rng.Range(1, 80), model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&*d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
  }
  auto before = s.lob->Stats(*d);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->num_segments, 20u) << "workload should fragment";

  uint64_t lsn_before = d->lsn;
  EOS_ASSERT_OK(s.lob->Reorganize(&*d));
  auto after = s.lob->Stats(*d);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->num_segments, 4u);
  EXPECT_GT(after->leaf_utilization, 0.99);
  EXPECT_EQ(d->lsn, lsn_before) << "reorganize is content-neutral";

  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));

  // No storage leaked by the swap.
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.allocator->num_spaces()} *
                             s.allocator->geometry().space_pages);
}

}  // namespace
}  // namespace eos
