// Parameterized buddy-system property sweep across geometries: randomized
// allocate/free against a reference bitmap, canonical-form invariants,
// count-array consistency and directory persistence, for several page
// sizes and space shapes.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "buddy/buddy_space.h"
#include "common/random.h"
#include "io/pager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

struct GeoParams {
  uint32_t page_size;
  uint32_t space_pages;  // 0 = max for the page size
  uint64_t seed;
};

class BuddyParamTest : public ::testing::TestWithParam<GeoParams> {
 protected:
  void SetUp() override {
    auto geo = BuddyGeometry::Make(GetParam().page_size,
                                   GetParam().space_pages);
    ASSERT_TRUE(geo.ok()) << geo.status().ToString();
    geo_ = *geo;
    device_ = std::make_unique<MemPageDevice>(geo_.page_size,
                                              1 + geo_.space_pages);
    pager_ = std::make_unique<Pager>(device_.get(), 8);
    space_ = std::make_unique<BuddySpace>(pager_.get(), 0, geo_);
    EOS_ASSERT_OK(space_->Format());
  }

  BuddyGeometry geo_;
  std::unique_ptr<MemPageDevice> device_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BuddySpace> space_;
};

TEST_P(BuddyParamTest, RandomAllocFreeAgainstBitmap) {
  Random rng(GetParam().seed);
  const uint32_t n = geo_.space_pages;
  std::vector<bool> used(n, false);
  std::map<uint32_t, uint32_t> live;
  const uint32_t max_req =
      std::min<uint32_t>(geo_.max_segment_pages(), n / 2);
  for (int step = 0; step < 1200; ++step) {
    if (live.empty() || rng.OneIn(2)) {
      uint32_t want = static_cast<uint32_t>(rng.Range(1, max_req));
      auto s = space_->Allocate(want);
      if (s.ok()) {
        ASSERT_EQ(*s % NextPowerOfTwo(want), 0u)
            << "an n-page run starts at a 2^ceil(log2 n)-aligned address";
        for (uint32_t p = *s; p < *s + want; ++p) {
          ASSERT_FALSE(used[p]) << "overlap at page " << p;
          used[p] = true;
        }
        live[*s] = want;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      uint32_t off = static_cast<uint32_t>(rng.Uniform(it->second));
      uint32_t len = static_cast<uint32_t>(rng.Range(1, it->second - off));
      EOS_ASSERT_OK(space_->Free(it->first + off, len));
      for (uint32_t p = it->first + off; p < it->first + off + len; ++p) {
        used[p] = false;
      }
      uint32_t start = it->first, total = it->second;
      live.erase(it);
      if (off > 0) live[start] = off;
      if (off + len < total) live[start + off + len] = total - off - len;
    }
    if (step % 120 == 119) {
      EOS_ASSERT_OK(space_->CheckInvariants());
      uint64_t in_use = 0;
      for (bool u : used) in_use += u;
      auto free_pages = space_->FreePages();
      ASSERT_TRUE(free_pages.ok());
      ASSERT_EQ(*free_pages, n - in_use) << "step " << step;
    }
  }
  // Drain and verify the space returns to a fully free state.
  for (const auto& [start, len] : live) {
    EOS_ASSERT_OK(space_->Free(start, len));
  }
  auto free_pages = space_->FreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, n);
  EOS_ASSERT_OK(space_->CheckInvariants());
}

TEST_P(BuddyParamTest, DirectoryPersistsAcrossReattach) {
  Random rng(GetParam().seed + 1);
  std::vector<std::pair<uint32_t, uint32_t>> live;
  for (int i = 0; i < 40; ++i) {
    auto s = space_->Allocate(static_cast<uint32_t>(
        rng.Range(1, std::min<uint32_t>(geo_.max_segment_pages(), 16))));
    if (s.ok()) live.push_back({*s, 0});
  }
  auto counts_before = space_->Counts();
  ASSERT_TRUE(counts_before.ok());
  EOS_ASSERT_OK(pager_->FlushAll());
  // Re-attach a fresh BuddySpace over the same directory page (as a
  // restart would) and verify identical state.
  Pager pager2(device_.get(), 8);
  BuddySpace space2(&pager2, 0, geo_);
  auto counts_after = space2.Counts();
  ASSERT_TRUE(counts_after.ok());
  EXPECT_EQ(*counts_before, *counts_after);
  EOS_ASSERT_OK(space2.CheckInvariants());
}

std::string GeoName(const ::testing::TestParamInfo<GeoParams>& info) {
  return "ps" + std::to_string(info.param.page_size) + "_sp" +
         std::to_string(info.param.space_pages) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BuddyParamTest,
    ::testing::Values(GeoParams{64, 0, 1}, GeoParams{64, 100, 2},
                      GeoParams{100, 0, 3}, GeoParams{128, 77, 4},
                      GeoParams{256, 0, 5}, GeoParams{512, 999, 6},
                      GeoParams{4096, 2048, 7}, GeoParams{4096, 0, 8},
                      GeoParams{100, 320, 9}, GeoParams{64, 23, 10}),
    GeoName);

}  // namespace
}  // namespace eos
