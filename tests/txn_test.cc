// Section 4.5 machinery: logical logging, idempotent redo/undo via the
// root LSN, index-page shadowing, and hierarchical release locks.

#include <gtest/gtest.h>

#include <cstdio>

#include "lob/lob_manager.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"
#include "txn/recovery.h"
#include "txn/release_locks.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(LogRecordTest, SerializationRoundTrip) {
  LogRecord r;
  r.lsn = 42;
  r.object_id = 7;
  r.op = LogOp::kReplace;
  r.offset = 123456789;
  r.data = PatternBytes(1, 333);
  r.old_data = PatternBytes(2, 222);
  Bytes buf(r.SerializedBytes());
  r.SerializeTo(buf.data());
  size_t consumed = 0;
  auto parsed = LogRecord::Parse(buf, &consumed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(parsed->lsn, 42u);
  EXPECT_EQ(parsed->object_id, 7u);
  EXPECT_EQ(parsed->op, LogOp::kReplace);
  EXPECT_EQ(parsed->offset, 123456789u);
  EXPECT_EQ(parsed->data, r.data);
  EXPECT_EQ(parsed->old_data, r.old_data);
}

TEST(LogRecordTest, ParseRejectsGarbage) {
  Bytes junk(10, 0xFF);
  size_t consumed = 0;
  EXPECT_TRUE(LogRecord::Parse(junk, &consumed).status().IsCorruption());
}

TEST(LogManagerTest, RecordsOperationsWithLsns) {
  Stack s = Stack::Make(100);
  LogManager log;
  s.lob->set_log_manager(&log);
  LobDescriptor d = s.lob->CreateEmpty();
  EOS_ASSERT_OK(s.lob->Append(&d, PatternBytes(1, 500)));
  EOS_ASSERT_OK(s.lob->Insert(&d, 100, PatternBytes(2, 50)));
  EOS_ASSERT_OK(s.lob->Delete(&d, 10, 20));
  EOS_ASSERT_OK(s.lob->Replace(&d, 0, PatternBytes(3, 5)));
  ASSERT_EQ(log.records().size(), 4u);
  EXPECT_EQ(log.records()[0].op, LogOp::kAppend);
  EXPECT_EQ(log.records()[1].op, LogOp::kInsert);
  EXPECT_EQ(log.records()[2].op, LogOp::kDelete);
  EXPECT_EQ(log.records()[2].old_data.size(), 20u);
  EXPECT_EQ(log.records()[3].op, LogOp::kReplace);
  // The root carries the LSN of the latest update (Section 4.5).
  EXPECT_EQ(d.lsn, 4u);
}

TEST(LogManagerTest, FileBackedRoundTrip) {
  std::string path = ::testing::TempDir() + "/eos_log_test.wal";
  Stack s = Stack::Make(100);
  {
    auto log = LogManager::CreateFileBacked(path);
    ASSERT_TRUE(log.ok());
    s.lob->set_log_manager(log->get());
    LobDescriptor d = s.lob->CreateEmpty();
    EOS_ASSERT_OK(s.lob->Append(&d, PatternBytes(4, 300)));
    EOS_ASSERT_OK(s.lob->Delete(&d, 50, 100));
  }
  auto records = LogManager::ReadLogFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].op, LogOp::kAppend);
  EXPECT_EQ((*records)[1].op, LogOp::kDelete);
  std::remove(path.c_str());
}

TEST(RecoveryTest, RedoReplaysLostUpdates) {
  Stack s = Stack::Make(100);
  LogManager log;
  s.lob->set_log_manager(&log);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes a = PatternBytes(5, 700), b = PatternBytes(6, 80);
  EOS_ASSERT_OK(s.lob->Append(&d, a));

  // Take a "checkpoint" of the root, then keep updating.
  LobDescriptor checkpoint = d;
  EOS_ASSERT_OK(s.lob->Insert(&d, 300, b));
  EOS_ASSERT_OK(s.lob->Delete(&d, 0, 100));
  auto want = s.lob->ReadAll(d);
  ASSERT_TRUE(want.ok());

  // Crash: the stale root survives, the storage reflects the new state.
  // Logical redo on our structure requires replaying against the state the
  // checkpointed root describes, so rebuild that state in a fresh stack,
  // then redo the tail of the log.
  Stack s2 = Stack::Make(100);
  LogManager log2;
  s2.lob->set_log_manager(&log2);
  LobDescriptor d2 = s2.lob->CreateEmpty();
  EOS_ASSERT_OK(s2.lob->Append(&d2, a));
  ASSERT_EQ(d2.lsn, 1u);

  Recovery rec(s2.lob.get());
  EOS_ASSERT_OK(rec.Redo(&d2, 0, log.records()));
  auto got = s2.lob->ReadAll(d2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *want);
  EXPECT_EQ(d2.lsn, 3u);

  // Idempotence: redoing again changes nothing.
  EOS_ASSERT_OK(rec.Redo(&d2, 0, log.records()));
  auto again = s2.lob->ReadAll(d2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *want);
}

TEST(RecoveryTest, UndoRollsBackInReverse) {
  Stack s = Stack::Make(100);
  LogManager log;
  s.lob->set_log_manager(&log);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes base = PatternBytes(7, 900);
  EOS_ASSERT_OK(s.lob->Append(&d, base));
  uint64_t stop_lsn = d.lsn;
  auto before = s.lob->ReadAll(d);
  ASSERT_TRUE(before.ok());

  EOS_ASSERT_OK(s.lob->Insert(&d, 123, PatternBytes(8, 77)));
  EOS_ASSERT_OK(s.lob->Replace(&d, 0, PatternBytes(9, 10)));
  EOS_ASSERT_OK(s.lob->Delete(&d, 500, 200));

  Recovery rec(s.lob.get());
  EOS_ASSERT_OK(rec.Undo(&d, 0, log.records(), stop_lsn));
  auto after = s.lob->ReadAll(d);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);

  // Idempotence: undoing again is a no-op.
  EOS_ASSERT_OK(rec.Undo(&d, 0, log.records(), stop_lsn));
  auto again = s.lob->ReadAll(d);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *before);
}

TEST(RecoveryTest, UndoDestroyRebuildsObject) {
  Stack s = Stack::Make(100);
  LogManager log;
  s.lob->set_log_manager(&log);
  Bytes data = PatternBytes(10, 2500);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  d->lsn = 0;  // CreateFrom bypasses per-op logging for the initial build
  EOS_ASSERT_OK(s.lob->Append(&*d, PatternBytes(11, 100)));
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
  EXPECT_EQ(d->size(), 0u);
  // Destroy is recorded with the full before-image; undo restores it.
  Recovery rec(s.lob.get());
  EOS_ASSERT_OK(rec.Undo(&*d, 0, log.records(), 0));
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), data.size());
  EXPECT_EQ(Bytes(all->begin(), all->begin() + 2500), data);
}

TEST(ShadowingTest, IndexPagesAreNeverOverwritten) {
  LobConfig cfg;
  Stack s = Stack::Make(100, 0, cfg);
  s.lob->set_shadowing(true);
  Bytes model = PatternBytes(12, 4000);
  auto d = s.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  Random rng(55);
  for (int i = 0; i < 40; ++i) {
    Bytes ins = PatternBytes(500 + i, rng.Range(1, 150));
    uint64_t off = rng.Uniform(model.size() + 1);
    EOS_ASSERT_OK(s.lob->Insert(&*d, off, ins));
    model.insert(model.begin() + off, ins.begin(), ins.end());
    uint64_t del = rng.Uniform(model.size());
    uint64_t n = std::min<uint64_t>(rng.Range(1, 100), model.size() - del);
    EOS_ASSERT_OK(s.lob->Delete(&*d, del, n));
    model.erase(model.begin() + del, model.begin() + del + n);
  }
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.allocator->num_spaces()} *
                             s.allocator->geometry().space_pages)
      << "shadowing leaked index pages";
}

TEST(ReleaseLockTest, LocksAndHierarchy) {
  ReleaseLockTable table(/*space_pages=*/64, /*max_type=*/6);
  table.LockForRelease(1, Extent{8, 4});
  EXPECT_TRUE(table.IsReleaseLocked(8));
  EXPECT_TRUE(table.IsReleaseLocked(11));  // descendant pages count
  EXPECT_FALSE(table.IsReleaseLocked(12));
  // Intention locks on every buddy ancestor of the freed segment.
  EXPECT_TRUE(table.HasIntentionLock(8, 3));   // [8,16)
  EXPECT_TRUE(table.HasIntentionLock(0, 4));   // [0,16)
  EXPECT_TRUE(table.HasIntentionLock(0, 6));   // [0,64)
  EXPECT_FALSE(table.HasIntentionLock(16, 3));

  auto released = table.Commit(1);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], (Extent{8, 4}));
  EXPECT_FALSE(table.IsReleaseLocked(8));
  EXPECT_FALSE(table.HasIntentionLock(0, 4));
}

TEST(ReleaseLockTest, DeferredFreeSemantics) {
  Stack s = Stack::Make(128, 64);
  ReleaseLockTable table(64, s.allocator->geometry().max_type);
  auto e = s.allocator->Allocate(8);
  ASSERT_TRUE(e.ok());
  // The transaction "frees" the segment: buddy state untouched until
  // commit, so the space is not reusable yet.
  table.LockForRelease(42, *e);
  auto mid = s.allocator->TotalFreePages();
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 64u - 8u);
  for (const Extent& ext : table.Commit(42)) {
    EOS_ASSERT_OK(s.allocator->Free(ext));
  }
  auto after = s.allocator->TotalFreePages();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 64u);
}

TEST(ReleaseLockTest, AbortKeepsSegmentsAllocated) {
  Stack s = Stack::Make(128, 64);
  ReleaseLockTable table(64, s.allocator->geometry().max_type);
  auto e = s.allocator->Allocate(4);
  ASSERT_TRUE(e.ok());
  table.LockForRelease(7, *e);
  table.Abort(7);  // the free is undone
  EXPECT_EQ(table.lock_count(), 0u);
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, 60u);
  // The segment is still owned and can be freed normally later.
  EOS_ASSERT_OK(s.allocator->Free(*e));
}

}  // namespace
}  // namespace eos
