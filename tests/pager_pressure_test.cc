// Pin-leak and eviction-pressure test: the whole stack must keep working
// with a pathologically tiny page cache — every operation must unpin what
// it pins, or the pager runs out of frames ("Busy: all frames pinned").

#include <gtest/gtest.h>

#include "io/page_device.h"
#include "io/pager.h"
#include "lob/lob_manager.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(PagerPressureTest, DeepTreeWorkloadWithThreeFrames) {
  LobConfig cfg;
  cfg.max_root_bytes = 8 + 2 * 16 + 8;  // deep tree
  cfg.threshold_pages = 2;
  cfg.max_segment_pages = 4;
  // 3 frames: barely enough for a parent + two sibling loads.
  Stack s = Stack::Make(128, 0, cfg, 1, /*pager_frames=*/3);
  Bytes model;
  LobDescriptor d = s.lob->CreateEmpty();
  Random rng(3);
  for (int step = 0; step < 300; ++step) {
    if (model.empty() || rng.OneIn(2)) {
      Bytes data = PatternBytes(step, rng.Range(1, 500));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Insert(&d, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 400),
                                      model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
    if (step % 50 == 49) {
      auto all = s.lob->ReadAll(d);
      ASSERT_TRUE(all.ok()) << all.status().ToString();
      ASSERT_EQ(*all, model) << "step " << step;
      EOS_ASSERT_OK(s.lob->CheckInvariants(d));
    }
  }
  EOS_ASSERT_OK(s.lob->Destroy(&d));
}

TEST(PagerPressureTest, SingleFramePagerStillWorksForFlatObjects) {
  // Depth-0 objects only ever pin one page (the buddy directory).
  Stack s = Stack::Make(4096, 0, LobConfig{}, 1, /*pager_frames=*/1);
  Bytes data = PatternBytes(1, 100000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
}

TEST(PagerPressureTest, CountersMatchForcedEvictionSequence) {
  // A 2-frame pager over a 8-page device, driven through a fixed access
  // sequence whose hits, misses, evictions, and dirty writebacks are all
  // known in advance. The per-pager accessors and the process-wide obs
  // counters must both advance by exactly those amounts.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t hit0 = reg.counter(obs::kPagerHit)->value();
  const uint64_t miss0 = reg.counter(obs::kPagerMiss)->value();
  const uint64_t evict0 = reg.counter(obs::kPagerEviction)->value();
  const uint64_t wb0 = reg.counter(obs::kPagerWriteback)->value();
  const int64_t cached0 = reg.gauge(obs::kPagerCachedPages)->value();

  MemPageDevice dev(128, 8);
  Pager pager(&dev, /*capacity=*/2);
  auto touch = [&](PageId id, bool dirty) {
    auto h = pager.Fetch(id);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    if (dirty) h->MarkDirty();
  };
  touch(0, false);  // miss 1 (cold)
  touch(0, false);  // hit 1
  touch(1, false);  // miss 2 (second frame)
  touch(2, false);  // miss 3, evicts LRU page 0 (clean)     -> eviction 1
  touch(2, false);  // hit 2
  touch(3, true);   // miss 4, evicts LRU page 1 (clean)     -> eviction 2
  touch(2, false);  // hit 3 (refreshes page 2's LRU tick)
  touch(0, false);  // miss 5, evicts LRU page 3 (dirty)     -> eviction 3,
                    //                                          writeback 1
  EXPECT_EQ(pager.hits(), 3u);
  EXPECT_EQ(pager.misses(), 5u);
  EXPECT_EQ(pager.evictions(), 3u);
  EXPECT_EQ(pager.dirty_writebacks(), 1u);
  EXPECT_EQ(pager.cached_pages(), 2u);

  if (obs::Enabled()) {
    EXPECT_EQ(reg.counter(obs::kPagerHit)->value() - hit0, 3u);
    EXPECT_EQ(reg.counter(obs::kPagerMiss)->value() - miss0, 5u);
    EXPECT_EQ(reg.counter(obs::kPagerEviction)->value() - evict0, 3u);
    EXPECT_EQ(reg.counter(obs::kPagerWriteback)->value() - wb0, 1u);
    EXPECT_EQ(reg.gauge(obs::kPagerCachedPages)->value() - cached0, 2);
  }
}

}  // namespace
}  // namespace eos
