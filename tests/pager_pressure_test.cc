// Pin-leak and eviction-pressure test: the whole stack must keep working
// with a pathologically tiny page cache — every operation must unpin what
// it pins, or the pager runs out of frames ("Busy: all frames pinned").

#include <gtest/gtest.h>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(PagerPressureTest, DeepTreeWorkloadWithThreeFrames) {
  LobConfig cfg;
  cfg.max_root_bytes = 8 + 2 * 16 + 8;  // deep tree
  cfg.threshold_pages = 2;
  cfg.max_segment_pages = 4;
  // 3 frames: barely enough for a parent + two sibling loads.
  Stack s = Stack::Make(128, 0, cfg, 1, /*pager_frames=*/3);
  Bytes model;
  LobDescriptor d = s.lob->CreateEmpty();
  Random rng(3);
  for (int step = 0; step < 300; ++step) {
    if (model.empty() || rng.OneIn(2)) {
      Bytes data = PatternBytes(step, rng.Range(1, 500));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Insert(&d, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 400),
                                      model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
    if (step % 50 == 49) {
      auto all = s.lob->ReadAll(d);
      ASSERT_TRUE(all.ok()) << all.status().ToString();
      ASSERT_EQ(*all, model) << "step " << step;
      EOS_ASSERT_OK(s.lob->CheckInvariants(d));
    }
  }
  EOS_ASSERT_OK(s.lob->Destroy(&d));
}

TEST(PagerPressureTest, SingleFramePagerStillWorksForFlatObjects) {
  // Depth-0 objects only ever pin one page (the buddy directory).
  Stack s = Stack::Make(4096, 0, LobConfig{}, 1, /*pager_frames=*/1);
  Bytes data = PatternBytes(1, 100000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
}

}  // namespace
}  // namespace eos
