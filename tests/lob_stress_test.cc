// Heavier randomized stress: realistic 4 KB pages, longer operation
// sequences, deep trees via tiny roots, and a three-way differential test
// running EOS, Exodus and Starburst on the same operation stream.

#include <gtest/gtest.h>

#include "baselines/exodus/exodus_manager.h"
#include "baselines/starburst/starburst_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(LobStressTest, LongMixedWorkload4K) {
  LobConfig cfg;
  cfg.threshold_pages = 8;
  Stack s = Stack::Make(4096, 4096, cfg);
  Bytes model;
  LobDescriptor d = s.lob->CreateEmpty();
  Random rng(20260704);
  for (int step = 0; step < 1200; ++step) {
    int op = static_cast<int>(rng.Uniform(12));
    if (model.empty()) op = 0;
    if (op <= 3) {
      Bytes data = PatternBytes(step, rng.Range(1, 30000));
      EOS_ASSERT_OK(s.lob->Append(&d, data));
      model.insert(model.end(), data.begin(), data.end());
    } else if (op <= 6) {
      Bytes data = PatternBytes(step + 1, rng.Range(1, 20000));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Insert(&d, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else if (op <= 9) {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 25000),
                                      model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    } else if (op == 10) {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 10000),
                                      model.size() - off);
      Bytes data = PatternBytes(step + 2, n);
      EOS_ASSERT_OK(s.lob->Replace(&d, off, data));
      std::copy(data.begin(), data.end(), model.begin() + off);
    } else {
      uint64_t keep = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Truncate(&d, keep));
      model.resize(keep);
    }
    ASSERT_EQ(d.size(), model.size()) << "step " << step;
    if (step % 100 == 99) {
      auto all = s.lob->ReadAll(d);
      ASSERT_TRUE(all.ok()) << all.status().ToString();
      ASSERT_EQ(*all, model) << "step " << step;
      EOS_ASSERT_OK(s.lob->CheckInvariants(d));
      EOS_ASSERT_OK(s.allocator->CheckInvariants());
    }
  }
  EOS_ASSERT_OK(s.lob->Destroy(&d));
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.allocator->num_spaces()} * 4096u);
}

TEST(LobStressTest, DeepTreeTinyRootTinyPages) {
  LobConfig cfg;
  cfg.max_root_bytes = 8 + 2 * 16 + 8;  // 2-entry root
  cfg.threshold_pages = 2;
  cfg.max_segment_pages = 4;
  Stack s = Stack::Make(64, 0, cfg);  // 64-byte pages: 3-entry nodes
  Bytes model;
  LobDescriptor d = s.lob->CreateEmpty();
  Random rng(17);
  for (int step = 0; step < 600; ++step) {
    if (model.empty() || rng.OneIn(2)) {
      Bytes data = PatternBytes(step, rng.Range(1, 400));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Insert(&d, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 300),
                                      model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
    ASSERT_EQ(d.size(), model.size()) << "step " << step;
    if (step % 50 == 49) {
      auto all = s.lob->ReadAll(d);
      ASSERT_TRUE(all.ok());
      ASSERT_EQ(*all, model) << "step " << step;
      EOS_ASSERT_OK(s.lob->CheckInvariants(d));
    }
  }
  auto st = s.lob->Stats(d);
  ASSERT_TRUE(st.ok());
  EXPECT_GE(st->depth, 3u) << "tiny roots and pages should force depth";
}

// The same operation stream applied to all three managers must yield the
// same bytes — a three-way differential oracle.
TEST(LobStressTest, ThreeWayDifferential) {
  Stack se = Stack::Make(512);
  ExodusConfig xcfg;
  xcfg.leaf_pages = 2;
  Stack sx = Stack::Make(512);
  ExodusManager exodus(sx.pager.get(), sx.allocator.get(), xcfg);
  Stack ss = Stack::Make(512);
  StarburstManager starburst(ss.allocator.get(), ss.device.get(), 64);

  LobDescriptor de = se.lob->CreateEmpty();
  LobDescriptor dx = exodus.CreateEmpty();
  StarburstDescriptor dsb = starburst.CreateEmpty();
  Bytes model;
  Random rng(777);
  for (int step = 0; step < 150; ++step) {
    int op = static_cast<int>(rng.Uniform(9));
    if (model.empty()) op = 0;
    if (op <= 2) {
      Bytes data = PatternBytes(step, rng.Range(1, 2000));
      EOS_ASSERT_OK(se.lob->Append(&de, data));
      EOS_ASSERT_OK(exodus.Append(&dx, data));
      EOS_ASSERT_OK(starburst.Append(&dsb, data));
      model.insert(model.end(), data.begin(), data.end());
    } else if (op <= 5) {
      Bytes data = PatternBytes(step + 5, rng.Range(1, 1500));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(se.lob->Insert(&de, off, data));
      EOS_ASSERT_OK(exodus.Insert(&dx, off, data));
      EOS_ASSERT_OK(starburst.Insert(&dsb, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 1500),
                                      model.size() - off);
      EOS_ASSERT_OK(se.lob->Delete(&de, off, n));
      EOS_ASSERT_OK(exodus.Delete(&dx, off, n));
      EOS_ASSERT_OK(starburst.Delete(&dsb, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
    if (step % 15 == 14) {
      auto ae = se.lob->ReadAll(de);
      auto ax = exodus.ReadAll(dx);
      auto asb = starburst.ReadAll(dsb);
      ASSERT_TRUE(ae.ok() && ax.ok() && asb.ok());
      ASSERT_EQ(*ae, model) << "eos diverged at " << step;
      ASSERT_EQ(*ax, model) << "exodus diverged at " << step;
      ASSERT_EQ(*asb, model) << "starburst diverged at " << step;
    }
  }
}

}  // namespace
}  // namespace eos
