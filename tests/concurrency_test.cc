// Concurrency: the shared substrate (device, pager, buddy allocator) is
// safe under parallel use; objects are independent, so threads editing
// their own objects over one volume must not interfere (the paper locks
// per object root, Section 4.5 — cross-object work needs no such lock).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(ConcurrencyTest, ParallelAllocateFree) {
  Stack s = Stack::Make(1024, 2000);
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      std::vector<Extent> live;
      for (int i = 0; i < 500; ++i) {
        if (live.empty() || rng.OneIn(2)) {
          auto e = s.allocator->Allocate(
              static_cast<uint32_t>(rng.Range(1, 32)));
          if (!e.ok()) {
            ++failures;
            return;
          }
          live.push_back(*e);
        } else {
          size_t idx = rng.Uniform(live.size());
          if (!s.allocator->Free(live[idx]).ok()) {
            ++failures;
            return;
          }
          live.erase(live.begin() + idx);
        }
      }
      for (const Extent& e : live) {
        if (!s.allocator->Free(e).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.allocator->num_spaces()} * 2000u);
}

TEST(ConcurrencyTest, ParallelObjectsOverOneVolume) {
  LobConfig cfg;
  cfg.threshold_pages = 4;
  Stack s = Stack::Make(1024, 3900, cfg, 1, 256);
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(7000 + t);
      Bytes model = PatternBytes(t, 20000);
      auto d = s.lob->CreateFrom(model);
      if (!d.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 150; ++i) {
        uint64_t off = rng.Uniform(model.size());
        if (rng.OneIn(2)) {
          Bytes ins = PatternBytes(t * 1000 + i, rng.Range(1, 600));
          if (!s.lob->Insert(&*d, off, ins).ok()) {
            ++failures;
            return;
          }
          model.insert(model.begin() + off, ins.begin(), ins.end());
        } else {
          uint64_t n = std::min<uint64_t>(rng.Range(1, 600),
                                          model.size() - off);
          if (!s.lob->Delete(&*d, off, n).ok()) {
            ++failures;
            return;
          }
          model.erase(model.begin() + off, model.begin() + off + n);
        }
      }
      auto all = s.lob->ReadAll(*d);
      if (!all.ok() || *all != model) {
        ++failures;
        return;
      }
      if (!s.lob->Destroy(&*d).ok()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.allocator->num_spaces()} * 3900u)
      << "parallel objects leaked pages";
}

TEST(ConcurrencyTest, ParallelReadersOnSharedObject) {
  Stack s = Stack::Make(1024, 3900, LobConfig{}, 1, 256);
  Bytes data = PatternBytes(5, 300000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Random rng(42 + t);
      Bytes out;
      for (int i = 0; i < 200; ++i) {
        uint64_t off = rng.Uniform(data.size() - 1);
        uint64_t n = rng.Range(1, 5000);
        if (!s.lob->Read(*d, off, n, &out).ok()) {
          ++failures;
          return;
        }
        size_t want = std::min<size_t>(n, data.size() - off);
        if (out.size() != want ||
            !std::equal(out.begin(), out.end(), data.begin() + off)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0) << "concurrent readers must not interfere";
}

}  // namespace
}  // namespace eos
