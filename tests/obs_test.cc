// Unit tests for the observability layer: metric semantics (counters,
// gauges, power-of-two histograms), the registry JSON exporter, span
// nesting and ring wraparound in the OpTracer, the on-disk snapshot
// sidecar, and the IoStats arithmetic the spans are built on.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "io/io_stats.h"
#include "obs/event_journal.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/op_tracer.h"
#include "obs/snapshot.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::JsonValue;
using obs::MetricsRegistry;
using obs::OpSpan;
using obs::OpTracer;
using obs::ScopedOp;

// Restores the process-wide enabled flag on scope exit so a failing test
// cannot leave the rest of the binary silently unobserved.
struct EnabledGuard {
  bool was = obs::Enabled();
  ~EnabledGuard() { obs::SetEnabled(was); }
};

TEST(MetricsTest, CounterIncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeSetAddAndNegative) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.value(), 10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, DisabledSuppressesAllUpdates) {
  EnabledGuard guard;
  obs::SetEnabled(false);
  Counter c;
  Gauge g;
  Histogram h;
  c.Inc(7);
  g.Set(7);
  g.Add(7);
  h.Record(7);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);

  // Spans are inert too: nothing reaches the tracer ring.
  OpTracer tracer(8);
  { ScopedOp span("test.disabled", 1, nullptr, &tracer); }
  EXPECT_EQ(tracer.total(), 0u);

  obs::SetEnabled(true);
  c.Inc(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(HistogramTest, PowerOfTwoBucketBoundaries) {
  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(7), 3u);
  EXPECT_EQ(Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
}

TEST(HistogramTest, RecordAggregatesAndPercentilesAreConservative) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  for (uint64_t v : {0ull, 1ull, 2ull, 4ull, 8ull}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  // Quantiles report the inclusive upper bound of the rank's bucket, so
  // they never understate the true order statistic.
  EXPECT_GE(h.Percentile(0.5), 1u);   // true median is 2
  EXPECT_LE(h.Percentile(0.5), 3u);
  EXPECT_GE(h.Percentile(1.0), h.max());
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(MetricsTest, RegistryPointersAreStableAndNamed) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* a = reg.counter("test.obs.stable");
  a->Inc(3);
  EXPECT_EQ(reg.counter("test.obs.stable"), a);
  EXPECT_EQ(reg.counter("test.obs.stable")->value(), 3u);
  // Well-known instrumentation names resolve (the components registered
  // them at static init or construction).
  EXPECT_NE(reg.counter(obs::kPagerHit), nullptr);
  EXPECT_NE(reg.counter(obs::kBuddyAlloc), nullptr);
}

TEST(MetricsTest, IntegrityMetricNamesArePinned) {
  // eos_inspect and external dashboards key on these exact strings; a
  // rename is a breaking change and must show up here.
  EXPECT_STREQ(obs::kIoChecksumFail, "io.checksum_fail");
  EXPECT_STREQ(obs::kIoReadRetry, "io.read_retry");
  EXPECT_STREQ(obs::kIoWriteRetry, "io.write_retry");
  EXPECT_STREQ(obs::kIoQuarantinedPages, "io.quarantined_pages");
  EXPECT_STREQ(obs::kScrubPagesVerified, "scrub.pages_verified");
  EXPECT_STREQ(obs::kScrubCorruptPages, "scrub.corrupt_pages");
  EXPECT_STREQ(obs::kScrubRepairedObjects, "scrub.repaired_objects");
  MetricsRegistry& reg = MetricsRegistry::Default();
  for (const char* name :
       {obs::kIoChecksumFail, obs::kIoReadRetry, obs::kIoWriteRetry,
        obs::kIoQuarantinedPages, obs::kScrubPagesVerified,
        obs::kScrubCorruptPages, obs::kScrubRepairedObjects}) {
    ASSERT_NE(reg.counter(name), nullptr) << name;
    EXPECT_EQ(reg.counter(name), reg.counter(name)) << name;
  }
}

TEST(MetricsTest, JsonExportRoundTripsThroughParser) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.counter("test.obs.json_counter")->Inc(5);
  reg.gauge("test.obs.json_gauge")->Set(-4);
  Histogram* h = reg.histogram("test.obs.json_hist");
  h->Record(16);
  h->Record(100);

  auto parsed = JsonValue::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->NumberOr("test.obs.json_counter", -1), 5.0);
  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->NumberOr("test.obs.json_gauge", 0), -4.0);
  const JsonValue* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hist = hists->Find("test.obs.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->NumberOr("count", 0), 2.0);
  EXPECT_EQ(hist->NumberOr("sum", 0), 116.0);
  EXPECT_EQ(hist->NumberOr("max", 0), 100.0);
  EXPECT_GE(hist->NumberOr("p99", 0), 100.0);
}

TEST(OpTracerTest, SpansNestAndRecordDepthOldestFirst) {
  OpTracer tracer(16);
  {
    ScopedOp outer("test.outer", 11, nullptr, &tracer);
    {
      ScopedOp inner("test.inner", 22, nullptr, &tracer);
      (void)inner;
    }
    outer.set_ok(false);
  }
  std::vector<OpSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes first, so it is the older span.
  EXPECT_STREQ(spans[0].op, "test.inner");
  EXPECT_EQ(spans[0].object_id, 22u);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_TRUE(spans[0].ok);
  EXPECT_EQ(spans[0].seq, 1u);
  EXPECT_STREQ(spans[1].op, "test.outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_FALSE(spans[1].ok);
  EXPECT_EQ(spans[1].seq, 2u);
  EXPECT_EQ(tracer.total(), 2u);
}

TEST(OpTracerTest, CloseMarksSpanFromStatus) {
  OpTracer tracer(4);
  {
    ScopedOp span("test.close", 0, nullptr, &tracer);
    Status s = span.Close(Status::IOError("boom"));
    EXPECT_TRUE(s.IsIOError());
  }
  std::vector<OpSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].ok);
}

TEST(OpTracerTest, RingWrapsKeepingNewestSpans) {
  OpTracer tracer(OpTracer::kDefaultCapacity);
  tracer.SetCapacity(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    ScopedOp span("test.wrap", static_cast<uint64_t>(i), nullptr, &tracer);
    (void)span;
  }
  EXPECT_EQ(tracer.total(), 10u);
  std::vector<OpSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first and only the 4 most recent survive: seqs 7..10.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 7u + i);
    EXPECT_EQ(spans[i].object_id, 6u + i);
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_EQ(tracer.total(), 0u) << "Clear is a full reset";
}

TEST(OpTracerTest, JsonExportCarriesSpanFields) {
  OpTracer tracer(4);
  { ScopedOp span("test.json", 9, nullptr, &tracer); }
  JsonValue arr = tracer.ToJsonValue();
  ASSERT_EQ(arr.elements().size(), 1u);
  const JsonValue& s = arr.elements()[0];
  EXPECT_EQ(s.NumberOr("object", 0), 9.0);
  EXPECT_EQ(s.NumberOr("depth", 7), 0.0);
  const JsonValue* op = s.Find("op");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->str(), "test.json");
}

TEST(SnapshotTest, WriteReadRoundTripAndMissingFile) {
  const std::string path =
      ::testing::TempDir() + "/eos_obs_snapshot_test.json";
  std::remove(path.c_str());
  auto missing = obs::ReadSnapshotFile(path);
  EXPECT_TRUE(missing.status().IsNotFound())
      << missing.status().ToString();

  MetricsRegistry::Default().counter("test.obs.snapshot")->Inc(13);
  EOS_ASSERT_OK(obs::WriteSnapshotFile(path));
  auto snap = obs::ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->NumberOr("version", 0), 1.0);
  const JsonValue* metrics = snap->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->NumberOr("test.obs.snapshot", 0), 13.0);
  std::remove(path.c_str());

  EXPECT_EQ(obs::SnapshotPathFor("/tmp/v.vol"), "/tmp/v.vol.obs.json");
}

TEST(MetricsTest, PrometheusExpositionFormat) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.counter("test.obs.prom_counter")->Inc(9);
  reg.gauge("test.obs.prom_gauge")->Set(-2);
  Histogram* h = reg.histogram("test.obs.prom_hist");
  h->Record(0);
  h->Record(5);
  std::string out = reg.RenderPrometheus();

  // Names gain the eos_ prefix, dots become underscores, counters _total.
  EXPECT_NE(out.find("# TYPE eos_test_obs_prom_counter_total counter"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("eos_test_obs_prom_counter_total 9"), std::string::npos);
  EXPECT_NE(out.find("# TYPE eos_test_obs_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(out.find("eos_test_obs_prom_gauge -2"), std::string::npos);
  // Histograms render cumulative buckets ending in the mandatory +Inf,
  // plus _sum and _count.
  EXPECT_NE(out.find("# TYPE eos_test_obs_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(out.find("eos_test_obs_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("eos_test_obs_prom_hist_sum 5"), std::string::npos);
  EXPECT_NE(out.find("eos_test_obs_prom_hist_count 2"), std::string::npos);
  // Cumulative: the 0-bucket holds 1, the bucket covering 5 holds 2.
  EXPECT_NE(out.find("eos_test_obs_prom_hist_bucket{le=\"0\"} 1"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("eos_test_obs_prom_hist_bucket{le=\"7\"} 2"),
            std::string::npos)
      << out;
  // Every line is either a comment or "name[{labels}] value".
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "output ends with a newline";
    std::string line = out.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    pos = eol + 1;
  }
}

TEST(SnapshotTest, ChromeTraceExportParsesAndNests) {
  obs::OpTracer::Default().Clear();
  {
    ScopedOp outer("test.chrome_outer", 5, nullptr);
    ScopedOp inner("test.chrome_inner", 5, nullptr);
    (void)inner;
  }
  auto snap = JsonValue::Parse(obs::SnapshotJson());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto trace = JsonValue::Parse(obs::ChromeTraceJson(*snap));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->elements().size(), 2u);
  bool saw_outer = false, saw_inner = false;
  for (const JsonValue& e : events->elements()) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->str(), "X") << "complete events";
    EXPECT_GE(e.NumberOr("ts", -1), 0.0) << "timestamps never negative";
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->str() == "test.chrome_outer") {
      saw_outer = true;
      EXPECT_EQ(e.NumberOr("tid", 0), 1.0) << "depth 0 -> tid 1";
    }
    if (name->str() == "test.chrome_inner") {
      saw_inner = true;
      EXPECT_EQ(e.NumberOr("tid", 0), 2.0) << "depth 1 -> tid 2";
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(SnapshotTest, SnapshotWriterWritesImmediatelyAndOnStop) {
  const std::string path =
      ::testing::TempDir() + "/eos_obs_snapshot_writer_test.json";
  std::remove(path.c_str());
  obs::SnapshotWriter writer;
  EXPECT_FALSE(writer.running());
  writer.Start(path, /*interval_ms=*/3'600'000);  // no periodic tick fires
  EXPECT_TRUE(writer.running());
  // The initial write happens before Start returns control flow to the
  // loop's first wait, but give the thread a moment under sanitizers.
  for (int i = 0; i < 1000 && writer.writes() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(writer.writes(), 1u);
  writer.Stop();
  EXPECT_FALSE(writer.running());
  uint64_t after_stop = writer.writes();
  EXPECT_GE(after_stop, 2u) << "Stop flushes a final snapshot";
  writer.Stop();  // idempotent
  EXPECT_EQ(writer.writes(), after_stop);
  auto snap = obs::ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->NumberOr("version", 0), 1.0);
  std::remove(path.c_str());
}

TEST(MetricsTest, DisabledJournalAndCostHooksAreInert) {
  EnabledGuard guard;
  obs::SetEnabled(false);
  // Journal: no ring registration, no sequence advance (the EOS_OBS=0
  // zero-overhead contract; the journal's own suite covers this deeper).
  obs::EventJournal j(8);
  obs::RecordEvent(obs::EventKind::kNote, "inert");
  j.Record(obs::EventKind::kNote, "inert");
  EXPECT_EQ(j.total_recorded(), 0u);
  EXPECT_EQ(j.threads_seen(), 0u);
  // Prometheus rendering still works while disabled (values just freeze).
  EXPECT_NE(MetricsRegistry::Default().RenderPrometheus().find("# TYPE"),
            std::string::npos);
}

TEST(IoStatsTest, DifferenceAndToString) {
  IoStats a;
  a.read_calls = 10;
  a.write_calls = 4;
  a.pages_read = 30;
  a.pages_written = 8;
  a.seeks = 12;
  IoStats b;
  b.read_calls = 3;
  b.write_calls = 1;
  b.pages_read = 10;
  b.pages_written = 2;
  b.seeks = 5;
  IoStats d = a - b;
  EXPECT_EQ(d.read_calls, 7u);
  EXPECT_EQ(d.write_calls, 3u);
  EXPECT_EQ(d.pages_read, 20u);
  EXPECT_EQ(d.pages_written, 6u);
  EXPECT_EQ(d.seeks, 7u);
  EXPECT_EQ(d.transfers(), 26u);
  a -= b;
  EXPECT_EQ(a.seeks, 7u);
  std::string s = d.ToString();
  EXPECT_NE(s.find("read_calls=7"), std::string::npos) << s;
  EXPECT_NE(s.find("write_calls=3"), std::string::npos) << s;
  EXPECT_NE(s.find("seeks=7"), std::string::npos) << s;
}

}  // namespace
}  // namespace eos
