// Exhaustive crash-point recovery torture (ISSUE: crash-consistency
// harness). A scripted multi-object workload runs on a crash-safe Database
// over a ChaosPageDevice; the device loses power after every k-th write
// call (k = 0..W-1, some with a torn final write), the persisted image is
// re-opened by a fresh stack, and Recover() must restore exactly the
// committed oracle state: every committed object byte-for-byte equal to
// its model, every uncommitted effect gone, invariant checkers green.
//
// Failures print the op trace and the seed; re-run with EOS_TEST_SEED=<n>.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "eos/database.h"
#include "io/chaos_device.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"
#include "txn/recovery.h"

namespace eos {
namespace {

// Failed assertions dump the flight-recorder journal (test_util.h).
const bool g_postmortem_listener = testing_util::InstallPostMortemOnFailure();

using testing_util::ApplyToModel;
using testing_util::FormatOpTrace;
using testing_util::LobOp;
using testing_util::ModelLob;
using testing_util::PatternBytes;
using testing_util::PayloadFor;
using testing_util::RandomOp;
using testing_util::TestSeed;

constexpr uint32_t kPageSize = 256;
constexpr int kObjects = 4;
constexpr int kMutationOps = 30;
constexpr int kDropStep = kMutationOps / 2;  // DropObject of the last object

DatabaseOptions TortureOptions(bool mvcc = false) {
  DatabaseOptions opt;
  opt.page_size = kPageSize;
  opt.pager_frames = 16;
  opt.crash_safe = true;
  opt.mvcc = mvcc;
  return opt;
}

// Committed oracle state: object id -> bytes, nullopt once destroyed.
using CommittedMap = std::map<uint64_t, std::optional<std::string>>;

// One scripted workload step: a LobOp against one object, or a DropObject.
struct ScriptedOp {
  int target = 0;
  bool drop = false;
  LobOp op;
};

// Generates the deterministic mutation script, evolving a copy of the
// models so every op's coordinates are valid when it runs. Only logged
// operations (append/insert/delete/replace) plus one drop — what the
// write-ahead log can replay.
std::vector<ScriptedOp> MakeScript(uint64_t seed,
                                   std::vector<ModelLob> models) {
  std::mt19937 rng(static_cast<uint32_t>(seed ^ 0x5eed5eed));
  std::vector<ScriptedOp> script;
  for (int i = 0; i < kMutationOps; ++i) {
    ScriptedOp s;
    if (i == kDropStep) {
      s.target = kObjects - 1;
      s.drop = true;
      models[s.target].Destroy();
    } else {
      s.target = static_cast<int>(rng() % (kObjects - 1));
      s.op = RandomOp(&rng, models[s.target], kPageSize, seed * 100 + i,
                      /*logged_only=*/true);
      ApplyToModel(s.op, &models[s.target]);
    }
    script.push_back(s);
  }
  return script;
}

std::string ScriptTrace(const std::vector<ScriptedOp>& script) {
  std::vector<LobOp> ops;
  for (const ScriptedOp& s : script) {
    LobOp op = s.op;
    if (s.drop) op.kind = LobOp::kDestroy;
    ops.push_back(op);
  }
  return FormatOpTrace(ops);
}

// A full crash-safe stack on a chaos device, with the objects created,
// committed, and checkpointed. The log outlives the database (AttachLog
// keeps a raw pointer).
struct Harness {
  std::unique_ptr<LogManager> log;
  std::unique_ptr<Database> db;
  ChaosPageDevice* chaos = nullptr;
  std::vector<uint64_t> ids;
  uint64_t setup_lsn = 0;  // last LSN of the setup phase
  bool mvcc = false;
};

Harness MakeHarness(uint64_t seed, std::vector<ModelLob>* models,
                    bool mvcc = false) {
  Harness h;
  h.mvcc = mvcc;
  h.log = std::make_unique<LogManager>();
  auto chaos = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(kPageSize, 1), seed);
  h.chaos = chaos.get();
  auto db = Database::CreateOnDevice(std::move(chaos), TortureOptions(mvcc));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return h;
  h.db = std::move(db).value();
  h.db->AttachLog(h.log.get());
  models->clear();
  for (int i = 0; i < kObjects; ++i) {
    Bytes init = PatternBytes(seed * 10 + i, 2000 + 900 * i);
    auto id = h.db->CreateObjectFrom(init);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return h;
    h.ids.push_back(*id);
    // Under mvcc the Database group-commits its own marker per mutation.
    if (!mvcc) EXPECT_TRUE(h.log->LogCommit(*id).ok());
    ModelLob m;
    m.Append(init);
    models->push_back(std::move(m));
  }
  Status cp = h.db->Checkpoint();
  EXPECT_TRUE(cp.ok()) << cp.ToString();
  h.setup_lsn = h.log->last_lsn();
  return h;
}

// Replays the script; each op that fully applies is committed (marker
// logged) and its oracle state recorded. Stops when the device crashes.
// Optionally records per-op commit LSNs, oracle snapshots, and persisted
// device images (cloned right after each commit, so images[i] is a
// physically realizable state in which ops 0..i are fully applied).
void RunMutation(Harness* h, const std::vector<ScriptedOp>& script,
                 std::vector<ModelLob> models, CommittedMap* committed,
                 bool expect_ok,
                 std::vector<uint64_t>* commit_lsns = nullptr,
                 std::vector<CommittedMap>* states = nullptr,
                 std::vector<std::unique_ptr<MemPageDevice>>* images =
                     nullptr) {
  for (size_t i = 0; i < h->ids.size(); ++i) {
    (*committed)[h->ids[i]] = std::string(models[i].bytes());
  }
  // In mvcc mode a snapshot pin cycles open/closed across the script and
  // periodic checkpoints drain version GC, so the crash-write window also
  // covers version-chain publish with a live pin and GC reclaim frees.
  // Local to this function: the pin must release before the db dies.
  Snapshot pin;
  for (size_t j = 0; j < script.size(); ++j) {
    const ScriptedOp& s = script[j];
    if (h->chaos->crashed()) break;
    uint64_t id = h->ids[s.target];
    Status st;
    if (s.drop) {
      st = h->db->DropObject(id);
    } else {
      switch (s.op.kind) {
        case LobOp::kAppend:
          st = h->db->Append(id, PayloadFor(s.op));
          break;
        case LobOp::kInsert:
          st = h->db->Insert(id, s.op.offset, PayloadFor(s.op));
          break;
        case LobOp::kDelete:
          st = h->db->Delete(id, s.op.offset, s.op.len);
          break;
        case LobOp::kReplace:
          st = h->db->Replace(id, s.op.offset, PayloadFor(s.op));
          break;
        default:
          st = Status::InvalidArgument("unscriptable op");
      }
    }
    if (!st.ok()) {
      // The only legitimate failure is the injected power loss.
      EXPECT_TRUE(h->chaos->crashed())
          << "op failed without a crash: " << st.ToString();
      break;
    }
    if (!h->mvcc) {
      EXPECT_TRUE(h->log->LogCommit(id).ok());
    } else {
      if (j % 5 == 2 && !pin.valid()) {
        auto p = h->db->BeginSnapshot(h->ids[0]);
        if (p.ok()) pin = std::move(*p);
      } else if (j % 5 == 4) {
        pin.Release();
      }
      // GC boundary: superseded unpinned versions free here, so sampled
      // crash points land inside the reclaim writes too. Fails once the
      // device has died; that is part of the sweep.
      if (j % 7 == 6) (void)h->db->Checkpoint();
    }
    if (s.drop) {
      (*committed)[id] = std::nullopt;
    } else {
      ApplyToModel(s.op, &models[s.target]);
      (*committed)[id] = std::string(models[s.target].bytes());
    }
    if (commit_lsns != nullptr) commit_lsns->push_back(h->log->last_lsn());
    if (states != nullptr) states->push_back(*committed);
    if (images != nullptr) {
      auto image = h->chaos->CloneImage();
      EXPECT_TRUE(image.ok()) << image.status().ToString();
      if (!image.ok()) break;
      images->push_back(std::move(*image));
    }
  }
  if (expect_ok) {
    EXPECT_FALSE(h->chaos->crashed());
  }
}

// True iff the database holds exactly the committed oracle state.
bool MatchesCommitted(Database* db, const CommittedMap& committed,
                      std::string* why) {
  auto listed = db->ListObjects();
  if (!listed.ok()) {
    *why = "ListObjects: " + listed.status().ToString();
    return false;
  }
  for (uint64_t id : *listed) {
    auto it = committed.find(id);
    if (it == committed.end() || !it->second.has_value()) {
      *why = "object " + std::to_string(id) +
             " exists but was never committed (or was destroyed)";
      return false;
    }
  }
  for (const auto& [id, content] : committed) {
    auto root = db->GetRoot(id);
    if (!content.has_value()) {
      if (!root.status().IsNotFound()) {
        *why = "destroyed object " + std::to_string(id) + " still present";
        return false;
      }
      continue;
    }
    if (!root.ok()) {
      *why = "object " + std::to_string(id) +
             " lost: " + root.status().ToString();
      return false;
    }
    auto data = db->Read(id, 0, content->size() + 1);
    if (!data.ok()) {
      *why = "object " + std::to_string(id) +
             " unreadable: " + data.status().ToString();
      return false;
    }
    if (data->size() != content->size() ||
        !std::equal(data->begin(), data->end(), content->begin(),
                    [](uint8_t a, char b) {
                      return a == static_cast<uint8_t>(b);
                    })) {
      *why = "object " + std::to_string(id) +
             " content differs from the oracle (got " +
             std::to_string(data->size()) + " bytes, want " +
             std::to_string(content->size()) + ")";
      return false;
    }
  }
  return true;
}

// Runs the workload against a crash at write k, re-opens the persisted
// image, recovers, and returns the recovered database (or nullptr with a
// gtest failure recorded). `committed` receives the oracle state.
std::unique_ptr<Database> CrashAndRecover(uint64_t seed,
                                          const std::vector<ScriptedOp>& script,
                                          uint64_t k, bool tear,
                                          CommittedMap* committed,
                                          std::vector<LogRecord>* wal_out,
                                          bool mvcc = false) {
  std::vector<ModelLob> models;
  Harness h = MakeHarness(seed, &models, mvcc);
  if (h.db == nullptr) return nullptr;
  h.chaos->CrashAfterWrites(k, tear ? 1 : 0);
  RunMutation(&h, script, models, committed, /*expect_ok=*/false);
  EXPECT_TRUE(h.chaos->crashed()) << "crash point " << k << " never reached";
  if (!h.chaos->crashed()) return nullptr;
  auto image = h.chaos->CloneImage();
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  if (!image.ok()) return nullptr;
  std::vector<LogRecord> wal = h.log->records();
  h.db.reset();  // the dying flush fails against the dead device; harmless
  auto db2 = Database::OpenOnDevice(std::move(*image), TortureOptions(mvcc));
  EXPECT_TRUE(db2.ok()) << "re-open after crash " << k << ": "
                        << db2.status().ToString();
  if (!db2.ok()) return nullptr;
  if (wal_out != nullptr) *wal_out = wal;
  Status rs = (*db2)->Recover(wal);
  EXPECT_TRUE(rs.ok()) << "recovery after crash " << k << ": "
                       << rs.ToString();
  if (!rs.ok()) return nullptr;
  return std::move(*db2);
}

TEST(CrashRecoveryTortureTest, ExhaustiveCrashPoints) {
  const uint64_t seed = TestSeed(0xE05);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  // Fault-free reference run: build the script, record the committed
  // oracle, and measure W, the workload's write-call count.
  std::vector<ModelLob> models;
  Harness ref = MakeHarness(seed, &models);
  ASSERT_NE(ref.db, nullptr);
  std::vector<ScriptedOp> script = MakeScript(seed, models);
  CommittedMap committed_ref;
  uint64_t writes_before = ref.chaos->stats().write_calls;
  RunMutation(&ref, script, models, &committed_ref, /*expect_ok=*/true);
  const uint64_t W = ref.chaos->stats().write_calls - writes_before;
  ASSERT_GE(W, 100u) << "workload too small to enumerate 100 crash points";
  EOS_ASSERT_OK(ref.db->CheckIntegrity());
  std::string why;
  ASSERT_TRUE(MatchesCommitted(ref.db.get(), committed_ref, &why))
      << why << "\n"
      << ScriptTrace(script);

  // Crash after every k-th write (sampled evenly when W is large), a third
  // of them with the fatal write torn after its first page.
  const uint64_t stride = std::max<uint64_t>(1, W / 128);
  int points = 0;
  for (uint64_t k = 0; k < W; k += stride) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(W) + " writes");
    CommittedMap committed;
    std::unique_ptr<Database> db =
        CrashAndRecover(seed, script, k, /*tear=*/(points % 3 == 0),
                        &committed, nullptr);
    ASSERT_NE(db, nullptr);
    EOS_ASSERT_OK(db->CheckIntegrity());
    ASSERT_TRUE(MatchesCommitted(db.get(), committed, &why))
        << why << "\n"
        << ScriptTrace(script);
    ++points;
  }
  ASSERT_GE(points, 100) << "W=" << W << " stride=" << stride;
}

// The same exhaustive sweep with multi-version concurrency on: every
// mutation group-commits its own marker, a snapshot pin cycles across the
// script (version chains stay populated), and periodic checkpoints drain
// version GC — so the sampled crash points land around version-chain
// publish and GC reclaim frees. Recovery must still land on exactly the
// committed oracle state, reseed the chains, and leak nothing.
TEST(CrashRecoveryTortureTest, MvccCrashPointsAroundPublishAndGc) {
  const uint64_t seed = TestSeed(0x31C);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  std::vector<ModelLob> models;
  Harness ref = MakeHarness(seed, &models, /*mvcc=*/true);
  ASSERT_NE(ref.db, nullptr);
  std::vector<ScriptedOp> script = MakeScript(seed, models);
  CommittedMap committed_ref;
  uint64_t writes_before = ref.chaos->stats().write_calls;
  RunMutation(&ref, script, models, &committed_ref, /*expect_ok=*/true);
  const uint64_t W = ref.chaos->stats().write_calls - writes_before;
  ASSERT_GE(W, 100u) << "workload too small to enumerate crash points";
  EOS_ASSERT_OK(ref.db->CheckIntegrity());
  std::string why;
  ASSERT_TRUE(MatchesCommitted(ref.db.get(), committed_ref, &why))
      << why << "\n"
      << ScriptTrace(script);

  const uint64_t stride = std::max<uint64_t>(1, W / 96);
  int points = 0;
  for (uint64_t k = 0; k < W; k += stride) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(W) + " writes");
    CommittedMap committed;
    std::unique_ptr<Database> db =
        CrashAndRecover(seed, script, k, /*tear=*/(points % 3 == 0),
                        &committed, nullptr, /*mvcc=*/true);
    ASSERT_NE(db, nullptr);
    EOS_ASSERT_OK(db->CheckIntegrity());
    ASSERT_TRUE(MatchesCommitted(db.get(), committed, &why))
        << why << "\n"
        << ScriptTrace(script);
    // The reseeded chains serve snapshots immediately, and nothing the
    // pre-crash version chains referenced leaks into the recovered maps.
    for (const auto& [id, content] : committed) {
      if (!content.has_value()) continue;
      auto snap = db->BeginSnapshot(id);
      ASSERT_TRUE(snap.ok()) << snap.status().ToString();
      auto got = db->SnapshotRead(*snap, 0, content->size() + 1);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->size(), content->size());
      snap->Release();
    }
    EOS_ASSERT_OK(db->Checkpoint());
    LeakCheckReport report;
    EOS_ASSERT_OK(db->LeakCheck(&report));
    EXPECT_TRUE(report.leaked.empty());
    EXPECT_TRUE(report.doubly_referenced.empty());
    ++points;
  }
  ASSERT_GE(points, 80) << "W=" << W << " stride=" << stride;
}

// For every boundary, hand recovery a log truncated just before op i+1's
// commit marker: op i+1 becomes in-flight (its record survives, its marker
// does not) and must be rolled back to the oracle state after op i, even
// though its effects are all physically present in the image.
//
// The image for boundary i is the one cloned right after op i+1 ran — NOT
// the final image of the whole script. Replace writes leaf bytes in place
// under write-ahead logging, so the final image carries in-place effects
// of operations *beyond* the truncated log horizon; under the WAL rule
// (before-image record durable before the page write) such a state cannot
// occur, and recovery rightly has no way to undo scribbles it was never
// told about. Seed 4242 exposed exactly that un-realizable combination
// when this test cloned only once at the end (see the pinned regression
// case below).
void RunTruncatedLogBoundaries(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  // Clean run, recording the oracle snapshot, commit LSN, and persisted
  // image after each op.
  std::vector<ModelLob> models;
  Harness h = MakeHarness(seed, &models);
  ASSERT_NE(h.db, nullptr);
  std::vector<ScriptedOp> script = MakeScript(seed, models);
  CommittedMap committed;
  std::vector<uint64_t> commit_lsns;
  std::vector<CommittedMap> states;
  std::vector<std::unique_ptr<MemPageDevice>> images;
  RunMutation(&h, script, models, &committed, /*expect_ok=*/true,
              &commit_lsns, &states, &images);
  ASSERT_EQ(commit_lsns.size(), script.size());
  ASSERT_EQ(images.size(), script.size());

  const std::vector<LogRecord>& wal = h.log->records();
  for (size_t i = 0; i + 1 < commit_lsns.size(); ++i) {
    SCOPED_TRACE("boundary after committed op " + std::to_string(i));
    std::vector<LogRecord> trimmed;
    for (const LogRecord& r : wal) {
      if (r.lsn < commit_lsns[i + 1]) trimmed.push_back(r);
    }
    auto db2 = Database::OpenOnDevice(std::move(images[i + 1]),
                                      TortureOptions());
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    EOS_ASSERT_OK((*db2)->Recover(trimmed));
    EOS_ASSERT_OK((*db2)->CheckIntegrity());
    std::string why;
    ASSERT_TRUE(MatchesCommitted(db2->get(), states[i], &why))
        << why << "\n"
        << ScriptTrace(script);
  }
}

TEST(CrashRecoveryTortureTest, TruncatedLogAtOpBoundaries) {
  RunTruncatedLogBoundaries(TestSeed(0xB0B));
}

// Permanent regression pin: under this seed the old single-final-image
// harness handed recovery leaf pages scribbled by in-place replaces from
// beyond the log horizon (an un-realizable WAL state) and object 3 came
// back byte-rotted. Runs with the literal seed regardless of
// EOS_TEST_SEED so no sweep configuration can un-pin it.
TEST(CrashRecoveryTortureTest, TruncatedLogAtOpBoundariesSeed4242) {
  RunTruncatedLogBoundaries(4242);
}

// The harness must be able to catch a broken recovery: drop one committed
// record from the log (equivalent to recovery skipping a redo) and verify
// the checks above flag the result.
TEST(CrashRecoveryTortureTest, SabotagedRecoveryIsCaught) {
  const uint64_t seed = TestSeed(0xBAD);
  std::vector<ModelLob> models;
  {
    Harness probe = MakeHarness(seed, &models);
    ASSERT_NE(probe.db, nullptr);
  }
  std::vector<ScriptedOp> script = MakeScript(seed, models);

  // Crash late so plenty of mutation ops are committed.
  std::vector<ModelLob> ref_models;
  Harness ref = MakeHarness(seed, &ref_models);
  ASSERT_NE(ref.db, nullptr);
  CommittedMap committed_ref;
  uint64_t writes_before = ref.chaos->stats().write_calls;
  RunMutation(&ref, script, ref_models, &committed_ref, /*expect_ok=*/true);
  const uint64_t W = ref.chaos->stats().write_calls - writes_before;
  const uint64_t k = W * 2 / 3;

  std::vector<ModelLob> m2;
  Harness h = MakeHarness(seed, &m2);
  ASSERT_NE(h.db, nullptr);
  h.chaos->CrashAfterWrites(k);
  CommittedMap committed;
  RunMutation(&h, script, m2, &committed, /*expect_ok=*/false);
  ASSERT_TRUE(h.chaos->crashed());
  auto image = h.chaos->CloneImage();
  ASSERT_TRUE(image.ok());
  std::vector<LogRecord> wal = h.log->records();
  h.db.reset();

  // Sabotage: remove the newest committed mutation record.
  size_t victim = wal.size();
  for (size_t i = wal.size(); i-- > 0;) {
    const LogRecord& r = wal[i];
    if (r.op == LogOp::kCommit || r.lsn <= h.setup_lsn) continue;
    if (r.lsn <= Recovery::LastCommitLsn(r.object_id, wal)) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, wal.size()) << "no committed mutation record to remove";
  wal.erase(wal.begin() + victim);

  auto db2 = Database::OpenOnDevice(std::move(*image), TortureOptions());
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  bool caught = false;
  Status rs = (*db2)->Recover(wal);
  if (!rs.ok()) {
    caught = true;
  } else if (!(*db2)->CheckIntegrity().ok()) {
    caught = true;
  } else {
    std::string why;
    caught = !MatchesCommitted(db2->get(), committed, &why);
  }
  EXPECT_TRUE(caught)
      << "a recovery that skipped a committed record went undetected";
}

}  // namespace
}  // namespace eos
