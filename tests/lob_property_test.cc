// Randomized differential test: the large object manager against the shared
// ModelLob oracle, across page sizes and thresholds (parameterized), with
// structural invariants and a storage-leak check at the end.
//
// Every run logs its seed; a failure prints the full op trace and can be
// reproduced exactly with EOS_TEST_SEED=<seed> (which overrides the
// parameterized seed — useful for shrinking: re-run, then delete trace
// entries from the script by lowering kSteps).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "lob/lob_manager.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::ApplyToLob;
using testing_util::ApplyToModel;
using testing_util::FormatOpTrace;
using testing_util::LobOp;
using testing_util::ModelLob;
using testing_util::RandomOp;
using testing_util::Stack;
using testing_util::TestSeed;

constexpr int kSteps = 400;

struct Params {
  uint32_t page_size;
  uint32_t threshold;
  bool adaptive;
  uint32_t max_root_bytes;  // 0 = default
  uint64_t seed;
};

class LobPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(LobPropertyTest, RandomOpsMatchModel) {
  const Params p = GetParam();
  const uint64_t seed = TestSeed(p.seed);
  LobConfig cfg;
  cfg.threshold_pages = p.threshold;
  cfg.adaptive_threshold = p.adaptive;
  cfg.max_root_bytes = p.max_root_bytes;
  Stack s = Stack::Make(p.page_size, 0, cfg);
  auto initial_free = s.allocator->TotalFreePages();
  ASSERT_TRUE(initial_free.ok());

  ModelLob model;
  LobDescriptor d = s.lob->CreateEmpty();
  std::mt19937 rng(static_cast<uint32_t>(seed));
  std::vector<LobOp> trace;

  auto repro = [&]() {
    return "\nseed " + std::to_string(seed) +
           " — re-run with EOS_TEST_SEED=" + std::to_string(seed) +
           "\nop trace:\n" + FormatOpTrace(trace);
  };

  for (int step = 0; step < kSteps; ++step) {
    LobOp op = RandomOp(&rng, model, p.page_size, seed * 1000 + step);
    trace.push_back(op);
    Status st = ApplyToLob(op, s.lob.get(), &d);
    ASSERT_TRUE(st.ok()) << st.ToString() << repro();
    ApplyToModel(op, &model);
    ASSERT_EQ(d.size(), model.size()) << repro();
    if (step % 20 == 19) {
      auto all = s.lob->ReadAll(d);
      ASSERT_TRUE(all.ok()) << all.status().ToString() << repro();
      ASSERT_TRUE(model.Matches(*all)) << "content diverged" << repro();
      Status inv = s.lob->CheckInvariants(d);
      ASSERT_TRUE(inv.ok()) << inv.ToString() << repro();
      inv = s.allocator->CheckInvariants();
      ASSERT_TRUE(inv.ok()) << inv.ToString() << repro();
    }
  }
  // Random reads.
  for (int i = 0; i < 50 && model.size() > 0; ++i) {
    uint64_t off = rng() % model.size();
    uint64_t n = 1 + rng() % (p.page_size * 4);
    Bytes out;
    Status st = s.lob->Read(d, off, n, &out);
    ASSERT_TRUE(st.ok()) << st.ToString() << repro();
    size_t want = std::min<size_t>(n, model.size() - off);
    ASSERT_EQ(out.size(), want) << repro();
    ASSERT_TRUE(std::equal(out.begin(), out.end(),
                           model.bytes().begin() + off,
                           [](uint8_t a, char b) {
                             return a == static_cast<uint8_t>(b);
                           }))
        << "read at " << off << " diverged" << repro();
  }
  // Storage-leak check: destroying the object returns every page.
  EOS_ASSERT_OK(s.lob->Destroy(&d));
  auto final_free = s.allocator->TotalFreePages();
  ASSERT_TRUE(final_free.ok());
  EXPECT_EQ(*initial_free +
                uint64_t{s.allocator->num_spaces() - 1} *
                    s.allocator->geometry().space_pages,
            *final_free)
      << "pages leaked by the workload" << repro();
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "ps" + std::to_string(p.page_size) + "_t" +
         std::to_string(p.threshold) + (p.adaptive ? "_adaptive" : "") +
         (p.max_root_bytes ? "_tinyroot" : "") + "_s" +
         std::to_string(p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LobPropertyTest,
    ::testing::Values(
        Params{100, 1, false, 0, 1}, Params{100, 4, false, 0, 2},
        Params{100, 8, false, 0, 3}, Params{128, 8, false, 0, 4},
        Params{128, 16, false, 0, 5}, Params{256, 4, false, 0, 6},
        Params{100, 8, true, 0, 7}, Params{128, 8, true, 0, 8},
        Params{100, 4, false, 88, 9},   // tiny root: deep trees
        Params{128, 8, false, 88, 10},  // tiny root + threshold
        Params{512, 8, false, 0, 11}, Params{100, 2, false, 0, 12}),
    ParamName);

}  // namespace
}  // namespace eos
