// Randomized differential test: the large object manager against a plain
// byte-string model, across page sizes and thresholds (parameterized),
// with structural invariants and a storage-leak check at the end.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

struct Params {
  uint32_t page_size;
  uint32_t threshold;
  bool adaptive;
  uint32_t max_root_bytes;  // 0 = default
  uint64_t seed;
};

class LobPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(LobPropertyTest, RandomOpsMatchModel) {
  const Params p = GetParam();
  LobConfig cfg;
  cfg.threshold_pages = p.threshold;
  cfg.adaptive_threshold = p.adaptive;
  cfg.max_root_bytes = p.max_root_bytes;
  Stack s = Stack::Make(p.page_size, 0, cfg);
  auto initial_free = s.allocator->TotalFreePages();
  ASSERT_TRUE(initial_free.ok());

  Bytes model;
  LobDescriptor d = s.lob->CreateEmpty();
  Random rng(p.seed);

  for (int step = 0; step < 400; ++step) {
    int op = static_cast<int>(rng.Uniform(12));
    if (model.empty()) op = 0;
    if (op == 11) {  // occasional reorganize (content-neutral), then trim
      EOS_ASSERT_OK(s.lob->Reorganize(&d));
      op = 10;
    }
    if (op == 10) {  // truncate to a random size
      uint64_t keep = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Truncate(&d, keep));
      model.resize(keep);
      op = -1;
    }
    if (op <= 2 && op >= 0) {  // append
      Bytes data = PatternBytes(p.seed * 1000 + step,
                                rng.Range(1, p.page_size * 3));
      EOS_ASSERT_OK(s.lob->Append(&d, data));
      model.insert(model.end(), data.begin(), data.end());
    } else if (op <= 5) {  // insert
      Bytes data = PatternBytes(p.seed * 2000 + step,
                                rng.Range(1, p.page_size * 2));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.lob->Insert(&d, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else if (op <= 8) {  // delete
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = rng.Range(1, std::max<uint64_t>(1, model.size() / 4));
      n = std::min<uint64_t>(n, model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    } else if (op == 9) {  // replace
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = rng.Range(1, std::max<uint64_t>(1, model.size() - off));
      Bytes data = PatternBytes(p.seed * 3000 + step, n);
      EOS_ASSERT_OK(s.lob->Replace(&d, off, data));
      std::copy(data.begin(), data.end(), model.begin() + off);
    }
    ASSERT_EQ(d.size(), model.size()) << "step " << step;
    if (step % 20 == 19) {
      auto all = s.lob->ReadAll(d);
      ASSERT_TRUE(all.ok()) << all.status().ToString();
      ASSERT_EQ(*all, model) << "content diverged at step " << step;
      EOS_ASSERT_OK(s.lob->CheckInvariants(d));
      EOS_ASSERT_OK(s.allocator->CheckInvariants());
    }
  }
  // Random reads.
  for (int i = 0; i < 50 && !model.empty(); ++i) {
    uint64_t off = rng.Uniform(model.size());
    uint64_t n = rng.Range(1, p.page_size * 4);
    Bytes out;
    EOS_ASSERT_OK(s.lob->Read(d, off, n, &out));
    size_t want = std::min<size_t>(n, model.size() - off);
    ASSERT_EQ(out.size(), want);
    ASSERT_TRUE(std::equal(out.begin(), out.end(), model.begin() + off));
  }
  // Storage-leak check: destroying the object returns every page.
  EOS_ASSERT_OK(s.lob->Destroy(&d));
  auto final_free = s.allocator->TotalFreePages();
  ASSERT_TRUE(final_free.ok());
  EXPECT_EQ(*initial_free +
                uint64_t{s.allocator->num_spaces() - 1} *
                    s.allocator->geometry().space_pages,
            *final_free)
      << "pages leaked by the workload";
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "ps" + std::to_string(p.page_size) + "_t" +
         std::to_string(p.threshold) + (p.adaptive ? "_adaptive" : "") +
         (p.max_root_bytes ? "_tinyroot" : "") + "_s" +
         std::to_string(p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LobPropertyTest,
    ::testing::Values(
        Params{100, 1, false, 0, 1}, Params{100, 4, false, 0, 2},
        Params{100, 8, false, 0, 3}, Params{128, 8, false, 0, 4},
        Params{128, 16, false, 0, 5}, Params{256, 4, false, 0, 6},
        Params{100, 8, true, 0, 7}, Params{128, 8, true, 0, 8},
        Params{100, 4, false, 88, 9},   // tiny root: deep trees
        Params{128, 8, false, 88, 10},  // tiny root + threshold
        Params{512, 8, false, 0, 11}, Params{100, 2, false, 0, 12}),
    ParamName);

}  // namespace
}  // namespace eos
