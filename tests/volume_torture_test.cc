// Multi-volume robustness torture (DESIGN.md §15). A mirrored VolumeSet
// over chaos-wrapped members must keep every byte readable when a whole
// volume drops out: reads fail over to the replica, writes degrade with a
// typed error instead of diverging, scrub repairs bit rot from the mirror
// copy, and a full member sheds new placement while staying readable.
// Content is verified byte-exact against an in-memory oracle throughout,
// including while writers, snapshot readers and a scrub loop race a
// volume being yanked offline mid-pass.
//
// Failures print the seed; re-run with EOS_TEST_SEED=<n>.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/retry.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "io/volume_set.h"
#include "tests/churn_driver.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"

namespace eos {
namespace {

// Failed assertions dump the flight-recorder journal (test_util.h).
const bool g_postmortem_listener = testing_util::InstallPostMortemOnFailure();

using testing_util::ChurnDriver;
using testing_util::ChurnOptions;
using testing_util::PatternBytes;
using testing_util::TestSeed;

std::string AsString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// Three in-memory members, each behind a chaos wrapper so the test can
// yank a whole volume. Handles stay valid for the life of the database
// (the set owns the wrappers).
std::vector<std::unique_ptr<PageDevice>> MakeChaosMembers(
    int n, uint32_t page_size, uint64_t seed,
    std::vector<ChaosPageDevice*>* handles) {
  std::vector<std::unique_ptr<PageDevice>> members;
  for (int i = 0; i < n; ++i) {
    auto chaos = std::make_unique<ChaosPageDevice>(
        std::make_unique<MemPageDevice>(page_size, 0),
        seed + static_cast<uint64_t>(i));
    handles->push_back(chaos.get());
    members.push_back(std::move(chaos));
  }
  return members;
}

DatabaseOptions BaseOptions() {
  DatabaseOptions opt;
  opt.page_size = 512;
  opt.pager_frames = 32;
  // Small buddy spaces = small placement chunks (one space per chunk), so
  // even a few hundred pages stripe across all three members.
  opt.space_pages = 32;
  return opt;
}

// A mutation outcome in a degraded window: success, or a typed error.
// Data-destroying codes are never acceptable.
void ExpectTypedDegrade(const Status& s) {
  EXPECT_FALSE(s.IsCorruption()) << s.ToString();
  EXPECT_FALSE(s.IsOutOfRange()) << s.ToString();
  EXPECT_FALSE(s.IsInvalidArgument()) << s.ToString();
}

// A failed mutation may have been applied or unwound (e.g. the directory
// save failed after the object tree advanced). Reads must still work; the
// observed content must equal exactly the pre- or post-image, which the
// caller then adopts as the oracle.
void AdoptEitherState(Database* db, uint64_t id, std::string* oracle,
                      const std::string& post) {
  auto size = db->Size(id);
  ASSERT_TRUE(size.ok()) << size.status().ToString();
  auto got = db->Read(id, 0, *size);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::string observed = AsString(*got);
  ASSERT_TRUE(observed == *oracle || observed == post)
      << "object " << id << " is neither the pre- nor the post-image";
  *oracle = std::move(observed);
}

// ----- read failover ---------------------------------------------------------

TEST(VolumeTortureTest, MirroredFailoverByteExact) {
  const uint64_t seed = TestSeed(0x70A1);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  std::vector<ChaosPageDevice*> chaos;
  auto members = MakeChaosMembers(3, 512, seed, &chaos);
  auto db = Database::CreateOnVolumeSet(std::move(members), VolumeSetOptions{},
                                        BaseOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  ChurnOptions copt;
  copt.num_objects = 10;
  copt.initial_object_bytes = 8u << 10;
  copt.max_object_bytes = 32u << 10;
  ChurnDriver driver(db->get(), seed, copt);
  EOS_ASSERT_OK(driver.SetUp());
  EOS_ASSERT_OK(driver.Epoch());
  EOS_ASSERT_OK((*db)->Flush());

  VolumeSetDevice* set = (*db)->volume_set();
  ASSERT_NE(set, nullptr);

  // Yank one member at a time; every byte must come back from the mirror.
  for (int victim = 1; victim <= 2; ++victim) {
    chaos[victim]->SetOffline(true);
    uint64_t failovers_before = set->failover_reads();
    EOS_ASSERT_OK(driver.VerifyAll());
    EXPECT_GT(set->failover_reads(), failovers_before)
        << "no read ever failed over with member " << victim << " offline";
    chaos[victim]->SetOffline(false);
    // Reads bring the member back via the periodic probe; until then the
    // set keeps serving from the mirror, so verification stays exact.
    EOS_ASSERT_OK(driver.VerifyAll());
  }
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

// ----- degraded writes -------------------------------------------------------

TEST(VolumeTortureTest, WritesDegradeTypedWhileVolumeOffline) {
  const uint64_t seed = TestSeed(0x70A2);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  std::vector<ChaosPageDevice*> chaos;
  auto members = MakeChaosMembers(3, 512, seed, &chaos);
  DatabaseOptions opt = BaseOptions();
  // Write-through: every page write reaches the set immediately, so the
  // degraded window produces its typed failures deterministically.
  opt.crash_safe = true;
  auto db = Database::CreateOnVolumeSet(std::move(members), VolumeSetOptions{},
                                        opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  constexpr int kObjects = 8;
  std::vector<uint64_t> ids;
  std::vector<std::string> oracle;
  for (int i = 0; i < kObjects; ++i) {
    Bytes payload = PatternBytes(seed + i, 4096);
    auto id = (*db)->CreateObjectFrom(payload);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
    oracle.push_back(AsString(payload));
  }
  EOS_ASSERT_OK((*db)->Flush());

  chaos[2]->SetOffline(true);
  bool any_failed = false;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < kObjects; ++i) {
      Bytes extra = PatternBytes(seed ^ (round * 100 + i), 700);
      Status s = (*db)->Append(ids[i], extra);
      if (s.ok()) {
        oracle[i] += AsString(extra);
        continue;
      }
      any_failed = true;
      ExpectTypedDegrade(s);
      AdoptEitherState(db->get(), ids[i], &oracle[i],
                       oracle[i] + AsString(extra));
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_TRUE(any_failed)
      << "no mutation ever touched the offline member's chunks";

  VolumeSetDevice* set = (*db)->volume_set();
  VolumeSetDevice::Health h = set->GetHealth();
  EXPECT_FALSE(h.members[2].online);
  EXPECT_GT(h.degraded_writes, 0u);

  // Reads stay byte-exact throughout the outage.
  for (int i = 0; i < kObjects; ++i) {
    auto got = (*db)->Read(ids[i], 0, oracle[i].size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsString(*got), oracle[i]) << "object " << ids[i];
  }

  // The volume returns: writes reach it again (no operator action; the
  // write path does not gate on the offline flag) and mutations succeed.
  chaos[2]->SetOffline(false);
  for (int i = 0; i < kObjects; ++i) {
    Bytes extra = PatternBytes(seed ^ (0xBEEF + i), 512);
    EOS_ASSERT_OK((*db)->Append(ids[i], extra));
    oracle[i] += AsString(extra);
  }
  // Scrub under the repair scope re-converges any pair the failed writes
  // left diverged, then everything verifies byte-exact.
  ScrubReport rep;
  EOS_ASSERT_OK((*db)->Scrub(&rep));
  EXPECT_TRUE(rep.clean());
  for (int i = 0; i < kObjects; ++i) {
    auto got = (*db)->Read(ids[i], 0, oracle[i].size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsString(*got), oracle[i]) << "object " << ids[i];
  }
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

// ----- concurrent scrub + snapshot readers + writers vs volume failure -------

TEST(VolumeTortureTest, ConcurrentScrubWithVolumeFailure) {
  const uint64_t seed = TestSeed(0x70A3);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  std::vector<ChaosPageDevice*> chaos;
  auto members = MakeChaosMembers(3, 512, seed, &chaos);
  DatabaseOptions opt = BaseOptions();
  opt.mvcc = true;
  opt.parallel_io = true;  // scrub fans out across the members
  // Write-through pager: a failed write surfaces typed at the mutation
  // that issued it. With write-behind it would surface later, inside
  // whichever read had to evict the dirty page — making "reads stay
  // available while a volume is down" impossible to honor.
  opt.crash_safe = true;
  auto db = Database::CreateOnVolumeSet(std::move(members), VolumeSetOptions{},
                                        opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Database* dbp = db->get();

  constexpr int kObjects = 6;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  std::vector<uint64_t> ids(kObjects);
  std::vector<std::string> oracle(kObjects);
  std::vector<std::mutex> obj_mu(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    Bytes payload = PatternBytes(seed * 31 + i, 8u << 10);
    auto id = dbp->CreateObjectFrom(payload);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids[i] = *id;
    oracle[i] = AsString(payload);
  }
  EOS_ASSERT_OK(dbp->Flush());
  VolumeSetDevice* set = dbp->volume_set();

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::string> errors(kWriters + kReaders + 1);
  auto fail = [&](int slot, std::string why) {
    errors[slot] = std::move(why);
    failed.store(true);
  };

  std::vector<std::thread> threads;
  // Writers own disjoint object subsets, so each object's oracle string is
  // mutated by exactly one thread (readers take the same per-object mutex
  // only to pin snapshot + expected atomically).
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(seed ^ (0x57A0 + w));
      while (!stop.load() && !failed.load()) {
        int i = w + kWriters * static_cast<int>(rng() % (kObjects / kWriters));
        std::lock_guard<std::mutex> lock(obj_mu[i]);
        // Keep objects from growing without bound across the run.
        if (oracle[i].size() > (64u << 10)) {
          uint64_t cut = oracle[i].size() / 2;
          Status s = dbp->Delete(ids[i], 0, cut);
          if (s.ok()) {
            oracle[i].erase(0, cut);
          } else if (s.IsCorruption() || s.IsOutOfRange() ||
                     s.IsInvalidArgument()) {
            fail(w, "delete: " + s.ToString());
            return;
          } else {
            // Degraded window: the trim may or may not have committed
            // (directory save can fail after the root was published).
            // Adopt whichever of the two legal states the database holds.
            std::string post = oracle[i].substr(cut);
            auto size = dbp->Size(ids[i]);
            if (!size.ok()) {
              fail(w, "size after failed delete: " + size.status().ToString());
              return;
            }
            auto got = dbp->Read(ids[i], 0, *size);
            if (!got.ok()) {
              fail(w, "read after failed delete: " + got.status().ToString());
              return;
            }
            std::string observed = AsString(*got);
            if (observed != oracle[i] && observed != post) {
              fail(w, "object " + std::to_string(ids[i]) +
                          " neither pre- nor post-image after failed delete");
              return;
            }
            oracle[i] = std::move(observed);
          }
          continue;
        }
        Bytes extra = PatternBytes(rng(), 1 + rng() % 600);
        Status s = dbp->Append(ids[i], extra);
        if (s.ok()) {
          oracle[i] += AsString(extra);
          continue;
        }
        // Degraded window: typed failure, then adopt whichever of the two
        // legal states the database actually holds.
        if (s.IsCorruption() || s.IsOutOfRange() || s.IsInvalidArgument()) {
          fail(w, "append: " + s.ToString());
          return;
        }
        std::string post = oracle[i] + AsString(extra);
        auto size = dbp->Size(ids[i]);
        if (!size.ok()) {
          fail(w, "size after failed append: " + size.status().ToString());
          return;
        }
        auto got = dbp->Read(ids[i], 0, *size);
        if (!got.ok()) {
          fail(w, "read after failed append: " + got.status().ToString());
          return;
        }
        std::string observed = AsString(*got);
        if (observed != oracle[i] && observed != post) {
          fail(w, "object " + std::to_string(ids[i]) +
                      " neither pre- nor post-image after failed append");
          return;
        }
        oracle[i] = std::move(observed);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    const int slot = kWriters + r;
    threads.emplace_back([&, slot, r] {
      std::mt19937_64 rng(seed ^ (0x4EAD + r));
      while (!stop.load() && !failed.load()) {
        int i = static_cast<int>(rng() % kObjects);
        Snapshot snap;
        std::string expected;
        {
          std::lock_guard<std::mutex> lock(obj_mu[i]);
          auto s = dbp->BeginSnapshot(ids[i]);
          if (!s.ok()) {
            fail(slot, "pin: " + s.status().ToString());
            return;
          }
          snap = std::move(s).value();
          expected = oracle[i];
        }
        // Lock-free verification outside the latch; the read must be
        // byte-exact even while the object's volume is offline.
        auto got = dbp->SnapshotRead(snap, 0, expected.size() + 1);
        if (!got.ok()) {
          fail(slot, "snapshot read: " + got.status().ToString());
          return;
        }
        if (AsString(*got) != expected) {
          fail(slot, "snapshot of object " + std::to_string(ids[i]) +
                         " is not byte-exact");
          return;
        }
      }
    });
  }
  const int scrub_slot = kWriters + kReaders;
  std::atomic<uint64_t> scrubs_ok{0};
  threads.emplace_back([&] {
    while (!stop.load() && !failed.load()) {
      ScrubReport rep;
      Status s = dbp->Scrub(&rep);
      if (s.ok()) {
        scrubs_ok.fetch_add(1);
        if (!rep.clean()) {
          fail(scrub_slot, "scrub found issues with a live mirror: " +
                               rep.issues[0].message);
          return;
        }
      } else if (s.IsCorruption()) {
        // Flush/walk may fail typed while a volume is out; silent damage
        // may not.
        fail(scrub_slot, "scrub: " + s.ToString());
        return;
      }
      // Routine maintenance: checkpoints release superseded version
      // storage (crash_safe parks it until then), keeping the set from
      // growing without bound under churn. Typed failures while a volume
      // is out are fine; the parked extents stay on the checkpoint list.
      Status cp = dbp->Checkpoint();
      if (cp.IsCorruption()) {
        fail(scrub_slot, "checkpoint: " + cp.ToString());
        return;
      }
    }
  });

  // Yank member 1 mid-scrub a few times, healing it in between.
  for (int cycle = 0; cycle < 3 && !failed.load(); ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    chaos[1]->SetOffline(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    chaos[1]->SetOffline(false);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  stop.store(true);
  for (auto& t : threads) t.join();
  for (const std::string& e : errors) EXPECT_EQ(e, "");
  EXPECT_GT(scrubs_ok.load(), 0u);
  EXPECT_GT(set->failover_reads(), 0u)
      << "the degraded windows never exercised replica failover";

  // Quiesced and healed: one more write per object must succeed, the final
  // scrub must be clean, and everything must match the oracle byte-exact.
  for (int i = 0; i < kObjects; ++i) {
    Bytes extra = PatternBytes(seed ^ (0xF1A7 + i), 256);
    EOS_ASSERT_OK(dbp->Append(ids[i], extra));
    oracle[i] += AsString(extra);
  }
  ScrubReport rep;
  EOS_ASSERT_OK(dbp->Scrub(&rep));
  EXPECT_TRUE(rep.clean());
  for (int i = 0; i < kObjects; ++i) {
    auto got = dbp->Read(ids[i], 0, oracle[i].size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsString(*got), oracle[i]) << "object " << ids[i];
  }
  EOS_EXPECT_OK(dbp->CheckIntegrity());
  EOS_EXPECT_OK(dbp->Checkpoint());
  LeakCheckReport leaks;
  EOS_EXPECT_OK(dbp->LeakCheck(&leaks));
  EXPECT_TRUE(leaks.leaked.empty());
  EXPECT_TRUE(leaks.doubly_referenced.empty());
}

// ----- full volume sheds placement ------------------------------------------

TEST(VolumeTortureTest, FullVolumeShedsPlacementStaysReadable) {
  const uint64_t seed = TestSeed(0x70A4);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  std::vector<ChaosPageDevice*> chaos;
  auto members = MakeChaosMembers(3, 512, seed, &chaos);
  auto db = Database::CreateOnVolumeSet(std::move(members), VolumeSetOptions{},
                                        BaseOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<uint64_t> ids;
  std::vector<std::string> oracle;
  auto create_one = [&](uint64_t salt) -> Status {
    Bytes payload = PatternBytes(seed + salt, 6u << 10);
    EOS_ASSIGN_OR_RETURN(uint64_t id, (*db)->CreateObjectFrom(payload));
    ids.push_back(id);
    oracle.push_back(AsString(payload));
    return Status::OK();
  };
  for (uint64_t i = 0; i < 4; ++i) EOS_ASSERT_OK(create_one(i));
  EOS_ASSERT_OK((*db)->Flush());

  // Member 2 hits its physical end: every further grow is typed NoSpace.
  chaos[2]->FailGrowsAfter(0, /*permanent=*/true);

  // The volume keeps accepting data — new chunks just land elsewhere.
  for (uint64_t i = 4; i < 24; ++i) EOS_ASSERT_OK(create_one(100 + i));

  VolumeSetDevice* set = (*db)->volume_set();
  VolumeSetDevice::Health h = set->GetHealth();
  EXPECT_TRUE(h.members[2].shedding) << "full member never shed placement";
  EXPECT_TRUE(h.members[2].online) << "a full member is not a dead member";
  EXPECT_GT(h.shed_placements, 0u);
  EXPECT_GT(h.members[0].data_blocks + h.members[1].data_blocks,
            2 * h.members[2].data_blocks)
      << "placement did not rebalance away from the full member";

  // Everything placed before and after the shed reads back byte-exact,
  // and data already on the full member stays writable in place.
  for (size_t i = 0; i < ids.size(); ++i) {
    auto got = (*db)->Read(ids[i], 0, oracle[i].size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsString(*got), oracle[i]) << "object " << ids[i];
  }
  Bytes patch = PatternBytes(seed ^ 0xFULL, 1024);
  EOS_ASSERT_OK((*db)->Replace(ids[0], 0, patch));
  oracle[0].replace(0, patch.size(), AsString(patch));
  auto got = (*db)->Read(ids[0], 0, oracle[0].size());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(AsString(*got), oracle[0]);
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

TEST(VolumeTortureTest, CapacityWatermarkShedsBeforeFull) {
  const uint64_t seed = TestSeed(0x70A5);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  std::vector<ChaosPageDevice*> chaos;
  DatabaseOptions opt = BaseOptions();
  auto members = MakeChaosMembers(3, 512, seed, &chaos);
  VolumeSetOptions vopt;
  vopt.member_capacity_pages = 500;
  vopt.shed_watermark_pages = 150;
  auto db = Database::CreateOnVolumeSet(std::move(members), vopt, opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<uint64_t> ids;
  std::vector<std::string> oracle;
  bool shed = false;
  for (uint64_t i = 0; i < 40 && !shed; ++i) {
    Bytes payload = PatternBytes(seed + i, 6u << 10);
    auto id = (*db)->CreateObjectFrom(payload);
    ASSERT_TRUE(id.ok()) << "write failed before the watermark shed: "
                         << id.status().ToString();
    ids.push_back(*id);
    oracle.push_back(AsString(payload));
    VolumeSetDevice::Health h = (*db)->volume_set()->GetHealth();
    for (const auto& m : h.members) shed |= m.shedding;
  }
  EXPECT_TRUE(shed) << "no member reached its capacity watermark";
  EXPECT_GT((*db)->volume_set()->GetHealth().shed_placements, 0u);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto got = (*db)->Read(ids[i], 0, oracle[i].size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsString(*got), oracle[i]) << "object " << ids[i];
  }
}

// ----- scrub repairs bit rot from the replica --------------------------------

TEST(VolumeTortureTest, ScrubRepairsBitRotFromReplica) {
  const uint64_t seed = TestSeed(0x70A6);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  std::vector<ChaosPageDevice*> chaos;
  auto members = MakeChaosMembers(3, 512, seed, &chaos);
  auto db = Database::CreateOnVolumeSet(std::move(members), VolumeSetOptions{},
                                        BaseOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  constexpr int kObjects = 6;
  std::vector<uint64_t> ids;
  std::vector<std::string> oracle;
  for (int i = 0; i < kObjects; ++i) {
    Bytes payload = PatternBytes(seed * 7 + i, 8u << 10);
    auto id = (*db)->CreateObjectFrom(payload);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
    oracle.push_back(AsString(payload));
  }
  EOS_ASSERT_OK((*db)->Flush());
  VolumeSetDevice* set = (*db)->volume_set();

  // Rot the *primary* copy of every readable page in a sample of the
  // logical space (pages that do not read back are unwritten/free; bit rot
  // there is invisible and uninteresting).
  Bytes buf(set->page_size());
  std::vector<PageId> rotted;
  uint64_t limit = std::min<uint64_t>(set->page_count(), 240);
  for (PageId p = 1; p < limit; p += 3) {
    if (!set->ReadPages(p, 1, buf.data()).ok()) continue;
    auto loc = set->Resolve(p);
    ASSERT_TRUE(loc.ok()) << loc.status().ToString();
    EOS_ASSERT_OK(chaos[loc->member]->CorruptPage(loc->local, /*bits=*/3));
    rotted.push_back(p);
  }
  ASSERT_GT(rotted.size(), 10u);

  // Plain reads of every rotted page fail over to the replica.
  uint64_t failovers_before = set->failover_reads();
  for (PageId p : rotted) {
    EOS_EXPECT_OK(set->ReadPages(p, 1, buf.data()));
  }
  EXPECT_GT(set->failover_reads(), failovers_before);

  // Scrub heals the rotted copies from the replica in place: no issues, no
  // zero-filled holes, a positive repair count.
  ScrubReport rep;
  EOS_ASSERT_OK((*db)->Scrub(&rep));
  EXPECT_TRUE(rep.clean()) << rep.issues.size() << " issue(s), first: "
                           << (rep.issues.empty()
                                   ? ""
                                   : rep.issues[0].message);
  EXPECT_GT(rep.repaired_from_replica, 0u);
  for (int i = 0; i < kObjects; ++i) {
    EXPECT_TRUE((*db)->GetHoles(ids[i]).empty());
    auto got = (*db)->Read(ids[i], 0, oracle[i].size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(AsString(*got), oracle[i]) << "object " << ids[i];
  }
  // A second pass has nothing left to do on the pages scrub visits.
  ScrubReport rep2;
  EOS_ASSERT_OK((*db)->Scrub(&rep2));
  EXPECT_TRUE(rep2.clean());
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

// ----- deadline-aware retry --------------------------------------------------

TEST(VolumeTortureTest, RetryLoopStopsAtAmbientDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.base_backoff_us = 2000;
  policy.max_backoff_us = 2000;
  ScopedOpContext ctx(OpContext{Deadline::After(std::chrono::milliseconds(10)),
                                CancelToken()});
  int calls = 0;
  auto start = std::chrono::steady_clock::now();
  Status s = RunWithRetry(policy, [&] {
    ++calls;
    return Status::IOError("flaky media");
  });
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  // The deadline cut the loop short; unbounded it would sleep ~2 seconds.
  EXPECT_LT(calls, policy.max_attempts);
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(VolumeTortureTest, RetryWithoutDeadlineRunsAllAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 0;
  int calls = 0;
  Status s = RunWithRetry(policy, [&] {
    ++calls;
    return Status::IOError("flaky media");
  });
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace eos
