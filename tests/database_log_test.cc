// Database + write-ahead log integration: per-object log records, crash
// simulation (stale roots redone from the log), and volume-level recovery.

#include <gtest/gtest.h>

#include <cstdio>

#include "eos/database.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"
#include "txn/recovery.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

DatabaseOptions Opts() {
  DatabaseOptions o;
  o.page_size = 512;
  o.space_pages = 1000;
  return o;
}

TEST(DatabaseLogTest, RecordsCarryObjectIds) {
  auto db = Database::CreateInMemory(Opts());
  ASSERT_TRUE(db.ok());
  LogManager log;
  (*db)->AttachLog(&log);
  auto a = (*db)->CreateObject();
  auto b = (*db)->CreateObject();
  ASSERT_TRUE(a.ok() && b.ok());
  EOS_ASSERT_OK((*db)->Append(*a, PatternBytes(1, 100)));
  EOS_ASSERT_OK((*db)->Append(*b, PatternBytes(2, 200)));
  EOS_ASSERT_OK((*db)->Insert(*a, 50, PatternBytes(3, 10)));
  ASSERT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.records()[0].object_id, *a);
  EXPECT_EQ(log.records()[1].object_id, *b);
  EXPECT_EQ(log.records()[2].object_id, *a);
}

TEST(DatabaseLogTest, RedoAfterSimulatedCrash) {
  // Scenario: the volume is flushed at a checkpoint; later updates hit the
  // log but their roots never reach disk (crash). On reopen, the stale
  // roots are brought forward by replaying the log tail per object.
  std::string vol = ::testing::TempDir() + "/eos_dblog_test.vol";
  std::string wal = ::testing::TempDir() + "/eos_dblog_test.wal";
  Bytes base_a = PatternBytes(4, 3000);
  Bytes base_b = PatternBytes(5, 1500);
  uint64_t ida = 0, idb = 0;
  Bytes want_a, want_b;
  {
    auto db = Database::Create(vol, Opts());
    ASSERT_TRUE(db.ok());
    auto log = LogManager::CreateFileBacked(wal);
    ASSERT_TRUE(log.ok());
    (*db)->AttachLog(log->get());
    auto ra = (*db)->CreateObjectFrom(base_a);
    auto rb = (*db)->CreateObjectFrom(base_b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ida = *ra;
    idb = *rb;
    EOS_ASSERT_OK((*db)->Flush());  // checkpoint: roots durable

    // Post-checkpoint updates: logged, and also applied to storage (leaf
    // writes go straight to the device), but the *roots* of these updates
    // are what we will deliberately lose.
    EOS_ASSERT_OK((*db)->Append(ida, PatternBytes(6, 400)));
    EOS_ASSERT_OK((*db)->Delete(idb, 100, 700));
    {
      auto va = (*db)->Read(ida, 0, 1 << 20);
      auto vb = (*db)->Read(idb, 0, 1 << 20);
      ASSERT_TRUE(va.ok() && vb.ok());
      want_a = *va;
      want_b = *vb;
    }
    // "Crash": drop the Database without the post-update flush by
    // restoring the checkpointed roots first.
    // (Simplest faithful simulation: we re-create the volume from the
    // checkpoint state below.)
  }
  {
    // Rebuild checkpoint state and roll the log forward.
    auto db = Database::Create(vol, Opts());
    ASSERT_TRUE(db.ok());
    auto ra = (*db)->CreateObjectFrom(base_a);
    auto rb = (*db)->CreateObjectFrom(base_b);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(*ra, ida);
    ASSERT_EQ(*rb, idb);
    auto records = LogManager::ReadLogFile(wal);
    ASSERT_TRUE(records.ok());
    Recovery rec((*db)->lob());
    for (uint64_t id : {ida, idb}) {
      auto root = (*db)->GetRoot(id);
      ASSERT_TRUE(root.ok());
      LobDescriptor d = *root;
      // The recreated base state corresponds to the object's initial
      // append record; stamp its LSN so redo replays only the tail.
      for (const LogRecord& r : *records) {
        if (r.object_id == id) {
          d.lsn = r.lsn;
          break;
        }
      }
      EOS_ASSERT_OK(rec.Redo(&d, id, *records));
      EOS_ASSERT_OK((*db)->PutRoot(id, d));
    }
    auto va = (*db)->Read(ida, 0, 1 << 20);
    auto vb = (*db)->Read(idb, 0, 1 << 20);
    ASSERT_TRUE(va.ok() && vb.ok());
    EXPECT_EQ(*va, want_a);
    EXPECT_EQ(*vb, want_b);
    EOS_EXPECT_OK((*db)->CheckIntegrity());
  }
  std::remove(vol.c_str());
  std::remove(wal.c_str());
}

TEST(DatabaseLogTest, DropObjectLogsDestroyWithBeforeImage) {
  auto db = Database::CreateInMemory(Opts());
  ASSERT_TRUE(db.ok());
  LogManager log;
  (*db)->AttachLog(&log);
  Bytes content = PatternBytes(7, 2500);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok());
  EOS_ASSERT_OK((*db)->DropObject(*id));
  ASSERT_FALSE(log.records().empty());
  const LogRecord& last = log.records().back();
  EXPECT_EQ(last.op, LogOp::kDestroy);
  EXPECT_EQ(last.object_id, *id);
  EXPECT_EQ(last.old_data, content);
}

}  // namespace
}  // namespace eos
