#ifndef EOS_TESTS_MODEL_ORACLE_H_
#define EOS_TESTS_MODEL_ORACLE_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "lob/descriptor.h"
#include "lob/lob_manager.h"

namespace eos {
namespace testing_util {

// In-memory byte-string model of one large object — the oracle side of the
// differential tests. It mirrors the LobManager mutation API with plain
// std::string semantics, so after replaying the same operations the real
// object's content must equal `bytes()` exactly.
class ModelLob {
 public:
  void Append(ByteView data) {
    bytes_.append(reinterpret_cast<const char*>(data.data()), data.size());
  }
  void Insert(uint64_t offset, ByteView data) {
    bytes_.insert(static_cast<size_t>(offset),
                  reinterpret_cast<const char*>(data.data()), data.size());
  }
  // Clamped at the tail like LobManager::Delete.
  void Delete(uint64_t offset, uint64_t n) {
    if (offset >= bytes_.size()) return;
    bytes_.erase(static_cast<size_t>(offset),
                 static_cast<size_t>(
                     std::min<uint64_t>(n, bytes_.size() - offset)));
  }
  void Replace(uint64_t offset, ByteView data) {
    bytes_.replace(static_cast<size_t>(offset), data.size(),
                   reinterpret_cast<const char*>(data.data()), data.size());
  }
  void Truncate(uint64_t keep) {
    if (keep < bytes_.size()) bytes_.resize(static_cast<size_t>(keep));
  }
  void Destroy() { bytes_.clear(); }

  uint64_t size() const { return bytes_.size(); }
  const std::string& bytes() const { return bytes_; }
  bool Matches(ByteView actual) const {
    return actual == ByteView(bytes_);
  }

 private:
  std::string bytes_;
};

// One scripted operation against a large object. Coordinates are concrete
// (generated against the model at script time), so a trace replays
// identically against model and real stack, and a failing run can be
// shrunk by hand by dropping trace entries.
struct LobOp {
  enum Kind : uint8_t {
    kAppend,
    kInsert,
    kDelete,
    kReplace,
    kTruncate,
    kReorganize,
    kDestroy,
  };
  Kind kind = kAppend;
  uint64_t offset = 0;
  uint64_t len = 0;           // payload length; keep-size for kTruncate
  uint64_t payload_seed = 0;  // payload = PatternBytes(payload_seed, len)
};

// The deterministic payload an op writes.
Bytes PayloadFor(const LobOp& op);

// Applies `op` to the oracle.
void ApplyToModel(const LobOp& op, ModelLob* model);

// Applies `op` to the real object through the manager.
Status ApplyToLob(const LobOp& op, LobManager* lob, LobDescriptor* d);

// Draws a random operation valid for the model's current size.
// `logged_only` restricts to the operations the log manager records
// (append/insert/delete/replace) — what crash recovery can replay.
LobOp RandomOp(std::mt19937* rng, const ModelLob& model, uint32_t page_size,
               uint64_t payload_seed, bool logged_only = false);

// Human-readable op trace for failure reports ("re-run with
// EOS_TEST_SEED=<seed>" shrink workflow).
std::string FormatOpTrace(const std::vector<LobOp>& trace);

// Seed for randomized tests: the EOS_TEST_SEED environment variable when
// set (for reproducing a logged failure), `fallback` otherwise.
uint64_t TestSeed(uint64_t fallback);

}  // namespace testing_util
}  // namespace eos

#endif  // EOS_TESTS_MODEL_ORACLE_H_
