// Unit tests for the parallel I/O substrate: IoExecutor task semantics
// (batch join, error fan-in, inline fallback, shutdown) and BufferPool
// recycling invariants.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "io/buffer_pool.h"
#include "io/io_executor.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

TEST(IoExecutorTest, RunBatchRunsEveryTask) {
  IoExecutor exec(3);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&ran] {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  EOS_ASSERT_OK(exec.RunBatch(std::move(tasks)));
  EXPECT_EQ(ran.load(), 50);
}

TEST(IoExecutorTest, ErrorFanInReturnsFirstInTaskOrder) {
  IoExecutor exec(4);
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([] { return Status::OK(); });
  tasks.push_back([] { return Status::IOError("first failure"); });
  tasks.push_back([] { return Status::Corruption("second failure"); });
  Status s = exec.RunBatch(std::move(tasks));
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("first failure"), std::string::npos);
}

TEST(IoExecutorTest, ErrorDoesNotCancelRemainingTasks) {
  // RunBatch's contract: every task finishes before it returns, so
  // captured buffers stay valid even when an earlier task failed.
  IoExecutor exec(2);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([&ran] {
    ran.fetch_add(1);
    return Status::IOError("boom");
  });
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&ran] {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(exec.RunBatch(std::move(tasks)).IsIOError());
  EXPECT_EQ(ran.load(), 21);
}

TEST(IoExecutorTest, ZeroThreadsRunsInline) {
  IoExecutor exec(0);
  EXPECT_EQ(exec.threads(), 0u);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([&seen] {
    seen = std::this_thread::get_id();
    return Status::OK();
  });
  tasks.push_back([] { return Status::OK(); });
  EOS_ASSERT_OK(exec.RunBatch(std::move(tasks)));
  EXPECT_EQ(seen, caller);
}

TEST(IoExecutorTest, SingleTaskBatchRunsInline) {
  IoExecutor exec(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([&seen] {
    seen = std::this_thread::get_id();
    return Status::OK();
  });
  EOS_ASSERT_OK(exec.RunBatch(std::move(tasks)));
  EXPECT_EQ(seen, caller);
}

TEST(IoExecutorTest, SubmitTicketWaitReturnsTaskStatus) {
  IoExecutor exec(2);
  IoExecutor::Ticket ok = exec.Submit([] { return Status::OK(); });
  IoExecutor::Ticket bad = exec.Submit([] { return Status::Busy("later"); });
  EOS_EXPECT_OK(ok.Wait());
  EXPECT_TRUE(bad.Wait().IsBusy());
  // A detached ticket's second Wait is OK by contract.
  EOS_EXPECT_OK(bad.Wait());
}

TEST(IoExecutorTest, TicketDestructorJoins) {
  std::atomic<bool> ran{false};
  IoExecutor exec(1);
  {
    IoExecutor::Ticket t = exec.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      ran.store(true);
      return Status::OK();
    });
    // Dropped unjoined: the destructor must wait for the task.
  }
  EXPECT_TRUE(ran.load());
}

TEST(IoExecutorTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<IoExecutor::Ticket> tickets;
  {
    IoExecutor exec(1);
    for (int i = 0; i < 16; ++i) {
      tickets.push_back(exec.Submit([&ran] {
        ran.fetch_add(1);
        return Status::OK();
      }));
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(IoExecutorTest, ConcurrentBatchesFromManyThreads) {
  IoExecutor exec(4);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&exec, &total] {
      for (int round = 0; round < 8; ++round) {
        std::vector<std::function<Status()>> tasks;
        for (int i = 0; i < 8; ++i) {
          tasks.push_back([&total] {
            total.fetch_add(1);
            return Status::OK();
          });
        }
        Status s = exec.RunBatch(std::move(tasks));
        EXPECT_TRUE(s.ok()) << s.ToString();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), 4 * 8 * 8);
}

TEST(IoExecutorTest, DefaultExecutorExists) {
  IoExecutor* exec = IoExecutor::Default();
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec, IoExecutor::Default());  // stable singleton
  std::vector<std::function<Status()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&ran] {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  EOS_ASSERT_OK(exec->RunBatch(std::move(tasks)));
  EXPECT_EQ(ran.load(), 4);
}

// ----- BufferPool ------------------------------------------------------------

TEST(BufferPoolTest, AcquireGivesUsableAlignedMemory) {
  BufferPool pool;
  BufferPool::Buffer b = pool.Acquire(10000);
  ASSERT_TRUE(b.valid());
  EXPECT_GE(b.size(), 10000u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 4096, 0u);
  std::memset(b.data(), 0xAB, b.size());
  EXPECT_EQ(b.data()[b.size() - 1], 0xAB);
}

TEST(BufferPoolTest, ReleaseThenAcquireReusesBlock) {
  BufferPool pool;
  uint8_t* first;
  {
    BufferPool::Buffer b = pool.Acquire(8192);
    first = b.data();
  }
  EXPECT_EQ(pool.idle_buffers(), 1u);
  BufferPool::Buffer again = pool.Acquire(8192);
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPoolTest, SteadyStateHasNoFreshAllocations) {
  // The zero-per-I/O-allocation claim, in miniature: after warmup a
  // fixed-size working set cycles entirely through the free lists.
  BufferPool pool;
  for (int round = 0; round < 3; ++round) {
    std::vector<BufferPool::Buffer> live;
    for (int i = 0; i < 8; ++i) live.push_back(pool.Acquire(4096));
  }
  // Rounds 2 and 3 must have been served from the free list: the pool
  // never holds more than the 8 blocks round 1 allocated.
  EXPECT_EQ(pool.idle_buffers(), 8u);
}

TEST(BufferPoolTest, DifferentSizeClassesDoNotMix) {
  BufferPool pool;
  { BufferPool::Buffer b = pool.Acquire(4096); }
  BufferPool::Buffer big = pool.Acquire(1u << 20);
  EXPECT_GE(big.size(), 1u << 20);
  EXPECT_EQ(pool.idle_buffers(), 1u);  // the 4 KiB block is still idle
}

TEST(BufferPoolTest, OversizeRequestsAreUnpooled) {
  BufferPool pool;
  { BufferPool::Buffer b = pool.Acquire(64u << 20); }  // > kMaxPooledBytes
  EXPECT_EQ(pool.idle_buffers(), 0u);  // freed, not retained
}

TEST(BufferPoolTest, MoveTransfersOwnership) {
  BufferPool pool;
  BufferPool::Buffer a = pool.Acquire(4096);
  uint8_t* p = a.data();
  BufferPool::Buffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_EQ(b.data(), p);
  b.Release();
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(pool.idle_buffers(), 1u);
}

TEST(BufferPoolTest, RetentionIsBounded) {
  BufferPool pool(/*max_per_class=*/2);
  {
    std::vector<BufferPool::Buffer> live;
    for (int i = 0; i < 10; ++i) live.push_back(pool.Acquire(4096));
  }
  EXPECT_EQ(pool.idle_buffers(), 2u);
}

TEST(BufferPoolTest, RetainedBytesAreBoundedAcrossClasses) {
  // The per-class count cap alone is not a memory bound: a workload that
  // cycles whole-extent staging buffers (cache fills) through every size
  // class would retain max_per_class buffers of each class — hundreds of
  // MiB. The pool must also enforce a total idle-byte budget.
  constexpr size_t kBudget = 8u << 20;  // 8 MiB
  BufferPool pool(/*max_per_class=*/16, /*max_idle_bytes=*/kBudget);
  // Touch every pooled class, several buffers each, mimicking repeated
  // compressed-fill staging of differently-sized extents.
  for (int round = 0; round < 4; ++round) {
    for (size_t bytes = 4096; bytes <= (16u << 20); bytes <<= 1) {
      BufferPool::Buffer b = pool.Acquire(bytes);
      ASSERT_TRUE(b.valid());
      b.data()[0] = 1;  // returned on scope exit
    }
    EXPECT_LE(pool.idle_bytes(), kBudget);
  }
  EXPECT_LE(pool.idle_bytes(), kBudget);
  // The budget still leaves room for small-class recycling: a 4 KiB block
  // released under budget must be retained, not freed.
  size_t before = pool.idle_bytes();
  if (before + 4096 <= kBudget) {
    { BufferPool::Buffer b = pool.Acquire(32u << 20); }  // unpooled, no-op
    { BufferPool::Buffer b = pool.Acquire(4096); }
    EXPECT_GE(pool.idle_bytes(), before);
  }
}

TEST(BufferPoolTest, IdleBytesTracksAcquireAndReturn) {
  BufferPool pool;
  EXPECT_EQ(pool.idle_bytes(), 0u);
  { BufferPool::Buffer b = pool.Acquire(8192); }
  EXPECT_EQ(pool.idle_bytes(), 8192u);
  BufferPool::Buffer again = pool.Acquire(8192);
  EXPECT_EQ(pool.idle_bytes(), 0u);
  again.Release();
  EXPECT_EQ(pool.idle_bytes(), 8192u);
}

TEST(BufferPoolTest, ConcurrentAcquireRelease) {
  BufferPool pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 200; ++i) {
        BufferPool::Buffer b = pool.Acquire(4096 << (i % 3));
        b.data()[0] = static_cast<uint8_t>(t);
        ASSERT_EQ(b.data()[0], static_cast<uint8_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(BufferPoolTest, PooledBuffersFlowAcrossThreads) {
  // Buffers acquired on one thread and released on another (the executor
  // hand-off pattern) must recycle cleanly.
  BufferPool pool;
  IoExecutor exec(2);
  for (int round = 0; round < 20; ++round) {
    // std::function requires copyable closures, so the move-only Buffer
    // travels behind a shared_ptr — the same shape the read-ahead uses.
    auto b = std::make_shared<BufferPool::Buffer>(pool.Acquire(8192));
    Bytes payload = PatternBytes(round, 8192);
    std::memcpy(b->data(), payload.data(), payload.size());
    IoExecutor::Ticket t = exec.Submit([b, &payload] {
      if (std::memcmp(b->data(), payload.data(), payload.size()) != 0) {
        return Status::Corruption("payload mangled in hand-off");
      }
      b->Release();
      return Status::OK();
    });
    EOS_ASSERT_OK(t.Wait());
  }
  EXPECT_GE(pool.idle_buffers(), 1u);
}

}  // namespace
}  // namespace eos
