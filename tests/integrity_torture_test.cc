// Bit-rot torture for the end-to-end integrity layer.
//
// The central claim under test: with checksums on, a corrupted volume
// NEVER serves wrong bytes. Every page of a populated volume is corrupted
// in turn (covering every role a page can have — superblock, allocation
// map, directory, index node, leaf) and each read either succeeds with
// oracle-exact bytes or fails with a typed Corruption at the right layer.
// Scrub pinpoints exactly the rotted pages; repair rebuilds the damaged
// object with the losses zero-filled and reported as holes; transient
// device faults are retried away without the caller ever noticing.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "eos/database.h"
#include "io/chaos_device.h"
#include "io/verified_device.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

constexpr uint32_t kPhysPageSize = 256;
constexpr uint32_t kPageSize =
    kPhysPageSize - VerifiedPageDevice::kTrailerBytes;  // 240 logical

DatabaseOptions TortureOpts() {
  DatabaseOptions o;
  o.page_size = kPhysPageSize;
  o.space_pages = 200;
  o.checksums = true;
  o.pager_frames = 32;  // small cache: reads reach the device
  // Many small segments force a multi-level tree even at modest sizes, so
  // the sweep hits genuine index-node pages.
  o.lob.threshold_pages = 1;
  o.lob.max_segment_pages = 2;
  return o;
}

// The populated volume every test starts from: a handful of objects whose
// contents the tests keep as the oracle, including one big enough for a
// multi-level tree.
struct Workload {
  std::map<uint64_t, Bytes> oracle;

  Status Populate(Database* db) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      size_t n = seed == 2 ? 40000 : 700 * seed;  // object 2: depth >= 1
      Bytes content = PatternBytes(seed, n);
      EOS_ASSIGN_OR_RETURN(uint64_t id, db->CreateObjectFrom(content));
      oracle[id] = std::move(content);
    }
    return db->Flush();
  }

  // Reads every object and insists each result is byte-exact or a typed
  // corruption error — never silently wrong. Returns how many objects
  // failed with Corruption.
  int VerifyNoWrongBytes(Database* db) const {
    int corrupt = 0;
    for (const auto& [id, expect] : oracle) {
      auto data = db->Read(id, 0, expect.size());
      if (data.ok()) {
        EXPECT_EQ(*data, expect) << "object " << id
                                 << " served WRONG BYTES silently";
      } else {
        EXPECT_TRUE(data.status().IsCorruption())
            << "object " << id << ": " << data.status().ToString();
        ++corrupt;
      }
    }
    return corrupt;
  }
};

TEST(IntegrityTortureTest, EveryPageRoleFailsClosedAndScrubPinpointsIt) {
  // Build the master image once.
  auto master_chaos = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(kPhysPageSize, 1), 4242);
  ChaosPageDevice* master = master_chaos.get();
  auto db = Database::CreateOnDevice(std::move(master_chaos), TortureOpts());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Workload w;
  EOS_ASSERT_OK(w.Populate(db->get()));
  auto big_stats = (*db)->ObjectStats(2);
  ASSERT_TRUE(big_stats.ok()) << big_stats.status().ToString();
  ASSERT_GE(big_stats->depth, 1u)
      << "workload must produce index-node pages";
  uint64_t page_count = (*db)->device()->page_count();
  // Pages the open path itself traverses, for classifying failed opens:
  // the allocation-map directory of every space, and the leaves of the
  // object directory.
  std::set<PageId> amap_pages;
  for (uint32_t sp = 0; sp < (*db)->allocator()->num_spaces(); ++sp) {
    amap_pages.insert((*db)->allocator()->DirPage(sp));
  }
  std::set<PageId> dir_pages;
  ASSERT_EQ((*db)->dir_object().root.level, 0u);
  for (const LobEntry& e : (*db)->dir_object().root.entries) {
    uint64_t extent_pages = (e.count + kPageSize - 1) / kPageSize;
    for (uint64_t i = 0; i < extent_pages; ++i) dir_pages.insert(e.page + i);
  }
  auto image = master->CloneImage();
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  db->reset();

  std::set<PageRole> roles_caught;
  uint64_t failed_opens = 0;
  uint64_t corrupt_reads = 0;
  uint64_t scrub_hits = 0;
  for (PageId victim = 0; victim < page_count; ++victim) {
    // Fresh copy of the clean image, with seeded rot on exactly one page.
    auto copy = std::make_unique<MemPageDevice>(kPhysPageSize,
                                                (*image)->page_count());
    Bytes raw(size_t{(*image)->page_count()} * kPhysPageSize);
    ASSERT_TRUE(
        (*image)->ReadPages(0, (*image)->page_count(), raw.data()).ok());
    ASSERT_TRUE(
        copy->WritePages(0, (*image)->page_count(), raw.data()).ok());
    auto chaos = std::make_unique<ChaosPageDevice>(std::move(copy),
                                                   1000 + victim);
    EOS_ASSERT_OK(chaos->CorruptPage(victim, /*bits=*/3));

    auto opened = Database::OpenOnDevice(std::move(chaos), TortureOpts());
    if (!opened.ok()) {
      // Rot in the superblock, the directory object, or a page the open
      // path must traverse: refusing to open is failing closed. A flip in
      // the raw superblock's epoch field can surface as a geometry
      // mismatch instead of a checksum error, so page 0 only requires a
      // typed failure.
      if (victim != Database::kSuperblockPage) {
        EXPECT_TRUE(opened.status().IsCorruption())
            << "page " << victim << ": " << opened.status().ToString();
      }
      ++failed_opens;
      if (victim == Database::kSuperblockPage) {
        roles_caught.insert(PageRole::kSuperblock);
      } else if (amap_pages.count(victim) > 0) {
        roles_caught.insert(PageRole::kAllocatorMap);
      } else if (dir_pages.count(victim) > 0) {
        roles_caught.insert(PageRole::kDirectory);
      } else {
        ADD_FAILURE() << "open failed for page " << victim
                      << ", which the open path should not traverse: "
                      << opened.status().ToString();
      }
      continue;
    }
    corrupt_reads += w.VerifyNoWrongBytes(opened->get());

    ScrubReport report;
    EOS_ASSERT_OK((*opened)->Scrub(&report));
    EXPECT_GT(report.pages_verified, 0u);
    for (const ScrubIssue& i : report.issues) {
      EXPECT_EQ(i.page, victim)
          << "scrub blamed page " << i.page << " ("
          << PageRoleName(i.role) << "): " << i.message;
      roles_caught.insert(i.role);
    }
    if (!report.issues.empty()) ++scrub_hits;
  }

  // The sweep must have exercised every layer's detection path.
  EXPECT_GT(failed_opens, 0u);
  EXPECT_GT(corrupt_reads, 0u);
  EXPECT_GT(scrub_hits, 0u);
  EXPECT_TRUE(roles_caught.count(PageRole::kSuperblock));
  EXPECT_TRUE(roles_caught.count(PageRole::kAllocatorMap));
  EXPECT_TRUE(roles_caught.count(PageRole::kDirectory));
  EXPECT_TRUE(roles_caught.count(PageRole::kIndexNode));
  EXPECT_TRUE(roles_caught.count(PageRole::kLeaf));
}

TEST(IntegrityTortureTest, ScrubOnLiveVolumeReportsMetadataRoles) {
  // Rot that lands after a clean open (Attach would refuse a rotted
  // volume): scrub's device-direct probes must still classify it.
  auto chaos_owner = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(kPhysPageSize, 1), 88);
  ChaosPageDevice* chaos = chaos_owner.get();
  auto db = Database::CreateOnDevice(std::move(chaos_owner), TortureOpts());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Workload w;
  EOS_ASSERT_OK(w.Populate(db->get()));

  PageId amap = (*db)->allocator()->DirPage(0);
  ASSERT_EQ((*db)->dir_object().root.level, 0u);
  PageId dir_leaf = (*db)->dir_object().root.entries[0].page;
  EOS_ASSERT_OK(chaos->CorruptPage(amap, 3));
  EOS_ASSERT_OK(chaos->CorruptPage(dir_leaf, 3));

  ScrubReport report;
  EOS_ASSERT_OK((*db)->Scrub(&report));
  std::set<PageRole> roles;
  std::set<PageId> pages;
  for (const ScrubIssue& i : report.issues) {
    roles.insert(i.role);
    pages.insert(i.page);
  }
  EXPECT_TRUE(roles.count(PageRole::kAllocatorMap));
  EXPECT_TRUE(roles.count(PageRole::kDirectory));
  EXPECT_EQ(pages, (std::set<PageId>{amap, dir_leaf}));
}

TEST(IntegrityTortureTest, ScrubFindsExactlyTheRotAndRepairZeroFillsIt) {
  auto chaos_owner = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(kPhysPageSize, 1), 77);
  ChaosPageDevice* chaos = chaos_owner.get();
  auto db = Database::CreateOnDevice(std::move(chaos_owner), TortureOpts());
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  Bytes content = PatternBytes(31, 4000);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EOS_ASSERT_OK((*db)->Flush());

  // Pick two victim pages straight from the object's level-0 root: the
  // first page of the third extent and the last page of the sixth.
  auto root = (*db)->GetRoot(*id);
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->root.level, 0u);
  ASSERT_GE(root->root.entries.size(), 6u);
  std::vector<HoleRange> expected_holes;
  std::set<PageId> victims;
  uint64_t prefix = 0;
  for (size_t i = 0; i < root->root.entries.size(); ++i) {
    const LobEntry& e = root->root.entries[i];
    uint64_t extent_pages = (e.count + kPageSize - 1) / kPageSize;
    if (i == 2) {
      victims.insert(e.page);
      expected_holes.push_back({prefix, std::min<uint64_t>(kPageSize,
                                                           e.count)});
    }
    if (i == 5) {
      victims.insert(e.page + extent_pages - 1);
      uint64_t off = (extent_pages - 1) * kPageSize;
      expected_holes.push_back({prefix + off, e.count - off});
    }
    prefix += e.count;
  }
  for (PageId v : victims) EOS_ASSERT_OK(chaos->CorruptPage(v, 3));

  // Scrub names exactly the two rotted pages, as leaves of this object.
  ScrubReport report;
  EOS_ASSERT_OK((*db)->Scrub(&report));
  std::set<PageId> blamed;
  for (const ScrubIssue& i : report.issues) {
    EXPECT_EQ(i.object_id, *id);
    EXPECT_EQ(i.role, PageRole::kLeaf);
    blamed.insert(i.page);
  }
  EXPECT_EQ(blamed, victims);
  // The failed verification reads quarantined the rot as a side effect.
  for (PageId v : victims) {
    EXPECT_TRUE((*db)->verified_device()->IsQuarantined(v));
  }

  // Repair: the object reads again, byte-exact outside the holes and
  // zero-filled inside them, with the hole map persisted.
  EOS_ASSERT_OK((*db)->RepairObject(*id));
  std::vector<HoleRange> holes = (*db)->GetHoles(*id);
  ASSERT_EQ(holes.size(), expected_holes.size());
  Bytes expect = content;
  for (size_t i = 0; i < holes.size(); ++i) {
    EXPECT_EQ(holes[i].offset, expected_holes[i].offset) << "hole " << i;
    EXPECT_EQ(holes[i].length, expected_holes[i].length) << "hole " << i;
    std::fill(expect.begin() + expected_holes[i].offset,
              expect.begin() + expected_holes[i].offset +
                  expected_holes[i].length,
              uint8_t{0});
  }
  auto data = (*db)->Read(*id, 0, content.size());
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, expect);

  // The volume is clean again: structural invariants hold, a second scrub
  // is issue-free, and the hole map survives a reopen.
  EOS_ASSERT_OK((*db)->CheckIntegrity());
  ScrubReport again;
  EOS_ASSERT_OK((*db)->Scrub(&again));
  EXPECT_TRUE(again.clean()) << again.issues.size() << " issues remain";

  auto image = chaos->CloneImage();
  ASSERT_TRUE(image.ok());
  db->reset();
  auto reopened =
      Database::OpenOnDevice(std::move(image).value(), TortureOpts());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::vector<HoleRange> persisted = (*reopened)->GetHoles(*id);
  ASSERT_EQ(persisted.size(), holes.size());
  for (size_t i = 0; i < holes.size(); ++i) {
    EXPECT_EQ(persisted[i].offset, holes[i].offset);
    EXPECT_EQ(persisted[i].length, holes[i].length);
  }
  auto data2 = (*reopened)->Read(*id, 0, content.size());
  ASSERT_TRUE(data2.ok()) << data2.status().ToString();
  EXPECT_EQ(*data2, expect);
}

TEST(IntegrityTortureTest, TransientFaultsAreInvisibleToCorrectness) {
  auto chaos_owner = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(kPhysPageSize, 1), 55);
  ChaosPageDevice* chaos = chaos_owner.get();
  DatabaseOptions opts = TortureOpts();
  opts.pager_frames = 8;  // nearly uncached: every read risks the fault
  auto db = Database::CreateOnDevice(std::move(chaos_owner), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Workload w;
  EOS_ASSERT_OK(w.Populate(db->get()));

  uint64_t retries_before =
      obs::MetricsRegistry::Default().counter(obs::kIoReadRetry)->value();
  for (int round = 0; round < 25; ++round) {
    chaos->FailReadsAfter(round % 5);           // transient read fault
    if (round % 3 == 0) chaos->FailWritesAfter(round % 4);
    for (const auto& [id, expect] : w.oracle) {
      uint64_t off = (uint64_t{17} * round) % expect.size();
      uint64_t n = std::min<uint64_t>(expect.size() - off, 900);
      auto data = (*db)->Read(id, off, n);
      ASSERT_TRUE(data.ok()) << data.status().ToString();
      EXPECT_EQ(*data, Bytes(expect.begin() + off,
                             expect.begin() + off + n));
    }
    Bytes extra = PatternBytes(100 + round, 300);
    uint64_t grow_id = w.oracle.begin()->first;
    EOS_ASSERT_OK((*db)->Append(grow_id, extra));
    w.oracle[grow_id].insert(w.oracle[grow_id].end(), extra.begin(),
                             extra.end());
  }
  chaos->Heal();
  EXPECT_EQ(w.VerifyNoWrongBytes(db->get()), 0);
  EXPECT_GT(obs::MetricsRegistry::Default()
                .counter(obs::kIoReadRetry)
                ->value(),
            retries_before)
      << "the faults must actually have fired";
  EXPECT_GT(chaos->injected_faults(), 0u);
  EXPECT_EQ((*db)->verified_device()->quarantined_count(), 0u);
  EOS_ASSERT_OK((*db)->CheckIntegrity());
}

}  // namespace
}  // namespace eos
