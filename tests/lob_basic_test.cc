// Basic large-object operations plus the exact object shapes of Figure 5
// (E4) and the worked read-cost example of Section 4.2 (E5).

#include <gtest/gtest.h>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(LobBasicTest, EmptyObject) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  EXPECT_EQ(d.size(), 0u);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
  EOS_EXPECT_OK(s.lob->CheckInvariants(d));
}

TEST(LobBasicTest, Figure5aKnownSizeCreate) {
  // PS = 100, 1820 bytes with the size known in advance: one segment of
  // ceil(1820/100) = 19 pages, root with a single pair (count 1820).
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(1, 1820);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 1820u);
  EXPECT_EQ(d->root.level, 0);
  ASSERT_EQ(d->root.entries.size(), 1u);
  EXPECT_EQ(d->root.entries[0].count, 1820u);
  auto stats = s.lob->Stats(*d);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_segments, 1u);
  EXPECT_EQ(stats->leaf_pages, 19u);
  EXPECT_EQ(stats->index_pages, 0u);
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
}

TEST(LobBasicTest, Figure5bUnknownSizeDoublingGrowth) {
  // The same 1820 bytes appended in 20 chunks of 91 bytes without a size
  // hint: segments double 1, 2, 4, 8 pages, then the last (16) is trimmed
  // to 4 pages -> cumulative counts 100, 300, 700, 1500, 1820.
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(2, 1820);
  LobDescriptor d = s.lob->CreateEmpty();
  {
    LobAppender app(s.lob.get(), &d);
    for (int i = 0; i < 20; ++i) {
      EOS_ASSERT_OK(app.Append(ByteView(data.data() + i * 91, 91)));
    }
    EOS_ASSERT_OK(app.Finish());
  }
  EXPECT_EQ(d.size(), 1820u);
  ASSERT_EQ(d.root.entries.size(), 5u);
  EXPECT_EQ(d.root.entries[0].count, 100u);
  EXPECT_EQ(d.root.entries[1].count, 200u);
  EXPECT_EQ(d.root.entries[2].count, 400u);
  EXPECT_EQ(d.root.entries[3].count, 800u);
  EXPECT_EQ(d.root.entries[4].count, 320u);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.lob->CheckInvariants(d));

  // Storage utilization: only the last page of the last segment is
  // partially full (20 bytes of 100).
  auto stats = s.lob->Stats(d);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->leaf_pages, 19u);
}

// Builds the exact object of Figure 5.c: root (level 1) with two children;
// the right child points to three segments of 280, 430 and 90 bytes.
class Figure5cTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_ = Stack::Make(100);
    data_ = PatternBytes(3, 1820);
    NodeStore* store = s_.lob->node_store();

    // Left child: 1020 bytes in two segments (520 + 500).
    LobNode left;
    left.level = 0;
    left.entries.push_back(MakeSegment(0, 520));
    left.entries.push_back(MakeSegment(520, 500));
    auto left_page = store->WriteNew(left);
    ASSERT_TRUE(left_page.ok());

    // Right child: 800 bytes in segments of 280, 430, 90 (cumulative
    // counts 280, 710, 800 as in the figure).
    LobNode right;
    right.level = 0;
    right.entries.push_back(MakeSegment(1020, 280));
    right.entries.push_back(MakeSegment(1300, 430));
    right.entries.push_back(MakeSegment(1730, 90));
    auto right_page = store->WriteNew(right);
    ASSERT_TRUE(right_page.ok());

    d_.root.level = 1;
    d_.root.entries = {LobEntry{1020, *left_page},
                       LobEntry{800, *right_page}};
    EOS_ASSERT_OK(s_.pager->FlushAll());
  }

  LobEntry MakeSegment(uint64_t offset, uint64_t bytes) {
    uint32_t pages = static_cast<uint32_t>((bytes + 99) / 100);
    auto e = s_.allocator->Allocate(pages);
    EXPECT_TRUE(e.ok());
    // Leave a one-page gap after each segment so consecutive segments are
    // never physically adjacent (each access costs its own seek).
    auto gap = s_.allocator->Allocate(1);
    EXPECT_TRUE(gap.ok());
    Bytes buf(size_t{pages} * 100, 0);
    std::memcpy(buf.data(), data_.data() + offset, bytes);
    EXPECT_TRUE(
        s_.device->WritePages(e->first, pages, buf.data()).ok());
    return LobEntry{bytes, e->first};
  }

  Stack s_;
  Bytes data_;
  LobDescriptor d_;
};

TEST_F(Figure5cTest, StructureAndContent) {
  EXPECT_EQ(d_.size(), 1820u);
  auto all = s_.lob->ReadAll(d_);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data_);
  EOS_EXPECT_OK(s_.lob->CheckInvariants(d_));
  auto stats = s_.lob->Stats(d_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_segments, 5u);
  EXPECT_EQ(stats->index_pages, 2u);
  EXPECT_EQ(stats->depth, 1u);
}

TEST_F(Figure5cTest, WorkedReadCostExample) {
  // Section 4.2: reading 320 bytes from byte 1470 costs, excluding the
  // root, 3 disk seeks plus 6 page transfers (1 index page + 4 pages of
  // the 430-byte segment + 1 page of the 90-byte segment).
  EOS_ASSERT_OK(s_.pager->EvictAll());
  s_.device->ForgetHeadPosition();
  s_.device->ResetStats();
  Bytes out;
  EOS_ASSERT_OK(s_.lob->Read(d_, 1470, 320, &out));
  EXPECT_EQ(out, Bytes(data_.begin() + 1470, data_.begin() + 1790));
  const IoStats& io = s_.device->stats();
  EXPECT_EQ(io.seeks, 3u);
  EXPECT_EQ(io.pages_read, 6u);
  EXPECT_EQ(io.pages_written, 0u);
}

TEST(LobBasicTest, Figure5aReadCost) {
  // The same read on the contiguous object of Figure 5.a: one seek, and
  // the pages holding bytes 1470..1790 (pages 14..17 -> 4 transfers; the
  // paper's prose says 5, an off-by-one in its own arithmetic).
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(4, 1820);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.pager->EvictAll());
  s.device->ForgetHeadPosition();
  s.device->ResetStats();
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(*d, 1470, 320, &out));
  EXPECT_EQ(out, Bytes(data.begin() + 1470, data.begin() + 1790));
  EXPECT_EQ(s.device->stats().seeks, 1u);
  EXPECT_EQ(s.device->stats().pages_read, 4u);
}

TEST(LobBasicTest, ReplaceInPlace) {
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(5, 2500);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  Bytes patch = PatternBytes(6, 333);
  EOS_ASSERT_OK(s.lob->Replace(&*d, 777, patch));
  std::memcpy(data.data() + 777, patch.data(), patch.size());
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  // Replace must not change the structure.
  EXPECT_EQ(d->size(), 2500u);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
}

TEST(LobBasicTest, ReplaceBeyondEndFails) {
  Stack s = Stack::Make(100);
  auto d = s.lob->CreateFrom(PatternBytes(7, 500));
  ASSERT_TRUE(d.ok());
  Bytes patch(100, 0xAB);
  Status st = s.lob->Replace(&*d, 450, patch);
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST(LobBasicTest, AppendToExistingObjectMovesPartialTail) {
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(8, 250);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  Bytes more = PatternBytes(9, 180);
  EOS_ASSERT_OK(s.lob->Append(&*d, more));
  data.insert(data.end(), more.begin(), more.end());
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EXPECT_EQ(d->size(), 430u);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
}

TEST(LobBasicTest, TruncateTouchesNoLeafPages) {
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(10, 5000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  s.device->ResetStats();
  // Truncating at a page boundary must not read or write any leaf page
  // (Section 4.3.2). 1700 is page-aligned.
  EOS_ASSERT_OK(s.lob->Truncate(&*d, 1700));
  // Index pages may be read/written but leaf data may not; the object is a
  // single segment, so any leaf I/O would be a multi-page access. All
  // accesses here must be single-page (index/directory only).
  EXPECT_EQ(d->size(), 1700u);
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, Bytes(data.begin(), data.begin() + 1700));
}

TEST(LobBasicTest, TruncateMidPageCreatesOnePageSegment) {
  Stack s = Stack::Make(100);
  LobConfig cfg;
  cfg.threshold_pages = 1;
  Stack s2 = Stack::Make(100, 0, cfg);
  Bytes data = PatternBytes(11, 5000);
  auto d = s2.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s2.lob->Truncate(&*d, 1750));
  EXPECT_EQ(d->size(), 1750u);
  auto all = s2.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, Bytes(data.begin(), data.begin() + 1750));
  EOS_EXPECT_OK(s2.lob->CheckInvariants(*d));
}

TEST(LobBasicTest, DestroyReturnsAllPages) {
  Stack s = Stack::Make(100);
  auto before = s.allocator->TotalFreePages();
  ASSERT_TRUE(before.ok());
  auto d = s.lob->CreateFrom(PatternBytes(12, 123456));
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
  EXPECT_EQ(d->size(), 0u);
  auto after = s.allocator->TotalFreePages();
  ASSERT_TRUE(after.ok());
  // The workload may have grown the volume; every page of every space must
  // be free again afterwards.
  EXPECT_EQ(*after, uint64_t{s.allocator->num_spaces()} *
                        s.allocator->geometry().space_pages)
      << "destroy must free every page";
  EOS_EXPECT_OK(s.allocator->CheckInvariants());
}

TEST(LobBasicTest, LargeObjectMultiLevelTree) {
  // Force a deep tree: tiny root (2 entries max => 40 bytes) and small
  // pages.
  LobConfig cfg;
  cfg.max_root_bytes = 8 + 2 * 16 + 8;  // room for 2 entries
  cfg.max_segment_pages = 4;
  Stack s = Stack::Make(128, 0, cfg);
  Bytes data = PatternBytes(13, 60000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_LE(d->root.entries.size(), 2u);
  EXPECT_GE(d->root.level, 1);
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
  // Random access: read 100 bytes at various offsets.
  for (uint64_t off : {0ull, 1ull, 12345ull, 59900ull}) {
    Bytes out;
    EOS_ASSERT_OK(s.lob->Read(*d, off, 100, &out));
    size_t want = std::min<size_t>(100, 60000 - off);
    EXPECT_EQ(out, Bytes(data.begin() + off, data.begin() + off + want));
  }
}

TEST(LobBasicTest, ReadPastEndClampsAndOffsetBeyondFails) {
  Stack s = Stack::Make(100);
  auto d = s.lob->CreateFrom(PatternBytes(14, 500));
  ASSERT_TRUE(d.ok());
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(*d, 450, 1000, &out));
  EXPECT_EQ(out.size(), 50u);
  Status st = s.lob->Read(*d, 501, 10, &out);
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST(LobBasicTest, WriteOverwritesAndExtends) {
  Stack s = Stack::Make(100);
  Bytes model = PatternBytes(30, 1000);
  auto d = s.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  // Entirely within bounds: pure replace.
  Bytes w1 = PatternBytes(31, 200);
  EOS_ASSERT_OK(s.lob->Write(&*d, 100, w1));
  std::copy(w1.begin(), w1.end(), model.begin() + 100);
  // Straddles the end: replace + append.
  Bytes w2 = PatternBytes(32, 300);
  EOS_ASSERT_OK(s.lob->Write(&*d, 900, w2));
  model.resize(900);
  model.insert(model.end(), w2.begin(), w2.end());
  // Exactly at the end: pure append.
  Bytes w3 = PatternBytes(33, 50);
  EOS_ASSERT_OK(s.lob->Write(&*d, d->size(), w3));
  model.insert(model.end(), w3.begin(), w3.end());
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
  // Beyond the end: rejected (no holes in objects).
  EXPECT_TRUE(s.lob->Write(&*d, d->size() + 1, w3).IsOutOfRange());
}

}  // namespace
}  // namespace eos
