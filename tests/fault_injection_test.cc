// Failure injection through the shared ChaosPageDevice: device errors must
// surface as IOError statuses, never crash, and the storage stack must stay
// usable once the fault clears. Also covers torn writes, bit-rot, faults
// during FilePageDevice::Grow, and the crash/clone cycle the recovery
// torture builds on.

#include <gtest/gtest.h>

#include <string>

#include "io/chaos_device.h"
#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

// In-memory stack with a chaos wrapper between the pager and the store.
struct ChaosStack {
  std::unique_ptr<ChaosPageDevice> device;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<SegmentAllocator> allocator;
  std::unique_ptr<LobManager> lob;

  explicit ChaosStack(uint32_t page_size, uint64_t seed = 0,
                      const LobConfig& cfg = LobConfig{}) {
    auto geo = BuddyGeometry::Make(page_size);
    EXPECT_TRUE(geo.ok());
    device = std::make_unique<ChaosPageDevice>(
        std::make_unique<MemPageDevice>(page_size, 1 + geo->space_pages + 1),
        seed);
    pager = std::make_unique<Pager>(device.get(), 32);
    SegmentAllocator::Options opt;
    auto a = SegmentAllocator::Format(pager.get(), *geo, 1, opt);
    EXPECT_TRUE(a.ok());
    allocator = std::move(a).value();
    lob = std::make_unique<LobManager>(pager.get(), allocator.get(), cfg);
  }
};

TEST(FaultInjectionTest, ReadFaultSurfacesAsIOError) {
  ChaosStack s(256);
  auto d = s.lob->CreateFrom(PatternBytes(1, 10000));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(s.pager->EvictAll().ok());
  s.device->FailReadsAfter(0, /*permanent=*/true);
  Bytes out;
  Status st = s.lob->Read(*d, 0, 10000, &out);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GE(s.device->injected_faults(), 1u);
  // After healing, everything reads back fine.
  s.device->Heal();
  EOS_ASSERT_OK(s.lob->Read(*d, 0, 10000, &out));
  EXPECT_EQ(out, PatternBytes(1, 10000));
}

TEST(FaultInjectionTest, WriteFaultDuringCreatePropagates) {
  ChaosStack s(256);
  // The directory page is cached by the pager, so the first device
  // operation of the create is the segment write itself.
  s.device->FailWritesAfter(0, /*permanent=*/true);
  auto d = s.lob->CreateFrom(PatternBytes(2, 100000));
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsIOError()) << d.status().ToString();
  s.device->Heal();
  // The stack remains usable for new work.
  auto d2 = s.lob->CreateFrom(PatternBytes(3, 5000));
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();
  auto all = s.lob->ReadAll(*d2);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, PatternBytes(3, 5000));
}

TEST(FaultInjectionTest, FaultMidUpdateLeavesOldContentReadable) {
  ChaosStack s(256);
  Bytes data = PatternBytes(4, 20000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(s.pager->FlushAll().ok());
  LobDescriptor snapshot = *d;  // root as of the last consistent state

  s.device->FailAfter(1, /*permanent=*/true);
  Status st = s.lob->Insert(&*d, 5000, PatternBytes(5, 300));
  EXPECT_FALSE(st.ok());
  s.device->Heal();
  // Insert/delete never overwrite leaf pages, so the OLD root still
  // describes intact data even though the failed update may have leaked
  // fresh pages (garbage collection of those needs the transaction layer).
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(snapshot, 0, data.size(), &out));
  EXPECT_EQ(out, data);
}

TEST(FaultInjectionTest, EveryNthOpFaultSweep) {
  // Sweep the failure point across an update's I/O sequence; whatever
  // happens must be a clean Status, and the pre-update snapshot must stay
  // readable (the no-leaf-overwrite guarantee). A transient fault would
  // fire once and clear; permanent matches the old FaultyDevice semantics.
  for (int fail_at = 0; fail_at < 12; ++fail_at) {
    ChaosStack s(256);
    Bytes data = PatternBytes(6, 15000);
    auto d = s.lob->CreateFrom(data);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(s.pager->FlushAll().ok());
    EXPECT_TRUE(s.pager->EvictAll().ok());
    LobDescriptor snapshot = *d;
    s.device->FailAfter(fail_at, /*permanent=*/true);
    Status st = s.lob->Delete(&*d, 3000, 4000);
    s.device->Heal();
    if (!st.ok()) {
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
      Bytes out;
      EOS_ASSERT_OK(s.lob->Read(snapshot, 0, data.size(), &out));
      EXPECT_EQ(out, data) << "fail_at=" << fail_at;
    }
  }
}

TEST(FaultInjectionTest, TornWritePersistsOnlyLeadingPages) {
  ChaosStack s(256);
  // The next multi-page write keeps only its first page.
  s.device->TearWriteAfter(0, /*keep_pages=*/1);
  Bytes data = PatternBytes(7, 256 * 8);
  auto d = s.lob->CreateFrom(data);
  // The torn call reports failure; whichever layer sees it propagates.
  EXPECT_FALSE(d.ok());
  EXPECT_GE(s.device->injected_faults(), 1u);
  // The first page of the torn segment write is persisted, the rest is
  // still zero: read raw through the inner device to check the tear shape.
  // (We only assert the stack stays usable here — the precise persistence
  // semantics are covered by the crash torture.)
  auto d2 = s.lob->CreateFrom(data);
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();
  auto all = s.lob->ReadAll(*d2);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
}

TEST(FaultInjectionTest, BitRotIsDetectedByInvariantChecks) {
  LobConfig cfg;
  cfg.max_root_bytes = 88;     // tiny root…
  cfg.max_segment_pages = 2;   // …and small segments force a multi-level tree
  ChaosStack s(256, 0, cfg);
  Bytes data = PatternBytes(8, 30000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  ASSERT_GT(d->root.level, uint16_t{0}) << "object too small to have an "
                                           "index page";
  EXPECT_TRUE(s.pager->FlushAll().ok());
  EXPECT_TRUE(s.pager->EvictAll().ok());

  // Corrupt an index page: traversal or invariant checking must fail —
  // never crash, never silently return wrong bytes as success with intact
  // metadata.
  PageId index_page = d->root.entries[0].page;
  EOS_ASSERT_OK(s.device->CorruptPage(index_page, /*bits=*/16));
  Bytes out;
  Status read = s.lob->Read(*d, 0, data.size(), &out);
  Status invariants = s.lob->CheckInvariants(*d);
  bool detected = !read.ok() || !invariants.ok() || out != data;
  EXPECT_TRUE(detected) << "16 flipped bits in an index page went unnoticed";
}

TEST(FaultInjectionTest, BitRotInLeafChangesContent) {
  ChaosStack s(256);
  Bytes data = PatternBytes(9, 4000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->root.level, uint16_t{0});
  EXPECT_TRUE(s.pager->FlushAll().ok());
  EXPECT_TRUE(s.pager->EvictAll().ok());
  EOS_ASSERT_OK(s.device->CorruptPage(d->root.entries[0].page, /*bits=*/1));
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(*d, 0, data.size(), &out));
  EXPECT_NE(out, data) << "the flipped leaf bit did not surface in a read";
}

TEST(FaultInjectionTest, GrowFaultOnFileDeviceFailsCleanly) {
  std::string path = ::testing::TempDir() + "/eos_chaos_grow_test.vol";
  auto file = FilePageDevice::Create(path, 256, 4);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ChaosPageDevice chaos(std::move(*file));
  chaos.FailNextGrow();
  Status st = chaos.Grow(64);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // A failed Grow must leave the page count untouched (the silent
  // page-count drift bug): the wrapper and the file agree.
  EXPECT_EQ(chaos.page_count(), 4u);
  auto reopened = FilePageDevice::Open(path, 256);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 4u);
  // The fault was one-shot; growth now succeeds and both layers agree.
  EOS_ASSERT_OK(chaos.Grow(64));
  EXPECT_EQ(chaos.page_count(), 64u);
  Bytes page(256, 0xAB);
  EOS_ASSERT_OK(chaos.WritePages(63, 1, page.data()));
}

TEST(FaultInjectionTest, CrashCloneReopensThePersistedImage) {
  ChaosStack s(256);
  Bytes data = PatternBytes(10, 12000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(s.pager->FlushAll().ok());

  s.device->Crash();
  EXPECT_TRUE(s.device->crashed());
  // Power is off: every further I/O fails and Heal() does not help.
  Bytes out;
  EXPECT_TRUE(s.pager->EvictAll().ok());
  EXPECT_FALSE(s.lob->Read(*d, 0, data.size(), &out).ok());
  s.device->Heal();
  EXPECT_FALSE(s.lob->Read(*d, 0, data.size(), &out).ok());

  // But the persisted image survives and a fresh stack reads it back.
  auto image = s.device->CloneImage();
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto geo = BuddyGeometry::Make(256);
  ASSERT_TRUE(geo.ok());
  Pager pager2(image->get(), 32);
  auto alloc2 = SegmentAllocator::Attach(&pager2, *geo, 1, 1,
                                         SegmentAllocator::Options{});
  ASSERT_TRUE(alloc2.ok()) << alloc2.status().ToString();
  LobManager lob2(&pager2, alloc2->get(), LobConfig{});
  EOS_ASSERT_OK(lob2.Read(*d, 0, data.size(), &out));
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace eos
