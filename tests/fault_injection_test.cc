// Failure injection: device errors must surface as IOError statuses, never
// crash, and the storage stack must stay usable for reads that don't touch
// the failing region once the fault clears.

#include <gtest/gtest.h>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

// Wraps MemPageDevice and fails every I/O once `armed` — after an optional
// countdown of successful operations.
class FaultyDevice final : public PageDevice {
 public:
  FaultyDevice(uint32_t page_size, uint64_t page_count)
      : PageDevice(page_size, page_count), inner_(page_size, page_count) {}

  void FailAfter(int ops) { countdown_ = ops; }
  void Heal() { countdown_ = -1; }

  Status Grow(uint64_t new_page_count) override {
    EOS_RETURN_IF_ERROR(inner_.Grow(new_page_count));
    page_count_ = new_page_count;
    return Status::OK();
  }

 protected:
  Status DoRead(PageId first, uint32_t n, uint8_t* out) override {
    EOS_RETURN_IF_ERROR(MaybeFail());
    return inner_.ReadPages(first, n, out);
  }
  Status DoWrite(PageId first, uint32_t n, const uint8_t* data) override {
    EOS_RETURN_IF_ERROR(MaybeFail());
    return inner_.WritePages(first, n, data);
  }

 private:
  Status MaybeFail() {
    if (countdown_ < 0) return Status::OK();
    if (countdown_ == 0) return Status::IOError("injected fault");
    --countdown_;
    return Status::OK();
  }

  MemPageDevice inner_;
  int countdown_ = -1;
};

struct FaultyStack {
  std::unique_ptr<FaultyDevice> device;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<SegmentAllocator> allocator;
  std::unique_ptr<LobManager> lob;

  explicit FaultyStack(uint32_t page_size) {
    auto geo = BuddyGeometry::Make(page_size);
    EXPECT_TRUE(geo.ok());
    device = std::make_unique<FaultyDevice>(page_size,
                                            1 + geo->space_pages + 1);
    pager = std::make_unique<Pager>(device.get(), 32);
    SegmentAllocator::Options opt;
    auto a = SegmentAllocator::Format(pager.get(), *geo, 1, opt);
    EXPECT_TRUE(a.ok());
    allocator = std::move(a).value();
    lob = std::make_unique<LobManager>(pager.get(), allocator.get(),
                                       LobConfig{});
  }
};

TEST(FaultInjectionTest, ReadFaultSurfacesAsIOError) {
  FaultyStack s(256);
  auto d = s.lob->CreateFrom(PatternBytes(1, 10000));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(s.pager->EvictAll().ok());
  s.device->FailAfter(0);
  Bytes out;
  Status st = s.lob->Read(*d, 0, 10000, &out);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // After healing, everything reads back fine.
  s.device->Heal();
  EOS_ASSERT_OK(s.lob->Read(*d, 0, 10000, &out));
  EXPECT_EQ(out, PatternBytes(1, 10000));
}

TEST(FaultInjectionTest, WriteFaultDuringCreatePropagates) {
  FaultyStack s(256);
  // The directory page is cached by the pager, so the first device
  // operation of the create is the segment write itself.
  s.device->FailAfter(0);
  auto d = s.lob->CreateFrom(PatternBytes(2, 100000));
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsIOError()) << d.status().ToString();
  s.device->Heal();
  // The stack remains usable for new work.
  auto d2 = s.lob->CreateFrom(PatternBytes(3, 5000));
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();
  auto all = s.lob->ReadAll(*d2);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, PatternBytes(3, 5000));
}

TEST(FaultInjectionTest, FaultMidUpdateLeavesOldContentReadable) {
  FaultyStack s(256);
  Bytes data = PatternBytes(4, 20000);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(s.pager->FlushAll().ok());
  LobDescriptor snapshot = *d;  // root as of the last consistent state

  s.device->FailAfter(1);
  Status st = s.lob->Insert(&*d, 5000, PatternBytes(5, 300));
  EXPECT_FALSE(st.ok());
  s.device->Heal();
  // Insert/delete never overwrite leaf pages, so the OLD root still
  // describes intact data even though the failed update may have leaked
  // fresh pages (garbage collection of those needs the transaction layer).
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(snapshot, 0, data.size(), &out));
  EXPECT_EQ(out, data);
}

TEST(FaultInjectionTest, EveryNthOpFaultSweep) {
  // Sweep the failure point across an update's I/O sequence; whatever
  // happens must be a clean Status, and the pre-update snapshot must stay
  // readable (the no-leaf-overwrite guarantee).
  for (int fail_at = 0; fail_at < 12; ++fail_at) {
    FaultyStack s(256);
    Bytes data = PatternBytes(6, 15000);
    auto d = s.lob->CreateFrom(data);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(s.pager->FlushAll().ok());
    EXPECT_TRUE(s.pager->EvictAll().ok());
    LobDescriptor snapshot = *d;
    s.device->FailAfter(fail_at);
    Status st = s.lob->Delete(&*d, 3000, 4000);
    s.device->Heal();
    if (!st.ok()) {
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
      Bytes out;
      EOS_ASSERT_OK(s.lob->Read(snapshot, 0, data.size(), &out));
      EXPECT_EQ(out, data) << "fail_at=" << fail_at;
    }
  }
}

}  // namespace
}  // namespace eos
