// ReadLeafRuns: merging adjacent/overlapping page runs into single
// physically contiguous accesses (the unit behind the paper's "read one or
// two physically adjacent pages" insert/delete costs).

#include "lob/leaf_io.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace eos {
namespace {

using lob_internal::ReadLeafRuns;
using testing_util::PatternBytes;

class LeafIoTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPs = 100;
  void SetUp() override {
    device_ = std::make_unique<MemPageDevice>(kPs, 64);
    data_ = PatternBytes(1, 40 * kPs);
    ASSERT_TRUE(device_->WritePages(0, 40, data_.data()).ok());
    device_->ResetStats();
  }

  Bytes Slice(uint64_t lo, uint64_t hi) {
    return Bytes(data_.begin() + lo, data_.begin() + hi);
  }

  std::unique_ptr<MemPageDevice> device_;
  Bytes data_;
};

TEST_F(LeafIoTest, SingleRange) {
  std::vector<Bytes> out;
  EOS_ASSERT_OK(ReadLeafRuns(device_.get(), kPs, 0, {{150, 420}}, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Slice(150, 420));
  EXPECT_EQ(device_->stats().read_calls, 1u);
  EXPECT_EQ(device_->stats().pages_read, 4u);  // pages 1..4
}

TEST_F(LeafIoTest, AdjacentRangesMergeIntoOneAccess) {
  // [150, 200) and [200, 310): contiguous bytes -> pages 1..3, one access.
  std::vector<Bytes> out;
  EOS_ASSERT_OK(
      ReadLeafRuns(device_.get(), kPs, 0, {{150, 200}, {200, 310}}, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Slice(150, 200));
  EXPECT_EQ(out[1], Slice(200, 310));
  EXPECT_EQ(device_->stats().read_calls, 1u);
}

TEST_F(LeafIoTest, TouchingPageRunsMerge) {
  // [150, 180) is page 1; [230, 260) is page 2: adjacent pages merge.
  std::vector<Bytes> out;
  EOS_ASSERT_OK(
      ReadLeafRuns(device_.get(), kPs, 0, {{150, 180}, {230, 260}}, &out));
  EXPECT_EQ(device_->stats().read_calls, 1u);
  EXPECT_EQ(device_->stats().pages_read, 2u);
  EXPECT_EQ(out[0], Slice(150, 180));
  EXPECT_EQ(out[1], Slice(230, 260));
}

TEST_F(LeafIoTest, DistantRangesStaySeparate) {
  // Pages 0 and 30: merging would transfer 30 useless pages.
  std::vector<Bytes> out;
  EOS_ASSERT_OK(
      ReadLeafRuns(device_.get(), kPs, 0, {{10, 20}, {3000, 3050}}, &out));
  EXPECT_EQ(device_->stats().read_calls, 2u);
  EXPECT_EQ(device_->stats().pages_read, 2u);
  EXPECT_EQ(out[0], Slice(10, 20));
  EXPECT_EQ(out[1], Slice(3000, 3050));
}

TEST_F(LeafIoTest, EmptyRangesYieldEmptyBuffers) {
  std::vector<Bytes> out;
  EOS_ASSERT_OK(ReadLeafRuns(device_.get(), kPs, 0,
                             {{50, 50}, {100, 200}, {200, 200}}, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].empty());
  EXPECT_EQ(out[1], Slice(100, 200));
  EXPECT_TRUE(out[2].empty());
  EXPECT_EQ(device_->stats().read_calls, 1u);
}

TEST_F(LeafIoTest, AllEmpty) {
  std::vector<Bytes> out;
  EOS_ASSERT_OK(ReadLeafRuns(device_.get(), kPs, 0, {{0, 0}}, &out));
  EXPECT_TRUE(out[0].empty());
  EXPECT_EQ(device_->stats().read_calls, 0u);
}

TEST_F(LeafIoTest, NonZeroLeafBase) {
  std::vector<Bytes> out;
  // Leaf starts at device page 10: byte 0 of the leaf is page 10.
  EOS_ASSERT_OK(ReadLeafRuns(device_.get(), kPs, 10, {{0, 150}}, &out));
  EXPECT_EQ(out[0], Slice(1000, 1150));
}

TEST_F(LeafIoTest, ThreeRangesMixedMerging) {
  // The insert pattern: L-tail + P-suffix adjacent, R-head beyond a gap.
  std::vector<Bytes> out;
  EOS_ASSERT_OK(ReadLeafRuns(device_.get(), kPs, 0,
                             {{380, 450}, {450, 500}, {2000, 2100}}, &out));
  EXPECT_EQ(device_->stats().read_calls, 2u);
  EXPECT_EQ(out[0], Slice(380, 450));
  EXPECT_EQ(out[1], Slice(450, 500));
  EXPECT_EQ(out[2], Slice(2000, 2100));
}

}  // namespace
}  // namespace eos
