// Unit tests for the common substrate: Status, byte codecs, math helpers,
// deterministic random.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/math.h"
#include "common/random.h"
#include "common/status.h"

namespace eos {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("object 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: object 7");
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseValue(int x, int* out) {
  EOS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseValue(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UseValue(-1, &out).IsInvalidArgument());
}

TEST(BytesTest, CodecRoundTrip) {
  uint8_t buf[8];
  EncodeU16(buf, 0xBEEF);
  EXPECT_EQ(DecodeU16(buf), 0xBEEF);
  EncodeU32(buf, 0xDEADBEEF);
  EXPECT_EQ(DecodeU32(buf), 0xDEADBEEFu);
  EncodeU64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeU64(buf), 0x0123456789ABCDEFull);
}

TEST(BytesTest, ByteViewSliceAndEquality) {
  std::string s = "hello world";
  ByteView v(s);
  EXPECT_EQ(v.size(), 11u);
  EXPECT_EQ(v.Slice(6, 5).ToString(), "world");
  EXPECT_TRUE(v.Slice(0, 5) == ByteView("hello", 5));
  EXPECT_FALSE(v.Slice(0, 5) == ByteView("world", 5));
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 100), 0u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
  EXPECT_EQ(CeilDiv(100, 100), 1u);
  EXPECT_EQ(CeilDiv(101, 100), 2u);
  EXPECT_EQ(CeilDiv(1820, 100), 19u);  // the paper's example object
}

TEST(MathTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(4096), 12u);
  EXPECT_EQ(FloorLog2(100), 6u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(11), 4u);  // Figure 4: 11 pages need a 16-segment
  EXPECT_EQ(NextPowerOfTwo(11), 16u);
  EXPECT_EQ(NextPowerOfTwo(16), 16u);
}

TEST(MathTest, LargestAlignedSize) {
  EXPECT_EQ(LargestAlignedSize(3), 1u);
  EXPECT_EQ(LargestAlignedSize(4), 4u);
  EXPECT_EQ(LargestAlignedSize(12), 4u);
  EXPECT_EQ(LargestAlignedSize(64), 64u);
}

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC32C check value, whatever kernel dispatch picked.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32cFinalize(Crc32cExtendSoftware(Crc32cInit(), "123456789", 9)),
            0xE3069283u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data(1000, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  uint32_t state = Crc32cInit();
  state = Crc32cExtend(state, data.data(), 400);
  state = Crc32cExtend(state, data.data() + 400, 600);
  EXPECT_EQ(Crc32cFinalize(state), Crc32c(data.data(), data.size()));
}

TEST(Crc32cTest, HardwareMatchesSoftware) {
  // Cross-check the dispatched kernel against slice-by-8 on every length
  // and alignment in a window, so head/tail handling of the 8-byte-stride
  // hardware loop is exercised. On machines without the instructions the
  // dispatch is the software kernel and this still passes trivially.
  Random rng(42);
  std::vector<uint8_t> buf(4096 + 64);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  for (size_t align = 0; align < 9; ++align) {
    for (size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 511u, 4096u}) {
      uint32_t hw = Crc32cExtend(123u, buf.data() + align, len);
      uint32_t sw = Crc32cExtendSoftware(123u, buf.data() + align, len);
      EXPECT_EQ(hw, sw) << "align=" << align << " len=" << len
                        << " backend=" << Crc32cBackend();
    }
  }
}

TEST(Crc32cTest, BackendNamed) {
  const char* name = Crc32cBackend();
  EXPECT_TRUE(std::string(name) == "sse4.2" ||
              std::string(name) == "armv8-crc" ||
              std::string(name) == "slice-by-8")
      << name;
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

}  // namespace
}  // namespace eos
