// Multi-space allocation, superdirectory behaviour (Section 3.3), volume
// growth and partial frees.

#include "buddy/segment_allocator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::Stack;

TEST(SegmentAllocatorTest, AllocateAndFreeRoundTrip) {
  Stack s = Stack::Make(128, 64);
  auto e = s.allocator->Allocate(10);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->pages, 10u);
  auto free1 = s.allocator->TotalFreePages();
  ASSERT_TRUE(free1.ok());
  EXPECT_EQ(*free1, 64u - 10u);
  EOS_ASSERT_OK(s.allocator->Free(*e));
  auto free2 = s.allocator->TotalFreePages();
  ASSERT_TRUE(free2.ok());
  EXPECT_EQ(*free2, 64u);
}

TEST(SegmentAllocatorTest, GrowsVolumeWhenFull) {
  Stack s = Stack::Make(128, 64);
  EXPECT_EQ(s.allocator->num_spaces(), 1u);
  std::vector<Extent> extents;
  for (int i = 0; i < 3; ++i) {
    auto e = s.allocator->Allocate(48);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    extents.push_back(*e);
  }
  EXPECT_GE(s.allocator->num_spaces(), 2u);
  // Extents never span spaces and never collide.
  for (size_t i = 0; i < extents.size(); ++i) {
    for (size_t j = i + 1; j < extents.size(); ++j) {
      bool disjoint = extents[i].end() <= extents[j].first ||
                      extents[j].end() <= extents[i].first;
      EXPECT_TRUE(disjoint);
    }
  }
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

TEST(SegmentAllocatorTest, PartialFreeTrimsSegment) {
  Stack s = Stack::Make(128, 64);
  auto e = s.allocator->Allocate(16);
  ASSERT_TRUE(e.ok());
  // Trim the last 5 pages (Section 4.1's append trim).
  EOS_ASSERT_OK(s.allocator->Free(Extent{e->first + 11, 5}));
  auto free1 = s.allocator->TotalFreePages();
  ASSERT_TRUE(free1.ok());
  EXPECT_EQ(*free1, 64u - 11u);
  EOS_ASSERT_OK(s.allocator->Free(Extent{e->first, 11}));
  auto free2 = s.allocator->TotalFreePages();
  ASSERT_TRUE(free2.ok());
  EXPECT_EQ(*free2, 64u);
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

TEST(SegmentAllocatorTest, SuperdirectorySkipsFullSpaces) {
  Stack s = Stack::Make(128, 64);
  // Fill space 0 completely.
  auto big = s.allocator->Allocate(64);
  ASSERT_TRUE(big.ok());
  // Next allocation grows to space 1.
  auto e = s.allocator->Allocate(32);
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(s.allocator->num_spaces(), 2u);

  // With the superdirectory, allocations skip the exhausted space 0: the
  // hint for space 0 was corrected when its allocation failed.
  s.allocator->ResetDirectoryVisits();
  auto e2 = s.allocator->Allocate(16);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(s.allocator->directory_visits(), 1u)
      << "superdirectory should eliminate the visit to the full space";

  // Without it, every allocation probes space 0 first.
  s.allocator->set_use_superdirectory(false);
  s.allocator->ResetDirectoryVisits();
  auto e3 = s.allocator->Allocate(8);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(s.allocator->directory_visits(), 2u);
}

TEST(SegmentAllocatorTest, AllocateAtMostFallsBack) {
  Stack s = Stack::Make(128, 64);
  auto big = s.allocator->Allocate(48);  // leaves a 16-page hole
  ASSERT_TRUE(big.ok());
  auto e = s.allocator->AllocateAtMost(64);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->pages, 16u);
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

TEST(SegmentAllocatorTest, RejectsBadRequests) {
  Stack s = Stack::Make(128, 64);
  EXPECT_TRUE(s.allocator->Allocate(0).status().IsInvalidArgument());
  uint32_t max = s.allocator->geometry().max_segment_pages();
  EXPECT_TRUE(
      s.allocator->Allocate(max + 1).status().IsInvalidArgument());
  EXPECT_TRUE(s.allocator
                  ->Free(Extent{0, 1})  // page 0 is the first directory
                  .IsInvalidArgument());
}

TEST(SegmentAllocatorTest, ManySpacesStressWithInvariants) {
  Stack s = Stack::Make(128, 32);
  Random rng(99);
  std::vector<Extent> live;
  for (int i = 0; i < 500; ++i) {
    if (live.empty() || rng.OneIn(2)) {
      auto e = s.allocator->Allocate(
          static_cast<uint32_t>(rng.Range(1, 24)));
      ASSERT_TRUE(e.ok()) << e.status().ToString();
      live.push_back(*e);
    } else {
      size_t idx = rng.Uniform(live.size());
      EOS_ASSERT_OK(s.allocator->Free(live[idx]));
      live.erase(live.begin() + idx);
    }
  }
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
  for (const Extent& e : live) {
    EOS_ASSERT_OK(s.allocator->Free(e));
  }
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages,
            uint64_t{s.allocator->num_spaces()} * 32u);
}

}  // namespace
}  // namespace eos
