// Transactions: logged updates, deferred frees under release locks,
// commit/rollback semantics.

#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

struct TxnStack {
  Stack base;
  std::unique_ptr<LogManager> log_holder = std::make_unique<LogManager>();
  LogManager& log = *log_holder;
  std::unique_ptr<ReleaseLockTable> locks;

  explicit TxnStack(uint32_t page_size) {
    base = Stack::Make(page_size);
    locks = std::make_unique<ReleaseLockTable>(
        base.allocator->geometry().space_pages,
        base.allocator->geometry().max_type);
  }
};

TEST(TransactionTest, CommitAppliesAndFreesParkedSegments) {
  TxnStack s(128);
  Bytes model = PatternBytes(1, 20000);
  auto d = s.base.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  auto free_before = s.base.allocator->TotalFreePages();
  ASSERT_TRUE(free_before.ok());
  {
    Transaction txn(s.base.lob.get(), &s.log, s.locks.get(), /*txn=*/1,
                    /*object=*/7, &*d);
    Bytes ins = PatternBytes(2, 500);
    EOS_ASSERT_OK(txn.Insert(3000, ins));
    model.insert(model.begin() + 3000, ins.begin(), ins.end());
    EOS_ASSERT_OK(txn.Delete(10000, 2500));
    model.erase(model.begin() + 10000, model.begin() + 12500);
    // Freed segments are parked, not reusable: free-page count cannot have
    // grown past where it started minus net new data.
    EXPECT_GT(s.locks->lock_count(), 0u);
    EOS_ASSERT_OK(txn.Commit());
  }
  EXPECT_EQ(s.locks->lock_count(), 0u);
  auto all = s.base.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_ASSERT_OK(s.base.allocator->CheckInvariants());
  // Log records carry the object id.
  for (const LogRecord& r : s.log.records()) {
    EXPECT_EQ(r.object_id, 7u);
  }
}

TEST(TransactionTest, RollbackRestoresContentAndStorage) {
  TxnStack s(128);
  Bytes model = PatternBytes(3, 30000);
  auto d = s.base.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  auto free_before = s.base.allocator->TotalFreePages();
  ASSERT_TRUE(free_before.ok());
  {
    Transaction txn(s.base.lob.get(), &s.log, s.locks.get(), 2, 9, &*d);
    EOS_ASSERT_OK(txn.Insert(100, PatternBytes(4, 999)));
    EOS_ASSERT_OK(txn.Delete(5000, 7000));
    EOS_ASSERT_OK(txn.Replace(0, PatternBytes(5, 64)));
    EOS_ASSERT_OK(txn.Rollback());
  }
  EXPECT_EQ(s.locks->lock_count(), 0u);
  auto all = s.base.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model) << "rollback must restore the exact content";
  EOS_EXPECT_OK(s.base.lob->CheckInvariants(*d));
  EOS_ASSERT_OK(s.base.allocator->CheckInvariants());
  // Storage balance: everything the transaction touched is accounted for.
  auto free_after = s.base.allocator->TotalFreePages();
  ASSERT_TRUE(free_after.ok());
  uint64_t grown = (s.base.allocator->num_spaces() - 1) *
                   s.base.allocator->geometry().space_pages;
  EXPECT_EQ(*free_before + grown, *free_after)
      << "rollback leaked or double-freed pages";
}

TEST(TransactionTest, DestructorRollsBack) {
  TxnStack s(128);
  Bytes model = PatternBytes(6, 10000);
  auto d = s.base.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  {
    Transaction txn(s.base.lob.get(), &s.log, s.locks.get(), 3, 1, &*d);
    EOS_ASSERT_OK(txn.Delete(0, 5000));
    // Forgot to commit: destructor rolls back.
  }
  auto all = s.base.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
}

TEST(TransactionTest, ParkedSegmentsNotReusedDuringTransaction) {
  // Use a tight volume with auto_grow so reuse would be observable: the
  // freed pages must not satisfy a subsequent allocation while parked.
  TxnStack s(128);
  Bytes model = PatternBytes(7, 40000);  // ~313 pages
  auto d = s.base.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  auto free_mid = s.base.allocator->TotalFreePages();
  ASSERT_TRUE(free_mid.ok());
  {
    Transaction txn(s.base.lob.get(), &s.log, s.locks.get(), 4, 2, &*d);
    // Truncating frees many pages — all parked.
    EOS_ASSERT_OK(txn.Delete(20000, 20000));
    auto free_in_txn = s.base.allocator->TotalFreePages();
    ASSERT_TRUE(free_in_txn.ok());
    EXPECT_LE(*free_in_txn, *free_mid)
        << "freed pages must stay allocated while the txn is open";
    EOS_ASSERT_OK(txn.Commit());
    auto free_done = s.base.allocator->TotalFreePages();
    ASSERT_TRUE(free_done.ok());
    EXPECT_GT(*free_done, *free_in_txn)
        << "commit must return the parked pages";
  }
}

TEST(TransactionTest, OperationsAfterCommitRejected) {
  TxnStack s(128);
  auto d = s.base.lob->CreateFrom(PatternBytes(8, 1000));
  ASSERT_TRUE(d.ok());
  Transaction txn(s.base.lob.get(), &s.log, s.locks.get(), 5, 3, &*d);
  EOS_ASSERT_OK(txn.Append(PatternBytes(9, 10)));
  EOS_ASSERT_OK(txn.Commit());
  EXPECT_TRUE(txn.Append(PatternBytes(9, 10)).IsInvalidArgument());
  EXPECT_TRUE(txn.Commit().IsInvalidArgument());
}

TEST(TransactionTest, SequentialTransactionsOnOneObject) {
  TxnStack s(128);
  Bytes model = PatternBytes(10, 15000);
  auto d = s.base.lob->CreateFrom(model);
  ASSERT_TRUE(d.ok());
  Random rng(11);
  for (uint64_t t = 1; t <= 10; ++t) {
    Transaction txn(s.base.lob.get(), &s.log, s.locks.get(), t, 4, &*d);
    Bytes snapshot = model;
    for (int op = 0; op < 5; ++op) {
      uint64_t off = rng.Uniform(model.size());
      if (rng.OneIn(2)) {
        Bytes ins = PatternBytes(t * 100 + op, rng.Range(1, 300));
        EOS_ASSERT_OK(txn.Insert(off, ins));
        model.insert(model.begin() + off, ins.begin(), ins.end());
      } else {
        uint64_t n = std::min<uint64_t>(rng.Range(1, 300),
                                        model.size() - off);
        EOS_ASSERT_OK(txn.Delete(off, n));
        model.erase(model.begin() + off, model.begin() + off + n);
      }
    }
    if (t % 2 == 0) {
      EOS_ASSERT_OK(txn.Rollback());
      model = snapshot;
    } else {
      EOS_ASSERT_OK(txn.Commit());
    }
    auto all = s.base.lob->ReadAll(*d);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(*all, model) << "after txn " << t;
    EOS_ASSERT_OK(s.base.lob->CheckInvariants(*d));
    EOS_ASSERT_OK(s.base.allocator->CheckInvariants());
  }
}

}  // namespace
}  // namespace eos
