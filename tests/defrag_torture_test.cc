// Online-defragmenter torture (ISSUE 7, DESIGN.md §12). Four angles:
//
//   1. Oracle-checked migration: churn shatters a population, the
//      defragmenter drains it back to near-ideal layout, and every byte
//      still equals its ModelLob mirror; no leaked or doubly-referenced
//      pages afterwards.
//   2. Concurrency: the background tick thread plus explicit ticks run
//      against live reader and writer threads; quiesce points verify the
//      oracle, the allocation maps, and the integrity walkers.
//   3. Mid-defrag crash: on a crash-safe stack, power is lost after every
//      k-th device write of a migrating tick (some torn); Recover() must
//      restore exactly the committed pre-defrag bytes, because migration
//      is content-neutral and unlogged — parked frees keep every page a
//      durable root reaches unrecycled until the checkpoint lands.
//   4. Allocation faults: the k-th allocation of a migration fails with
//      typed NoSpace; the migration must unwind byte-exactly and leak
//      nothing, and a later tick (fault disarmed) must succeed.
//
// Failures print the seed; re-run with EOS_TEST_SEED=<n>. The `aging`
// ctest label puts this suite in tools/run_checks.sh's seed sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "buddy/segment_allocator.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "lob/defrag.h"
#include "tests/churn_driver.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"

namespace eos {
namespace {

// Failed assertions dump the flight-recorder journal (test_util.h).
const bool g_postmortem_listener = testing_util::InstallPostMortemOnFailure();

using testing_util::ApplyToModel;
using testing_util::ChurnDriver;
using testing_util::ChurnOptions;
using testing_util::LobOp;
using testing_util::ModelLob;
using testing_util::PatternBytes;
using testing_util::PayloadFor;
using testing_util::RandomOp;
using testing_util::TestSeed;

// Every object is a migration candidate regardless of how shattered it
// is — the torture wants migrations, not selectivity.
DefragOptions EagerDefrag() {
  DefragOptions d;
  d.min_scatter = 0.0;
  d.max_objects_per_tick = 64;
  d.max_bytes_per_tick = 1ull << 30;
  return d;
}

// A fixed number of quiesced ticks: the first establishes the cold
// horizon (everything looks freshly mutated), later ones migrate. Bounded
// by rounds, not convergence — a zero min_scatter keeps every object a
// permanent candidate, so a convergence loop would never terminate.
constexpr int kDrainRounds = 3;

void DrainDefrag(Database* db, DefragReport* total) {
  for (int i = 0; i < kDrainRounds; ++i) {
    DefragReport rep;
    EOS_ASSERT_OK(db->DefragTick(&rep));
    total->migrated += rep.migrated;
    total->migrated_bytes += rep.migrated_bytes;
    total->failed += rep.failed;
    total->refused += rep.refused;
  }
}

void ExpectNoLeaks(Database* db) {
  LeakCheckReport leak;
  EOS_ASSERT_OK(db->LeakCheck(&leak));
  EXPECT_TRUE(leak.leaked.empty())
      << leak.leaked.size() << " leaked extents";
  EXPECT_TRUE(leak.doubly_referenced.empty())
      << leak.doubly_referenced.size() << " doubly-referenced extents";
}

double MeanScatter(Database* db, const std::vector<uint64_t>& ids) {
  double sum = 0.0;
  size_t n = 0;
  for (uint64_t id : ids) {
    auto stats = db->ObjectStats(id);
    if (!stats.ok()) continue;
    sum += Defragmenter::ScatterOf(*stats, db->lob()->page_size(),
                                   db->lob()->max_segment_pages());
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 1.0;
}

// ---- 1. oracle-checked migration -------------------------------------------

TEST(DefragTortureTest, MigrationPreservesEveryByteAndLeaksNothing) {
  const uint64_t seed = TestSeed(0xDEF1);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  DatabaseOptions o;
  o.page_size = 4096;
  o.pager_frames = 128;
  o.space_pages = 1024;
  o.defrag = EagerDefrag();
  auto db_or = Database::CreateOnDevice(
      std::make_unique<MemPageDevice>(o.page_size, 1), o);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(*db_or);

  ChurnOptions copt;
  copt.num_objects = 24;
  copt.max_edit_bytes = 16384;  // multi-page inserts shatter fastest
  ChurnDriver churn(db.get(), seed, copt);
  EOS_ASSERT_OK(churn.SetUp());
  for (int epoch = 0; epoch < 4; ++epoch) EOS_ASSERT_OK(churn.Epoch());
  EOS_ASSERT_OK(churn.VerifyAll());

  double before = MeanScatter(db.get(), churn.ids());
  DefragReport total;
  DrainDefrag(db.get(), &total);
  double after = MeanScatter(db.get(), churn.ids());

  EXPECT_GT(total.migrated, 0u);
  EXPECT_EQ(total.failed, 0u);
  EXPECT_LE(after, before) << "defrag made the layout worse";
  EOS_ASSERT_OK(churn.VerifyAll());
  EOS_ASSERT_OK(db->CheckIntegrity());
  ExpectNoLeaks(db.get());
}

// ---- 2. concurrent readers/writers/defragmenter ----------------------------

TEST(DefragTortureTest, ConcurrentChurnReadersAndBackgroundDefrag) {
  const uint64_t seed = TestSeed(0xDEF2);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  DatabaseOptions o;
  o.page_size = 4096;
  o.pager_frames = 128;
  o.defrag = EagerDefrag();
  o.defrag.enabled = true;  // live background thread from the start
  o.defrag.interval_ms = 1;
  auto db_or = Database::CreateOnDevice(
      std::make_unique<MemPageDevice>(o.page_size, 1), o);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(*db_or);

  // Each writer owns a disjoint population via its own driver (object ids
  // never collide: the database hands them out under the writer latch).
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kRounds = 3;
  ChurnOptions copt;
  copt.num_objects = 8;
  copt.initial_object_bytes = 24u << 10;
  copt.max_edit_bytes = 8192;
  copt.ops_per_epoch = 96;
  std::vector<std::unique_ptr<ChurnDriver>> drivers;
  std::vector<uint64_t> all_ids;
  for (int w = 0; w < kWriters; ++w) {
    drivers.push_back(std::make_unique<ChurnDriver>(
        db.get(), seed * 31 + w, copt));
    EOS_ASSERT_OK(drivers.back()->SetUp());
    all_ids.insert(all_ids.end(), drivers.back()->ids().begin(),
                   drivers.back()->ids().end());
  }

  for (int round = 0; round < kRounds; ++round) {
    std::vector<Status> writer_status(kWriters, Status::OK());
    std::vector<Status> reader_status(kReaders, Status::OK());
    std::atomic<bool> stop_readers{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] { writer_status[w] = drivers[w]->Epoch(); });
    }
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        std::mt19937_64 rng(seed * 97 + r);
        while (!stop_readers.load(std::memory_order_relaxed)) {
          uint64_t id = all_ids[rng() % all_ids.size()];
          auto data = db->Read(id, 0, 2048);
          // Lifecycle churn drops and recreates objects; a vanished id is
          // fine, anything else is not.
          if (!data.ok() && !data.status().IsNotFound()) {
            reader_status[r] = data.status();
            return;
          }
        }
      });
    }
    // Explicit ticks race the background thread and the foreground load.
    for (int t = 0; t < 4; ++t) EOS_ASSERT_OK(db->DefragTick(nullptr));
    for (int w = 0; w < kWriters; ++w) threads[w].join();
    stop_readers.store(true, std::memory_order_relaxed);
    for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
    for (const Status& s : writer_status) EOS_ASSERT_OK(s);
    for (const Status& s : reader_status) EOS_ASSERT_OK(s);

    // Quiesce point: every surviving object byte-equal to its mirror.
    for (const auto& d : drivers) EOS_ASSERT_OK(d->VerifyAll());
    EOS_ASSERT_OK(db->CheckIntegrity());
    ExpectNoLeaks(db.get());
  }

  db->defragmenter()->Stop();
  DefragReport total;
  DrainDefrag(db.get(), &total);
  for (const auto& d : drivers) EOS_ASSERT_OK(d->VerifyAll());
  EOS_ASSERT_OK(db->CheckIntegrity());
  ExpectNoLeaks(db.get());
}

// ---- 3. mid-defrag crash recovery ------------------------------------------

constexpr uint32_t kCrashPage = 256;
constexpr int kCrashObjects = 4;
constexpr int kFragmentOps = 24;

// Crash-safe stack on a chaos device with a fragmented, committed,
// checkpointed population. Deterministic for a seed, so the reference run
// and every crash run perform identical writes.
struct CrashRig {
  std::unique_ptr<LogManager> log;
  std::unique_ptr<Database> db;
  ChaosPageDevice* chaos = nullptr;
  std::vector<uint64_t> ids;
  std::vector<std::string> committed;  // oracle bytes at the checkpoint
};

CrashRig MakeCrashRig(uint64_t seed) {
  CrashRig rig;
  rig.log = std::make_unique<LogManager>();
  DatabaseOptions o;
  o.page_size = kCrashPage;
  o.pager_frames = 16;
  o.crash_safe = true;
  o.defrag = EagerDefrag();
  auto chaos = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(kCrashPage, 1), seed);
  rig.chaos = chaos.get();
  auto db = Database::CreateOnDevice(std::move(chaos), o);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  if (!db.ok()) return rig;
  rig.db = std::move(*db);
  rig.db->AttachLog(rig.log.get());

  std::mt19937 rng(static_cast<uint32_t>(seed ^ 0xDEF3));
  std::vector<ModelLob> models(kCrashObjects);
  for (int i = 0; i < kCrashObjects; ++i) {
    Bytes init = PatternBytes(seed * 10 + i, 2200 + 800 * i);
    auto id = rig.db->CreateObjectFrom(init);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return rig;
    rig.ids.push_back(*id);
    EXPECT_TRUE(rig.log->LogCommit(*id).ok());
    models[i].Append(init);
  }
  // Shatter the objects with committed, logged edits.
  for (int i = 0; i < kFragmentOps; ++i) {
    int t = static_cast<int>(rng() % kCrashObjects);
    LobOp op = RandomOp(&rng, models[t], kCrashPage, seed * 100 + i,
                        /*logged_only=*/true);
    Status st;
    switch (op.kind) {
      case LobOp::kAppend:
        st = rig.db->Append(rig.ids[t], PayloadFor(op));
        break;
      case LobOp::kInsert:
        st = rig.db->Insert(rig.ids[t], op.offset, PayloadFor(op));
        break;
      case LobOp::kDelete:
        st = rig.db->Delete(rig.ids[t], op.offset, op.len);
        break;
      case LobOp::kReplace:
        st = rig.db->Replace(rig.ids[t], op.offset, PayloadFor(op));
        break;
      default:
        st = Status::InvalidArgument("unscriptable op");
    }
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) return rig;
    EXPECT_TRUE(rig.log->LogCommit(rig.ids[t]).ok());
    ApplyToModel(op, &models[t]);
  }
  Status cp = rig.db->Checkpoint();
  EXPECT_TRUE(cp.ok()) << cp.ToString();
  for (int i = 0; i < kCrashObjects; ++i) {
    rig.committed.push_back(std::string(models[i].bytes()));
  }
  return rig;
}

void ExpectCommittedBytes(Database* db, const CrashRig& rig) {
  for (size_t i = 0; i < rig.ids.size(); ++i) {
    auto data = db->Read(rig.ids[i], 0, rig.committed[i].size() + 1);
    ASSERT_TRUE(data.ok()) << "object " << rig.ids[i] << ": "
                           << data.status().ToString();
    ASSERT_EQ(data->size(), rig.committed[i].size())
        << "object " << rig.ids[i];
    EXPECT_TRUE(std::equal(data->begin(), data->end(),
                           rig.committed[i].begin(),
                           [](uint8_t a, char b) {
                             return a == static_cast<uint8_t>(b);
                           }))
        << "object " << rig.ids[i] << " content differs from the oracle";
  }
}

TEST(DefragTortureTest, MidDefragCrashRecoversCommittedState) {
  const uint64_t seed = TestSeed(0xDEF3);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  // Fault-free reference: count the writes of a migrating drain (tick 1
  // establishes the cold horizon, tick 2 migrates, plus the trailing
  // checkpoint) and check it is content-neutral.
  CrashRig ref = MakeCrashRig(seed);
  ASSERT_NE(ref.db, nullptr);
  uint64_t w0 = ref.chaos->stats().write_calls;
  DefragReport total;
  DrainDefrag(ref.db.get(), &total);
  const uint64_t W = ref.chaos->stats().write_calls - w0;
  ASSERT_GT(total.migrated, 0u) << "reference drain migrated nothing";
  ASSERT_GT(W, 0u);
  ExpectCommittedBytes(ref.db.get(), ref);
  EOS_ASSERT_OK(ref.db->CheckIntegrity());
  ExpectNoLeaks(ref.db.get());

  // Lose power after the k-th write of the drain, a third of them torn.
  const uint64_t stride = std::max<uint64_t>(1, W / 24);
  int points = 0;
  for (uint64_t k = 0; k < W; k += stride, ++points) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(W) + " defrag writes");
    CrashRig rig = MakeCrashRig(seed);
    ASSERT_NE(rig.db, nullptr);
    rig.chaos->CrashAfterWrites(k, points % 3 == 0 ? 1 : 0);
    // The dying ticks surface IO errors; only the crash itself matters.
    for (int t = 0; t < kDrainRounds; ++t) {
      DefragReport rep;
      (void)rig.db->DefragTick(&rep);
    }
    ASSERT_TRUE(rig.chaos->crashed()) << "crash point never reached";
    auto image = rig.chaos->CloneImage();
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    std::vector<LogRecord> wal = rig.log->records();
    rig.db.reset();  // the dying flush fails against the dead device

    DatabaseOptions o;
    o.page_size = kCrashPage;
    o.pager_frames = 16;
    o.crash_safe = true;
    auto db2 = Database::OpenOnDevice(std::move(*image), o);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    EOS_ASSERT_OK((*db2)->Recover(wal));
    EOS_ASSERT_OK((*db2)->CheckIntegrity());
    ExpectCommittedBytes(db2->get(), rig);
    ExpectNoLeaks(db2->get());
  }
  ASSERT_GE(points, 10);
}

// ---- 4. allocation faults mid-migration ------------------------------------

TEST(DefragTortureTest, AllocFaultDuringMigrationUnwindsWithoutLeaks) {
  const uint64_t seed = TestSeed(0xDEF4);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");

  DatabaseOptions o;
  o.page_size = 1024;
  o.pager_frames = 64;
  o.defrag = EagerDefrag();
  auto db_or = Database::CreateOnDevice(
      std::make_unique<MemPageDevice>(o.page_size, 1), o);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  std::unique_ptr<Database> db = std::move(*db_or);

  // One object, shattered by interleaved multi-page inserts.
  ModelLob model;
  Bytes init = PatternBytes(seed, 48u << 10);
  auto id_or = db->CreateObjectFrom(init);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  uint64_t id = *id_or;
  model.Append(init);
  std::mt19937_64 rng(seed);
  for (int i = 0; i < 12; ++i) {
    Bytes data = PatternBytes(seed * 7 + i, 3000);
    uint64_t off = rng() % (model.size() + 1);
    model.Insert(off, data);
    EOS_ASSERT_OK(db->Insert(id, off, data));
  }
  EOS_ASSERT_OK(db->DefragTick(nullptr));  // establish the cold horizon

  // Fail the k-th allocation of the migrating tick. Small k always lands
  // inside the migration (which must unwind byte-exactly and leak
  // nothing); once k exceeds the migration's allocation count the fault
  // never fires and the migration legitimately succeeds — either way the
  // object must stay byte-exact.
  int unwinds = 0;
  for (int64_t k = 0; k < 8; ++k) {
    SCOPED_TRACE("alloc fault at allocation " + std::to_string(k));
    db->allocator()->set_alloc_fault_countdown(k);
    DefragReport rep;
    Status st = db->DefragTick(&rep);
    db->allocator()->set_alloc_fault_countdown(-1);
    EOS_ASSERT_OK(st);  // the tick absorbs the failure into its report
    if (rep.migrated == 0) {
      EXPECT_GE(rep.refused + rep.failed, 1u)
          << "migration vanished without a recorded fault";
      ++unwinds;
    }
    auto data = db->Read(id, 0, model.size() + 1);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_EQ(data->size(), model.size());
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(data->data()),
                          data->size()),
              model.bytes());
    EOS_ASSERT_OK(db->CheckIntegrity());
    ExpectNoLeaks(db.get());
  }
  EXPECT_GE(unwinds, 2) << "the fault sweep never landed inside a migration";

  // Disarmed, the very next tick succeeds.
  DefragReport rep;
  EOS_ASSERT_OK(db->DefragTick(&rep));
  EXPECT_GT(rep.migrated, 0u);
  auto data = db->Read(id, 0, model.size() + 1);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(data->data()),
                        data->size()),
            model.bytes());
  ExpectNoLeaks(db.get());
}

}  // namespace
}  // namespace eos
