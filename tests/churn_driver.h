#ifndef EOS_TESTS_CHURN_DRIVER_H_
#define EOS_TESTS_CHURN_DRIVER_H_

// Seeded long-horizon churn driver (DESIGN.md §12): compresses weeks of
// create/append/delete/update traffic against a Database into epochs of a
// few hundred operations, mirroring every object in a ModelLob oracle so
// content can be verified at any quiesce point. Shared by bench_aging (the
// degrade-then-recover curve) and defrag_torture_test (oracle checks), so
// both age a volume the same way. Header-only and gtest-free on purpose —
// benches cannot link the test framework.

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "eos/database.h"
#include "tests/model_oracle.h"

namespace eos {
namespace testing_util {

struct ChurnOptions {
  uint32_t num_objects = 48;
  // Mean initial object size; each object jitters within ±50% of it.
  uint64_t initial_object_bytes = 48u << 10;
  uint64_t max_edit_bytes = 4096;
  uint32_t ops_per_epoch = 256;
  // Fraction of the population (by slot) that takes ~80% of the traffic;
  // the rest ages mostly untouched — the cold objects the defragmenter is
  // allowed to migrate.
  double hot_fraction = 0.25;
  // Occasionally drop an object and recreate it from scratch — the
  // allocate-into-shattered-free-space half of aging.
  bool lifecycle_churn = true;
  // Above this size the driver biases toward deletes, keeping the
  // population (and the volume) roughly stationary.
  uint64_t max_object_bytes = 256u << 10;
};

class ChurnDriver {
 public:
  ChurnDriver(Database* db, uint64_t seed, const ChurnOptions& opt = {})
      : db_(db), rng_(seed), opt_(opt) {}

  // Creates the population. Call once before the first Epoch().
  Status SetUp() {
    for (uint32_t i = 0; i < opt_.num_objects; ++i) {
      uint64_t n = opt_.initial_object_bytes / 2 +
                   rng_() % std::max<uint64_t>(1, opt_.initial_object_bytes);
      Bytes payload = Payload(n);
      EOS_ASSIGN_OR_RETURN(uint64_t id, db_->CreateObjectFrom(payload));
      ids_.push_back(id);
      mirrors_[id].Append(payload);
    }
    return Status::OK();
  }

  Status Epoch() {
    for (uint32_t i = 0; i < opt_.ops_per_epoch; ++i) {
      EOS_RETURN_IF_ERROR(Step());
    }
    return Status::OK();
  }

  // One random mutation of one object, applied to database and mirror.
  Status Step() {
    ++steps_;
    size_t hot_n = HotCount();
    size_t slot;
    if (hot_n > 0 && hot_n < ids_.size() && rng_() % 100 < 80) {
      slot = rng_() % hot_n;
    } else {
      slot = rng_() % ids_.size();
    }
    uint64_t id = ids_[slot];
    ModelLob& m = mirrors_[id];
    uint64_t size = m.size();
    uint32_t pick = rng_() % 100;

    if (opt_.lifecycle_churn && pick < 5) {
      EOS_RETURN_IF_ERROR(db_->DropObject(id));
      mirrors_.erase(id);
      uint64_t n = opt_.initial_object_bytes / 2 +
                   rng_() % std::max<uint64_t>(1, opt_.initial_object_bytes);
      Bytes payload = Payload(n);
      EOS_ASSIGN_OR_RETURN(uint64_t fresh, db_->CreateObjectFrom(payload));
      ids_[slot] = fresh;
      mirrors_[fresh].Append(payload);
      return Status::OK();
    }
    if (size == 0 || (pick < 35 && size < opt_.max_object_bytes)) {
      Bytes data = Payload(1 + rng_() % opt_.max_edit_bytes);
      m.Append(data);
      return db_->Append(id, data);
    }
    if (pick < 55 && size < opt_.max_object_bytes) {
      Bytes data = Payload(1 + rng_() % opt_.max_edit_bytes);
      uint64_t off = rng_() % (size + 1);
      m.Insert(off, data);
      return db_->Insert(id, off, data);
    }
    if (pick < 80) {
      uint64_t off = rng_() % size;
      uint64_t n = std::min<uint64_t>(1 + rng_() % opt_.max_edit_bytes,
                                      size - off);
      Bytes data = Payload(n);
      m.Replace(off, data);
      return db_->Replace(id, off, data);
    }
    // Delete; bigger bites once the object is over its cap.
    uint64_t max_del = size > opt_.max_object_bytes
                           ? size - opt_.max_object_bytes / 2
                           : opt_.max_edit_bytes;
    uint64_t off = rng_() % size;
    uint64_t n = std::min<uint64_t>(1 + rng_() % std::max<uint64_t>(
                                                     1, max_del),
                                    size - off);
    m.Delete(off, n);
    return db_->Delete(id, off, n);
  }

  // Full-content comparison of one object against its mirror. Only valid
  // at a quiesce point (no concurrent mutators of `id`).
  Status VerifyObject(uint64_t id) {
    const ModelLob& m = mirrors_.at(id);
    EOS_ASSIGN_OR_RETURN(uint64_t got_size, db_->Size(id));
    if (got_size != m.size()) {
      return Status::Corruption("object " + std::to_string(id) + " size " +
                                std::to_string(got_size) + ", oracle " +
                                std::to_string(m.size()));
    }
    EOS_ASSIGN_OR_RETURN(Bytes got, db_->Read(id, 0, m.size()));
    if (std::string(reinterpret_cast<const char*>(got.data()), got.size()) !=
        m.bytes()) {
      return Status::Corruption("object " + std::to_string(id) +
                                " content differs from the oracle");
    }
    return Status::OK();
  }

  Status VerifyAll() {
    for (uint64_t id : ids_) EOS_RETURN_IF_ERROR(VerifyObject(id));
    return Status::OK();
  }

  const std::vector<uint64_t>& ids() const { return ids_; }
  const std::map<uint64_t, ModelLob>& mirrors() const { return mirrors_; }
  uint64_t steps() const { return steps_; }
  size_t HotCount() const {
    return static_cast<size_t>(opt_.hot_fraction * ids_.size() + 0.5);
  }

 private:
  Bytes Payload(uint64_t n) {
    Bytes b(n);
    for (uint64_t i = 0; i < n; ++i) {
      b[i] = static_cast<uint8_t>(rng_());
    }
    return b;
  }

  Database* db_;
  std::mt19937_64 rng_;
  ChurnOptions opt_;
  std::vector<uint64_t> ids_;
  std::map<uint64_t, ModelLob> mirrors_;
  uint64_t steps_ = 0;
};

}  // namespace testing_util
}  // namespace eos

#endif  // EOS_TESTS_CHURN_DRIVER_H_
