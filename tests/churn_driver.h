#ifndef EOS_TESTS_CHURN_DRIVER_H_
#define EOS_TESTS_CHURN_DRIVER_H_

// Seeded long-horizon churn driver (DESIGN.md §12): compresses weeks of
// create/append/delete/update traffic against a Database into epochs of a
// few hundred operations, mirroring every object in a ModelLob oracle so
// content can be verified at any quiesce point. Shared by bench_aging (the
// degrade-then-recover curve) and defrag_torture_test (oracle checks), so
// both age a volume the same way. Header-only and gtest-free on purpose —
// benches cannot link the test framework.

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "eos/database.h"
#include "tests/model_oracle.h"

namespace eos {
namespace testing_util {

struct ChurnOptions {
  uint32_t num_objects = 48;
  // Mean initial object size; each object jitters within ±50% of it.
  uint64_t initial_object_bytes = 48u << 10;
  uint64_t max_edit_bytes = 4096;
  uint32_t ops_per_epoch = 256;
  // Fraction of the population (by slot) that takes ~80% of the traffic;
  // the rest ages mostly untouched — the cold objects the defragmenter is
  // allowed to migrate.
  double hot_fraction = 0.25;
  // Occasionally drop an object and recreate it from scratch — the
  // allocate-into-shattered-free-space half of aging.
  bool lifecycle_churn = true;
  // Above this size the driver biases toward deletes, keeping the
  // population (and the volume) roughly stationary.
  uint64_t max_object_bytes = 256u << 10;
};

class ChurnDriver {
 public:
  ChurnDriver(Database* db, uint64_t seed, const ChurnOptions& opt = {})
      : db_(db), rng_(seed), opt_(opt) {}

  // Creates the population. Call once before the first Epoch().
  Status SetUp() {
    for (uint32_t i = 0; i < opt_.num_objects; ++i) {
      uint64_t n = opt_.initial_object_bytes / 2 +
                   rng_() % std::max<uint64_t>(1, opt_.initial_object_bytes);
      Bytes payload = Payload(rng_, n);
      EOS_ASSIGN_OR_RETURN(uint64_t id, db_->CreateObjectFrom(payload));
      ids_.push_back(id);
      mirrors_[id].Append(payload);
    }
    return Status::OK();
  }

  Status Epoch() {
    for (uint32_t i = 0; i < opt_.ops_per_epoch; ++i) {
      EOS_RETURN_IF_ERROR(Step());
    }
    return Status::OK();
  }

  // ----- multi-threaded use --------------------------------------------------
  //
  // The driver latch (mu_) serializes every step — and so every
  // database-plus-mirror mutation — which is what keeps the oracle exact:
  // a concurrent observer that pins state under the latch (see
  // PinRandomSnapshot) sees database and mirror move atomically. Each
  // thread gets its own RNG stream so interleaving never perturbs another
  // thread's operation sequence.

  // Derives one RNG stream per thread from the base seed. Call once, after
  // SetUp() and before the first StepForThread().
  void PrepareThreads(uint32_t threads) {
    thread_rngs_.clear();
    for (uint32_t t = 0; t < threads; ++t) thread_rngs_.emplace_back(rng_());
  }

  // Step() on thread `t`'s RNG stream; safe concurrently with any other
  // driver call.
  Status StepForThread(uint32_t t) {
    std::lock_guard<std::mutex> lock(mu_);
    return StepLocked(thread_rngs_.at(t));
  }

  // Pins the current version of a random live object and captures the
  // exact bytes that version must read, atomically with respect to
  // concurrent steps. The caller verifies via Database::SnapshotRead()
  // *outside* the driver latch — lock-free against the writers.
  Status PinRandomSnapshot(uint32_t t, Snapshot* snap,
                           std::string* expected) {
    std::lock_guard<std::mutex> lock(mu_);
    std::mt19937_64& rng = thread_rngs_.at(t);
    uint64_t id = ids_[rng() % ids_.size()];
    EOS_ASSIGN_OR_RETURN(*snap, db_->BeginSnapshot(id));
    *expected = mirrors_.at(id).bytes();
    return Status::OK();
  }

  // One random mutation of one object, applied to database and mirror.
  Status Step() {
    std::lock_guard<std::mutex> lock(mu_);
    return StepLocked(rng_);
  }

  // Full-content comparison of one object against its mirror. Only valid
  // at a quiesce point (no concurrent mutators of `id`).
  Status VerifyObject(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    return VerifyObjectLocked(id);
  }

  Status VerifyAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : ids_) EOS_RETURN_IF_ERROR(VerifyObjectLocked(id));
    return Status::OK();
  }

  // Accessors are only meaningful at a quiesce point.
  const std::vector<uint64_t>& ids() const { return ids_; }
  const std::map<uint64_t, ModelLob>& mirrors() const { return mirrors_; }
  uint64_t steps() const { return steps_; }
  size_t HotCount() const {
    return static_cast<size_t>(opt_.hot_fraction * ids_.size() + 0.5);
  }

 private:
  Status StepLocked(std::mt19937_64& rng) {
    ++steps_;
    size_t hot_n = HotCount();
    size_t slot;
    if (hot_n > 0 && hot_n < ids_.size() && rng() % 100 < 80) {
      slot = rng() % hot_n;
    } else {
      slot = rng() % ids_.size();
    }
    uint64_t id = ids_[slot];
    ModelLob& m = mirrors_[id];
    uint64_t size = m.size();
    uint32_t pick = rng() % 100;

    if (opt_.lifecycle_churn && pick < 5) {
      EOS_RETURN_IF_ERROR(db_->DropObject(id));
      mirrors_.erase(id);
      uint64_t n = opt_.initial_object_bytes / 2 +
                   rng() % std::max<uint64_t>(1, opt_.initial_object_bytes);
      Bytes payload = Payload(rng, n);
      EOS_ASSIGN_OR_RETURN(uint64_t fresh, db_->CreateObjectFrom(payload));
      ids_[slot] = fresh;
      mirrors_[fresh].Append(payload);
      return Status::OK();
    }
    if (size == 0 || (pick < 35 && size < opt_.max_object_bytes)) {
      Bytes data = Payload(rng, 1 + rng() % opt_.max_edit_bytes);
      m.Append(data);
      return db_->Append(id, data);
    }
    if (pick < 55 && size < opt_.max_object_bytes) {
      Bytes data = Payload(rng, 1 + rng() % opt_.max_edit_bytes);
      uint64_t off = rng() % (size + 1);
      m.Insert(off, data);
      return db_->Insert(id, off, data);
    }
    if (pick < 80) {
      uint64_t off = rng() % size;
      uint64_t n = std::min<uint64_t>(1 + rng() % opt_.max_edit_bytes,
                                      size - off);
      Bytes data = Payload(rng, n);
      m.Replace(off, data);
      return db_->Replace(id, off, data);
    }
    // Delete; bigger bites once the object is over its cap.
    uint64_t max_del = size > opt_.max_object_bytes
                           ? size - opt_.max_object_bytes / 2
                           : opt_.max_edit_bytes;
    uint64_t off = rng() % size;
    uint64_t n = std::min<uint64_t>(1 + rng() % std::max<uint64_t>(
                                                     1, max_del),
                                    size - off);
    m.Delete(off, n);
    return db_->Delete(id, off, n);
  }

  // Caller holds mu_.
  Status VerifyObjectLocked(uint64_t id) {
    const ModelLob& m = mirrors_.at(id);
    EOS_ASSIGN_OR_RETURN(uint64_t got_size, db_->Size(id));
    if (got_size != m.size()) {
      return Status::Corruption("object " + std::to_string(id) + " size " +
                                std::to_string(got_size) + ", oracle " +
                                std::to_string(m.size()));
    }
    EOS_ASSIGN_OR_RETURN(Bytes got, db_->Read(id, 0, m.size()));
    if (std::string(reinterpret_cast<const char*>(got.data()), got.size()) !=
        m.bytes()) {
      return Status::Corruption("object " + std::to_string(id) +
                                " content differs from the oracle");
    }
    return Status::OK();
  }

  static Bytes Payload(std::mt19937_64& rng, uint64_t n) {
    Bytes b(n);
    for (uint64_t i = 0; i < n; ++i) {
      b[i] = static_cast<uint8_t>(rng());
    }
    return b;
  }

  Database* db_;
  // Serializes every database-plus-mirror step (see "multi-threaded use").
  std::mutex mu_;
  std::mt19937_64 rng_;
  std::vector<std::mt19937_64> thread_rngs_;
  ChurnOptions opt_;
  std::vector<uint64_t> ids_;
  std::map<uint64_t, ModelLob> mirrors_;
  uint64_t steps_ = 0;
};

}  // namespace testing_util
}  // namespace eos

#endif  // EOS_TESTS_CHURN_DRIVER_H_
