// Correctness tests for the Exodus baseline [Care86], including its
// defining behaviours: fixed-size leaves with slack, in-place updates.

#include "baselines/exodus/exodus_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

struct ExodusStack {
  Stack base;
  std::unique_ptr<ExodusManager> mgr;

  static ExodusStack Make(uint32_t page_size, uint32_t leaf_pages) {
    ExodusStack s;
    s.base = Stack::Make(page_size);
    ExodusConfig cfg;
    cfg.leaf_pages = leaf_pages;
    s.mgr = std::make_unique<ExodusManager>(s.base.pager.get(),
                                            s.base.allocator.get(), cfg);
    return s;
  }
};

TEST(ExodusTest, CreateReadRoundTrip) {
  ExodusStack s = ExodusStack::Make(100, 2);
  Bytes data = PatternBytes(1, 5000);
  auto d = s.mgr->CreateFrom(data);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 5000u);
  auto all = s.mgr->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.mgr->CheckInvariants(*d));
}

TEST(ExodusTest, LeavesAreFixedSize) {
  ExodusStack s = ExodusStack::Make(100, 4);
  Bytes data = PatternBytes(2, 10000);
  auto d = s.mgr->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  auto stats = s.mgr->Stats(*d);
  ASSERT_TRUE(stats.ok());
  // Every leaf occupies exactly leaf_pages pages regardless of fill.
  EXPECT_EQ(stats->min_segment_pages, 4u);
  EXPECT_EQ(stats->max_segment_pages, 4u);
}

TEST(ExodusTest, InsertSplitsLeaveHalfFullLeaves) {
  ExodusStack s = ExodusStack::Make(100, 4);
  Bytes data = PatternBytes(3, 4000);
  auto d = s.mgr->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  Bytes model = data;
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    Bytes ins = PatternBytes(100 + i, rng.Range(1, 300));
    uint64_t off = rng.Uniform(model.size() + 1);
    EOS_ASSERT_OK(s.mgr->Insert(&*d, off, ins));
    model.insert(model.begin() + off, ins.begin(), ins.end());
  }
  auto all = s.mgr->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK(s.mgr->CheckInvariants(*d));
  // The Exodus dilemma: after splits, utilization drops well below 100%.
  auto stats = s.mgr->Stats(*d);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->leaf_utilization, 0.95);
}

TEST(ExodusTest, RandomOpsMatchModel) {
  for (uint32_t leaf_pages : {1u, 2u, 8u}) {
    ExodusStack s = ExodusStack::Make(128, leaf_pages);
    Bytes model;
    auto d = s.mgr->CreateEmpty();
    Random rng(1000 + leaf_pages);
    for (int step = 0; step < 250; ++step) {
      int op = static_cast<int>(rng.Uniform(10));
      if (model.empty()) op = 0;
      if (op <= 2) {
        Bytes data = PatternBytes(step, rng.Range(1, 400));
        EOS_ASSERT_OK(s.mgr->Append(&d, data));
        model.insert(model.end(), data.begin(), data.end());
      } else if (op <= 5) {
        Bytes data = PatternBytes(step + 7777, rng.Range(1, 300));
        uint64_t off = rng.Uniform(model.size() + 1);
        EOS_ASSERT_OK(s.mgr->Insert(&d, off, data));
        model.insert(model.begin() + off, data.begin(), data.end());
      } else if (op <= 8) {
        uint64_t off = rng.Uniform(model.size());
        uint64_t n = rng.Range(1, std::max<uint64_t>(1, model.size() / 3));
        n = std::min<uint64_t>(n, model.size() - off);
        EOS_ASSERT_OK(s.mgr->Delete(&d, off, n));
        model.erase(model.begin() + off, model.begin() + off + n);
      } else {
        uint64_t off = rng.Uniform(model.size());
        uint64_t n = rng.Range(1, std::max<uint64_t>(1, model.size() - off));
        Bytes data = PatternBytes(step + 9999, n);
        EOS_ASSERT_OK(s.mgr->Replace(&d, off, data));
        std::copy(data.begin(), data.end(), model.begin() + off);
      }
      ASSERT_EQ(d.size(), model.size()) << "step " << step;
      if (step % 25 == 24) {
        auto all = s.mgr->ReadAll(d);
        ASSERT_TRUE(all.ok()) << all.status().ToString();
        ASSERT_EQ(*all, model) << "leaf_pages=" << leaf_pages << " step "
                               << step;
        EOS_ASSERT_OK(s.mgr->CheckInvariants(d));
        EOS_ASSERT_OK(s.base.allocator->CheckInvariants());
      }
    }
    EOS_ASSERT_OK(s.mgr->Destroy(&d));
    auto free_pages = s.base.allocator->TotalFreePages();
    ASSERT_TRUE(free_pages.ok());
    EXPECT_EQ(*free_pages, uint64_t{s.base.allocator->num_spaces()} *
                               s.base.allocator->geometry().space_pages)
        << "exodus leaked pages";
  }
}

TEST(ExodusTest, ScatteredLeavesCostSeeksOnScan) {
  // Build EOS-like and Exodus objects of the same size; sequentially scan
  // both; the Exodus scan pays roughly one seek per leaf.
  ExodusStack s = ExodusStack::Make(100, 1);
  Bytes data = PatternBytes(4, 10000);  // 100 one-page leaves
  auto d = s.mgr->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.base.pager->EvictAll());
  s.base.device->ForgetHeadPosition();
  s.base.device->ResetStats();
  auto all = s.mgr->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_GE(s.base.device->stats().seeks, 40u)
      << "single-page Exodus leaves should scatter";
}

}  // namespace
}  // namespace eos
