// Byte-range lock table (Section 4.5 / [Care86] fine-granularity option).

#include "txn/byte_range_locks.h"

#include <gtest/gtest.h>

namespace eos {
namespace {

using Mode = ByteRangeLockManager::Mode;

TEST(ByteRangeLockTest, SharedLocksCoexist) {
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.LockForRead(1, 7, 0, 1000).ok());
  EXPECT_TRUE(mgr.LockForRead(2, 7, 500, 1500).ok());
  EXPECT_TRUE(mgr.Holds(1, 7, 0, 1000, Mode::kShared));
  EXPECT_TRUE(mgr.Holds(2, 7, 500, 1500, Mode::kShared));
  EXPECT_FALSE(mgr.Holds(1, 7, 0, 1000, Mode::kExclusive));
}

TEST(ByteRangeLockTest, ExclusiveConflictsWithOverlap) {
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.LockForReplace(1, 7, 100, 200).ok());
  EXPECT_TRUE(mgr.LockForRead(2, 7, 0, 100).ok());   // adjacent: no overlap
  EXPECT_TRUE(mgr.LockForRead(2, 7, 200, 300).ok());
  Status s = mgr.LockForRead(2, 7, 150, 160);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  s = mgr.LockForReplace(2, 7, 199, 205);
  EXPECT_TRUE(s.IsBusy());
  // Different object: no conflict.
  EXPECT_TRUE(mgr.LockForReplace(2, 8, 100, 200).ok());
}

TEST(ByteRangeLockTest, UpdateLocksToEndOfObject) {
  // A length-changing update at offset B shifts every byte after it, so it
  // locks [B, infinity).
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.LockForUpdate(1, 7, 5000).ok());
  EXPECT_TRUE(mgr.LockForRead(2, 7, 0, 5000).ok());  // prefix still readable
  EXPECT_TRUE(mgr.LockForRead(2, 7, 4000, 5000).ok());
  EXPECT_TRUE(mgr.LockForRead(2, 7, 4999, 5001).IsBusy());
  EXPECT_TRUE(mgr.LockForUpdate(2, 7, 900000).IsBusy());
}

TEST(ByteRangeLockTest, SameTransactionNeverSelfConflicts) {
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.LockForReplace(1, 7, 0, 100).ok());
  EXPECT_TRUE(mgr.LockForReplace(1, 7, 50, 150).ok());
  EXPECT_TRUE(mgr.LockForRead(1, 7, 0, 150).ok());
  EXPECT_TRUE(mgr.LockForUpdate(1, 7, 10).ok());
}

TEST(ByteRangeLockTest, ReleaseAllFreesRanges) {
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.LockForReplace(1, 7, 0, 100).ok());
  EXPECT_TRUE(mgr.LockForReplace(1, 8, 0, 100).ok());
  EXPECT_EQ(mgr.lock_count(), 2u);
  EXPECT_TRUE(mgr.LockForRead(2, 7, 50, 60).IsBusy());
  mgr.ReleaseAll(1);
  EXPECT_EQ(mgr.lock_count(), 0u);
  EXPECT_TRUE(mgr.LockForRead(2, 7, 50, 60).ok());
  EXPECT_FALSE(mgr.Holds(1, 7, 0, 100, Mode::kShared));
}

TEST(ByteRangeLockTest, HoldsRequiresFullCoverage) {
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.LockForRead(1, 7, 0, 100).ok());
  EXPECT_TRUE(mgr.LockForRead(1, 7, 100, 200).ok());
  EXPECT_TRUE(mgr.Holds(1, 7, 0, 200, Mode::kShared));  // two pieces cover
  EXPECT_TRUE(mgr.LockForRead(1, 7, 300, 400).ok());
  EXPECT_FALSE(mgr.Holds(1, 7, 0, 400, Mode::kShared));  // gap at [200,300)
}

TEST(ByteRangeLockTest, EmptyRangeRejected) {
  ByteRangeLockManager mgr;
  EXPECT_TRUE(mgr.Lock(1, 7, 10, 10, Mode::kShared).IsInvalidArgument());
  EXPECT_TRUE(mgr.Lock(1, 7, 20, 10, Mode::kShared).IsInvalidArgument());
}

}  // namespace
}  // namespace eos
