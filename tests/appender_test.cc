// LobAppender edge cases: hints, doubling, trims, tail absorption,
// lifecycle misuse.

#include <gtest/gtest.h>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(AppenderTest, EmptySessionIsNoOp) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  {
    LobAppender app(s.lob.get(), &d);
    EOS_ASSERT_OK(app.Finish());
  }
  EXPECT_EQ(d.size(), 0u);
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, s.allocator->geometry().space_pages);
}

TEST(AppenderTest, SizeHintAllocatesExactly) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes data = PatternBytes(1, 1820);
  {
    LobAppender app(s.lob.get(), &d, /*size_hint=*/1820);
    // Chunked delivery must not fragment: the hint sizes the segment.
    for (int i = 0; i < 20; ++i) {
      EOS_ASSERT_OK(app.Append(ByteView(data.data() + i * 91, 91)));
    }
    EOS_ASSERT_OK(app.Finish());
  }
  ASSERT_EQ(d.root.entries.size(), 1u) << "hint should yield one segment";
  EXPECT_EQ(d.root.entries[0].count, 1820u);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
}

TEST(AppenderTest, UnderestimatedHintStillCorrect) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes data = PatternBytes(2, 3000);
  {
    LobAppender app(s.lob.get(), &d, /*size_hint=*/1000);  // too small
    EOS_ASSERT_OK(app.Append(data));
    EOS_ASSERT_OK(app.Finish());
  }
  EXPECT_EQ(d.size(), 3000u);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.lob->CheckInvariants(d));
}

TEST(AppenderTest, AppendAfterFinishRejected) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  LobAppender app(s.lob.get(), &d);
  EOS_ASSERT_OK(app.Append(PatternBytes(3, 10)));
  EOS_ASSERT_OK(app.Finish());
  EXPECT_TRUE(app.Append(PatternBytes(3, 10)).IsInvalidArgument());
  EOS_ASSERT_OK(app.Finish());  // idempotent
}

TEST(AppenderTest, DestructorFinishes) {
  Stack s = Stack::Make(100);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes data = PatternBytes(4, 555);
  {
    LobAppender app(s.lob.get(), &d);
    EOS_ASSERT_OK(app.Append(data));
    // No Finish(): the destructor must close and trim the open segment.
  }
  EXPECT_EQ(d.size(), 555u);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
}

TEST(AppenderTest, ContinuesExistingObjectAbsorbingTail) {
  Stack s = Stack::Make(100);
  Bytes data = PatternBytes(5, 1234);  // last page partial (34 bytes)
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  Bytes more = PatternBytes(6, 2000);
  {
    LobAppender app(s.lob.get(), &*d);
    for (int i = 0; i < 20; ++i) {
      EOS_ASSERT_OK(app.Append(ByteView(more.data() + i * 100, 100)));
    }
    EOS_ASSERT_OK(app.Finish());
  }
  data.insert(data.end(), more.begin(), more.end());
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
}

TEST(AppenderTest, SingleGiantAppendCrossesMaxSegment) {
  LobConfig cfg;
  cfg.max_segment_pages = 16;
  Stack s = Stack::Make(100, 0, cfg);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes data = PatternBytes(7, 100 * 100);  // 100 pages >> 16-page cap
  {
    LobAppender app(s.lob.get(), &d, data.size());
    EOS_ASSERT_OK(app.Append(data));
    EOS_ASSERT_OK(app.Finish());
  }
  auto st = s.lob->Stats(d);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->max_segment_pages, 16u);
  EXPECT_GE(st->num_segments, 100u / 16);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
}

TEST(AppenderTest, DoublingSequenceFromScratch) {
  LobConfig cfg;
  cfg.max_segment_pages = 32;
  Stack s = Stack::Make(100, 0, cfg);
  LobDescriptor d = s.lob->CreateEmpty();
  {
    LobAppender app(s.lob.get(), &d);
    // 200 one-byte appends: tiny chunks, no hint.
    for (int i = 0; i < 200; ++i) {
      uint8_t b = static_cast<uint8_t>(i);
      EOS_ASSERT_OK(app.Append(ByteView(&b, 1)));
    }
    EOS_ASSERT_OK(app.Finish());
  }
  EXPECT_EQ(d.size(), 200u);
  // 200 bytes = 2 pages: doubling gives segments of 1 and 1 (trimmed 2).
  auto st = s.lob->Stats(d);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->leaf_pages, 2u);
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ((*all)[i], static_cast<uint8_t>(i));
  }
}

TEST(AppenderTest, InterleavedFinishAndRandomChunks) {
  Stack s = Stack::Make(128);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes model;
  Random rng(8);
  for (int session = 0; session < 8; ++session) {
    LobAppender app(s.lob.get(), &d);
    int chunks = static_cast<int>(rng.Range(1, 12));
    for (int i = 0; i < chunks; ++i) {
      Bytes c = PatternBytes(session * 50 + i, rng.Range(1, 700));
      EOS_ASSERT_OK(app.Append(c));
      model.insert(model.end(), c.begin(), c.end());
    }
    EOS_ASSERT_OK(app.Finish());
    ASSERT_EQ(d.size(), model.size()) << "session " << session;
  }
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK(s.lob->CheckInvariants(d));
}

}  // namespace
}  // namespace eos
