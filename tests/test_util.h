#ifndef EOS_TESTS_TEST_UTIL_H_
#define EOS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "buddy/geometry.h"
#include "buddy/segment_allocator.h"
#include "common/random.h"
#include "io/page_device.h"
#include "io/pager.h"
#include "lob/lob_manager.h"
#include "obs/event_journal.h"

namespace eos {
namespace testing_util {

// In-memory storage stack: device + pager + buddy allocator (+ LobManager
// on demand). Most tests build on this.
struct Stack {
  std::unique_ptr<MemPageDevice> device;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<SegmentAllocator> allocator;
  std::unique_ptr<LobManager> lob;

  static Stack Make(uint32_t page_size, uint32_t space_pages = 0,
                    const LobConfig& lob_config = LobConfig{},
                    uint32_t initial_spaces = 1,
                    size_t pager_frames = 64) {
    Stack s;
    auto geo = BuddyGeometry::Make(page_size, space_pages);
    EXPECT_TRUE(geo.ok()) << geo.status().ToString();
    uint64_t pages =
        1 + uint64_t{initial_spaces} * (geo->space_pages + 1);
    s.device = std::make_unique<MemPageDevice>(page_size, pages);
    s.pager = std::make_unique<Pager>(s.device.get(), pager_frames);
    SegmentAllocator::Options opt;
    opt.initial_spaces = initial_spaces;
    opt.auto_grow = true;
    auto alloc = SegmentAllocator::Format(s.pager.get(), *geo, 1, opt);
    EXPECT_TRUE(alloc.ok()) << alloc.status().ToString();
    s.allocator = std::move(alloc).value();
    s.lob = std::make_unique<LobManager>(s.pager.get(), s.allocator.get(),
                                         lob_config);
    return s;
  }
};

// Deterministic pseudo-random payload whose bytes encode their position, so
// content mismatches localize the bug.
inline Bytes PatternBytes(uint64_t seed, size_t n) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>((seed * 131 + i * 7 + (i >> 8)) & 0xFF);
  }
  return b;
}

// gtest listener that dumps the flight-recorder journal when a test
// fails, so every red torture run ships its black box (the dump bundles
// EOS_TEST_SEED; tools/run_checks.sh retains the files under
// build/postmortems via EOS_JOURNAL_DIR). Call from main-less suites by
// adding a global: `static const bool _ = InstallPostMortemOnFailure();`
class PostMortemOnFailureListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      obs::DumpPostMortemBestEffort("gtest_failure");
    }
  }
};

inline bool InstallPostMortemOnFailure() {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new PostMortemOnFailureListener());
  return true;
}

#define EOS_ASSERT_OK(expr)                                 \
  do {                                                      \
    ::eos::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (0)

#define EOS_EXPECT_OK(expr)                                 \
  do {                                                      \
    ::eos::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (0)

}  // namespace testing_util
}  // namespace eos

#endif  // EOS_TESTS_TEST_UTIL_H_
