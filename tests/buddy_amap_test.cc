// Allocation-map encoding tests, including the exact byte values of the
// paper's Figure 3 example (experiment E1).

#include "buddy/alloc_map.h"

#include <gtest/gtest.h>

#include <vector>

namespace eos {
namespace {

class AllocMapTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPages = 128;
  AllocMapTest() : bytes_(kPages / 4, 0), map_(bytes_.data(), kPages, 6) {}

  std::vector<uint8_t> bytes_;
  AllocMap map_;
};

TEST_F(AllocMapTest, Figure3ExactBytes) {
  // "Byte 0 indicates that there is an allocated segment of size 2^6 = 64
  // that starts at page 0."
  map_.WriteAllocated(0, 6);
  // "Byte 16 encodes individually the status of pages 64 through 67; pages
  // 64 and 67 are free while pages 65 and 66 are not."
  map_.WriteFree(64, 0);
  map_.WriteAllocated(65, 0);
  map_.WriteAllocated(66, 0);
  map_.WriteFree(67, 0);
  // "Byte 17 indicates a free segment of size 2^2 = 4 that starts at page
  // 68. Byte 18 encodes a free segment of size 2^3 = 8 at page 72."
  map_.WriteFree(68, 2);
  map_.WriteFree(72, 3);

  EXPECT_EQ(map_.byte(0), 0xC6);  // start | allocated | type 6
  for (uint32_t b = 1; b <= 15; ++b) {
    EXPECT_EQ(map_.byte(b), 0x00) << "interior byte " << b;
  }
  EXPECT_EQ(map_.byte(16), 0x06);  // 0b0110: pages 65, 66 allocated
  EXPECT_EQ(map_.byte(17), 0x82);  // start | free | type 2
  EXPECT_EQ(map_.byte(18), 0x83);  // start | free | type 3
}

TEST_F(AllocMapTest, Figure3SkipScan) {
  map_.WriteAllocated(0, 6);
  map_.WriteFree(64, 0);
  map_.WriteAllocated(65, 0);
  map_.WriteAllocated(66, 0);
  map_.WriteFree(67, 0);
  map_.WriteFree(68, 2);
  map_.WriteFree(72, 3);
  // Rest of the space: keep it allocated so the scan stops where expected.
  map_.WriteAllocated(80, 4);
  map_.WriteAllocated(96, 5);

  // "Assume that we want to locate a free segment of size 8. We start at
  // segment 0 (64 pages) -> 64 (1 page) -> ... -> 72 (free, size 8)."
  EXPECT_EQ(map_.FindFree(3), 72u);
  EXPECT_EQ(map_.FindFree(2), 68u);
  EXPECT_EQ(map_.FindFree(0), 64u);
  // No free segment of size 2 exists.
  EXPECT_EQ(map_.FindFree(1), AllocMap::kNone);
}

TEST_F(AllocMapTest, PageAllocatedFollowsInteriorBytes) {
  map_.WriteAllocated(0, 5);  // pages 0..31
  map_.WriteFree(32, 5);
  map_.WriteAllocated(64, 6);
  EXPECT_TRUE(map_.PageAllocated(0));
  EXPECT_TRUE(map_.PageAllocated(17));  // interior of the first segment
  EXPECT_TRUE(map_.PageAllocated(31));
  EXPECT_FALSE(map_.PageAllocated(32));
  EXPECT_FALSE(map_.PageAllocated(63));
  EXPECT_TRUE(map_.PageAllocated(100));
}

TEST_F(AllocMapTest, FindSegmentContaining) {
  map_.WriteAllocated(0, 4);   // 0..15
  map_.WriteAllocated(16, 2);  // 16..19
  map_.WriteAllocated(20, 0);
  map_.WriteAllocated(21, 0);
  map_.WriteFree(22, 1);
  map_.WriteFree(24, 3);
  map_.WriteAllocated(32, 5);

  AllocMap::Segment s = map_.FindSegmentContaining(9);
  EXPECT_EQ(s.start, 0u);
  EXPECT_EQ(s.type, 4u);
  EXPECT_TRUE(s.allocated);

  s = map_.FindSegmentContaining(18);
  EXPECT_EQ(s.start, 16u);
  EXPECT_EQ(s.type, 2u);

  // Per-page granularity pages report themselves.
  s = map_.FindSegmentContaining(21);
  EXPECT_EQ(s.start, 21u);
  EXPECT_EQ(s.type, 0u);
  EXPECT_TRUE(s.allocated);

  s = map_.FindSegmentContaining(50);
  EXPECT_EQ(s.start, 32u);
  EXPECT_EQ(s.type, 5u);
}

TEST_F(AllocMapTest, CanonicalFreePairs) {
  map_.WriteAllocated(0, 5);
  map_.WriteAllocated(32, 0);
  map_.WriteAllocated(33, 0);
  map_.WriteFree(34, 1);  // aligned free pair -> canonical type 1
  map_.WriteFree(36, 2);
  map_.WriteAllocated(40, 3);
  map_.WriteAllocated(48, 4);
  map_.WriteAllocated(64, 6);

  EXPECT_TRUE(map_.IsCanonicalFree(34, 1));
  EXPECT_FALSE(map_.IsCanonicalFree(34, 0));  // half of a pair
  EXPECT_FALSE(map_.IsCanonicalFree(35, 0));
  EXPECT_TRUE(map_.IsCanonicalFree(36, 2));
  EXPECT_FALSE(map_.IsCanonicalFree(36, 1));
  EXPECT_EQ(map_.CanonicalFreeTypeAt(34), 1u);
}

TEST_F(AllocMapTest, CountFreeSegments) {
  map_.WriteAllocated(0, 4);
  map_.WriteFree(16, 4);
  map_.WriteAllocated(32, 0);
  map_.WriteFree(33, 0);
  map_.WriteFree(34, 1);
  map_.WriteFree(36, 2);
  map_.WriteAllocated(40, 3);
  map_.WriteFree(48, 4);
  map_.WriteAllocated(64, 6);

  std::vector<uint32_t> counts = map_.CountFreeSegments();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[4], 2u);
  EXPECT_EQ(counts[5], 0u);
  EXPECT_EQ(counts[6], 0u);
}

TEST(AllocMapEncodingTest, MaxTypeFitsSixBits) {
  // The MSB encoding reserves 6 bits for the type: "segment sizes of up to
  // 2^63 pages, more than what is really needed".
  EXPECT_EQ(AllocMap::kTypeMask, 0x3F);
}

}  // namespace
}  // namespace eos
