// Buddy space tests, including the exact alloc/free scenario of the
// paper's Figure 4 (experiment E2).

#include "buddy/buddy_space.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "io/pager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::Stack;

class BuddySpaceTest : public ::testing::Test {
 protected:
  // 64-byte pages give k=7 and small spaces; use an explicit 16-page space
  // for the Figure 4 scenario.
  void Init(uint32_t space_pages) {
    auto geo = BuddyGeometry::Make(64, space_pages);
    ASSERT_TRUE(geo.ok());
    geo_ = *geo;
    device_ = std::make_unique<MemPageDevice>(64, 1 + geo_.space_pages);
    pager_ = std::make_unique<Pager>(device_.get(), 8);
    space_ = std::make_unique<BuddySpace>(pager_.get(), 0, geo_);
    EOS_ASSERT_OK(space_->Format());
  }

  uint8_t MapByte(uint32_t i) {
    auto h = pager_->Fetch(0);
    EXPECT_TRUE(h.ok());
    return h->data()[geo_.dir_header_bytes() + i];
  }

  uint32_t Count(uint32_t t) {
    auto counts = space_->Counts();
    EXPECT_TRUE(counts.ok());
    return (*counts)[t];
  }

  BuddyGeometry geo_;
  std::unique_ptr<MemPageDevice> device_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BuddySpace> space_;
};

TEST_F(BuddySpaceTest, FormatFreshSpace) {
  Init(16);
  EXPECT_EQ(Count(4), 1u);  // one free segment of 16 pages
  auto free_pages = space_->FreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, 16u);
  EOS_EXPECT_OK(space_->CheckInvariants());
}

TEST_F(BuddySpaceTest, Figure4AllocateElevenPages) {
  Init(16);
  // "Assume a client requests the allocation of a segment of size 11
  // (1011b): three contiguous segments of size 2^3, 2^1 and 2^0; the
  // remaining 5 (101b) pages become free segments of size 2^0 and 2^2."
  auto s = space_->Allocate(11);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(*s, 0u);
  EXPECT_EQ(MapByte(0), 0xC3);  // allocated segment of 8 at page 0
  EXPECT_EQ(MapByte(1), 0x00);
  EXPECT_EQ(MapByte(2), 0x0E);  // pages 8,9 (seg of 2), 10 (seg of 1); 11 free
  EXPECT_EQ(MapByte(3), 0x82);  // free segment of 4 at page 12
  EXPECT_EQ(Count(0), 1u);
  EXPECT_EQ(Count(1), 0u);
  EXPECT_EQ(Count(2), 1u);
  EXPECT_EQ(Count(3), 0u);
  EXPECT_EQ(Count(4), 0u);
  EOS_EXPECT_OK(space_->CheckInvariants());
}

TEST_F(BuddySpaceTest, Figure4PartialFreeAndCoalesce) {
  Init(16);
  ASSERT_TRUE(space_->Allocate(11).ok());

  // Figure 4.c: "the client frees 7 pages starting from page 3."
  EOS_ASSERT_OK(space_->Free(3, 7));
  // Remaining allocated: 2@0, 1@2 (re-encoded from the size-8 segment),
  // and 1@10. Free: 1@3, 4@4, 2@8, 1@11, 4@12.
  EXPECT_EQ(Count(0), 2u);  // pages 3 and 11
  EXPECT_EQ(Count(1), 1u);  // pages 8-9
  EXPECT_EQ(Count(2), 2u);  // pages 4-7 and 12-15
  EXPECT_EQ(Count(3), 0u);
  auto free_pages = space_->FreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, 12u);
  EOS_ASSERT_OK(space_->CheckInvariants());

  // Figure 4.d: "suppose the client frees page 10": 10+11 -> 2@10,
  // +8-9 -> 4@8, +12-15 -> 8@8; cannot merge with 0 (not free).
  EOS_ASSERT_OK(space_->Free(10, 1));
  EXPECT_EQ(Count(0), 1u);  // page 3
  EXPECT_EQ(Count(1), 0u);
  EXPECT_EQ(Count(2), 1u);  // pages 4-7
  EXPECT_EQ(Count(3), 1u);  // pages 8-15
  EXPECT_EQ(MapByte(2), 0x83);  // free segment of 8 at page 8
  EOS_ASSERT_OK(space_->CheckInvariants());

  // Freeing the rest restores one maximal free segment.
  EOS_ASSERT_OK(space_->Free(0, 3));
  EXPECT_EQ(Count(4), 1u);
  auto all_free = space_->FreePages();
  ASSERT_TRUE(all_free.ok());
  EXPECT_EQ(*all_free, 16u);
  EOS_ASSERT_OK(space_->CheckInvariants());
}

TEST_F(BuddySpaceTest, AllocateSplitsLargerSegment) {
  Init(64);
  // Fresh 64-page space: one free segment of 64. Allocating 4 splits it.
  auto s = space_->Allocate(4);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, 0u);
  EXPECT_EQ(Count(2), 1u);  // 4..7
  EXPECT_EQ(Count(3), 1u);  // 8..15
  EXPECT_EQ(Count(4), 1u);  // 16..31
  EXPECT_EQ(Count(5), 1u);  // 32..63
  EOS_EXPECT_OK(space_->CheckInvariants());
}

TEST_F(BuddySpaceTest, AllocationRespectsAlignment) {
  Init(64);
  std::set<uint32_t> starts;
  for (int i = 0; i < 8; ++i) {
    auto s = space_->Allocate(8);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s % 8, 0u) << "segments start only at multiples of their size";
    EXPECT_TRUE(starts.insert(*s).second) << "duplicate allocation";
  }
  EXPECT_FALSE(space_->Allocate(1).ok());  // space exhausted
}

TEST_F(BuddySpaceTest, DoubleFreeDetected) {
  Init(16);
  auto s = space_->Allocate(4);
  ASSERT_TRUE(s.ok());
  EOS_ASSERT_OK(space_->Free(*s, 4));
  Status st = space_->Free(*s, 4);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(BuddySpaceTest, NonPowerOfTwoSpace) {
  Init(23);  // decomposes into 16 + 4 + 2 + 1
  EXPECT_EQ(Count(4), 1u);
  EXPECT_EQ(Count(2), 1u);
  EXPECT_EQ(Count(1), 1u);
  EXPECT_EQ(Count(0), 1u);
  EOS_ASSERT_OK(space_->CheckInvariants());
  auto s = space_->Allocate(3);
  ASSERT_TRUE(s.ok());
  EOS_ASSERT_OK(space_->CheckInvariants());
  EOS_ASSERT_OK(space_->Free(*s, 3));
  auto free_pages = space_->FreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, 23u);
}

// Property test: random allocate/free against a reference bitmap. After
// every operation the counts match the map and nothing overlaps.
TEST_F(BuddySpaceTest, RandomizedAgainstReferenceBitmap) {
  Init(128);
  Random rng(20260704);
  std::map<uint32_t, uint32_t> live;  // start -> npages
  std::vector<bool> used(128, false);
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.OneIn(2)) {
      uint32_t n = static_cast<uint32_t>(rng.Range(1, 24));
      auto s = space_->Allocate(n);
      if (s.ok()) {
        for (uint32_t p = *s; p < *s + n; ++p) {
          ASSERT_FALSE(used[p]) << "overlapping allocation at page " << p;
          used[p] = true;
        }
        live[*s] = n;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      // Sometimes free only part of the segment (Section 3.2 allows it).
      uint32_t off = static_cast<uint32_t>(rng.Uniform(it->second));
      uint32_t len =
          static_cast<uint32_t>(rng.Range(1, it->second - off));
      EOS_ASSERT_OK(space_->Free(it->first + off, len));
      for (uint32_t p = it->first + off; p < it->first + off + len; ++p) {
        used[p] = false;
      }
      // Update the reference segmentation.
      uint32_t start = it->first;
      uint32_t total = it->second;
      live.erase(it);
      if (off > 0) live[start] = off;
      if (off + len < total) {
        live[start + off + len] = total - off - len;
      }
    }
    if (step % 50 == 0) {
      EOS_ASSERT_OK(space_->CheckInvariants());
      uint64_t used_count = 0;
      for (bool u : used) used_count += u;
      auto free_pages = space_->FreePages();
      ASSERT_TRUE(free_pages.ok());
      EXPECT_EQ(*free_pages, 128 - used_count);
    }
  }
}

}  // namespace
}  // namespace eos
