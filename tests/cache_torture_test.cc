// Extent-cache torture (DESIGN.md §14). The correctness proof for the
// hot-object DRAM tier: with the cache enabled, concurrent writers,
// lock-free snapshot readers and defrag ticks must never observe stale or
// wrong bytes — version-sequence keys make published images immutable and
// the invalidation hooks (publish, GC, in-place generation bump, defrag
// migration) retire everything a reader could no longer pin. Chaos read
// faults during a cache fill must degrade to the direct read path, and
// partial reads under a deadline must skip the whole-extent fill. Every
// path ends CheckIntegrity and LeakCheck clean. The block compressor the
// probation segment uses is exercised on its own as well.
//
// Failures print the seed; re-run with EOS_TEST_SEED=<n>.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/extent_cache.h"
#include "common/compress.h"
#include "common/deadline.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "io/io_executor.h"
#include "lob/walker.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/churn_driver.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"

namespace eos {
namespace {

// Failed assertions dump the flight-recorder journal (test_util.h).
const bool g_postmortem_listener = testing_util::InstallPostMortemOnFailure();

using testing_util::ChurnDriver;
using testing_util::ChurnOptions;
using testing_util::PatternBytes;
using testing_util::Stack;
using testing_util::TestSeed;

DatabaseOptions CachedOptions(bool mvcc) {
  DatabaseOptions opt;
  opt.page_size = 512;
  opt.pager_frames = 64;
  opt.mvcc = mvcc;
  // Small enough that the churn working set overflows it: admission,
  // eviction and compression all stay on the hot path of every test.
  opt.cache_bytes = 256u << 10;
  opt.cache_compression = true;
  return opt;
}

std::string AsString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void ExpectClean(Database* db) {
  EOS_EXPECT_OK(db->CheckIntegrity());
  EOS_EXPECT_OK(db->Checkpoint());  // drain version GC fully
  LeakCheckReport report;
  EOS_EXPECT_OK(db->LeakCheck(&report));
  EXPECT_TRUE(report.leaked.empty());
  EXPECT_TRUE(report.doubly_referenced.empty());
}

// ----- block compressor ------------------------------------------------------

TEST(CompressTest, RoundTripsCompressibleData) {
  const uint64_t seed = TestSeed(0xC0DE);
  std::mt19937_64 rng(seed);
  // Runs + repeats: the shape of real leaf images (serialized structures,
  // zero padding), squarely in the compressor's wheelhouse.
  for (size_t n : {size_t{1}, size_t{17}, size_t{4096}, size_t{70000}}) {
    Bytes src(n);
    uint8_t v = static_cast<uint8_t>(rng());
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 17 == 0) v = static_cast<uint8_t>(rng());
      src[i] = v;
    }
    Bytes packed(CompressBound(n));
    size_t m = CompressBlock(src.data(), n, packed.data(), packed.size());
    ASSERT_GT(m, 0u) << "n=" << n;
    Bytes out(n);
    EOS_ASSERT_OK(DecompressBlock(packed.data(), m, out.data(), n));
    EXPECT_EQ(out, src) << "n=" << n;
  }
}

TEST(CompressTest, RoundTripsRandomDataViaBound) {
  const uint64_t seed = TestSeed(0xC0DF);
  Bytes src = PatternBytes(seed, 30000);
  std::mt19937_64 rng(seed);
  for (auto& b : src) b = static_cast<uint8_t>(rng());  // incompressible
  // Given the full bound the encoder always succeeds (literal blocks)...
  Bytes packed(CompressBound(src.size()));
  size_t m = CompressBlock(src.data(), src.size(), packed.data(),
                           packed.size());
  ASSERT_GT(m, 0u);
  Bytes out(src.size());
  EOS_ASSERT_OK(DecompressBlock(packed.data(), m, out.data(), out.size()));
  EXPECT_EQ(out, src);
  // ...and with a cap demanding actual shrinkage it reports "won't fit"
  // instead of producing a larger image.
  EXPECT_EQ(CompressBlock(src.data(), src.size(), packed.data(),
                          src.size() - src.size() / 8),
            0u);
}

TEST(CompressTest, RejectsCorruptAndTruncatedStreams) {
  const uint64_t seed = TestSeed(0xC0E0);
  std::mt19937_64 rng(seed);
  Bytes src(20000);
  uint8_t v = 0;
  for (size_t i = 0; i < src.size(); ++i) {
    if (rng() % 13 == 0) v = static_cast<uint8_t>(rng());
    src[i] = v;
  }
  Bytes packed(CompressBound(src.size()));
  size_t m = CompressBlock(src.data(), src.size(), packed.data(),
                           packed.size());
  ASSERT_GT(m, 0u);
  Bytes out(src.size());
  // Truncation at every prefix must fail typed, never crash or overrun.
  for (size_t cut : {size_t{0}, size_t{1}, m / 2, m - 1}) {
    Status s = DecompressBlock(packed.data(), cut, out.data(), out.size());
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
  // Seeded single-byte corruption: either the stream still decodes to the
  // wrong bytes of the right length, or it fails typed — never UB.
  for (int trial = 0; trial < 64; ++trial) {
    Bytes bad(packed.begin(), packed.begin() + m);
    bad[rng() % m] ^= static_cast<uint8_t>(1 + rng() % 255);
    Bytes dst(src.size());
    Status s = DecompressBlock(bad.data(), m, dst.data(), dst.size());
    if (!s.ok()) {
      EXPECT_TRUE(s.IsCorruption()) << s.ToString();
    }
  }
}

// ----- oracle-checked concurrent churn with the cache on ---------------------

// Writers churn objects through the shared oracle driver, snapshot readers
// verify pinned versions lock-free (every read consulting the cache), and
// a defrag thread keeps migrating layouts underneath both — the Reorganize
// republish must retire cached images of the pre-migration extents.
TEST(CacheTortureTest, OracleExactUnderChurnReadersAndDefrag) {
  const uint64_t seed = TestSeed(0xCA51);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  DatabaseOptions opt = CachedOptions(/*mvcc=*/true);
  opt.defrag.min_scatter = 1.0;  // migrate aggressively
  auto db = Database::CreateInMemory(opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE((*db)->extent_cache(), nullptr);
  LogManager log;
  (*db)->AttachLog(&log);

  ChurnOptions copt;
  copt.num_objects = 12;
  copt.initial_object_bytes = 8u << 10;
  copt.max_object_bytes = 32u << 10;
  copt.max_edit_bytes = 1024;
  ChurnDriver driver(db->get(), seed, copt);
  EOS_ASSERT_OK(driver.SetUp());

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kStepsPerWriter = 100;
  constexpr int kReadsPerReader = 80;
  driver.PrepareThreads(kWriters + kReaders);

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::vector<std::string> errors(kWriters + kReaders + 1);
  auto fail = [&](int slot, std::string why) {
    errors[slot] = std::move(why);
    failed.store(true);
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kStepsPerWriter && !failed.load(); ++i) {
        Status s = driver.StepForThread(static_cast<uint32_t>(w));
        if (!s.ok()) {
          fail(w, "writer step: " + s.ToString());
          return;
        }
      }
    });
  }
  Database* dbp = db->get();
  for (int r = 0; r < kReaders; ++r) {
    const uint32_t slot = static_cast<uint32_t>(kWriters + r);
    threads.emplace_back([&, slot] {
      for (int i = 0; i < kReadsPerReader && !failed.load(); ++i) {
        Snapshot snap;
        std::string expected;
        Status s = driver.PinRandomSnapshot(slot, &snap, &expected);
        if (!s.ok()) {
          fail(slot, "pin: " + s.ToString());
          return;
        }
        // Two lock-free reads of the pin: the first likely fills the
        // cache, the second likely hits it; both must be oracle-exact even
        // as writers republish and the defragmenter migrates this object.
        for (int pass = 0; pass < 2; ++pass) {
          auto got = dbp->SnapshotRead(snap, 0, expected.size() + 1);
          if (!got.ok()) {
            fail(slot, "snapshot read: " + got.status().ToString());
            return;
          }
          if (AsString(*got) != expected) {
            fail(slot, "snapshot v" + std::to_string(snap.vseq()) +
                           " of object " + std::to_string(snap.object_id()) +
                           " differs from its oracle (pass " +
                           std::to_string(pass) + ")");
            return;
          }
        }
        snap.Release();
      }
    });
  }
  threads.emplace_back([&] {
    // Defrag ticks racing both sides; Reorganize republishes objects and
    // must invalidate their cached pre-migration extents.
    while (!done.load() && !failed.load()) {
      DefragReport rep;
      Status s = dbp->DefragTick(&rep);
      if (!s.ok()) {
        fail(kWriters + kReaders, "defrag tick: " + s.ToString());
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < kWriters + kReaders; ++i) threads[i].join();
  done.store(true);
  threads.back().join();
  std::string all_errors;
  for (const std::string& e : errors) {
    if (!e.empty()) all_errors += e + "\n";
  }
  ASSERT_FALSE(failed.load()) << all_errors;

  // Quiesced full-content verification reads through the warm cache.
  EOS_ASSERT_OK(driver.VerifyAll());
  ExtentCache::Stats stats = (*db)->extent_cache()->GetStats();
  EXPECT_GT(stats.hits + stats.misses, 0u) << "cache never consulted";
  EXPECT_LE(stats.resident_bytes, (*db)->extent_cache()->capacity_bytes());
  ExpectClean(db->get());
}

// Without mvcc, Replace mutates leaf pages in place under the directory
// latch; the per-object generation bump must keep the cache from ever
// serving the pre-mutation image.
TEST(CacheTortureTest, NonMvccInPlaceMutationsNeverServeStale) {
  const uint64_t seed = TestSeed(0xCA52);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  auto db = Database::CreateInMemory(CachedOptions(/*mvcc=*/false));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Directed: read-fill, in-place replace, read again.
  Bytes content = PatternBytes(seed, 24 << 10);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto warm = (*db)->Read(*id, 0, content.size());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(*warm, content);
  Bytes edit = PatternBytes(seed + 1, 4 << 10);
  EOS_ASSERT_OK((*db)->Replace(*id, 1000, edit));
  std::copy(edit.begin(), edit.end(), content.begin() + 1000);
  auto after = (*db)->Read(*id, 0, content.size());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, content) << "cache served a pre-replace image";

  // Randomized: oracle churn with a full verification (cached reads) after
  // every epoch.
  ChurnOptions copt;
  copt.num_objects = 10;
  copt.initial_object_bytes = 8u << 10;
  copt.max_object_bytes = 24u << 10;
  ChurnDriver driver(db->get(), seed, copt);
  EOS_ASSERT_OK(driver.SetUp());
  for (int epoch = 0; epoch < 4; ++epoch) {
    EOS_ASSERT_OK(driver.Epoch());
    EOS_ASSERT_OK(driver.VerifyAll());
  }
  ExpectClean(db->get());
}

// ----- chaos read faults during a fill ---------------------------------------

// A failed whole-extent fill read must degrade to the existing direct read
// path, not fail the caller's read: the fill is an optimization.
TEST(CacheTortureTest, ReadFaultDuringFillDegradesToDirectRead) {
  const uint64_t seed = TestSeed(0xCA53);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  auto chaos_owned = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(512, 1), seed);
  ChaosPageDevice* chaos = chaos_owned.get();
  auto db = Database::CreateOnDevice(std::move(chaos_owned),
                                     CachedOptions(/*mvcc=*/false));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  Bytes content = PatternBytes(seed, 16 << 10);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Warm everything once (pager holds the index path), then invalidate the
  // cached images so the next read must fill again.
  auto warm = (*db)->Read(*id, 0, content.size());
  ASSERT_TRUE(warm.ok());
  (*db)->extent_cache()->Clear();

  obs::Counter* fill_fail =
      obs::MetricsRegistry::Default().counter(obs::kCacheFillFail);
  uint64_t fails_before = fill_fail->value();

  // The next device read — the fill's whole-extent transfer — fails once
  // (transient), so the direct path immediately after succeeds.
  chaos->FailReadsAfter(0, /*permanent=*/false);
  auto got = (*db)->Read(*id, 0, content.size());
  chaos->Heal();
  ASSERT_TRUE(got.ok()) << "fill fault leaked into the read: "
                        << got.status().ToString();
  EXPECT_EQ(*got, content);
  EXPECT_GT(fill_fail->value(), fails_before)
      << "fault never hit the fill path";

  // Permanent faults still fail the read itself — degradation does not
  // mean swallowing real I/O errors.
  (*db)->extent_cache()->Clear();
  chaos->FailReadsAfter(0, /*permanent=*/true);
  auto dead = (*db)->Read(*id, 0, content.size());
  chaos->Heal();
  EXPECT_FALSE(dead.ok());
  // And the volume is intact after healing.
  auto again = (*db)->Read(*id, 0, content.size());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, content);
  ExpectClean(db->get());
}

// ----- deadline-bounded partial reads skip the fill --------------------------

TEST(CacheTortureTest, BoundedPartialReadSkipsWholeExtentFill) {
  const uint64_t seed = TestSeed(0xCA54);
  auto db = Database::CreateInMemory(CachedOptions(/*mvcc=*/false));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Bytes content = PatternBytes(seed, 32 << 10);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok());

  // A partial read under an ambient deadline must not amplify its transfer
  // into a whole-extent fill: the deadline budget belongs to the caller.
  {
    ScopedOpContext ctx(OpContext{
        Deadline::After(std::chrono::seconds(30)), CancelToken()});
    auto got = (*db)->Read(*id, 100, 200);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(std::equal(got->begin(), got->end(), content.begin() + 100));
  }
  EXPECT_EQ((*db)->extent_cache()->GetStats().entries, 0u)
      << "bounded partial read filled the cache anyway";

  // The same partial read without a deadline is free to fill; a following
  // bounded read then hits the already-resident image.
  auto unbounded = (*db)->Read(*id, 100, 200);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_GT((*db)->extent_cache()->GetStats().entries, 0u);
  {
    ScopedOpContext ctx(OpContext{
        Deadline::After(std::chrono::seconds(30)), CancelToken()});
    uint64_t hits_before = (*db)->extent_cache()->GetStats().hits;
    auto got = (*db)->Read(*id, 300, 400);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), content.begin() + 300));
    EXPECT_GT((*db)->extent_cache()->GetStats().hits, hits_before);
  }
  ExpectClean(db->get());
}

// ----- read-ahead skips extents the cache already holds ----------------------

TEST(CacheTortureTest, PrefetchSkippedForCachedExtents) {
  const uint64_t seed = TestSeed(0xCA55);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  Stack s = Stack::Make(128);
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes model;
  {
    LobAppender app(s.lob.get(), &d);
    std::mt19937_64 rng(seed);
    for (int i = 0; i < 30; ++i) {
      Bytes chunk = PatternBytes(seed + i, 200 + rng() % 300);
      EOS_ASSERT_OK(app.Append(chunk));
      model.insert(model.end(), chunk.begin(), chunk.end());
    }
    EOS_ASSERT_OK(app.Finish());
  }

  ExtentCache::Options copt;
  copt.capacity_bytes = 1u << 20;  // everything fits
  ExtentCache cache(copt);
  ScopedExtentCacheRef bind(&cache, /*object_id=*/1, /*vseq=*/1);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* issued = reg.counter(obs::kIoPrefetchIssued);
  obs::Counter* cancelled = reg.counter(obs::kIoPrefetchCancelled);

  // Cold pass through the random-access read path fills every extent.
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(d, 0, model.size(), &out));
  ASSERT_EQ(out, model);
  ASSERT_GT(cache.GetStats().entries, 1u) << "multi-extent fill expected";

  // Streaming pass with read-ahead armed: every PeekNextLeaf target is
  // already resident, so each would-be prefetch is cancelled before issue
  // (io.prefetch_cancelled) and no new prefetch I/O is submitted.
  uint64_t issued_before = issued->value();
  uint64_t cancelled_before = cancelled->value();
  IoExecutor exec(2);
  LobReader r(s.lob.get(), d);
  r.EnableReadAhead(&exec);
  Bytes streamed;
  while (!r.AtEnd()) {
    auto chunk = r.ReadNext(700);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    streamed.insert(streamed.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(streamed, model);
  EXPECT_EQ(issued->value(), issued_before)
      << "prefetch issued for a cache-resident extent";
  EXPECT_GT(cancelled->value(), cancelled_before)
      << "cache-resident successors were never skipped";
}

// ----- eviction and admission under pressure ---------------------------------

// Direct ExtentCache torture: concurrent hits, inserts and invalidations
// against a capacity too small for the population; every successful lookup
// must return the exact bytes inserted under that key.
TEST(CacheTortureTest, ShardedCacheExactUnderConcurrentPressure) {
  const uint64_t seed = TestSeed(0xCA56);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  ExtentCache::Options copt;
  copt.capacity_bytes = 96u << 10;
  ExtentCache cache(copt);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr uint64_t kObjects = 8;
  constexpr uint64_t kExtentsPerObject = 16;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(seed * 31 + t);
      for (int i = 0; i < kOpsPerThread && !failed.load(); ++i) {
        uint64_t object = rng() % kObjects;
        uint64_t vseq = 1 + rng() % 3;
        PageId first = 1 + rng() % kExtentsPerObject;
        // Content is a pure function of the key, so any cross-key mixup
        // (sharding bug, LRU splice bug, compression bug) is caught by a
        // byte compare.
        size_t len = 512 + (first * 37 % 3) * 512;
        Bytes expect = PatternBytes(object * 1000 + vseq * 100 + first, len);
        uint32_t pick = static_cast<uint32_t>(rng() % 100);
        if (pick < 50) {
          Bytes got(len);
          if (cache.Lookup(object, vseq, first, 0, len, got.data()) &&
              got != expect) {
            failed.store(true);
          }
        } else if (pick < 90) {
          cache.Insert(object, vseq, first, expect.data(), expect.size());
        } else if (pick < 96) {
          cache.InvalidateObjectBelow(object, 1 + rng() % 4);
        } else {
          (void)cache.GetStats();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load()) << "a lookup returned wrong bytes";
  ExtentCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.resident_bytes, cache.capacity_bytes());
  EXPECT_GT(stats.evicted + stats.rejected, 0u)
      << "population never exceeded capacity; pressure untested";
}

}  // namespace
}  // namespace eos
