// Unit tests for the page-integrity layer: the CRC32C kernel, the bounded
// retry policy, trailer seal/verify semantics, and VerifiedPageDevice's
// fault handling — transient faults retried invisibly, persistent
// corruption quarantined and failed closed, writes lifting quarantines —
// plus the CRC framing that gives the write-ahead log its torn-tail
// detection.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/retry.h"
#include "io/chaos_device.h"
#include "io/page_device.h"
#include "io/verified_device.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().counter(name)->value();
}

// ---- CRC32C kernel ----------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The classic check value plus the RFC 3720 appendix B.4 vectors.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  uint8_t buf[32];
  std::memset(buf, 0x00, sizeof(buf));
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), 0x8A9136AAu);
  std::memset(buf, 0xFF, sizeof(buf));
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), 0x62A8AB43u);
  for (size_t i = 0; i < sizeof(buf); ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), 0x46DD794Eu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  Bytes data = PatternBytes(7, 1000);
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{513}, data.size()}) {
    uint32_t state = Crc32cInit();
    state = Crc32cExtend(state, data.data(), split);
    state = Crc32cExtend(state, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32cFinalize(state), whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsChangeTheValue) {
  Bytes data = PatternBytes(11, 64);
  uint32_t base = Crc32c(data.data(), data.size());
  for (size_t bit = 0; bit < data.size() * 8; bit += 37) {
    data[bit / 8] ^= uint8_t{1} << (bit % 8);
    EXPECT_NE(Crc32c(data.data(), data.size()), base) << "bit " << bit;
    data[bit / 8] ^= uint8_t{1} << (bit % 8);
  }
}

// ---- RetryPolicy / RunWithRetry --------------------------------------------

TEST(RetryTest, BackoffDoublesFromBaseAndCaps) {
  RetryPolicy p;
  p.base_backoff_us = 100;
  p.max_backoff_us = 450;
  EXPECT_EQ(p.BackoffUs(1), 100u);
  EXPECT_EQ(p.BackoffUs(2), 200u);
  EXPECT_EQ(p.BackoffUs(3), 400u);
  EXPECT_EQ(p.BackoffUs(4), 450u);  // capped
  RetryPolicy immediate;             // default base of 0: no sleeping
  EXPECT_EQ(immediate.BackoffUs(1), 0u);
  EXPECT_EQ(immediate.BackoffUs(3), 0u);
}

TEST(RetryTest, OnlyIOErrorAndBusyAreRetriable) {
  RetryPolicy p;
  EXPECT_TRUE(p.RetriableError(Status::IOError("x")));
  EXPECT_TRUE(p.RetriableError(Status::Busy("x")));
  EXPECT_FALSE(p.RetriableError(Status::Corruption("x")));
  EXPECT_FALSE(p.RetriableError(Status::InvalidArgument("x")));
  EXPECT_FALSE(p.RetriableError(Status::OK()));
}

TEST(RetryTest, TransientFaultSucceedsWithinBudget) {
  RetryPolicy p;
  p.max_attempts = 4;
  int attempts = 0;
  int retries = 0;
  Status s = RunWithRetry(
      p,
      [&] {
        ++attempts;
        return attempts < 3 ? Status::IOError("transient") : Status::OK();
      },
      [&] { ++retries; });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(retries, 2);
}

TEST(RetryTest, PermanentFaultExhaustsBudget) {
  RetryPolicy p;
  p.max_attempts = 3;
  int attempts = 0;
  Status s = RunWithRetry(p, [&] {
    ++attempts;
    return Status::IOError("permanent");
  });
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, NonRetriableErrorReturnsImmediately) {
  RetryPolicy p;
  p.max_attempts = 5;
  int attempts = 0;
  Status s = RunWithRetry(p, [&] {
    ++attempts;
    return Status::Corruption("rot");
  });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(attempts, 1);
}

// ---- trailer seal / verify --------------------------------------------------

constexpr uint32_t kPhys = 256;
constexpr uint32_t kPayload = kPhys - VerifiedPageDevice::kTrailerBytes;

Bytes SealedPage(uint64_t seed, PageId id, uint16_t epoch) {
  Bytes page(kPhys, 0);
  Bytes payload = PatternBytes(seed, kPayload);
  std::memcpy(page.data(), payload.data(), kPayload);
  VerifiedPageDevice::SealPage(page.data(), kPhys, id, epoch);
  return page;
}

TEST(TrailerTest, SealVerifyRoundTrip) {
  Bytes page = SealedPage(1, 42, 1);
  EOS_EXPECT_OK(VerifiedPageDevice::VerifyPage(page.data(), kPhys, 42, 1));
  // Payload is untouched by sealing.
  EXPECT_EQ(Bytes(page.begin(), page.begin() + kPayload),
            PatternBytes(1, kPayload));
}

TEST(TrailerTest, AnyFlippedBitFailsVerification) {
  Bytes page = SealedPage(2, 7, 1);
  for (size_t bit = 0; bit < kPhys * 8; bit += 101) {
    page[bit / 8] ^= uint8_t{1} << (bit % 8);
    Status s = VerifiedPageDevice::VerifyPage(page.data(), kPhys, 7, 1);
    EXPECT_TRUE(s.IsCorruption()) << "bit " << bit << ": " << s.ToString();
    page[bit / 8] ^= uint8_t{1} << (bit % 8);
  }
  EOS_EXPECT_OK(VerifiedPageDevice::VerifyPage(page.data(), kPhys, 7, 1));
}

TEST(TrailerTest, WrongPageIdIsMisdirectedIO) {
  Bytes page = SealedPage(3, 5, 1);
  Status s = VerifiedPageDevice::VerifyPage(page.data(), kPhys, 6, 1);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("misdirected"), std::string::npos)
      << s.ToString();
}

TEST(TrailerTest, WrongEpochIsFormatMismatch) {
  Bytes page = SealedPage(4, 5, 1);
  Status s = VerifiedPageDevice::VerifyPage(page.data(), kPhys, 5, 2);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("format epoch"), std::string::npos)
      << s.ToString();
}

TEST(TrailerTest, UnwrittenZeroPageIsRejected) {
  Bytes page(kPhys, 0);
  Status s = VerifiedPageDevice::VerifyPage(page.data(), kPhys, 0, 1);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("missing integrity trailer"),
            std::string::npos)
      << s.ToString();
}

// ---- VerifiedPageDevice -----------------------------------------------------

TEST(VerifiedDeviceTest, LogicalGeometryAndRoundTrip) {
  MemPageDevice mem(kPhys, 8);
  VerifiedPageDevice dev(&mem, /*epoch=*/1);
  EXPECT_EQ(dev.page_size(), kPayload);
  EXPECT_EQ(dev.page_count(), 8u);
  Bytes w = PatternBytes(5, 3 * kPayload);
  EOS_ASSERT_OK(dev.WritePages(2, 3, w.data()));
  Bytes r(3 * kPayload);
  EOS_ASSERT_OK(dev.ReadPages(2, 3, r.data()));
  EXPECT_EQ(w, r);
  EOS_ASSERT_OK(dev.Grow(16));
  EXPECT_EQ(dev.page_count(), 16u);
  EXPECT_EQ(mem.page_count(), 16u);
}

TEST(VerifiedDeviceTest, MisdirectedWriteIsDetectedOnRead) {
  MemPageDevice mem(kPhys, 8);
  VerifiedPageDevice dev(&mem, 1);
  Bytes w = PatternBytes(6, kPayload);
  EOS_ASSERT_OK(dev.WritePages(2, 1, w.data()));
  // The "disk" delivers page 2's sectors when page 3 was asked for.
  Bytes raw(kPhys);
  EOS_ASSERT_OK(mem.ReadPages(2, 1, raw.data()));
  EOS_ASSERT_OK(mem.WritePages(3, 1, raw.data()));
  Bytes r(kPayload);
  Status s = dev.ReadPages(3, 1, r.data());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("misdirected"), std::string::npos)
      << s.ToString();
}

TEST(VerifiedDeviceTest, TransientReadFaultRetriesInvisibly) {
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  VerifiedPageDevice dev(&chaos, 1);
  Bytes w = PatternBytes(7, kPayload);
  EOS_ASSERT_OK(dev.WritePages(1, 1, w.data()));
  uint64_t retries_before = CounterValue(obs::kIoReadRetry);
  chaos.FailReadsAfter(0);  // transient: exactly the next read fails
  Bytes r(kPayload);
  EOS_ASSERT_OK(dev.ReadPages(1, 1, r.data()));
  EXPECT_EQ(w, r);
  EXPECT_EQ(CounterValue(obs::kIoReadRetry), retries_before + 1);
  EXPECT_EQ(dev.quarantined_count(), 0u);
}

TEST(VerifiedDeviceTest, PermanentDeviceFaultExhaustsBudgetNoQuarantine) {
  RetryPolicy p;
  p.max_attempts = 3;
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  VerifiedPageDevice dev(&chaos, 1, p);
  Bytes w = PatternBytes(8, kPayload);
  EOS_ASSERT_OK(dev.WritePages(1, 1, w.data()));
  uint64_t reads_before = chaos.stats().read_calls;
  uint64_t retries_before = CounterValue(obs::kIoReadRetry);
  chaos.FailReadsAfter(0, /*permanent=*/true);
  Bytes r(kPayload);
  Status s = dev.ReadPages(1, 1, r.data());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(chaos.stats().read_calls, reads_before + 3) << "one per attempt";
  EXPECT_EQ(CounterValue(obs::kIoReadRetry), retries_before + 2);
  // A device error is not evidence of bad sectors: nothing is quarantined,
  // and once the fault clears the data is still there.
  EXPECT_EQ(dev.quarantined_count(), 0u);
  chaos.Heal();
  EOS_ASSERT_OK(dev.ReadPages(1, 1, r.data()));
  EXPECT_EQ(w, r);
}

TEST(VerifiedDeviceTest, PersistentRotQuarantinesAndFailsFast) {
  RetryPolicy p;
  p.max_attempts = 3;
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  VerifiedPageDevice dev(&chaos, 1, p);
  Bytes w = PatternBytes(9, 2 * kPayload);
  EOS_ASSERT_OK(dev.WritePages(1, 2, w.data()));
  uint64_t fails_before = CounterValue(obs::kIoChecksumFail);
  uint64_t quarantined_before = CounterValue(obs::kIoQuarantinedPages);
  EOS_ASSERT_OK(chaos.CorruptPage(1, /*bits=*/3));

  Bytes r(2 * kPayload);
  Status s = dev.ReadPages(1, 2, r.data());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find("page 1"), std::string::npos) << s.ToString();
  EXPECT_TRUE(dev.IsQuarantined(1));
  EXPECT_FALSE(dev.IsQuarantined(2)) << "the good page of the transfer";
  EXPECT_EQ(CounterValue(obs::kIoChecksumFail), fails_before + 3)
      << "one verification failure per attempt";
  EXPECT_EQ(CounterValue(obs::kIoQuarantinedPages), quarantined_before + 1);

  // Further reads fail fast: the device is not touched again.
  uint64_t reads_before = chaos.stats().read_calls;
  s = dev.ReadPages(1, 1, r.data());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("quarantined"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(chaos.stats().read_calls, reads_before);
  // The untouched neighbour still reads fine on its own.
  EOS_ASSERT_OK(dev.ReadPages(2, 1, r.data()));
  EXPECT_EQ(Bytes(r.begin(), r.begin() + kPayload),
            Bytes(w.begin() + kPayload, w.end()));
}

TEST(VerifiedDeviceTest, WriteLiftsQuarantine) {
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  VerifiedPageDevice dev(&chaos, 1);
  Bytes w = PatternBytes(10, kPayload);
  EOS_ASSERT_OK(dev.WritePages(4, 1, w.data()));
  EOS_ASSERT_OK(chaos.CorruptPage(4));
  Bytes r(kPayload);
  EXPECT_TRUE(dev.ReadPages(4, 1, r.data()).IsCorruption());
  ASSERT_TRUE(dev.IsQuarantined(4));

  Bytes w2 = PatternBytes(11, kPayload);
  EOS_ASSERT_OK(dev.WritePages(4, 1, w2.data()));
  EXPECT_FALSE(dev.IsQuarantined(4));
  EOS_ASSERT_OK(dev.ReadPages(4, 1, r.data()));
  EXPECT_EQ(w2, r);
}

TEST(VerifiedDeviceTest, ClearQuarantineRereadsTheDevice) {
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  VerifiedPageDevice dev(&chaos, 1);
  Bytes w = PatternBytes(12, kPayload);
  EOS_ASSERT_OK(dev.WritePages(5, 1, w.data()));
  // Keep a pristine copy of the physical page, rot the live one.
  Bytes good(kPhys);
  EOS_ASSERT_OK(chaos.inner()->ReadPages(5, 1, good.data()));
  EOS_ASSERT_OK(chaos.CorruptPage(5));
  Bytes r(kPayload);
  EXPECT_TRUE(dev.ReadPages(5, 1, r.data()).IsCorruption());
  ASSERT_TRUE(dev.IsQuarantined(5));
  // "Replace the disk": restore the sectors out of band, lift the flag.
  EOS_ASSERT_OK(chaos.inner()->WritePages(5, 1, good.data()));
  dev.ClearQuarantine(5);
  EXPECT_FALSE(dev.IsQuarantined(5));
  EOS_ASSERT_OK(dev.ReadPages(5, 1, r.data()));
  EXPECT_EQ(w, r);
}

TEST(VerifiedDeviceTest, TransientWriteFaultRetries) {
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  VerifiedPageDevice dev(&chaos, 1);
  uint64_t retries_before = CounterValue(obs::kIoWriteRetry);
  chaos.FailWritesAfter(0);  // transient
  Bytes w = PatternBytes(13, kPayload);
  EOS_ASSERT_OK(dev.WritePages(3, 1, w.data()));
  EXPECT_EQ(CounterValue(obs::kIoWriteRetry), retries_before + 1);
  Bytes r(kPayload);
  EOS_ASSERT_OK(dev.ReadPages(3, 1, r.data()));
  EXPECT_EQ(w, r);
}

TEST(VerifiedDeviceTest, TornWriteTrailingPagesFailClosed) {
  ChaosPageDevice chaos(std::make_unique<MemPageDevice>(kPhys, 8), 99);
  // No retries: the torn write must not be patched up by a second attempt —
  // this models power loss, where there is no second attempt.
  VerifiedPageDevice dev(&chaos, 1, RetryPolicy::None());
  Bytes w = PatternBytes(14, 4 * kPayload);
  chaos.TearWriteAfter(0, /*keep_pages=*/2);
  EXPECT_TRUE(dev.WritePages(0, 4, w.data()).IsIOError());

  // The two persisted pages verify; the torn-off tail fails closed with
  // the "missing trailer" diagnosis, never serving stale or zero bytes.
  Bytes r(kPayload);
  for (PageId p = 0; p < 2; ++p) {
    EOS_ASSERT_OK(dev.ReadPages(p, 1, r.data()));
    EXPECT_EQ(r, Bytes(w.begin() + p * kPayload,
                       w.begin() + (p + 1) * kPayload));
  }
  for (PageId p = 2; p < 4; ++p) {
    Status s = dev.ReadPages(p, 1, r.data());
    EXPECT_TRUE(s.IsCorruption()) << "page " << p << ": " << s.ToString();
    EXPECT_NE(s.message().find("missing integrity trailer"),
              std::string::npos)
        << s.ToString();
  }
}

// ---- write-ahead log CRC framing -------------------------------------------

class LogFramingTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/eos_integrity_log_test.wal";

  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override { std::remove(path_.c_str()); }

  // Writes `n` commit markers (the simplest record) and returns the file
  // size after close.
  uint64_t WriteCommits(int n) {
    auto log = LogManager::CreateFileBacked(path_);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    for (int i = 0; i < n; ++i) {
      EOS_EXPECT_OK((*log)->LogCommit(static_cast<uint64_t>(i + 1)));
    }
    log->reset();  // close fd
    struct stat st{};
    EXPECT_EQ(::stat(path_.c_str(), &st), 0);
    return static_cast<uint64_t>(st.st_size);
  }
};

TEST_F(LogFramingTest, RoundTripAllRecords) {
  WriteCommits(3);
  auto records = LogManager::ReadLogFile(path_);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].object_id, 1u);
  EXPECT_EQ((*records)[2].object_id, 3u);
}

TEST_F(LogFramingTest, TornTailIsEndOfLog) {
  uint64_t full = WriteCommits(3);
  ASSERT_EQ(full % 3, 0u) << "3 identical-size frames expected";
  uint64_t frame = full / 3;
  // A crash tore the last frame: every truncation point inside it yields
  // exactly the two intact records.
  for (uint64_t cut = 1; cut < frame; cut += 3) {
    WriteCommits(3);
    ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(full - cut)), 0);
    auto records = LogManager::ReadLogFile(path_);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    EXPECT_EQ(records->size(), 2u) << "cut " << cut << " bytes";
  }
}

TEST_F(LogFramingTest, RottedMiddleFrameEndsTheLogThere) {
  uint64_t full = WriteCommits(3);
  uint64_t frame = full / 3;
  // Flip one payload byte of the second frame: the log now ends after the
  // first record — the rot is indistinguishable from a torn tail by
  // design, and recovery proceeds from the intact prefix.
  FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(frame + 9), SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  auto records = LogManager::ReadLogFile(path_);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 1u);
}

TEST_F(LogFramingTest, ValidCrcButUnparseablePayloadIsCorruption) {
  // A frame whose CRC holds but whose payload is garbage was not written
  // by a torn append — it is a foreign or damaged file, a hard error.
  Bytes payload = {0xDE, 0xAD, 0xBE, 0xEF};
  Bytes frame(LogManager::kFrameHeaderBytes + payload.size());
  EncodeU32(frame.data(), static_cast<uint32_t>(payload.size()));
  EncodeU32(frame.data() + 4, Crc32c(payload.data(), payload.size()));
  std::memcpy(frame.data() + LogManager::kFrameHeaderBytes, payload.data(),
              payload.size());
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size(), f), frame.size());
  std::fclose(f);
  auto records = LogManager::ReadLogFile(path_);
  EXPECT_TRUE(records.status().IsCorruption())
      << records.status().ToString();
}

}  // namespace
}  // namespace eos
