// The eos::Database facade: object directory, persistence across reopen,
// integrity checking.

#include "eos/database.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

DatabaseOptions SmallOptions() {
  DatabaseOptions opt;
  opt.page_size = 256;
  opt.space_pages = 400;
  opt.pager_frames = 64;
  return opt;
}

TEST(DatabaseTest, CreateObjectsAndReadBack) {
  auto db = Database::CreateInMemory(SmallOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Bytes a = PatternBytes(1, 5000);
  Bytes b = PatternBytes(2, 123);
  auto ida = (*db)->CreateObjectFrom(a);
  auto idb = (*db)->CreateObjectFrom(b);
  ASSERT_TRUE(ida.ok() && idb.ok());
  EXPECT_NE(*ida, *idb);
  auto ra = (*db)->Read(*ida, 0, 5000);
  auto rb = (*db)->Read(*idb, 0, 123);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(*ra, a);
  EXPECT_EQ(*rb, b);
  auto ids = (*db)->ListObjects();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

TEST(DatabaseTest, UpdateOperations) {
  auto db = Database::CreateInMemory(SmallOptions());
  ASSERT_TRUE(db.ok());
  Bytes model = PatternBytes(3, 2000);
  auto id = (*db)->CreateObjectFrom(model);
  ASSERT_TRUE(id.ok());

  Bytes ins = PatternBytes(4, 300);
  EOS_ASSERT_OK((*db)->Insert(*id, 500, ins));
  model.insert(model.begin() + 500, ins.begin(), ins.end());

  EOS_ASSERT_OK((*db)->Delete(*id, 100, 250));
  model.erase(model.begin() + 100, model.begin() + 350);

  Bytes rep = PatternBytes(5, 64);
  EOS_ASSERT_OK((*db)->Replace(*id, 0, rep));
  std::copy(rep.begin(), rep.end(), model.begin());

  EOS_ASSERT_OK((*db)->Append(*id, PatternBytes(6, 90)));
  Bytes tail = PatternBytes(6, 90);
  model.insert(model.end(), tail.begin(), tail.end());

  auto size = (*db)->Size(*id);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, model.size());
  auto all = (*db)->Read(*id, 0, model.size());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

TEST(DatabaseTest, DropObjectFreesStorage) {
  auto db = Database::CreateInMemory(SmallOptions());
  ASSERT_TRUE(db.ok());
  auto free0 = (*db)->allocator()->TotalFreePages();
  ASSERT_TRUE(free0.ok());
  auto id = (*db)->CreateObjectFrom(PatternBytes(7, 30000));
  ASSERT_TRUE(id.ok());
  EOS_ASSERT_OK((*db)->DropObject(*id));
  EXPECT_TRUE((*db)->Read(*id, 0, 1).status().IsNotFound());
  auto ids = (*db)->ListObjects();
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

TEST(DatabaseTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/eos_db_test.vol";
  Bytes a = PatternBytes(8, 7000);
  Bytes b = PatternBytes(9, 450);
  uint64_t ida = 0, idb = 0;
  {
    auto db = Database::Create(path, SmallOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto r1 = (*db)->CreateObjectFrom(a);
    auto r2 = (*db)->CreateObjectFrom(b);
    ASSERT_TRUE(r1.ok() && r2.ok());
    ida = *r1;
    idb = *r2;
    EOS_ASSERT_OK((*db)->Flush());
  }
  {
    auto db = Database::Open(path, SmallOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto ra = (*db)->Read(ida, 0, a.size());
    auto rb = (*db)->Read(idb, 0, b.size());
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(*ra, a);
    EXPECT_EQ(*rb, b);
    // Update after reopen, reopen again.
    EOS_ASSERT_OK((*db)->Delete(ida, 0, 1000));
    EOS_ASSERT_OK((*db)->Flush());
  }
  {
    auto db = Database::Open(path, SmallOptions());
    ASSERT_TRUE(db.ok());
    auto ra = (*db)->Read(ida, 0, a.size());
    ASSERT_TRUE(ra.ok());
    EXPECT_EQ(*ra, Bytes(a.begin() + 1000, a.end()));
    EOS_EXPECT_OK((*db)->CheckIntegrity());
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, ManyObjects) {
  auto db = Database::CreateInMemory(SmallOptions());
  ASSERT_TRUE(db.ok());
  std::vector<uint64_t> ids;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 10; ++i) {
    payloads.push_back(PatternBytes(100 + i, 500 + 333 * i));
    auto id = (*db)->CreateObjectFrom(payloads.back());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  for (int i = 0; i < 10; ++i) {
    auto r = (*db)->Read(ids[i], 0, payloads[i].size());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, payloads[i]);
  }
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

TEST(DatabaseTest, OpenRejectsGarbageVolume) {
  std::string path = ::testing::TempDir() + "/eos_db_garbage.vol";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    Bytes junk(1024, 0x5A);
    fwrite(junk.data(), 1, junk.size(), f);
    fclose(f);
  }
  DatabaseOptions opt = SmallOptions();
  auto db = Database::Open(path, opt);
  EXPECT_FALSE(db.ok());
  std::remove(path.c_str());
}

TEST(DatabaseTest, PerObjectThresholdAndReorganize) {
  DatabaseOptions opt = SmallOptions();
  opt.lob.threshold_pages = 1;
  auto db = Database::CreateInMemory(opt);
  ASSERT_TRUE(db.ok());
  Bytes model = PatternBytes(20, 60000);
  auto id = (*db)->CreateObjectFrom(model);
  ASSERT_TRUE(id.ok());
  Random rng(21);
  for (int i = 0; i < 120; ++i) {
    uint64_t off = rng.Uniform(model.size() - 200);
    if (rng.OneIn(2)) {
      Bytes ins = PatternBytes(500 + i, rng.Range(1, 150));
      EOS_ASSERT_OK((*db)->Insert(*id, off, ins));
      model.insert(model.begin() + off, ins.begin(), ins.end());
    } else {
      uint64_t n = rng.Range(1, 150);
      EOS_ASSERT_OK((*db)->Delete(*id, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
  }
  auto frag = (*db)->ObjectStats(*id);
  ASSERT_TRUE(frag.ok());
  ASSERT_GT(frag->num_segments, 10u);

  (*db)->SetObjectThreshold(*id, 16);
  EOS_ASSERT_OK((*db)->ReorganizeObject(*id));
  auto tidy = (*db)->ObjectStats(*id);
  ASSERT_TRUE(tidy.ok());
  EXPECT_LT(tidy->num_segments, 4u);
  EXPECT_GT(tidy->leaf_utilization, 0.99);
  auto all = (*db)->Read(*id, 0, model.size());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

}  // namespace
}  // namespace eos
