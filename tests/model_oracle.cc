#include "tests/model_oracle.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace eos {
namespace testing_util {

namespace {

// Same position-encoding pattern as tests/test_util.h PatternBytes, kept
// here so the oracle library does not depend on gtest.
Bytes Pattern(uint64_t seed, size_t n) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>((seed * 131 + i * 7 + (i >> 8)) & 0xFF);
  }
  return b;
}

// Deterministic across standard libraries, unlike
// std::uniform_int_distribution; the modulo bias is irrelevant here.
uint64_t Draw(std::mt19937* rng, uint64_t n) {
  return n == 0 ? 0 : (uint64_t{(*rng)()} << 32 | (*rng)()) % n;
}

}  // namespace

Bytes PayloadFor(const LobOp& op) {
  return Pattern(op.payload_seed, static_cast<size_t>(op.len));
}

void ApplyToModel(const LobOp& op, ModelLob* model) {
  switch (op.kind) {
    case LobOp::kAppend:
      model->Append(PayloadFor(op));
      return;
    case LobOp::kInsert:
      model->Insert(op.offset, PayloadFor(op));
      return;
    case LobOp::kDelete:
      model->Delete(op.offset, op.len);
      return;
    case LobOp::kReplace:
      model->Replace(op.offset, PayloadFor(op));
      return;
    case LobOp::kTruncate:
      model->Truncate(op.len);
      return;
    case LobOp::kReorganize:
      return;  // content-neutral
    case LobOp::kDestroy:
      model->Destroy();
      return;
  }
}

Status ApplyToLob(const LobOp& op, LobManager* lob, LobDescriptor* d) {
  switch (op.kind) {
    case LobOp::kAppend:
      return lob->Append(d, PayloadFor(op));
    case LobOp::kInsert:
      return lob->Insert(d, op.offset, PayloadFor(op));
    case LobOp::kDelete:
      return lob->Delete(d, op.offset, op.len);
    case LobOp::kReplace:
      return lob->Replace(d, op.offset, PayloadFor(op));
    case LobOp::kTruncate:
      return lob->Truncate(d, op.len);
    case LobOp::kReorganize:
      return lob->Reorganize(d);
    case LobOp::kDestroy:
      return lob->Destroy(d);
  }
  return Status::InvalidArgument("unknown op kind");
}

LobOp RandomOp(std::mt19937* rng, const ModelLob& model, uint32_t page_size,
               uint64_t payload_seed, bool logged_only) {
  LobOp op;
  op.payload_seed = payload_seed;
  uint64_t size = model.size();
  uint64_t roll = Draw(rng, logged_only ? 10 : 12);
  if (size == 0) roll = 0;  // only append makes sense on an empty object
  if (roll <= 2) {
    op.kind = LobOp::kAppend;
    op.len = 1 + Draw(rng, uint64_t{page_size} * 3);
  } else if (roll <= 4) {
    op.kind = LobOp::kInsert;
    op.offset = Draw(rng, size + 1);
    op.len = 1 + Draw(rng, uint64_t{page_size} * 2);
  } else if (roll <= 7) {
    op.kind = LobOp::kDelete;
    op.offset = Draw(rng, size);
    op.len = std::min<uint64_t>(1 + Draw(rng, std::max<uint64_t>(1, size / 4)),
                                size - op.offset);
  } else if (roll <= 9) {
    op.kind = LobOp::kReplace;
    op.offset = Draw(rng, size);
    op.len = 1 + Draw(rng, std::max<uint64_t>(1, size - op.offset));
  } else if (roll == 10) {
    op.kind = LobOp::kTruncate;
    op.len = Draw(rng, size + 1);
  } else {
    op.kind = LobOp::kReorganize;
  }
  return op;
}

std::string FormatOpTrace(const std::vector<LobOp>& trace) {
  static const char* kNames[] = {"append",   "insert",     "delete", "replace",
                                 "truncate", "reorganize", "destroy"};
  std::ostringstream out;
  for (size_t i = 0; i < trace.size(); ++i) {
    const LobOp& op = trace[i];
    out << "  [" << i << "] " << kNames[op.kind] << " offset=" << op.offset
        << " len=" << op.len << " payload_seed=" << op.payload_seed << "\n";
  }
  return out.str();
}

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("EOS_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 0);
}

}  // namespace testing_util
}  // namespace eos
