// Correctness of the parallel scatter-gather I/O engine: batch run
// transfers on raw devices, executor-fanned multi-extent LOB reads,
// sequential-scan read-ahead — each cross-checked against the serial path
// and the in-memory oracle, including under injected faults. Labeled tsan:
// everything here also runs under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "io/buffer_pool.h"
#include "io/chaos_device.h"
#include "io/io_executor.h"
#include "io/page_device.h"
#include "io/pager.h"
#include "io/verified_device.h"
#include "lob/walker.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::ModelLob;
using testing_util::PatternBytes;
using testing_util::Stack;

// ----- batch run API on raw devices ------------------------------------------

TEST(PageRunsTest, WriteRunsThenReadRunsRoundTrip) {
  MemPageDevice dev(256, 64);
  Bytes a = PatternBytes(1, 256 * 3);
  Bytes b = PatternBytes(2, 256 * 2);
  Bytes c = PatternBytes(3, 256 * 1);
  // Two file-adjacent runs and one disjoint run.
  ConstPageRun writes[] = {
      {4, 3, a.data()}, {7, 2, b.data()}, {20, 1, c.data()}};
  EOS_ASSERT_OK(dev.WriteRuns(writes, 3));

  Bytes ra(256 * 3), rb(256 * 2), rc(256);
  PageRun reads[] = {{4, 3, ra.data()}, {7, 2, rb.data()}, {20, 1, rc.data()}};
  EOS_ASSERT_OK(dev.ReadRuns(reads, 3));
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
  EXPECT_EQ(rc, c);
}

TEST(PageRunsTest, BatchAccountingMatchesSerialCalls) {
  // One run charges exactly like one ReadPages/WritePages call, so the
  // cost-model arithmetic is batch-invariant.
  MemPageDevice dev(128, 64);
  Bytes buf(128 * 4);
  ConstPageRun writes[] = {{0, 2, buf.data()}, {2, 2, buf.data()},
                          {10, 2, buf.data()}};
  EOS_ASSERT_OK(dev.WriteRuns(writes, 3));
  IoStats s = dev.stats();
  EXPECT_EQ(s.write_calls, 3u);
  EXPECT_EQ(s.pages_written, 6u);
  // Runs 1 and 2 are head-sequential; run 3 seeks. Plus the initial seek.
  EXPECT_EQ(s.seeks, 2u);
}

TEST(PageRunsTest, RangeErrorsRejectWholeBatch) {
  MemPageDevice dev(128, 16);
  Bytes buf(128 * 2);
  PageRun reads[] = {{0, 2, buf.data()}, {15, 2, buf.data()}};  // 15+2 > 16
  EXPECT_TRUE(dev.ReadRuns(reads, 2).IsOutOfRange());
}

TEST(PageRunsTest, FileDeviceCoalescesAdjacentRuns) {
  std::string path = ::testing::TempDir() + "/eos_runs_test.vol";
  auto dev = FilePageDevice::Create(path, 512, 64);
  ASSERT_TRUE(dev.ok()) << dev.status().ToString();

  Bytes img = PatternBytes(9, 512 * 8);
  // Four adjacent single-page runs + one distant: the vectored writer
  // groups the first four into one pwritev.
  ConstPageRun writes[] = {{8, 1, img.data()},
                          {9, 1, img.data() + 512},
                          {10, 1, img.data() + 1024},
                          {11, 1, img.data() + 1536},
                          {40, 4, img.data() + 2048}};
  EOS_ASSERT_OK((*dev)->WriteRuns(writes, 5));

  Bytes back(512 * 8);
  PageRun reads[] = {{8, 4, back.data()}, {40, 4, back.data() + 2048}};
  EOS_ASSERT_OK((*dev)->ReadRuns(reads, 2));
  EXPECT_EQ(back, img);
}

TEST(PageRunsTest, VerifiedDeviceSealsBatchedWrites) {
  auto inner = std::make_unique<MemPageDevice>(256, 32);
  MemPageDevice* raw = inner.get();
  VerifiedPageDevice dev(std::move(inner), /*epoch=*/1);
  uint32_t payload = dev.page_size();

  Bytes a = PatternBytes(4, size_t{payload} * 2);
  Bytes b = PatternBytes(5, payload);
  ConstPageRun writes[] = {{2, 2, a.data()}, {4, 1, b.data()}};
  EOS_ASSERT_OK(dev.WriteRuns(writes, 2));

  // Every page must verify individually — the batch path sealed them all.
  Bytes phys(raw->page_size());
  for (PageId p = 2; p <= 4; ++p) {
    EOS_ASSERT_OK(raw->ReadPages(p, 1, phys.data()));
    EOS_ASSERT_OK(VerifiedPageDevice::VerifyPage(phys.data(),
                                                 raw->page_size(), p, 1));
  }
  Bytes ra(size_t{payload} * 2), rb(payload);
  PageRun reads[] = {{2, 2, ra.data()}, {4, 1, rb.data()}};
  EOS_ASSERT_OK(dev.ReadRuns(reads, 2));
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
}

TEST(PageRunsTest, PagerFlushAllBatchesSortedRuns) {
  MemPageDevice dev(256, 64);
  Pager pager(&dev, 32);
  // Dirty pages in scrambled order; FlushAll must sort and write them all.
  std::vector<PageId> ids = {30, 5, 6, 7, 50, 31, 4};
  for (PageId id : ids) {
    auto h = pager.Zeroed(id);
    ASSERT_TRUE(h.ok());
    Bytes content = PatternBytes(id, 256);
    std::memcpy(h->data(), content.data(), 256);
    h->MarkDirty();
  }
  EOS_ASSERT_OK(pager.FlushAll());
  for (PageId id : ids) {
    Bytes got(256);
    EOS_ASSERT_OK(dev.ReadPages(id, 1, got.data()));
    EXPECT_EQ(got, PatternBytes(id, 256)) << "page " << id;
  }
  // A second flush with nothing dirty writes nothing.
  IoStats before = dev.stats();
  EOS_ASSERT_OK(pager.FlushAll());
  EXPECT_EQ(dev.stats().write_calls, before.write_calls);
}

// ----- parallel multi-extent LOB reads ---------------------------------------

// Builds a deliberately fragmented object (many small segments) whose
// content the model mirrors.
void BuildFragmented(Stack* s, ModelLob* model, LobDescriptor* d,
                     int segments, uint32_t page_size) {
  for (int i = 0; i < segments; ++i) {
    Bytes chunk = PatternBytes(100 + i, page_size * 2 + (i % 3) * 7 + 1);
    EOS_ASSERT_OK(s->lob->Append(d, ByteView(chunk)));
    model->Append(ByteView(chunk));
  }
}

TEST(ParallelReadTest, MatchesModelAndSerialRead) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 4;  // force many extents
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 24, kPageSize);

  Bytes serial;
  EOS_ASSERT_OK(s.lob->Read(d, 0, model.size(), &serial));
  ASSERT_TRUE(model.Matches(ByteView(serial)));

  IoExecutor exec(3);
  s.lob->set_io_executor(&exec);
  Bytes parallel;
  EOS_ASSERT_OK(s.lob->Read(d, 0, model.size(), &parallel));
  EXPECT_EQ(parallel, serial);

  // Sub-ranges with odd alignment, spanning several extents.
  std::mt19937 rng(static_cast<uint32_t>(testing_util::TestSeed(77)));
  for (int i = 0; i < 50; ++i) {
    uint64_t off = rng() % model.size();
    uint64_t len = rng() % (model.size() - off + 1);
    Bytes got;
    EOS_ASSERT_OK(s.lob->Read(d, off, len, &got));
    EXPECT_TRUE(ByteView(got) ==
                ByteView(model.bytes()).Slice(off, std::min<uint64_t>(
                                                       len, model.size() - off)))
        << "off=" << off << " len=" << len;
  }
}

TEST(ParallelReadTest, ParallelReadCountsBatchedRuns) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 2;
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 16, kPageSize);

  IoExecutor exec(2);
  s.lob->set_io_executor(&exec);
  IoStats before = s.device->stats();
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(d, 0, model.size(), &out));
  ASSERT_TRUE(model.Matches(ByteView(out)));
  // Same transfer volume as serial: every leaf page exactly once.
  IoStats after = s.device->stats();
  EXPECT_GE(after.pages_read - before.pages_read, 16u);
}

TEST(ParallelReadTest, FaultsYieldTypedErrorsNeverWrongBytes) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 2;

  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Stack s = Stack::Make(kPageSize, 0, cfg);
    ModelLob model;
    LobDescriptor d;
    for (int i = 0; i < 12; ++i) {
      Bytes chunk = PatternBytes(7 * seed + i, kPageSize * 2 + 3);
      EOS_ASSERT_OK(s.lob->Append(&d, ByteView(chunk)));
      model.Append(ByteView(chunk));
    }
    // Re-stack with a chaos wrapper over the same memory image: the
    // parallel read path now sees injected faults on its leaf transfers.
    IoExecutor exec(3);
    ChaosPageDevice chaos_dev(s.device.get(), seed);
    Pager chaos_pager(&chaos_dev, 64);
    LobManager plob(&chaos_pager, s.allocator.get(), cfg);
    plob.set_io_executor(&exec);

    chaos_dev.FailReadsAfter(static_cast<int>(seed % 7), /*permanent=*/false);
    Bytes out;
    Status st = plob.Read(d, 0, model.size(), &out);
    if (st.ok()) {
      EXPECT_TRUE(model.Matches(ByteView(out))) << "seed=" << seed;
    } else {
      EXPECT_TRUE(st.IsIOError() || st.IsCorruption())
          << "seed=" << seed << " got " << st.ToString();
    }
    // Healed, the same parallel read must succeed with the right bytes.
    chaos_dev.Heal();
    Bytes again;
    EOS_ASSERT_OK(plob.Read(d, 0, model.size(), &again));
    EXPECT_TRUE(model.Matches(ByteView(again))) << "seed=" << seed;
  }
}

TEST(ParallelReadTest, ConcurrentReadersShareOneExecutor) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 4;
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 20, kPageSize);

  IoExecutor exec(4);
  s.lob->set_io_executor(&exec);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      for (int i = 0; i < 25; ++i) {
        uint64_t off = rng() % model.size();
        uint64_t len = 1 + rng() % (model.size() - off);
        Bytes got;
        Status st = s.lob->Read(d, off, len, &got);
        if (!st.ok() ||
            !(ByteView(got) == ByteView(model.bytes()).Slice(off, len))) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// ----- sequential-scan read-ahead --------------------------------------------

TEST(ReadAheadTest, StreamedScanMatchesModel) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 4;
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 24, kPageSize);

  IoExecutor exec(2);
  obs::Counter* hits =
      obs::MetricsRegistry::Default().counter(obs::kIoPrefetchHit);
  uint64_t hits_before = hits->value();

  LobReader reader(s.lob.get(), d);
  reader.EnableReadAhead(&exec);
  std::string streamed;
  Bytes buf(kPageSize * 3 + 11);  // odd chunk size vs segment boundaries
  while (!reader.AtEnd()) {
    auto got = reader.Read(buf.size(), buf.data());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (*got == 0) break;
    streamed.append(reinterpret_cast<const char*>(buf.data()), *got);
  }
  EXPECT_EQ(streamed, model.bytes());
  EXPECT_GT(hits->value(), hits_before);  // the scan actually prefetched
}

TEST(ReadAheadTest, SeekDiscardsPrefetchAndStaysCorrect) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 2;
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 16, kPageSize);

  IoExecutor exec(2);
  LobReader reader(s.lob.get(), d);
  reader.EnableReadAhead(&exec);
  std::mt19937 rng(static_cast<uint32_t>(testing_util::TestSeed(33)));
  Bytes buf(kPageSize * 2);
  for (int i = 0; i < 60; ++i) {
    uint64_t off = rng() % model.size();
    EOS_ASSERT_OK(reader.Seek(off));
    auto got = reader.Read(buf.size(), buf.data());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    uint64_t want = std::min<uint64_t>(buf.size(), model.size() - off);
    ASSERT_EQ(*got, want) << "off=" << off;
    EXPECT_TRUE(ByteView(buf.data(), *got) ==
                ByteView(model.bytes()).Slice(off, *got))
        << "off=" << off;
  }
}

TEST(ReadAheadTest, PrefetchFailureFallsBackToDirectRead) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 2;
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 10, kPageSize);

  // Stack a chaos device over the same memory for the scan, failing one
  // read transiently per seed: a prefetch that dies must fall back to the
  // direct path, and content must stay exact.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ChaosPageDevice chaos_dev(s.device.get(), seed);
    Pager chaos_pager(&chaos_dev, 64);
    LobManager plob(&chaos_pager, s.allocator.get(), cfg);
    IoExecutor exec(2);
    LobReader reader(&plob, d);
    reader.EnableReadAhead(&exec);
    chaos_dev.FailReadsAfter(static_cast<int>(seed), /*permanent=*/false);

    std::string streamed;
    Bytes buf(kPageSize + 13);
    bool failed = false;
    while (!reader.AtEnd()) {
      auto got = reader.Read(buf.size(), buf.data());
      if (!got.ok()) {
        // A transient fault may surface through the direct path; that is
        // a typed error, not wrong bytes. Re-read from scratch healed.
        EXPECT_TRUE(got.status().IsIOError() || got.status().IsCorruption());
        failed = true;
        break;
      }
      if (*got == 0) break;
      streamed.append(reinterpret_cast<const char*>(buf.data()), *got);
    }
    if (!failed) {
      EXPECT_EQ(streamed, model.bytes()) << "seed=" << seed;
    }
    chaos_dev.Heal();
    LobReader healed(&plob, d);
    healed.EnableReadAhead(&exec);
    std::string full;
    while (!healed.AtEnd()) {
      auto got = healed.Read(buf.size(), buf.data());
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (*got == 0) break;
      full.append(reinterpret_cast<const char*>(buf.data()), *got);
    }
    EXPECT_EQ(full, model.bytes()) << "seed=" << seed;
  }
}

// ----- zero-allocation steady state ------------------------------------------

TEST(BufferPoolSteadyStateTest, LeafReadsRecycleBuffers) {
  constexpr uint32_t kPageSize = 256;
  LobConfig cfg;
  cfg.max_segment_pages = 4;
  Stack s = Stack::Make(kPageSize, 0, cfg);
  ModelLob model;
  LobDescriptor d;
  BuildFragmented(&s, &model, &d, 12, kPageSize);

  obs::Counter* reused =
      obs::MetricsRegistry::Default().counter(obs::kPoolBuffersReused);
  obs::Counter* allocated =
      obs::MetricsRegistry::Default().counter(obs::kPoolBuffersAllocated);

  // Warmup: populate the pool's free lists for the sizes this workload
  // touches.
  Bytes out;
  for (int i = 0; i < 3; ++i) {
    EOS_ASSERT_OK(s.lob->Read(d, 1, model.size() - 2, &out));
  }
  uint64_t alloc_before = allocated->value();
  uint64_t reuse_before = reused->value();
  for (int i = 0; i < 20; ++i) {
    EOS_ASSERT_OK(s.lob->Read(d, 1, model.size() - 2, &out));
  }
  EXPECT_EQ(allocated->value(), alloc_before)
      << "steady-state reads must not allocate fresh staging buffers";
  EXPECT_GT(reused->value(), reuse_before);
}

}  // namespace
}  // namespace eos
