// End-to-end workloads across the whole stack at realistic page sizes:
// multi-megabyte objects, volume growth over multiple buddy spaces, mixed
// editing sessions with periodic full validation.

#include <gtest/gtest.h>

#include "eos/database.h"
#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

TEST(IntegrationTest, MultiMegabyteObject4KPages) {
  Stack s = Stack::Make(4096, 2048);  // 8 MB spaces
  Bytes data = PatternBytes(1, 10 * 1024 * 1024 + 12345);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), data.size());
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
  // The object spans multiple buddy spaces.
  EXPECT_GE(s.allocator->num_spaces(), 2u);

  // Edit the middle: cut a megabyte, splice in new content.
  Bytes ins = PatternBytes(2, 512 * 1024);
  EOS_ASSERT_OK(s.lob->Delete(&*d, 1 << 20, 1 << 20));  // cut 1 MB
  EOS_ASSERT_OK(s.lob->Insert(&*d, 1 << 20, ins));
  Bytes model = data;
  model.erase(model.begin() + (1 << 20), model.begin() + (2 << 20));
  model.insert(model.begin() + (1 << 20), ins.begin(), ins.end());
  auto all2 = s.lob->ReadAll(*d);
  ASSERT_TRUE(all2.ok());
  EXPECT_EQ(*all2, model);
  EOS_EXPECT_OK(s.lob->CheckInvariants(*d));
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
  auto free_pages = s.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.allocator->num_spaces()} * 2048u);
}

TEST(IntegrationTest, AppendSessionsInterleavedWithEdits) {
  Stack s = Stack::Make(1024);
  Bytes model;
  LobDescriptor d = s.lob->CreateEmpty();
  Random rng(404);
  for (int session = 0; session < 5; ++session) {
    {
      LobAppender app(s.lob.get(), &d);
      for (int i = 0; i < 30; ++i) {
        Bytes chunk = PatternBytes(session * 100 + i, rng.Range(1, 3000));
        EOS_ASSERT_OK(app.Append(chunk));
        model.insert(model.end(), chunk.begin(), chunk.end());
      }
      EOS_ASSERT_OK(app.Finish());
    }
    for (int i = 0; i < 10 && !model.empty(); ++i) {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 2000),
                                      model.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    }
    ASSERT_EQ(d.size(), model.size());
    auto all = s.lob->ReadAll(d);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(*all, model) << "session " << session;
    EOS_ASSERT_OK(s.lob->CheckInvariants(d));
    EOS_ASSERT_OK(s.allocator->CheckInvariants());
  }
}

TEST(IntegrationTest, DatabaseHoldsManyEditedObjects) {
  DatabaseOptions opt;
  opt.page_size = 512;
  opt.space_pages = 1000;
  auto db = Database::CreateInMemory(opt);
  ASSERT_TRUE(db.ok());
  Random rng(808);
  std::vector<uint64_t> ids;
  std::vector<Bytes> models;
  for (int i = 0; i < 6; ++i) {
    models.push_back(PatternBytes(i, 20000 + 1000 * i));
    auto id = (*db)->CreateObjectFrom(models.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int step = 0; step < 100; ++step) {
    size_t k = rng.Uniform(ids.size());
    Bytes& m = models[k];
    if (m.empty() || rng.OneIn(2)) {
      Bytes ins = PatternBytes(1000 + step, rng.Range(1, 1500));
      uint64_t off = rng.Uniform(m.size() + 1);
      EOS_ASSERT_OK((*db)->Insert(ids[k], off, ins));
      m.insert(m.begin() + off, ins.begin(), ins.end());
    } else {
      uint64_t off = rng.Uniform(m.size());
      uint64_t n = std::min<uint64_t>(rng.Range(1, 1500), m.size() - off);
      EOS_ASSERT_OK((*db)->Delete(ids[k], off, n));
      m.erase(m.begin() + off, m.begin() + off + n);
    }
  }
  for (size_t k = 0; k < ids.size(); ++k) {
    auto r = (*db)->Read(ids[k], 0, models[k].size() + 10);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, models[k]) << "object " << k;
  }
  EOS_EXPECT_OK((*db)->CheckIntegrity());
}

TEST(IntegrationTest, SequentialScanIsSeekEfficient) {
  // The headline property: a freshly created object reads at near transfer
  // rate. 4 MB at 4 KB pages = 1024 transfers and only a handful of seeks.
  Stack s = Stack::Make(4096, 2048);
  Bytes data = PatternBytes(3, 4 * 1024 * 1024);
  auto d = s.lob->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.pager->EvictAll());
  s.device->ForgetHeadPosition();
  s.device->ResetStats();
  auto all = s.lob->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  const IoStats& io = s.device->stats();
  EXPECT_GE(io.pages_read, 1024u);
  EXPECT_LE(io.pages_read, 1026u) << io.ToString();
  EXPECT_LE(io.seeks, 8u) << "sequential scan must be near transfer rate";
}

TEST(IntegrationTest, ThresholdZeroAndHugeClamped) {
  LobConfig cfg;
  cfg.threshold_pages = 0;  // clamped to 1
  Stack s = Stack::Make(100, 0, cfg);
  EXPECT_EQ(s.lob->config().threshold_pages, 1u);
  LobConfig cfg2;
  cfg2.threshold_pages = 1 << 30;  // clamped to the max segment size
  Stack s2 = Stack::Make(100, 0, cfg2);
  EXPECT_EQ(s2.lob->config().threshold_pages, s2.lob->max_segment_pages());
}

}  // namespace
}  // namespace eos
