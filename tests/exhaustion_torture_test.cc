// Resource-exhaustion torture (DESIGN.md "Degraded operation under
// resource exhaustion"): every allocation site of a mixed workload is hit
// with an injected NoSpace, and each operation must either complete or
// fail with the typed error while leaving the object byte-exact at its
// pre-op state and the allocation maps leak-free. Also covers the
// emergency reserve on a volume that cannot grow (mutations refused,
// reads/drops/checkpoint still succeed), operation deadlines against
// injected device latency, and cooperative cancellation.
//
// Failures print the op trace and the seed; re-run with EOS_TEST_SEED=<n>.

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>
#include <vector>

#include "buddy/segment_allocator.h"
#include "common/deadline.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "lob/lob_manager.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"

namespace eos {
namespace {

// Failed assertions dump the flight-recorder journal (test_util.h).
const bool g_postmortem_listener = testing_util::InstallPostMortemOnFailure();

using testing_util::ApplyToLob;
using testing_util::ApplyToModel;
using testing_util::FormatOpTrace;
using testing_util::LobOp;
using testing_util::ModelLob;
using testing_util::PatternBytes;
using testing_util::RandomOp;
using testing_util::TestSeed;

// In-memory LobManager stack, optionally chaos-wrapped, mirroring the
// fault_injection_test harness.
struct Stack {
  std::unique_ptr<ChaosPageDevice> device;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<SegmentAllocator> allocator;
  std::unique_ptr<LobManager> lob;

  explicit Stack(uint32_t page_size, uint64_t seed = 0) {
    auto geo = BuddyGeometry::Make(page_size);
    EXPECT_TRUE(geo.ok());
    device = std::make_unique<ChaosPageDevice>(
        std::make_unique<MemPageDevice>(page_size, 1 + geo->space_pages + 1),
        seed);
    pager = std::make_unique<Pager>(device.get(), 64);
    SegmentAllocator::Options opt;
    auto a = SegmentAllocator::Format(pager.get(), *geo, 1, opt);
    EXPECT_TRUE(a.ok());
    allocator = std::move(a).value();
    lob = std::make_unique<LobManager>(pager.get(), allocator.get(),
                                       LobConfig{});
  }

  uint64_t FreePages() {
    auto n = allocator->TotalFreePages();
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    return n.ok() ? *n : 0;
  }
};

// The scripted mixed workload both enumeration tests replay: concrete
// coordinates drawn once from `seed`, so every injection run sees the
// identical operation sequence.
std::vector<LobOp> ScriptWorkload(uint64_t seed, uint32_t page_size,
                                  int ops) {
  std::mt19937 rng(static_cast<uint32_t>(seed));
  ModelLob model;
  std::vector<LobOp> script;
  for (int i = 0; i < ops; ++i) {
    LobOp op = RandomOp(&rng, model, page_size, /*payload_seed=*/seed + i);
    script.push_back(op);
    ApplyToModel(op, &model);
  }
  return script;
}

// Replays `script` with an injected allocation fault armed `fault_at`
// calls in (-1 = none). Each op must either succeed or fail with typed
// NoSpace leaving the object byte-exact at its pre-op state; the fault is
// one-shot, so the retry must then succeed. Returns via gtest assertions.
void ReplayWithInjection(const std::vector<LobOp>& script, uint32_t page_size,
                         int64_t fault_at, uint64_t* allocs_used) {
  Stack s(page_size);
  uint64_t baseline = s.FreePages();
  ModelLob model;
  LobDescriptor d = s.lob->CreateEmpty();
  s.allocator->set_alloc_fault_countdown(fault_at);
  bool injected = false;
  for (size_t i = 0; i < script.size(); ++i) {
    const LobOp& op = script[i];
    Status st = ApplyToLob(op, s.lob.get(), &d);
    if (!st.ok()) {
      ASSERT_TRUE(st.IsNoSpace())
          << "op " << i << " failed with an untyped error: " << st.ToString()
          << "\n" << FormatOpTrace(script);
      injected = true;
      // The unwound object must read back byte-exact at its pre-op state,
      // and both the tree and the buddy maps must still be sound.
      auto back = s.lob->ReadAll(d);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_TRUE(model.Matches(*back))
          << "op " << i << " left the object altered after NoSpace\n"
          << FormatOpTrace(script);
      EOS_ASSERT_OK(s.lob->CheckInvariants(d));
      EOS_ASSERT_OK(s.allocator->CheckInvariants());
      // The injected fault is one-shot: the retry must complete.
      st = ApplyToLob(op, s.lob.get(), &d);
      ASSERT_TRUE(st.ok())
          << "retry of op " << i << " failed: " << st.ToString();
    }
    ApplyToModel(op, &model);
  }
  if (fault_at >= 0) {
    ASSERT_TRUE(injected) << "fault " << fault_at << " never fired";
  }
  if (allocs_used != nullptr) *allocs_used = s.allocator->alloc_calls();
  auto back = s.lob->ReadAll(d);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(model.Matches(*back)) << FormatOpTrace(script);
  // Zero leaks: destroying the only object returns the volume to its
  // formatted free-page count exactly.
  EOS_ASSERT_OK(s.lob->Destroy(&d));
  EXPECT_EQ(s.FreePages(), baseline) << FormatOpTrace(script);
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

// Tentpole acceptance: inject NoSpace at *every* allocation site of the
// workload (countdown k = 0..A-1 where A is the fault-free total) and
// require success-or-typed-NoSpace with byte-exact unwind and zero leaked
// pages each time.
TEST(ExhaustionTortureTest, EveryAllocationSiteUnwinds) {
  const uint32_t kPageSize = 256;
  const uint64_t seed = TestSeed(0xE05D15C);
  std::vector<LobOp> script = ScriptWorkload(seed, kPageSize, 10);
  uint64_t total_allocs = 0;
  ReplayWithInjection(script, kPageSize, /*fault_at=*/-1, &total_allocs);
  if (HasFatalFailure()) return;
  ASSERT_GT(total_allocs, 0u);
  for (uint64_t k = 0; k < total_allocs; ++k) {
    ReplayWithInjection(script, kPageSize, static_cast<int64_t>(k), nullptr);
    if (HasFatalFailure()) {
      ADD_FAILURE() << "injection at allocation " << k << " of "
                    << total_allocs << " (EOS_TEST_SEED=" << seed << ")";
      return;
    }
  }
}

// Longer randomized soak: a fault is re-armed at a random countdown before
// every op, so injections land mid-operation throughout; the differential
// model advances only on success plus the mandatory one-shot retry.
TEST(ExhaustionTortureTest, RandomizedInjectionSoak) {
  const uint32_t kPageSize = 256;
  const uint64_t seed = TestSeed(0xBADA110C);
  std::mt19937 rng(static_cast<uint32_t>(seed) ^ 0x5eed);
  std::vector<LobOp> script = ScriptWorkload(seed, kPageSize, 40);
  Stack s(kPageSize);
  uint64_t baseline = s.FreePages();
  ModelLob model;
  LobDescriptor d = s.lob->CreateEmpty();
  for (size_t i = 0; i < script.size(); ++i) {
    s.allocator->set_alloc_fault_countdown(
        static_cast<int64_t>(rng() % 32));
    const LobOp& op = script[i];
    Status st = ApplyToLob(op, s.lob.get(), &d);
    if (!st.ok()) {
      ASSERT_TRUE(st.IsNoSpace())
          << "op " << i << ": " << st.ToString() << " (EOS_TEST_SEED="
          << seed << ")\n" << FormatOpTrace(script);
      auto back = s.lob->ReadAll(d);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_TRUE(model.Matches(*back))
          << "op " << i << " altered state (EOS_TEST_SEED=" << seed << ")";
      s.allocator->set_alloc_fault_countdown(-1);
      EOS_ASSERT_OK(ApplyToLob(op, s.lob.get(), &d));
    }
    ApplyToModel(op, &model);
  }
  s.allocator->set_alloc_fault_countdown(-1);
  auto back = s.lob->ReadAll(d);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(model.Matches(*back)) << "EOS_TEST_SEED=" << seed;
  EOS_ASSERT_OK(s.lob->CheckInvariants(d));
  EOS_ASSERT_OK(s.lob->Destroy(&d));
  EXPECT_EQ(s.FreePages(), baseline) << "EOS_TEST_SEED=" << seed;
  EOS_ASSERT_OK(s.allocator->CheckInvariants());
}

// A failed streaming Append must restore the session (and the tree) so the
// appender keeps working; the bytes of the failed call simply never appear.
TEST(ExhaustionTortureTest, AppenderSessionUnwindsMidStream) {
  const uint32_t kPageSize = 256;
  Stack s(kPageSize);
  uint64_t baseline = s.FreePages();
  LobDescriptor d = s.lob->CreateEmpty();
  Bytes expect;
  {
    LobAppender app(s.lob.get(), &d);
    int failures = 0;
    for (int i = 0; i < 24; ++i) {
      Bytes chunk = PatternBytes(100 + i, 700 + 37 * i);
      if (i % 5 == 3) s.allocator->set_alloc_fault_countdown(0);
      Status st = app.Append(chunk);
      if (st.ok()) {
        expect.insert(expect.end(), chunk.begin(), chunk.end());
      } else {
        ASSERT_TRUE(st.IsNoSpace()) << st.ToString();
        ++failures;
        // The session survives: the very next append succeeds (the
        // injected fault is one-shot) and lands where the failed one
        // would have.
      }
      s.allocator->set_alloc_fault_countdown(-1);
    }
    EXPECT_GT(failures, 0);
    EOS_ASSERT_OK(app.Finish());
  }
  EXPECT_EQ(d.size(), expect.size());
  auto back = s.lob->ReadAll(d);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, expect);
  EOS_ASSERT_OK(s.lob->CheckInvariants(d));
  EOS_ASSERT_OK(s.lob->Destroy(&d));
  EXPECT_EQ(s.FreePages(), baseline);
}

// Emergency-reserve acceptance on a volume that cannot grow: once free
// pages hit the floor, new mutations are refused with typed NoSpace while
// reads, drops, directory saves and Checkpoint() keep completing from the
// reserve.
TEST(ExhaustionTortureTest, FullVolumeRefusesMutationsButStaysLive) {
  obs::Counter* refused =
      obs::MetricsRegistry::Default().counter(obs::kSpaceRefused);
  uint64_t refused_before = refused->value();

  DatabaseOptions opt;
  opt.page_size = 256;
  opt.initial_spaces = 1;
  opt.emergency_reserve_pages = 8;
  auto geo = BuddyGeometry::Make(opt.page_size);
  ASSERT_TRUE(geo.ok());
  auto chaos = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(opt.page_size,
                                      2 + 2 * (geo->space_pages + 1)),
      /*seed=*/7);
  ChaosPageDevice* dev = chaos.get();
  auto db = Database::CreateOnDevice(std::move(chaos), opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto id = (*db)->CreateObjectFrom(PatternBytes(1, 2000));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // The volume has reached its physical end: every further Grow is a
  // typed disk-full.
  dev->FailGrowsAfter(0, /*permanent=*/true);

  // Fill until the volume refuses (fragmentation or the floor — both are
  // typed NoSpace on a volume that cannot grow).
  Status st = Status::OK();
  int appended = 0;
  for (; appended < 10000; ++appended) {
    st = (*db)->Append(*id, PatternBytes(2 + appended, 1500));
    if (!st.ok()) break;
  }
  ASSERT_FALSE(st.ok()) << "volume never filled";
  EXPECT_TRUE(st.IsNoSpace()) << st.ToString();
  EXPECT_GT(appended, 0);

  // Raise the floor above what is left: from here every refusal is the
  // admission gate itself, so the typed error and the counter are exact.
  (*db)->allocator()->set_emergency_reserve_pages(
      static_cast<uint32_t>((*db)->allocator()->free_pages_fast()) + 4);
  st = (*db)->Append(*id, PatternBytes(7000, 64));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNoSpace()) << st.ToString();
  EXPECT_GT(refused->value(), refused_before);

  // The reserve floor holds: maintenance still has pages to work with.
  EXPECT_GE((*db)->allocator()->free_pages_fast(),
            static_cast<int64_t>(0));

  // Refused again, typed again — and the refusal is stable, not corrupting.
  Status again = (*db)->Append(*id, PatternBytes(99, 64));
  EXPECT_TRUE(again.IsNoSpace()) << again.ToString();
  Status ins = (*db)->Insert(*id, 0, PatternBytes(98, 64));
  EXPECT_TRUE(ins.IsNoSpace()) << ins.ToString();

  // Reads are always admitted.
  auto size = (*db)->Size(*id);
  ASSERT_TRUE(size.ok());
  auto data = (*db)->Read(*id, 0, *size);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->size(), *size);

  // Deletes are always admitted; the directory save they trigger runs
  // from the emergency reserve.
  EOS_ASSERT_OK((*db)->Delete(*id, *size - 1000, 1000));

  // Checkpoint and integrity still complete on the full volume.
  EOS_ASSERT_OK((*db)->Checkpoint());
  EOS_ASSERT_OK((*db)->CheckIntegrity());

  // Dropping an object reclaims space and mutations are admitted again.
  auto id2 = (*db)->CreateObject();
  if (!id2.ok()) {
    // Creating may still be refused at the floor; dropping the big object
    // must free enough to admit work again.
    EXPECT_TRUE(id2.status().IsNoSpace()) << id2.status().ToString();
  }
  EOS_ASSERT_OK((*db)->DropObject(*id));
  auto id3 = (*db)->CreateObjectFrom(PatternBytes(5, 2000));
  ASSERT_TRUE(id3.ok()) << id3.status().ToString();
  auto data3 = (*db)->Read(*id3, 0, 2000);
  ASSERT_TRUE(data3.ok());
  EXPECT_EQ(*data3, PatternBytes(5, 2000));

  // No storage was lost across the refusals.
  LeakCheckReport report;
  EOS_ASSERT_OK((*db)->LeakCheck(&report));
  EXPECT_TRUE(report.leaked.empty());
  EXPECT_TRUE(report.doubly_referenced.empty());
}

// An armed deadline bounds reads through injected device latency: the
// sleeping transfer wakes at the deadline and the scan fails typed.
TEST(ExhaustionTortureTest, DeadlineExpiresDuringInjectedReadLatency) {
  Stack s(256);
  auto d = s.lob->CreateFrom(PatternBytes(1, 60000));
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.pager->EvictAll());
  s.device->InjectLatency(/*read_us=*/4000, /*write_us=*/0);
  {
    // The budget is below a single injected service time, so whichever
    // device read the scan issues first wakes at the deadline.
    ScopedDeadline bound(std::chrono::milliseconds(2));
    Bytes out;
    Status st = s.lob->Read(*d, 0, 60000, &out);
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  }
  // Without a bound the same read completes — the latency only slows it.
  s.device->InjectLatency(0, 0);
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(*d, 0, 60000, &out));
  EXPECT_EQ(out, PatternBytes(1, 60000));
}

// A deadline expiring mid-mutation unwinds like any other failure: typed
// error, pre-op bytes, no leaked pages. Insert must read the split leaf
// back from the device (the pager was evicted), and that read's injected
// latency outlives the budget.
TEST(ExhaustionTortureTest, DeadlineBoundedWriteUnwindsCleanly) {
  Stack s(256);
  uint64_t baseline = s.FreePages();
  Bytes before = PatternBytes(3, 5000);
  auto d = s.lob->CreateFrom(before);
  ASSERT_TRUE(d.ok());
  uint64_t after_create = s.FreePages();
  EOS_ASSERT_OK(s.pager->EvictAll());
  s.device->InjectLatency(/*read_us=*/4000, /*write_us=*/0);
  {
    ScopedDeadline bound(std::chrono::milliseconds(2));
    Status st = s.lob->Insert(&*d, 100, PatternBytes(4, 20000));
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  }
  s.device->InjectLatency(0, 0);
  EXPECT_EQ(d->size(), before.size());
  auto back = s.lob->ReadAll(*d);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, before);
  EXPECT_EQ(s.FreePages(), after_create);
  EOS_ASSERT_OK(s.lob->CheckInvariants(*d));
  EOS_ASSERT_OK(s.lob->Destroy(&*d));
  EXPECT_EQ(s.FreePages(), baseline);
}

// Cooperative cancellation is observed before any work happens.
TEST(ExhaustionTortureTest, CancelTokenRefusesNewWork) {
  Stack s(256);
  Bytes before = PatternBytes(6, 3000);
  auto d = s.lob->CreateFrom(before);
  ASSERT_TRUE(d.ok());
  uint64_t free_before = s.FreePages();
  CancelToken cancel = CancelToken::Make();
  cancel.Cancel();
  {
    ScopedOpContext scope(OpContext{Deadline::Infinite(), cancel});
    Status st = s.lob->Append(&*d, PatternBytes(7, 4000));
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
    Bytes out;
    Status rd = s.lob->Read(*d, 0, 100, &out);
    EXPECT_TRUE(rd.IsDeadlineExceeded()) << rd.ToString();
  }
  // State is untouched and the stack is immediately usable again.
  EXPECT_EQ(s.FreePages(), free_before);
  auto back = s.lob->ReadAll(*d);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, before);
}

// The reservation/unwind counters move when an injected fault unwinds a
// mutation.
TEST(ExhaustionTortureTest, ObsCountersTrackUnwinds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  uint64_t reserved_before = reg.counter(obs::kSpaceReserved)->value();

  // Dry run: count the allocator calls the mid-object insert makes, so the
  // fault can be armed at its *last* allocation — everything before it is
  // then tracked by the reservation and must show up as unwound extents.
  uint64_t insert_allocs = 0;
  {
    Stack dry(256);
    auto d = dry.lob->CreateFrom(PatternBytes(1, 8000));
    ASSERT_TRUE(d.ok());
    uint64_t before = dry.allocator->alloc_calls();
    EOS_ASSERT_OK(dry.lob->Insert(&*d, 100, PatternBytes(2, 150000)));
    insert_allocs = dry.allocator->alloc_calls() - before;
  }
  ASSERT_GE(insert_allocs, 2u) << "insert no longer splits; pick a new op";

  Stack s(256);
  auto d = s.lob->CreateFrom(PatternBytes(1, 8000));
  ASSERT_TRUE(d.ok());
  EXPECT_GT(reg.counter(obs::kSpaceReserved)->value(), reserved_before);
  uint64_t unwound_before = reg.counter(obs::kSpaceUnwoundExtents)->value();
  s.allocator->set_alloc_fault_countdown(
      static_cast<int64_t>(insert_allocs) - 1);
  Status st = s.lob->Insert(&*d, 100, PatternBytes(2, 150000));
  ASSERT_TRUE(st.IsNoSpace()) << st.ToString();
  EXPECT_GT(reg.counter(obs::kSpaceUnwoundExtents)->value(), unwound_before);
}

}  // namespace
}  // namespace eos
