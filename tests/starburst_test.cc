// Correctness tests for the Starburst long field baseline [Lehm89],
// including its defining weakness: length-changing updates copy every
// segment right of the edit point.

#include "baselines/starburst/starburst_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

struct SbStack {
  Stack base;
  std::unique_ptr<StarburstManager> mgr;

  static SbStack Make(uint32_t page_size, uint32_t max_seg = 0) {
    SbStack s;
    s.base = Stack::Make(page_size);
    s.mgr = std::make_unique<StarburstManager>(s.base.allocator.get(),
                                               s.base.device.get(), max_seg);
    return s;
  }
};

TEST(StarburstTest, CreateKnownSizeUsesMaximalSegments) {
  SbStack s = SbStack::Make(100, 16);
  Bytes data = PatternBytes(1, 5000);  // 50 pages -> 16+16+16+2
  auto d = s.mgr->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 5000u);
  ASSERT_EQ(d->segments.size(), 4u);
  EXPECT_EQ(d->segments[0].count, 1600u);
  EXPECT_EQ(d->segments[3].count, 200u);
  auto all = s.mgr->ReadAll(*d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
}

TEST(StarburstTest, UnknownSizeDoublesAndTrims) {
  SbStack s = SbStack::Make(100, 64);
  auto d = s.mgr->CreateEmpty();
  Bytes model;
  for (int i = 0; i < 20; ++i) {
    Bytes chunk = PatternBytes(i, 91);
    EOS_ASSERT_OK(s.mgr->Append(&d, chunk));
    model.insert(model.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(d.size(), 1820u);
  auto all = s.mgr->ReadAll(d);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, model);
  // Utilization stays near 100%: only the last page may be partial.
  auto stats = s.mgr->Stats(d);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->leaf_pages, 19u);
}

TEST(StarburstTest, RandomOpsMatchModel) {
  SbStack s = SbStack::Make(128, 32);
  Bytes model;
  auto d = s.mgr->CreateEmpty();
  Random rng(31337);
  for (int step = 0; step < 200; ++step) {
    int op = static_cast<int>(rng.Uniform(10));
    if (model.empty()) op = 0;
    if (op <= 3) {
      Bytes data = PatternBytes(step, rng.Range(1, 500));
      EOS_ASSERT_OK(s.mgr->Append(&d, data));
      model.insert(model.end(), data.begin(), data.end());
    } else if (op <= 5) {
      Bytes data = PatternBytes(step + 111, rng.Range(1, 200));
      uint64_t off = rng.Uniform(model.size() + 1);
      EOS_ASSERT_OK(s.mgr->Insert(&d, off, data));
      model.insert(model.begin() + off, data.begin(), data.end());
    } else if (op <= 7) {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = rng.Range(1, std::max<uint64_t>(1, model.size() / 3));
      n = std::min<uint64_t>(n, model.size() - off);
      EOS_ASSERT_OK(s.mgr->Delete(&d, off, n));
      model.erase(model.begin() + off, model.begin() + off + n);
    } else {
      uint64_t off = rng.Uniform(model.size());
      uint64_t n = rng.Range(1, std::max<uint64_t>(1, model.size() - off));
      Bytes data = PatternBytes(step + 222, n);
      EOS_ASSERT_OK(s.mgr->Replace(&d, off, data));
      std::copy(data.begin(), data.end(), model.begin() + off);
    }
    ASSERT_EQ(d.size(), model.size()) << "step " << step;
    if (step % 25 == 24) {
      auto all = s.mgr->ReadAll(d);
      ASSERT_TRUE(all.ok());
      ASSERT_EQ(*all, model) << "step " << step;
      EOS_ASSERT_OK(s.base.allocator->CheckInvariants());
    }
  }
  EOS_ASSERT_OK(s.mgr->Destroy(&d));
  auto free_pages = s.base.allocator->TotalFreePages();
  ASSERT_TRUE(free_pages.ok());
  EXPECT_EQ(*free_pages, uint64_t{s.base.allocator->num_spaces()} *
                             s.base.allocator->geometry().space_pages);
}

TEST(StarburstTest, InsertCostGrowsWithSuffixSize) {
  // The paper's criticism: an insert near the front rewrites almost the
  // whole field, an insert near the end almost nothing.
  SbStack s = SbStack::Make(100, 64);
  Bytes data = PatternBytes(9, 50000);
  auto front = s.mgr->CreateFrom(data);
  auto back = s.mgr->CreateFrom(data);
  ASSERT_TRUE(front.ok() && back.ok());
  Bytes ins = PatternBytes(10, 10);

  s.base.device->ResetStats();
  EOS_ASSERT_OK(s.mgr->Insert(&*front, 100, ins));
  uint64_t front_io = s.base.device->stats().transfers();

  s.base.device->ResetStats();
  EOS_ASSERT_OK(s.mgr->Insert(&*back, 49900, ins));
  uint64_t back_io = s.base.device->stats().transfers();

  EXPECT_GT(front_io, back_io * 5)
      << "Starburst front-insert must cost far more than back-insert";
}

TEST(StarburstTest, DescriptorSerializationRoundTrip) {
  SbStack s = SbStack::Make(100, 16);
  Bytes data = PatternBytes(20, 3210);
  auto d = s.mgr->CreateFrom(data);
  ASSERT_TRUE(d.ok());
  Bytes wire = d->Serialize();
  auto back = StarburstDescriptor::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->segments.size(), d->segments.size());
  EXPECT_EQ(back->size(), d->size());
  auto all = s.mgr->ReadAll(*back);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, data);
  // Corruption detected.
  wire.pop_back();
  EXPECT_TRUE(StarburstDescriptor::Deserialize(wire).status().IsCorruption());
}

}  // namespace
}  // namespace eos
