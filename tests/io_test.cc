// Page device and pager tests, including the seek-accounting model the
// paper's cost claims rest on.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdio>

#include "io/page_device.h"
#include "io/pager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

TEST(MemDeviceTest, ReadWriteRoundTrip) {
  MemPageDevice dev(128, 16);
  Bytes w = testing_util::PatternBytes(1, 3 * 128);
  EOS_ASSERT_OK(dev.WritePages(4, 3, w.data()));
  Bytes r(3 * 128);
  EOS_ASSERT_OK(dev.ReadPages(4, 3, r.data()));
  EXPECT_EQ(w, r);
}

TEST(MemDeviceTest, OutOfRangeRejected) {
  MemPageDevice dev(128, 16);
  Bytes b(128);
  EXPECT_TRUE(dev.ReadPages(16, 1, b.data()).IsOutOfRange());
  EXPECT_TRUE(dev.WritePages(15, 2, b.data()).IsOutOfRange());
  EXPECT_TRUE(dev.ReadPages(0, 0, b.data()).IsInvalidArgument());
}

TEST(MemDeviceTest, SeekAccounting) {
  MemPageDevice dev(128, 64);
  Bytes b(128 * 8);
  dev.ResetStats();
  // A multi-page access costs one seek plus n transfers.
  EOS_ASSERT_OK(dev.ReadPages(0, 8, b.data()));
  EXPECT_EQ(dev.stats().seeks, 1u);
  EXPECT_EQ(dev.stats().pages_read, 8u);
  // Sequential continuation costs no extra seek.
  EOS_ASSERT_OK(dev.ReadPages(8, 4, b.data()));
  EXPECT_EQ(dev.stats().seeks, 1u);
  // Jumping back costs a seek.
  EOS_ASSERT_OK(dev.ReadPages(0, 1, b.data()));
  EXPECT_EQ(dev.stats().seeks, 2u);
  // Scattered single-page reads: one seek each.
  EOS_ASSERT_OK(dev.ReadPages(20, 1, b.data()));
  EOS_ASSERT_OK(dev.ReadPages(40, 1, b.data()));
  EXPECT_EQ(dev.stats().seeks, 4u);
  EXPECT_EQ(dev.stats().pages_read, 15u);
}

TEST(MemDeviceTest, DiskModelEstimates) {
  IoStats s;
  s.seeks = 3;
  s.pages_read = 6;
  DiskModel model;  // 16 ms seek, 2 ms per page
  EXPECT_DOUBLE_EQ(model.EstimateMs(s), 3 * 16.0 + 6 * 2.0);
}

TEST(MemDeviceTest, Grow) {
  MemPageDevice dev(128, 4);
  EXPECT_EQ(dev.page_count(), 4u);
  EOS_ASSERT_OK(dev.Grow(10));
  EXPECT_EQ(dev.page_count(), 10u);
  Bytes b(128);
  EOS_ASSERT_OK(dev.ReadPages(9, 1, b.data()));
  EXPECT_TRUE(dev.Grow(5).IsInvalidArgument());
}

TEST(FileDeviceTest, CreateWriteReopenRead) {
  std::string path = ::testing::TempDir() + "/eos_file_dev_test.vol";
  Bytes w = testing_util::PatternBytes(2, 2 * 256);
  {
    auto dev = FilePageDevice::Create(path, 256, 8);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    EOS_ASSERT_OK((*dev)->WritePages(3, 2, w.data()));
    EOS_ASSERT_OK((*dev)->Sync());
  }
  {
    auto dev = FilePageDevice::Open(path, 256);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ((*dev)->page_count(), 8u);
    Bytes r(2 * 256);
    EOS_ASSERT_OK((*dev)->ReadPages(3, 2, r.data()));
    EXPECT_EQ(w, r);
  }
  std::remove(path.c_str());
}

TEST(FileDeviceTest, SyncBarrierKnob) {
  std::string path = ::testing::TempDir() + "/eos_file_dev_sync_test.vol";
  {
    auto dev = FilePageDevice::Create(path, 256, 4);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    // Default barrier is the cheaper fdatasync; both flavours must work.
    EXPECT_FALSE((*dev)->full_sync());
    EOS_EXPECT_OK((*dev)->Sync());
    (*dev)->set_full_sync(true);
    EXPECT_TRUE((*dev)->full_sync());
    EOS_EXPECT_OK((*dev)->Sync());
  }
  {
    // EOS_FULL_SYNC=1 flips the default for devices created while it is
    // set (read once per device at creation).
    ASSERT_EQ(setenv("EOS_FULL_SYNC", "1", 1), 0);
    auto dev = FilePageDevice::Open(path, 256);
    ASSERT_EQ(unsetenv("EOS_FULL_SYNC"), 0);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    EXPECT_TRUE((*dev)->full_sync());
    EOS_EXPECT_OK((*dev)->Sync());
  }
  {
    auto dev = FilePageDevice::Open(path, 256);
    ASSERT_TRUE(dev.ok());
    EXPECT_FALSE((*dev)->full_sync());
  }
  std::remove(path.c_str());
}

TEST(PagerTest, FetchCachesPages) {
  MemPageDevice dev(128, 16);
  Bytes w = testing_util::PatternBytes(3, 128);
  EOS_ASSERT_OK(dev.WritePages(5, 1, w.data()));
  Pager pager(&dev, 4);
  {
    auto h = pager.Fetch(5);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(Bytes(h->data(), h->data() + 128), w);
  }
  uint64_t reads = dev.stats().pages_read;
  {
    auto h = pager.Fetch(5);  // hit: no device read
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(dev.stats().pages_read, reads);
  EXPECT_EQ(pager.hits(), 1u);
  EXPECT_EQ(pager.misses(), 1u);
}

TEST(PagerTest, DirtyWriteBackOnEviction) {
  MemPageDevice dev(128, 16);
  Pager pager(&dev, 2);
  {
    auto h = pager.Zeroed(1);
    ASSERT_TRUE(h.ok());
    h->data()[0] = 0xAB;
    h->MarkDirty();
  }
  // Evict page 1 by touching two other pages.
  ASSERT_TRUE(pager.Fetch(2).ok());
  ASSERT_TRUE(pager.Fetch(3).ok());
  Bytes r(128);
  EOS_ASSERT_OK(dev.ReadPages(1, 1, r.data()));
  EXPECT_EQ(r[0], 0xAB);
}

TEST(PagerTest, PinnedPagesCannotBeEvicted) {
  MemPageDevice dev(128, 16);
  Pager pager(&dev, 2);
  auto h1 = pager.Fetch(1);
  auto h2 = pager.Fetch(2);
  ASSERT_TRUE(h1.ok() && h2.ok());
  auto h3 = pager.Fetch(3);
  EXPECT_TRUE(h3.status().IsBusy()) << "all frames pinned";
  h1->Reset();
  auto h4 = pager.Fetch(3);
  EXPECT_TRUE(h4.ok());
}

TEST(PagerTest, FlushAllPersistsDirtyFrames) {
  MemPageDevice dev(128, 16);
  Pager pager(&dev, 4);
  {
    auto h = pager.Zeroed(7);
    ASSERT_TRUE(h.ok());
    h->data()[10] = 0x77;
    h->MarkDirty();
  }
  EOS_ASSERT_OK(pager.FlushAll());
  Bytes r(128);
  EOS_ASSERT_OK(dev.ReadPages(7, 1, r.data()));
  EXPECT_EQ(r[10], 0x77);
}

TEST(PagerTest, InvalidateDropsWithoutWrite) {
  MemPageDevice dev(128, 16);
  Pager pager(&dev, 4);
  {
    auto h = pager.Zeroed(9);
    ASSERT_TRUE(h.ok());
    h->data()[0] = 0x55;
    h->MarkDirty();
  }
  pager.Invalidate(9);
  EOS_ASSERT_OK(pager.FlushAll());
  Bytes r(128);
  EOS_ASSERT_OK(dev.ReadPages(9, 1, r.data()));
  EXPECT_EQ(r[0], 0x00) << "invalidated page must not be written back";
}

}  // namespace
}  // namespace eos
