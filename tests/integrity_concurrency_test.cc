// Thread-safety of the integrity layer: an online scrub runs device-direct
// reads while reader threads stream the same objects through the pager,
// and the verified device's quarantine bookkeeping is hammered from
// multiple threads at once. Run under TSan via the `tsan` preset
// (tools/run_checks.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "eos/database.h"
#include "io/chaos_device.h"
#include "io/verified_device.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;

TEST(IntegrityConcurrencyTest, ScrubRacesReaders) {
  DatabaseOptions opts;
  opts.page_size = 256;
  opts.space_pages = 200;
  opts.checksums = true;
  opts.pager_frames = 16;  // small cache: readers keep hitting the device
  auto db = Database::CreateInMemory(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<uint64_t> ids;
  std::vector<Bytes> oracle;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    oracle.push_back(PatternBytes(seed, 5000 * seed));
    auto id = (*db)->CreateObjectFrom(oracle.back());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  EOS_ASSERT_OK((*db)->Flush());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t which = (t + step) % ids.size();
        const Bytes& expect = oracle[which];
        uint64_t off = (step * 241) % expect.size();
        uint64_t n = std::min<uint64_t>(expect.size() - off, 700);
        auto data = (*db)->Read(ids[which], off, n);
        if (!data.ok() ||
            *data != Bytes(expect.begin() + off, expect.begin() + off + n)) {
          failures.fetch_add(1);
        }
        ++step;
      }
    });
  }

  // Scrub loop: whole-volume verification racing the readers above. On a
  // clean volume every pass must come back clean.
  std::thread scrubber([&] {
    for (int pass = 0; pass < 8; ++pass) {
      ScrubReport report;
      Status s = (*db)->Scrub(&report);
      if (!s.ok() || !report.clean()) failures.fetch_add(1);
    }
    stop.store(true);
  });

  // Quarantine bookkeeping raced from the side: flags set, listed and
  // cleared while reads verify pages — exercises the latch under TSan.
  std::thread quarantiner([&] {
    VerifiedPageDevice* dev = (*db)->verified_device();
    uint64_t page_count = dev->page_count();
    while (!stop.load(std::memory_order_relaxed)) {
      PageId scratch = page_count - 1;
      dev->ClearQuarantine(scratch);
      (void)dev->IsQuarantined(scratch);
      (void)dev->Quarantined();
      (void)dev->quarantined_count();
    }
  });

  scrubber.join();
  for (auto& r : readers) r.join();
  quarantiner.join();
  EXPECT_EQ(failures.load(), 0);
  EOS_ASSERT_OK((*db)->CheckIntegrity());
}

}  // namespace
}  // namespace eos
