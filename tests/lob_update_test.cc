// Targeted insert/delete cases (Sections 4.3 and 4.4).

#include <gtest/gtest.h>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

struct Model {
  // Reference implementation: the object is just a byte string.
  Bytes bytes;

  void Insert(uint64_t off, const Bytes& data) {
    bytes.insert(bytes.begin() + off, data.begin(), data.end());
  }
  void Delete(uint64_t off, uint64_t n) {
    bytes.erase(bytes.begin() + off, bytes.begin() + off + n);
  }
  void Append(const Bytes& data) {
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  void Replace(uint64_t off, const Bytes& data) {
    std::copy(data.begin(), data.end(), bytes.begin() + off);
  }
};

void ExpectMatches(Stack& s, const LobDescriptor& d, const Model& m,
                   const char* what) {
  ASSERT_EQ(d.size(), m.bytes.size()) << what;
  auto all = s.lob->ReadAll(d);
  ASSERT_TRUE(all.ok()) << what << ": " << all.status().ToString();
  ASSERT_EQ(*all, m.bytes) << what;
  EOS_ASSERT_OK(s.lob->CheckInvariants(d));
}

TEST(LobInsertTest, InsertIntoMiddleOfPage) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(1, 1000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Bytes ins = PatternBytes(2, 37);
  EOS_ASSERT_OK(s.lob->Insert(&*d, 450, ins));
  m.Insert(450, ins);
  ExpectMatches(s, *d, m, "mid-page insert");
}

TEST(LobInsertTest, InsertAtPageBoundary) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(3, 1000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Bytes ins = PatternBytes(4, 250);
  EOS_ASSERT_OK(s.lob->Insert(&*d, 400, ins));
  m.Insert(400, ins);
  ExpectMatches(s, *d, m, "page-boundary insert");
}

TEST(LobInsertTest, InsertAtZero) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(5, 777);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Bytes ins = PatternBytes(6, 123);
  EOS_ASSERT_OK(s.lob->Insert(&*d, 0, ins));
  m.Insert(0, ins);
  ExpectMatches(s, *d, m, "insert at zero");
}

TEST(LobInsertTest, InsertIntoLastPartialPage) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(7, 955);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Bytes ins = PatternBytes(8, 10);
  EOS_ASSERT_OK(s.lob->Insert(&*d, 950, ins));
  m.Insert(950, ins);
  ExpectMatches(s, *d, m, "insert near end");
}

TEST(LobInsertTest, HugeInsertSpansMultipleSegments) {
  LobConfig cfg;
  cfg.max_segment_pages = 8;
  Stack s = Stack::Make(100, 0, cfg);
  Model m;
  m.bytes = PatternBytes(9, 2000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Bytes ins = PatternBytes(10, 5000);  // > 8 pages -> several N segments
  EOS_ASSERT_OK(s.lob->Insert(&*d, 999, ins));
  m.Insert(999, ins);
  ExpectMatches(s, *d, m, "huge insert");
}

TEST(LobInsertTest, ManyInsertsGrowTree) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(11, 300);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Random rng(42);
  for (int i = 0; i < 200; ++i) {
    Bytes ins = PatternBytes(100 + i, rng.Range(1, 120));
    uint64_t off = rng.Uniform(m.bytes.size() + 1);
    EOS_ASSERT_OK(s.lob->Insert(&*d, off, ins));
    m.Insert(off, ins);
  }
  ExpectMatches(s, *d, m, "many inserts");
  EXPECT_GE(d->root.level, 0);
}

TEST(LobDeleteTest, DeleteWithinOneSegmentMidPage) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(12, 1500);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.lob->Delete(&*d, 333, 512));
  m.Delete(333, 512);
  ExpectMatches(s, *d, m, "mid-segment delete");
}

TEST(LobDeleteTest, DeleteEndingAtPageBoundaryTouchesNoLeaf) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(13, 2000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  // Deletion [300, 800): last deleted byte 799 is the last byte of page 7.
  // L also ends page-aligned. No leaf page should be read or written.
  s.device->ResetStats();
  uint64_t writes_before = s.device->stats().pages_written;
  EOS_ASSERT_OK(s.lob->Delete(&*d, 300, 500));
  (void)writes_before;
  m.Delete(300, 500);
  ExpectMatches(s, *d, m, "aligned delete");
}

TEST(LobDeleteTest, DeleteAcrossSegments) {
  Stack s = Stack::Make(100);
  Model m;
  LobDescriptor d = s.lob->CreateEmpty();
  // Build a multi-segment object via the appender.
  {
    LobAppender app(s.lob.get(), &d);
    for (int i = 0; i < 30; ++i) {
      Bytes chunk = PatternBytes(200 + i, 91);
      EOS_ASSERT_OK(app.Append(chunk));
      m.Append(chunk);
    }
    EOS_ASSERT_OK(app.Finish());
  }
  ExpectMatches(s, d, m, "after build");
  EOS_ASSERT_OK(s.lob->Delete(&d, 150, 2222));
  m.Delete(150, 2222);
  ExpectMatches(s, d, m, "cross-segment delete");
}

TEST(LobDeleteTest, DeleteEntireObject) {
  Stack s = Stack::Make(100);
  auto before = s.allocator->TotalFreePages();
  ASSERT_TRUE(before.ok());
  auto d = s.lob->CreateFrom(PatternBytes(14, 7777));
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.lob->Delete(&*d, 0, 7777));
  EXPECT_EQ(d->size(), 0u);
  auto after = s.allocator->TotalFreePages();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST(LobDeleteTest, DeletePrefix) {
  Stack s = Stack::Make(100);
  Model m;
  m.bytes = PatternBytes(15, 3000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  EOS_ASSERT_OK(s.lob->Delete(&*d, 0, 1234));
  m.Delete(0, 1234);
  ExpectMatches(s, *d, m, "prefix delete");
}

TEST(LobDeleteTest, ThresholdKeepsSegmentsClustered) {
  LobConfig cfg;
  cfg.threshold_pages = 8;
  Stack s = Stack::Make(100, 0, cfg);
  Model m;
  m.bytes = PatternBytes(16, 20000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Random rng(77);
  for (int i = 0; i < 60; ++i) {
    uint64_t off = rng.Uniform(m.bytes.size() - 10);
    if (rng.OneIn(2)) {
      Bytes ins = PatternBytes(300 + i, rng.Range(1, 50));
      EOS_ASSERT_OK(s.lob->Insert(&*d, off, ins));
      m.Insert(off, ins);
    } else {
      uint64_t n = rng.Range(1, 50);
      n = std::min(n, m.bytes.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&*d, off, n));
      m.Delete(off, n);
    }
  }
  ExpectMatches(s, *d, m, "threshold workload");
  auto stats = s.lob->Stats(*d);
  ASSERT_TRUE(stats.ok());
  // With T=8 the threshold machinery must keep segments large: strictly
  // fewer segments than a 1-page-per-segment degeneration.
  EXPECT_GE(stats->avg_segment_pages, 4.0)
      << "segments degenerated despite threshold";
}

TEST(LobDeleteTest, NoThresholdDegeneratesClustering) {
  LobConfig cfg;
  cfg.threshold_pages = 1;
  Stack s = Stack::Make(100, 0, cfg);
  Model m;
  m.bytes = PatternBytes(17, 20000);
  auto d = s.lob->CreateFrom(m.bytes);
  ASSERT_TRUE(d.ok());
  Random rng(78);
  for (int i = 0; i < 60; ++i) {
    uint64_t off = rng.Uniform(m.bytes.size() - 10);
    if (rng.OneIn(2)) {
      Bytes ins = PatternBytes(400 + i, rng.Range(1, 50));
      EOS_ASSERT_OK(s.lob->Insert(&*d, off, ins));
      m.Insert(off, ins);
    } else {
      uint64_t n = rng.Range(1, 50);
      n = std::min(n, m.bytes.size() - off);
      EOS_ASSERT_OK(s.lob->Delete(&*d, off, n));
      m.Delete(off, n);
    }
  }
  ExpectMatches(s, *d, m, "no-threshold workload");
  auto t1 = s.lob->Stats(*d);
  ASSERT_TRUE(t1.ok());
  // Section 4.4's motivation: without the threshold, segments shatter.
  EXPECT_LT(t1->avg_segment_pages, 4.0);
}

TEST(ThresholdHintTest, PerObjectHintOverridesManagerDefault) {
  // Two objects under the same manager (default T=1): the one opened with
  // a larger hint keeps its segments clustered through the same workload.
  LobConfig cfg;
  cfg.threshold_pages = 1;
  Stack s = Stack::Make(100, 0, cfg);
  Model m1, m2;
  m1.bytes = PatternBytes(40, 15000);
  m2.bytes = m1.bytes;
  auto d1 = s.lob->CreateFrom(m1.bytes);
  auto d2 = s.lob->CreateFrom(m2.bytes);
  ASSERT_TRUE(d1.ok() && d2.ok());
  d2->threshold_hint = 8;  // "T may change every time the object is opened"
  Random rng(41);
  for (int i = 0; i < 80; ++i) {
    uint64_t off = rng.Uniform(m1.bytes.size() - 60);
    Bytes ins = PatternBytes(600 + i, rng.Range(1, 50));
    EOS_ASSERT_OK(s.lob->Insert(&*d1, off, ins));
    m1.Insert(off, ins);
    EOS_ASSERT_OK(s.lob->Insert(&*d2, off, ins));
    m2.Insert(off, ins);
    uint64_t del = rng.Uniform(m1.bytes.size() - 60);
    uint64_t n = rng.Range(1, 50);
    EOS_ASSERT_OK(s.lob->Delete(&*d1, del, n));
    m1.Delete(del, n);
    EOS_ASSERT_OK(s.lob->Delete(&*d2, del, n));
    m2.Delete(del, n);
  }
  ExpectMatches(s, *d1, m1, "default-T object");
  ExpectMatches(s, *d2, m2, "hinted-T object");
  auto s1 = s.lob->Stats(*d1);
  auto s2 = s.lob->Stats(*d2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_GT(s2->avg_segment_pages, s1->avg_segment_pages * 2)
      << "the per-object hint must keep d2 clustered";
}

}  // namespace
}  // namespace eos
