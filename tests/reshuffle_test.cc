// Unit tests for the byte/page reshuffle planner (Sections 4.3 and 4.4).

#include "lob/reshuffle.h"

#include <gtest/gtest.h>

#include "common/math.h"

namespace eos {
namespace {

constexpr uint32_t kPs = 100;  // the paper's example page size

ReshuffleInput In(uint64_t lc, uint64_t nc, uint64_t rc, uint32_t t,
                  uint32_t max_pages = 128) {
  ReshuffleInput in;
  in.lc = lc;
  in.nc = nc;
  in.rc = rc;
  in.page_size = kPs;
  in.threshold = t;
  in.max_segment_pages = max_pages;
  return in;
}

void ExpectConserved(const ReshuffleInput& in, const ReshufflePlan& p) {
  EXPECT_EQ(p.from_l + p.lc, in.lc);
  EXPECT_EQ(p.from_r + p.rc, in.rc);
  EXPECT_EQ(p.nc, in.nc + p.from_l + p.from_r);
}

TEST(ReshuffleTest, NcZeroIsNoop) {
  ReshuffleInput in = In(250, 0, 380, 8);
  ReshufflePlan p = PlanReshuffle(in);
  EXPECT_EQ(p.from_l, 0u);
  EXPECT_EQ(p.from_r, 0u);
  ExpectConserved(in, p);
}

TEST(ReshuffleTest, ByteReshuffleEliminatesLastPageOfL) {
  // L ends with 30 bytes in its last page, N has 40 bytes in its last page:
  // the 30 bytes fit (30 + 40 <= 100), so L's last page is eliminated.
  ReshuffleInput in = In(430, 140, 0, 1);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_EQ(p.from_l, 30u);
  EXPECT_EQ(p.lc, 400u);  // full pages only
  EXPECT_EQ(p.nc, 170u);
}

TEST(ReshuffleTest, ByteReshuffleTakesSinglePageR) {
  // R is exactly one page with 35 bytes; N's last page has 50: they fit.
  ReshuffleInput in = In(400, 150, 35, 1);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  // L ends page-aligned (lm = 100) so only R is a candidate.
  EXPECT_EQ(p.from_r, 35u);
  EXPECT_EQ(p.rc, 0u);
  EXPECT_EQ(p.nc, 185u);
}

TEST(ReshuffleTest, ByteReshuffleTakesBothWhenTheyFit) {
  // lm=20, nm=30, rc=40: 20+40+30 <= 100 -> both move into N's last page.
  ReshuffleInput in = In(120, 130, 40, 1);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_EQ(p.from_l, 20u);
  EXPECT_EQ(p.from_r, 40u);
  EXPECT_EQ(p.lc, 100u);
  EXPECT_EQ(p.rc, 0u);
  EXPECT_EQ(p.nc, 190u);
}

TEST(ReshuffleTest, ByteReshufflePrefersLargerFreeSpace) {
  // lm=80, rc=70, nm=15. Both fit individually (80+15, 70+15 <= 100) but
  // not together (80+70+15 > 100); L's last page has free space 20, R's
  // page 30 -> take the group from the segment with the larger free space.
  ReshuffleInput in = In(180, 115, 70, 1);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_EQ(p.from_r, 70u);
  EXPECT_EQ(p.rc, 0u);
  // nm becomes 85 > lm' is 80, so balancing does not borrow from L.
  EXPECT_EQ(p.from_l, 0u);
}

TEST(ReshuffleTest, BalanceBorrowsFromL) {
  // lm = 90, nm = 10, no candidates to eliminate (90+10 = 100 fits!).
  // Actually 90+10 <= 100 means elimination applies; use lm=95, nm=20:
  // 95+20 > 100 -> no elimination; balance x = (95-20)/2 = 37.
  ReshuffleInput in = In(195, 120, 0, 1);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_EQ(p.from_l, 37u);
  EXPECT_EQ(p.lc, 158u);
  EXPECT_EQ(p.nc, 157u);
}

TEST(ReshuffleTest, PageReshuffleMergesUnsafeL) {
  // T=8: L has 2 pages (unsafe), N has 10 pages -> L merges into N
  // entirely.
  ReshuffleInput in = In(200, 1000, 900, 8);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_EQ(p.lc, 0u);
  EXPECT_GE(CeilDiv(p.nc, kPs), 8u);
}

TEST(ReshuffleTest, PageReshuffleFeedsUnsafeN) {
  // T=8: L and R are big and safe, N is 1 page -> take pages from the
  // smaller neighbor until N is safe.
  ReshuffleInput in = In(2000, 50, 900, 8);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_GE(CeilDiv(p.nc, kPs), 8u);
  // The smaller neighbor (R, 9 pages) donates; it must donate whole pages.
  EXPECT_EQ(p.from_r % kPs, 0u);
}

TEST(ReshuffleTest, PageReshuffleGivesUpWhenMergedSegmentTooBig) {
  // 3.1.c: unsafe L cannot fit with N into a maximal segment -> only byte
  // reshuffling happens.
  ReshuffleInput in = In(300, 1950, 0, 8, /*max_pages=*/20);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_GT(p.lc, 0u);  // L not merged
  EXPECT_LE(CeilDiv(p.nc, kPs), 20u);
}

TEST(ReshuffleTest, ThresholdOneDisablesPageReshuffle) {
  ReshuffleInput in = In(150, 50, 250, 1);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  // Nothing is unsafe at T=1; only byte reshuffling can move data, and it
  // only moves L's last page or a 1-page R.
  EXPECT_LE(p.from_l, 50u + 100u);
}

TEST(ReshuffleTest, NoNeighborsNothingHappens) {
  ReshuffleInput in = In(0, 120, 0, 8);
  ReshufflePlan p = PlanReshuffle(in);
  EXPECT_EQ(p.nc, 120u);
  EXPECT_EQ(p.from_l, 0u);
  EXPECT_EQ(p.from_r, 0u);
}

TEST(ReshuffleTest, BothNeighborsUnsafeMergesSmallerFirst) {
  // T=8, L=3 pages, R=2 pages, N=4 pages, everything fits in max:
  // merge R (smaller), then L, ending with one segment.
  ReshuffleInput in = In(300, 400, 200, 8);
  ReshufflePlan p = PlanReshuffle(in);
  ExpectConserved(in, p);
  EXPECT_EQ(p.lc, 0u);
  EXPECT_EQ(p.rc, 0u);
  EXPECT_EQ(p.nc, 900u);
}

// Invariant sweep: bytes conserved, N bounded, R loses only whole pages,
// for a grid of inputs.
TEST(ReshuffleTest, PropertySweep) {
  for (uint32_t t : {1u, 2u, 4u, 8u, 16u}) {
    for (uint64_t lc : {0u, 1u, 99u, 100u, 101u, 350u, 800u, 1600u}) {
      for (uint64_t nc : {1u, 50u, 100u, 250u, 799u, 1601u}) {
        for (uint64_t rc : {0u, 1u, 100u, 101u, 399u, 1600u}) {
          ReshuffleInput in = In(lc, nc, rc, t, 16);
          ReshufflePlan p = PlanReshuffle(in);
          ExpectConserved(in, p);
          if (p.rc > 0) {
            EXPECT_EQ(p.from_r % kPs, 0u)
                << "surviving R must lose whole head pages";
          }
          if (in.nc <= 16 * kPs) {
            EXPECT_LE(p.nc, 16 * kPs);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace eos
