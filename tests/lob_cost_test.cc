// I/O-cost assertions for the paper's per-operation claims (Sections
// 4.3.1, 4.3.2): updates touch I/O proportional to the bytes involved,
// never to the object size — plus unit vectors for the analytic cost
// model (obs/cost_model.h) those sections are transcribed into, and the
// conformance telemetry comparing the two.

#include <gtest/gtest.h>

#include <functional>

#include "io/page_device.h"
#include "lob/lob_manager.h"
#include "obs/cost_model.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

// Leaf-page reads of an operation = total reads minus single-page index
// reads is hard to separate exactly; instead we bound total page I/O.
struct CostProbe {
  Stack s;
  LobDescriptor d;

  static CostProbe Make(uint32_t t, uint64_t object_bytes) {
    LobConfig cfg;
    cfg.threshold_pages = t;
    CostProbe p{Stack::Make(4096, 4096, cfg), {}};
    Random rng(1);
    auto d = p.s.lob->CreateFrom(testing_util::PatternBytes(1, object_bytes));
    EXPECT_TRUE(d.ok());
    p.d = *d;
    return p;
  }

  IoStats Op(const std::function<Status(LobManager*, LobDescriptor*)>& fn) {
    EXPECT_TRUE(s.pager->FlushAll().ok());
    EXPECT_TRUE(s.pager->EvictAll().ok());
    s.device->ForgetHeadPosition();
    s.device->ResetStats();
    Status st = fn(s.lob.get(), &d);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(s.pager->FlushAll().ok());
    return s.device->stats();
  }
};

TEST(LobCostTest, InsertReadsAtMostTwoLeafRuns) {
  // Section 4.3.1: "one or two (physically adjacent) pages from the
  // original leaf segment have to be read" (plus index I/O and the write
  // of N). With T=1 (no page reshuffling) on a fresh object, total reads
  // must be tiny and independent of the 16 MB object size.
  CostProbe p = CostProbe::Make(1, 16 << 20);
  Bytes ins = PatternBytes(2, 100);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Insert(d, 8 << 20, ins);
  });
  EXPECT_LE(io.pages_read, 4u) << io.ToString();   // 1-2 leaf + 1-2 index
  EXPECT_LE(io.pages_written, 6u) << io.ToString();
}

TEST(LobCostTest, InsertCostIndependentOfObjectSize) {
  uint64_t reads_small = 0, reads_big = 0;
  {
    CostProbe p = CostProbe::Make(8, 1 << 20);
    Bytes ins = PatternBytes(3, 200);
    reads_small = p.Op([&](LobManager* lob, LobDescriptor* d) {
                     return lob->Insert(d, 300000, ins);
                   }).transfers();
  }
  {
    CostProbe p = CostProbe::Make(8, 32 << 20);
    Bytes ins = PatternBytes(3, 200);
    reads_big = p.Op([&](LobManager* lob, LobDescriptor* d) {
                  return lob->Insert(d, 300000, ins);
                }).transfers();
  }
  // Objective 3: cost depends on the bytes involved, not the object size.
  EXPECT_LE(reads_big, reads_small + 4);
}

TEST(LobCostTest, AlignedDeleteTouchesNoLeafPage) {
  // Section 4.3.2: "deletions where the last byte to be deleted happens to
  // be the last byte of a page can be completed without accessing any
  // segment". With T=1, delete [page-aligned, page-aligned): zero leaf
  // reads; only index pages move.
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Delete(d, 4096 * 100, 4096 * 50);
  });
  // Every access must be a single (index/directory) page: no multi-page
  // leaf transfers at all.
  EXPECT_EQ(io.pages_read, io.read_calls) << io.ToString();
}

TEST(LobCostTest, TruncateTouchesNoLeafPage) {
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Truncate(d, 12345);  // mid-page boundary is fine too:
    // N is empty because the deletion extends to the object end.
  });
  EXPECT_EQ(io.pages_read, io.read_calls) << io.ToString();
}

TEST(LobCostTest, DestroyTouchesNoLeafPage) {
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Destroy(d);
  });
  EXPECT_EQ(io.pages_read, io.read_calls) << io.ToString();
  // Writes are buddy-directory updates only: all single-page.
  EXPECT_EQ(io.pages_written, io.write_calls) << io.ToString();
}

TEST(LobCostTest, MidPageDeleteReadsBoundedPages) {
  // General delete: "one leaf page needs to be accessed ... if bytes are
  // shuffled, one or two more" (T=1 disables page reshuffling).
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Delete(d, 1000000, 500000);
  });
  EXPECT_LE(io.pages_read, 6u) << io.ToString();
}

TEST(LobCostTest, ReplaceCostProportionalToRange) {
  CostProbe p = CostProbe::Make(8, 8 << 20);
  Bytes patch = PatternBytes(4, 3 * 4096);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Replace(d, 1 << 20, patch);
  });
  // 3-4 pages read + the same written, plus at most one index page.
  EXPECT_LE(io.pages_read, 6u) << io.ToString();
  EXPECT_LE(io.pages_written, 5u) << io.ToString();
}

TEST(LobCostTest, PageReshuffleCostBoundedByThreshold) {
  // Section 4.4: "the overhead is the cost of transferring some additional
  // pages from within the segment (no additional disk seeks)" for inserts.
  for (uint32_t t : {4u, 16u}) {
    CostProbe p = CostProbe::Make(t, 8 << 20);
    Bytes ins = PatternBytes(5, 100);
    IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
      return lob->Insert(d, (4 << 20) + 123, ins);
    });
    // Reads bounded by ~T pages (making N safe) + index.
    EXPECT_LE(io.pages_read, uint64_t{t} + 4) << "T=" << t;
  }
}

// ----- cost-model unit vectors (obs/cost_model.h) ---------------------------

obs::CostInputs Inputs(uint64_t bytes, uint32_t depth,
                       uint32_t max_seg = 256) {
  obs::CostInputs in;
  in.object_bytes = bytes;
  in.depth = depth;
  in.page_size = 4096;
  in.max_segment_pages = max_seg;
  return in;
}

TEST(CostModelTest, ReadVectors) {
  // One page at depth 1: 1 leaf transfer, 2 boundary segments, one index
  // node per segment, one seek per segment + index node (Section 4.2).
  obs::CostEstimate e = obs::ExpectedReadCost(Inputs(4 << 20, 1), 0, 4096);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 1.0);
  EXPECT_DOUBLE_EQ(e.index_reads, 2.0);
  EXPECT_DOUBLE_EQ(e.pages_written(), 0.0) << "reads never write";
  EXPECT_DOUBLE_EQ(e.seeks, 4.0);

  // An unaligned range is charged every page it overlaps: 2 bytes across
  // a page boundary span 2 pages.
  e = obs::ExpectedReadCost(Inputs(4 << 20, 1), 4095, 2);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 2.0);

  // Degenerate ranges cost nothing.
  EXPECT_DOUBLE_EQ(
      obs::ExpectedReadCost(Inputs(4 << 20, 1), 0, 0).transfers(), 0.0);
  EXPECT_DOUBLE_EQ(
      obs::ExpectedReadCost(Inputs(0, 1), 0, 100).transfers(), 0.0);
  EXPECT_DOUBLE_EQ(
      obs::ExpectedReadCost(Inputs(4096, 1), 1 << 20, 100).transfers(), 0.0)
      << "offset past the object";

  // Half-full leaves double the leaf transfers (Section 4.4's utilization).
  obs::CostInputs half = Inputs(4 << 20, 0);
  half.utilization = 0.5;
  EXPECT_DOUBLE_EQ(obs::ExpectedReadCost(half, 0, 8 * 4096).leaf_reads, 16.0);

  // A full scan at depth 0 is dominated by leaf transfers, ~1 per page.
  e = obs::ExpectedReadCost(Inputs(1 << 20, 0), 0, 1 << 20);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 256.0);
  EXPECT_DOUBLE_EQ(e.index_reads, 0.0);
}

TEST(CostModelTest, InsertVectors) {
  // T=1 (byte reshuffling only), 100 bytes, depth 1: 2 boundary leaf
  // reads, 1 fresh page + 2 cut halves written, spine + allocation-map
  // writes (Section 4.3.1).
  obs::CostEstimate e =
      obs::ExpectedInsertCost(Inputs(8 << 20, 1), 100, /*threshold=*/1);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 2.0);
  EXPECT_DOUBLE_EQ(e.leaf_writes, 3.0);
  EXPECT_DOUBLE_EQ(e.index_reads, 1.0);
  EXPECT_DOUBLE_EQ(e.index_writes, 5.0);

  // Page reshuffling (T=8) may pull up to T-1 more pages through memory
  // in each direction (Section 4.4).
  obs::CostEstimate big =
      obs::ExpectedInsertCost(Inputs(8 << 20, 1), 100, /*threshold=*/8);
  EXPECT_DOUBLE_EQ(big.leaf_reads, e.leaf_reads + 7);
  EXPECT_DOUBLE_EQ(big.leaf_writes, e.leaf_writes + 7);

  // The cost scales with the bytes inserted, never the object size.
  obs::CostEstimate small_obj =
      obs::ExpectedInsertCost(Inputs(1 << 20, 1), 100, 1);
  EXPECT_DOUBLE_EQ(small_obj.transfers(), e.transfers());
  EXPECT_DOUBLE_EQ(obs::ExpectedInsertCost(Inputs(8 << 20, 1), 0, 1)
                       .transfers(),
                   0.0);
}

TEST(CostModelTest, AppendVectors) {
  // Section 4.1: ceil(len/PS) fresh pages + the re-filled trailing page.
  obs::CostEstimate e = obs::ExpectedAppendCost(Inputs(8 << 20, 1), 8192);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 1.0);
  EXPECT_DOUBLE_EQ(e.leaf_writes, 3.0);
  EXPECT_DOUBLE_EQ(e.index_reads, 1.0);
  EXPECT_DOUBLE_EQ(e.index_writes, 5.0);
  EXPECT_DOUBLE_EQ(obs::ExpectedAppendCost(Inputs(8 << 20, 1), 0).transfers(),
                   0.0);
}

TEST(CostModelTest, DeleteVectors) {
  // Page-aligned delete touches no leaf at all (the Section 4.3.2 claim
  // the AlignedDeleteTouchesNoLeafPage test above verifies physically).
  obs::CostEstimate e = obs::ExpectedDeleteCost(Inputs(8 << 20, 1),
                                                4096 * 100, 4096 * 50, 1);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 0.0);
  EXPECT_DOUBLE_EQ(e.leaf_writes, 0.0);
  EXPECT_GT(e.index_writes, 0.0);

  // A ragged range touches one boundary page per ragged end.
  e = obs::ExpectedDeleteCost(Inputs(8 << 20, 1), 1000, 500, 1);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 2.0);
  e = obs::ExpectedDeleteCost(Inputs(8 << 20, 1), 4096, 500, 1);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 1.0) << "only the high end is ragged";

  // Deleting through the object's end (truncate) never has a ragged high
  // end, whatever the byte offset.
  e = obs::ExpectedDeleteCost(Inputs(8 << 20, 1), 12345, 8 << 20, 1);
  EXPECT_DOUBLE_EQ(e.leaf_reads, 1.0);
}

TEST(CostModelTest, ConformanceRecordsRatioPercent) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Histogram* h = reg.histogram(obs::kCostAppendRatio);
  uint64_t count0 = h->count(), sum0 = h->sum();
  uint64_t ops0 = reg.counter(obs::kCostOpsCompared)->value();

  obs::CostEstimate model;
  model.leaf_writes = 8;  // predict 8 transfers
  IoStats actual;
  actual.pages_written = 10;  // measure 10 -> ratio 125
  obs::RecordConformance(obs::CostOp::kAppend, model, actual);
  EXPECT_EQ(h->count(), count0 + 1);
  EXPECT_EQ(h->sum(), sum0 + 125);
  EXPECT_EQ(reg.counter(obs::kCostOpsCompared)->value(), ops0 + 1);

  // A degenerate zero-transfer prediction clamps to 1, never divides by 0.
  obs::CostEstimate empty;
  IoStats one_page;
  one_page.pages_read = 1;
  obs::RecordConformance(obs::CostOp::kAppend, empty, one_page);
  EXPECT_EQ(h->sum(), sum0 + 125 + 100);
}

TEST(CostModelTest, CostScopeSamplesOnlyAcknowledgedSuccess) {
  MemPageDevice dev(4096, 8);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Histogram* h = reg.histogram(obs::kCostReadRatio);
  uint64_t count0 = h->count();

  obs::CostEstimate model;
  model.leaf_reads = 1;
  Bytes page(4096);
  {
    obs::CostScope never_ok(obs::CostOp::kRead, model, &dev);
    EOS_ASSERT_OK(dev.ReadPages(0, 1, page.data()));
  }
  EXPECT_EQ(h->count(), count0) << "no set_ok(true), no sample";
  {
    obs::CostScope ok(obs::CostOp::kRead, model, &dev);
    EOS_ASSERT_OK(dev.ReadPages(0, 1, page.data()));
    ok.set_ok(true);
  }
  EXPECT_EQ(h->count(), count0 + 1);
  {
    obs::CostScope no_dev(obs::CostOp::kRead, model, nullptr);
    no_dev.set_ok(true);
  }
  EXPECT_EQ(h->count(), count0 + 1) << "null device stays inert";
}

TEST(CostModelTest, FreshObjectReadConformsWithinGate) {
  // End-to-end acceptance vector: on a freshly created object the
  // measured read I/O must stay within 1.25x of the Section 4.2 model
  // (the same gate bench_read_cost enforces at scale).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Histogram* h = reg.histogram(obs::kCostReadRatio);
  uint64_t count0 = h->count(), sum0 = h->sum();

  Stack s = Stack::Make(4096, 4096);
  auto d = s.lob->CreateFrom(PatternBytes(7, 1 << 20));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EOS_ASSERT_OK(s.pager->FlushAll());
  EOS_ASSERT_OK(s.pager->EvictAll());
  Bytes out;
  EOS_ASSERT_OK(s.lob->Read(*d, 0, d->size(), &out));

  ASSERT_GT(h->count(), count0) << "the read recorded a conformance sample";
  double mean_pct = static_cast<double>(h->sum() - sum0) /
                    static_cast<double>(h->count() - count0);
  EXPECT_LE(mean_pct, 125.0);
  EXPECT_GT(mean_pct, 0.0);
}

}  // namespace
}  // namespace eos
