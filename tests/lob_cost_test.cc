// I/O-cost assertions for the paper's per-operation claims (Sections
// 4.3.1, 4.3.2): updates touch I/O proportional to the bytes involved,
// never to the object size.

#include <gtest/gtest.h>

#include <functional>

#include "lob/lob_manager.h"
#include "tests/test_util.h"

namespace eos {
namespace {

using testing_util::PatternBytes;
using testing_util::Stack;

// Leaf-page reads of an operation = total reads minus single-page index
// reads is hard to separate exactly; instead we bound total page I/O.
struct CostProbe {
  Stack s;
  LobDescriptor d;

  static CostProbe Make(uint32_t t, uint64_t object_bytes) {
    LobConfig cfg;
    cfg.threshold_pages = t;
    CostProbe p{Stack::Make(4096, 4096, cfg), {}};
    Random rng(1);
    auto d = p.s.lob->CreateFrom(testing_util::PatternBytes(1, object_bytes));
    EXPECT_TRUE(d.ok());
    p.d = *d;
    return p;
  }

  IoStats Op(const std::function<Status(LobManager*, LobDescriptor*)>& fn) {
    EXPECT_TRUE(s.pager->FlushAll().ok());
    EXPECT_TRUE(s.pager->EvictAll().ok());
    s.device->ForgetHeadPosition();
    s.device->ResetStats();
    Status st = fn(s.lob.get(), &d);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_TRUE(s.pager->FlushAll().ok());
    return s.device->stats();
  }
};

TEST(LobCostTest, InsertReadsAtMostTwoLeafRuns) {
  // Section 4.3.1: "one or two (physically adjacent) pages from the
  // original leaf segment have to be read" (plus index I/O and the write
  // of N). With T=1 (no page reshuffling) on a fresh object, total reads
  // must be tiny and independent of the 16 MB object size.
  CostProbe p = CostProbe::Make(1, 16 << 20);
  Bytes ins = PatternBytes(2, 100);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Insert(d, 8 << 20, ins);
  });
  EXPECT_LE(io.pages_read, 4u) << io.ToString();   // 1-2 leaf + 1-2 index
  EXPECT_LE(io.pages_written, 6u) << io.ToString();
}

TEST(LobCostTest, InsertCostIndependentOfObjectSize) {
  uint64_t reads_small = 0, reads_big = 0;
  {
    CostProbe p = CostProbe::Make(8, 1 << 20);
    Bytes ins = PatternBytes(3, 200);
    reads_small = p.Op([&](LobManager* lob, LobDescriptor* d) {
                     return lob->Insert(d, 300000, ins);
                   }).transfers();
  }
  {
    CostProbe p = CostProbe::Make(8, 32 << 20);
    Bytes ins = PatternBytes(3, 200);
    reads_big = p.Op([&](LobManager* lob, LobDescriptor* d) {
                  return lob->Insert(d, 300000, ins);
                }).transfers();
  }
  // Objective 3: cost depends on the bytes involved, not the object size.
  EXPECT_LE(reads_big, reads_small + 4);
}

TEST(LobCostTest, AlignedDeleteTouchesNoLeafPage) {
  // Section 4.3.2: "deletions where the last byte to be deleted happens to
  // be the last byte of a page can be completed without accessing any
  // segment". With T=1, delete [page-aligned, page-aligned): zero leaf
  // reads; only index pages move.
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Delete(d, 4096 * 100, 4096 * 50);
  });
  // Every access must be a single (index/directory) page: no multi-page
  // leaf transfers at all.
  EXPECT_EQ(io.pages_read, io.read_calls) << io.ToString();
}

TEST(LobCostTest, TruncateTouchesNoLeafPage) {
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Truncate(d, 12345);  // mid-page boundary is fine too:
    // N is empty because the deletion extends to the object end.
  });
  EXPECT_EQ(io.pages_read, io.read_calls) << io.ToString();
}

TEST(LobCostTest, DestroyTouchesNoLeafPage) {
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Destroy(d);
  });
  EXPECT_EQ(io.pages_read, io.read_calls) << io.ToString();
  // Writes are buddy-directory updates only: all single-page.
  EXPECT_EQ(io.pages_written, io.write_calls) << io.ToString();
}

TEST(LobCostTest, MidPageDeleteReadsBoundedPages) {
  // General delete: "one leaf page needs to be accessed ... if bytes are
  // shuffled, one or two more" (T=1 disables page reshuffling).
  CostProbe p = CostProbe::Make(1, 8 << 20);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Delete(d, 1000000, 500000);
  });
  EXPECT_LE(io.pages_read, 6u) << io.ToString();
}

TEST(LobCostTest, ReplaceCostProportionalToRange) {
  CostProbe p = CostProbe::Make(8, 8 << 20);
  Bytes patch = PatternBytes(4, 3 * 4096);
  IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
    return lob->Replace(d, 1 << 20, patch);
  });
  // 3-4 pages read + the same written, plus at most one index page.
  EXPECT_LE(io.pages_read, 6u) << io.ToString();
  EXPECT_LE(io.pages_written, 5u) << io.ToString();
}

TEST(LobCostTest, PageReshuffleCostBoundedByThreshold) {
  // Section 4.4: "the overhead is the cost of transferring some additional
  // pages from within the segment (no additional disk seeks)" for inserts.
  for (uint32_t t : {4u, 16u}) {
    CostProbe p = CostProbe::Make(t, 8 << 20);
    Bytes ins = PatternBytes(5, 100);
    IoStats io = p.Op([&](LobManager* lob, LobDescriptor* d) {
      return lob->Insert(d, (4 << 20) + 123, ins);
    });
    // Reads bounded by ~T pages (making N safe) + index.
    EXPECT_LE(io.pages_read, uint64_t{t} + 4) << "T=" << t;
  }
}

}  // namespace
}  // namespace eos
