// Snapshot MVCC torture (DESIGN.md §13). The robustness proof for
// multi-version concurrency: writer threads churn objects through the
// shared oracle driver while reader threads pin snapshots and verify them
// lock-free; chaos write faults and NoSpace injected at every allocation
// site of a copy-on-write publish must leave the pinned version intact;
// torn-write crashes at sampled commit and GC boundaries must recover to
// the newest durably published roots; deadline expiry mid-snapshot-read
// fails typed and leaves the pin reusable. Every path ends CheckIntegrity
// and LeakCheck clean.
//
// Failures print the seed; re-run with EOS_TEST_SEED=<n>.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "eos/database.h"
#include "io/chaos_device.h"
#include "tests/churn_driver.h"
#include "tests/model_oracle.h"
#include "tests/test_util.h"
#include "txn/log_manager.h"

namespace eos {
namespace {

// Failed assertions dump the flight-recorder journal (test_util.h).
const bool g_postmortem_listener = testing_util::InstallPostMortemOnFailure();

using testing_util::ChurnDriver;
using testing_util::ChurnOptions;
using testing_util::ModelLob;
using testing_util::PatternBytes;
using testing_util::TestSeed;

DatabaseOptions MvccOptions() {
  DatabaseOptions opt;
  opt.page_size = 512;
  opt.pager_frames = 64;
  opt.mvcc = true;
  return opt;
}

std::string AsString(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void ExpectClean(Database* db) {
  EOS_EXPECT_OK(db->CheckIntegrity());
  EOS_EXPECT_OK(db->Checkpoint());  // drain version GC fully
  LeakCheckReport report;
  EOS_EXPECT_OK(db->LeakCheck(&report));
  EXPECT_TRUE(report.leaked.empty());
  EXPECT_TRUE(report.doubly_referenced.empty());
}

// ----- lock-free readers under concurrent writers ----------------------------

TEST(MvccTortureTest, SnapshotIsolationUnderConcurrentChurn) {
  const uint64_t seed = TestSeed(0x51AB);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  auto db = Database::CreateInMemory(MvccOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  LogManager log;
  (*db)->AttachLog(&log);

  ChurnOptions copt;
  copt.num_objects = 12;
  copt.initial_object_bytes = 8u << 10;
  copt.max_object_bytes = 32u << 10;
  copt.max_edit_bytes = 1024;
  ChurnDriver driver(db->get(), seed, copt);
  EOS_ASSERT_OK(driver.SetUp());

  constexpr int kWriters = 3;
  constexpr int kReaders = 4;
  constexpr int kStepsPerWriter = 120;
  constexpr int kReadsPerReader = 60;
  driver.PrepareThreads(kWriters + kReaders);

  std::atomic<bool> failed{false};
  std::vector<std::string> errors(kWriters + kReaders);
  auto fail = [&](int slot, std::string why) {
    errors[slot] = std::move(why);
    failed.store(true);
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kStepsPerWriter && !failed.load(); ++i) {
        Status s = driver.StepForThread(static_cast<uint32_t>(w));
        if (!s.ok()) {
          fail(w, "writer step: " + s.ToString());
          return;
        }
      }
    });
  }
  Database* dbp = db->get();
  for (int r = 0; r < kReaders; ++r) {
    const uint32_t slot = static_cast<uint32_t>(kWriters + r);
    threads.emplace_back([&, slot] {
      for (int i = 0; i < kReadsPerReader && !failed.load(); ++i) {
        Snapshot snap;
        std::string expected;
        Status s = driver.PinRandomSnapshot(slot, &snap, &expected);
        if (!s.ok()) {
          fail(slot, "pin: " + s.ToString());
          return;
        }
        if (snap.size() != expected.size()) {
          fail(slot, "snapshot size " + std::to_string(snap.size()) +
                         ", oracle " + std::to_string(expected.size()));
          return;
        }
        // Lock-free verification: concurrent writers keep publishing newer
        // versions of this very object while we read the pinned one.
        auto got = dbp->SnapshotRead(snap, 0, expected.size() + 1);
        if (!got.ok()) {
          fail(slot, "snapshot read: " + got.status().ToString());
          return;
        }
        if (AsString(*got) != expected) {
          fail(slot, "snapshot v" + std::to_string(snap.vseq()) +
                         " of object " + std::to_string(snap.object_id()) +
                         " differs from its oracle");
          return;
        }
        // Immutability: the same pin re-read after more writer progress
        // must return the identical bytes.
        auto again = dbp->SnapshotRead(snap, 0, expected.size() + 1);
        if (!again.ok() || *again != *got) {
          fail(slot, "pinned snapshot changed under concurrent writers");
          return;
        }
        snap.Release();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::string all_errors;
  for (const std::string& e : errors) {
    if (!e.empty()) all_errors += e + "\n";
  }
  ASSERT_FALSE(failed.load()) << all_errors;

  EOS_ASSERT_OK(driver.VerifyAll());
  ExpectClean(db->get());
}

// ----- failed mutations leave the pinned version intact ----------------------

TEST(MvccTortureTest, SnapshotSurvivesChaosWriteFaults) {
  const uint64_t seed = TestSeed(0xFA11);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  auto chaos_owned = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(512, 1), seed);
  ChaosPageDevice* chaos = chaos_owned.get();
  auto db = Database::CreateOnDevice(std::move(chaos_owned), MvccOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  Bytes content = PatternBytes(seed, 20000);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto snap = (*db)->BeginSnapshot(*id);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // Every device write now fails; the mutation must unwind completely.
  chaos->FailWritesAfter(0, /*permanent=*/true);
  Status s = (*db)->Append(*id, PatternBytes(seed + 1, 4000));
  EXPECT_FALSE(s.ok()) << "append succeeded with a dead device";
  Status s2 = (*db)->Replace(*id, 100, PatternBytes(seed + 2, 3000));
  EXPECT_FALSE(s2.ok()) << "replace succeeded with a dead device";
  chaos->Heal();

  // The pinned version is untouched, and so is the current root.
  auto pinned = (*db)->SnapshotRead(*snap, 0, content.size() + 1);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(*pinned, content);
  auto current = (*db)->Read(*id, 0, content.size() + 1);
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  EXPECT_EQ(*current, content);

  // And the object still mutates normally after healing.
  Bytes edit = PatternBytes(seed + 3, 2000);
  EOS_ASSERT_OK((*db)->Append(*id, edit));
  auto after = (*db)->SnapshotRead(*snap, 0, content.size() + edit.size());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, content) << "pin observed the post-fault append";
  snap->Release();
  ExpectClean(db->get());
}

// ----- NoSpace at every allocation site of a CoW publish ---------------------

// Enumerates k over every Allocate call a copy-on-write publish makes
// (append growth, insert node splits, CoW leaf replace) and injects typed
// NoSpace at exactly the k-th site. Whatever the outcome, the reservation
// unwind must leave the pinned old version byte-identical, the current
// root readable, and no page leaked.
TEST(MvccTortureTest, NoSpaceAtEveryCowAllocationSite) {
  const uint64_t seed = TestSeed(0x0503);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  const Bytes initial = PatternBytes(seed, 8 << 10);

  struct Op {
    const char* name;
    std::function<Status(Database*, uint64_t)> run;
    Bytes after;  // the op's intended post-state
  };
  const Bytes edit = PatternBytes(seed + 1, 4 << 10);
  auto splice = [&](uint64_t off, bool overwrite) {
    Bytes b(initial.begin(), initial.begin() + off);
    b.insert(b.end(), edit.begin(), edit.end());
    uint64_t resume = overwrite ? off + edit.size() : off;
    b.insert(b.end(), initial.begin() + resume, initial.end());
    return b;
  };
  Bytes appended = initial;
  appended.insert(appended.end(), edit.begin(), edit.end());
  const std::vector<Op> ops = {
      {"append", [&](Database* d, uint64_t id) { return d->Append(id, edit); },
       appended},
      {"insert",
       [&](Database* d, uint64_t id) { return d->Insert(id, 777, edit); },
       splice(777, false)},
      {"replace",
       [&](Database* d, uint64_t id) { return d->Replace(id, 512, edit); },
       splice(512, true)},
  };

  auto fresh = [&](std::unique_ptr<Database>* out, uint64_t* id) {
    auto db = Database::CreateInMemory(MvccOptions());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto oid = (*db)->CreateObjectFrom(initial);
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
    *id = *oid;
    *out = std::move(*db);
  };

  for (const Op& op : ops) {
    // Probe run: count the op's allocation sites on a deterministic stack.
    std::unique_ptr<Database> probe;
    uint64_t probe_id = 0;
    fresh(&probe, &probe_id);
    ASSERT_NE(probe, nullptr);
    uint64_t before = probe->allocator()->alloc_calls();
    EOS_ASSERT_OK(op.run(probe.get(), probe_id));
    const uint64_t sites = probe->allocator()->alloc_calls() - before;
    ASSERT_GT(sites, 0u) << op.name << " made no allocations";

    for (uint64_t k = 0; k < sites; ++k) {
      SCOPED_TRACE(std::string(op.name) + " fault at allocation site " +
                   std::to_string(k) + " of " + std::to_string(sites));
      std::unique_ptr<Database> db;
      uint64_t id = 0;
      fresh(&db, &id);
      ASSERT_NE(db, nullptr);
      auto snap = db->BeginSnapshot(id);
      ASSERT_TRUE(snap.ok()) << snap.status().ToString();

      db->allocator()->set_alloc_fault_countdown(static_cast<int64_t>(k));
      Status s = op.run(db.get(), id);
      db->allocator()->set_alloc_fault_countdown(-1);
      if (!s.ok()) {
        EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
      }

      // The pinned version is intact no matter where the fault landed.
      auto pinned = db->SnapshotRead(*snap, 0, initial.size() + 1);
      ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
      EXPECT_EQ(*pinned, initial);
      // The current root is readable and byte-exact at one of the two legal
      // states: pre-op (the reservation unwound the lob mutation) or
      // post-op (the fault hit the maintenance directory save, which runs
      // under the emergency reserve and completes on the next save — the
      // published version is current even though the op reported NoSpace).
      auto size = db->Size(id);
      ASSERT_TRUE(size.ok()) << size.status().ToString();
      auto current = db->Read(id, 0, *size);
      ASSERT_TRUE(current.ok()) << current.status().ToString();
      if (!s.ok()) {
        EXPECT_TRUE(*current == initial || *current == op.after)
            << "failed op left the object at neither its pre-op nor its "
               "intended post-op state";
      } else {
        EXPECT_EQ(*current, op.after);
      }
      snap->Release();
      ExpectClean(db.get());
    }
  }
}

// ----- torn-write crashes at commit and GC boundaries ------------------------

// One scripted mvcc + crash_safe workload: every mutation group-commits its
// own marker, a snapshot stays pinned across the mutation phase (keeping
// version chains populated), and periodic checkpoints drain version GC.
// The device loses power after every sampled k-th write — some torn — and
// recovery from the cloned image plus the WAL must land on exactly the
// committed oracle state with nothing leaked.
TEST(MvccTortureTest, TornWriteCrashAtCommitAndGcBoundaries) {
  const uint64_t seed = TestSeed(0xC4A5);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  constexpr int kObjects = 3;
  constexpr int kOps = 24;

  DatabaseOptions opt = MvccOptions();
  opt.page_size = 256;
  opt.pager_frames = 16;
  opt.crash_safe = true;

  struct Harness {
    std::unique_ptr<LogManager> log;
    std::unique_ptr<Database> db;
    ChaosPageDevice* chaos = nullptr;
    std::vector<uint64_t> ids;
  };
  auto make = [&](std::vector<std::string>* oracle) {
    Harness h;
    h.log = std::make_unique<LogManager>();
    auto chaos = std::make_unique<ChaosPageDevice>(
        std::make_unique<MemPageDevice>(opt.page_size, 1), seed);
    h.chaos = chaos.get();
    auto db = Database::CreateOnDevice(std::move(chaos), opt);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    if (!db.ok()) return h;
    h.db = std::move(db).value();
    h.db->AttachLog(h.log.get());
    oracle->clear();
    for (int i = 0; i < kObjects; ++i) {
      Bytes init = PatternBytes(seed * 10 + i, 1500 + 700 * i);
      auto id = h.db->CreateObjectFrom(init);
      EXPECT_TRUE(id.ok()) << id.status().ToString();
      if (!id.ok()) return h;
      h.ids.push_back(*id);
      oracle->push_back(AsString(init));
    }
    EXPECT_TRUE(h.db->Checkpoint().ok());
    return h;
  };

  // Deterministic op script (coordinates resolved against the live oracle
  // at run time, so it replays identically on every harness).
  std::mt19937_64 script_rng(seed ^ 0x5eed);
  struct Scripted {
    int target;
    int kind;  // 0 append, 1 replace, 2 delete
    uint64_t a, b;
  };
  std::vector<Scripted> script;
  for (int i = 0; i < kOps; ++i) {
    script.push_back(Scripted{static_cast<int>(script_rng() % kObjects),
                              static_cast<int>(script_rng() % 3),
                              script_rng(), script_rng()});
  }

  // Runs the script until the device dies; `committed` tracks the oracle
  // after each successful (and therefore marker-committed) op.
  auto run = [&](Harness* h, std::vector<std::string>* committed) {
    Snapshot pin;  // held across the whole phase; released at scope exit
    auto p = h->db->BeginSnapshot(h->ids[0]);
    if (p.ok()) pin = std::move(*p);
    for (int i = 0; i < kOps; ++i) {
      if (h->chaos->crashed()) break;
      const Scripted& sc = script[i];
      uint64_t id = h->ids[sc.target];
      std::string& mirror = (*committed)[sc.target];
      Status st;
      std::string next = mirror;
      if (sc.kind == 0 || mirror.empty()) {
        Bytes data = PatternBytes(seed * 100 + i, 300 + sc.a % 900);
        st = h->db->Append(id, data);
        next += AsString(data);
      } else if (sc.kind == 1) {
        uint64_t off = sc.a % mirror.size();
        uint64_t n = std::min<uint64_t>(1 + sc.b % 800, mirror.size() - off);
        Bytes data = PatternBytes(seed * 100 + i, n);
        st = h->db->Replace(id, off, data);
        next.replace(off, n, AsString(data));
      } else {
        uint64_t off = sc.a % mirror.size();
        uint64_t n = std::min<uint64_t>(1 + sc.b % 600, mirror.size() - off);
        st = h->db->Delete(id, off, n);
        next.erase(off, n);
      }
      if (!st.ok()) {
        EXPECT_TRUE(h->chaos->crashed())
            << "op " << i << " failed without a crash: " << st.ToString();
        break;
      }
      mirror = std::move(next);
      // GC boundary: superseded unpinned versions reclaim here; the crash
      // sweep lands inside these frees too.
      if (i % 6 == 5) (void)h->db->Checkpoint();
    }
  };

  // Fault-free reference run: committed oracle + the write-call count W.
  std::vector<std::string> oracle;
  Harness ref = make(&oracle);
  ASSERT_NE(ref.db, nullptr);
  std::vector<std::string> committed_ref = oracle;
  uint64_t writes_before = ref.chaos->stats().write_calls;
  run(&ref, &committed_ref);
  const uint64_t W = ref.chaos->stats().write_calls - writes_before;
  ASSERT_FALSE(ref.chaos->crashed());
  for (int i = 0; i < kObjects; ++i) {
    auto got = ref.db->Read(ref.ids[i], 0, committed_ref[i].size() + 1);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(AsString(*got), committed_ref[i]);
  }
  ExpectClean(ref.db.get());
  ASSERT_GE(W, 60u) << "workload too small to sample crash points";

  const uint64_t stride = std::max<uint64_t>(1, W / 48);
  int points = 0;
  for (uint64_t k = 0; k < W; k += stride) {
    SCOPED_TRACE("crash after " + std::to_string(k) + " of " +
                 std::to_string(W) + " writes");
    std::vector<std::string> base;
    Harness h = make(&base);
    ASSERT_NE(h.db, nullptr);
    h.chaos->CrashAfterWrites(k, /*tear_pages=*/(points % 3 == 0) ? 1 : 0);
    std::vector<std::string> committed = base;
    run(&h, &committed);
    ASSERT_TRUE(h.chaos->crashed()) << "crash point never reached";
    auto image = h.chaos->CloneImage();
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    std::vector<LogRecord> wal = h.log->records();
    h.db.reset();  // dying flush against the dead device; harmless

    auto db2 = Database::OpenOnDevice(std::move(*image), opt);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    EOS_ASSERT_OK((*db2)->Recover(wal));
    EOS_ASSERT_OK((*db2)->CheckIntegrity());
    for (int i = 0; i < kObjects; ++i) {
      auto got = (*db2)->Read(h.ids[i], 0, committed[i].size() + 1);
      ASSERT_TRUE(got.ok())
          << "object " << h.ids[i] << ": " << got.status().ToString();
      ASSERT_EQ(AsString(*got), committed[i])
          << "object " << h.ids[i] << " not at its committed state";
    }
    // Post-recovery snapshots read the recovered (durably committed) roots.
    auto snap = (*db2)->BeginSnapshot(h.ids[0]);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    auto via_snap = (*db2)->SnapshotRead(*snap, 0, committed[0].size() + 1);
    ASSERT_TRUE(via_snap.ok());
    EXPECT_EQ(AsString(*via_snap), committed[0]);
    snap->Release();
    ExpectClean(db2->get());
    ++points;
  }
  ASSERT_GE(points, 40) << "W=" << W << " stride=" << stride;
}

// ----- deadline expiry mid-snapshot-read -------------------------------------

TEST(MvccTortureTest, DeadlineExpiryMidSnapshotRead) {
  const uint64_t seed = TestSeed(0xDEAD);
  SCOPED_TRACE("seed " + std::to_string(seed) +
               " (re-run with EOS_TEST_SEED=<seed>)");
  auto chaos_owned = std::make_unique<ChaosPageDevice>(
      std::make_unique<MemPageDevice>(512, 1), seed);
  ChaosPageDevice* chaos = chaos_owned.get();
  auto db = Database::CreateOnDevice(std::move(chaos_owned), MvccOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Bytes content = PatternBytes(seed, 64 << 10);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto snap = (*db)->BeginSnapshot(*id);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  // Already-expired ambient deadline: refused at the read boundary.
  {
    ScopedOpContext ctx(
        OpContext{Deadline::After(std::chrono::nanoseconds(0)), CancelToken()});
    auto got = (*db)->SnapshotRead(*snap, 0, content.size());
    ASSERT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsDeadlineExceeded())
        << got.status().ToString();
  }
  // Injected device latency makes a tight deadline expire mid-read.
  {
    chaos->InjectLatency(/*read_us=*/2000, /*write_us=*/0, /*jitter_us=*/0);
    ScopedOpContext ctx(OpContext{
        Deadline::After(std::chrono::milliseconds(3)), CancelToken()});
    auto got = (*db)->SnapshotRead(*snap, 0, content.size());
    chaos->InjectLatency(0, 0, 0);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsDeadlineExceeded())
          << got.status().ToString();
    }
  }
  // The pin survives the expiry and still reads exact bytes.
  auto got = (*db)->SnapshotRead(*snap, 0, content.size() + 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, content);
  snap->Release();
  ExpectClean(db->get());
}

// ----- version-chain introspection -------------------------------------------

TEST(MvccTortureTest, VersionChainIntrospection) {
  const uint64_t seed = TestSeed(0x11F0);
  auto db = Database::CreateInMemory(MvccOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Bytes content = PatternBytes(seed, 5000);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Unpinned: superseded versions GC eagerly, one current version remains.
  auto chain = (*db)->ListVersions(*id);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_TRUE(chain->back().current);
  EXPECT_EQ(chain->back().pins, 0u);
  EXPECT_EQ(chain->back().size, content.size());
  EXPECT_NE(chain->back().root_page, kInvalidPage);

  // A pin keeps its version in the chain across later publishes. GC is
  // FIFO from the front, so the unpinned middle version also survives
  // behind the pinned front.
  auto snap = (*db)->BeginSnapshot(*id);
  ASSERT_TRUE(snap.ok());
  EOS_ASSERT_OK((*db)->Append(*id, PatternBytes(seed + 1, 3000)));
  EOS_ASSERT_OK((*db)->Delete(*id, 0, 1000));
  chain = (*db)->ListVersions(*id);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 3u) << "pinned version GC'd or extra survivors";
  EXPECT_EQ(chain->front().vseq, snap->vseq());
  EXPECT_EQ(chain->front().pins, 1u);
  EXPECT_FALSE(chain->front().current);
  EXPECT_EQ(chain->front().size, content.size());
  EXPECT_EQ((*chain)[1].pins, 0u);
  EXPECT_FALSE((*chain)[1].current);
  EXPECT_EQ((*chain)[1].size, content.size() + 3000);
  EXPECT_TRUE(chain->back().current);
  EXPECT_GT((*chain)[1].vseq, chain->front().vseq);
  EXPECT_GT(chain->back().vseq, (*chain)[1].vseq);
  EXPECT_EQ(chain->back().size, content.size() + 3000 - 1000);

  // Release: the superseded version collapses.
  snap->Release();
  chain = (*db)->ListVersions(*id);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_TRUE(chain->back().current);

  // Drop with no pins: the whole chain goes.
  EOS_ASSERT_OK((*db)->DropObject(*id));
  EXPECT_TRUE((*db)->ListVersions(*id).status().IsNotFound());
  ExpectClean(db->get());
}

// A dropped object stays readable through an open pin; the drop marker
// only reclaims once the pin releases.
TEST(MvccTortureTest, DropUnderOpenSnapshot) {
  const uint64_t seed = TestSeed(0xD40B);
  auto db = Database::CreateInMemory(MvccOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Bytes content = PatternBytes(seed, 9000);
  auto id = (*db)->CreateObjectFrom(content);
  ASSERT_TRUE(id.ok());
  auto snap = (*db)->BeginSnapshot(*id);
  ASSERT_TRUE(snap.ok());

  EOS_ASSERT_OK((*db)->DropObject(*id));
  EXPECT_TRUE((*db)->Read(*id, 0, 1).status().IsNotFound());
  EXPECT_TRUE((*db)->BeginSnapshot(*id).status().IsNotFound());
  auto got = (*db)->SnapshotRead(*snap, 0, content.size() + 1);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, content);

  snap->Release();
  EXPECT_TRUE((*db)->ListVersions(*id).status().IsNotFound());
  ExpectClean(db->get());
}

// Without options.mvcc, snapshots are refused but ListVersions still
// reports the directory root as the single current version (eos_inspect
// works on any volume).
TEST(MvccTortureTest, NonMvccSurface) {
  DatabaseOptions opt;
  opt.page_size = 512;
  auto db = Database::CreateInMemory(opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto id = (*db)->CreateObjectFrom(PatternBytes(1, 4000));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE((*db)->BeginSnapshot(*id).status().IsInvalidArgument());
  auto chain = (*db)->ListVersions(*id);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->size(), 1u);
  EXPECT_TRUE(chain->back().current);
  EXPECT_EQ(chain->back().size, 4000u);
}

}  // namespace
}  // namespace eos
