#ifndef EOS_LOB_LEAF_IO_H_
#define EOS_LOB_LEAF_IO_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "io/io_executor.h"
#include "io/page_device.h"

namespace eos {
namespace lob_internal {

// Reads several byte ranges from one leaf segment, merging ranges whose
// page runs touch or overlap into a single multi-page access so the I/O
// cost matches the paper's "read one or two (physically adjacent) pages"
// accounting. `ranges` must be sorted by offset and non-overlapping; empty
// ranges are allowed and yield empty buffers.
//
// With a non-null `exec` the merged runs are read concurrently on the
// executor's workers (one task per run) and joined before return; device
// stats accounting is identical either way, only the wall-clock ordering
// changes. Run staging comes from the shared BufferPool, so steady-state
// reads allocate only the caller-visible output buffers.
Status ReadLeafRuns(PageDevice* device, uint32_t page_size, PageId leaf_first,
                    const std::vector<std::pair<uint64_t, uint64_t>>& ranges,
                    std::vector<Bytes>* out, IoExecutor* exec = nullptr);

}  // namespace lob_internal
}  // namespace eos

#endif  // EOS_LOB_LEAF_IO_H_
