// Multi-append sessions (Section 4.1): doubling growth for objects of
// unknown eventual size, exact allocation under a size hint, and a final
// trim of the last segment with one-page precision.

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/math.h"
#include "lob/lob_manager.h"
#include "obs/metric_names.h"
#include "obs/op_tracer.h"
#include "txn/log_manager.h"

namespace eos {

LobAppender::LobAppender(LobManager* mgr, LobDescriptor* d,
                         uint64_t size_hint)
    : mgr_(mgr), d_(d), size_hint_(size_hint) {
  page_buf_.reserve(mgr->page_size());
}

LobAppender::~LobAppender() {
  if (!finished_) (void)Finish();
}

Status LobAppender::OpenSegment(uint64_t want_bytes) {
  assert(!cur_.valid());
  const uint32_t ps = mgr_->page_size();
  const uint32_t max_pages = mgr_->max_segment_pages();
  uint32_t pages;
  uint64_t total_now = d_->size() + page_buf_.size();
  if (size_hint_ > total_now) {
    // Size known in advance: allocate just enough for the whole remainder
    // (a sequence of maximal segments if it exceeds the maximum size).
    uint64_t remaining = size_hint_ - total_now;
    pages = static_cast<uint32_t>(
        std::min<uint64_t>(CeilDiv(remaining, ps), max_pages));
  } else {
    // Unknown size: successive segments double until the maximum.
    pages = next_pages_;
    next_pages_ = std::min(next_pages_ * 2, max_pages);
  }
  uint64_t min_pages = CeilDiv(want_bytes, ps);
  if (pages < min_pages && min_pages <= max_pages) {
    pages = static_cast<uint32_t>(min_pages);
  }
  EOS_ASSIGN_OR_RETURN(cur_, mgr_->allocator()->Allocate(pages));
  cur_bytes_ = 0;
  cur_pages_used_ = 0;
  return Status::OK();
}

Status LobAppender::FlushPageBuffer() {
  const uint32_t ps = mgr_->page_size();
  if (page_buf_.empty()) return Status::OK();
  // Queue the padded page instead of writing it now: an immediately
  // following bulk run is file-adjacent and the two coalesce into one
  // vectored submit. Staging comes from the pool; the raw block pointer
  // stays stable however pending_bufs_ reallocates.
  pending_bufs_.push_back(BufferPool::Default()->Acquire(ps));
  uint8_t* staged = pending_bufs_.back().data();
  std::memcpy(staged, page_buf_.data(), page_buf_.size());
  std::memset(staged + page_buf_.size(), 0, ps - page_buf_.size());
  pending_runs_.push_back(
      ConstPageRun{cur_.first + cur_pages_used_, 1, staged});
  if (page_buf_.size() == ps) {
    ++cur_pages_used_;
    page_buf_.clear();
  }
  return Status::OK();
}

Status LobAppender::SubmitPending() {
  if (pending_runs_.empty()) return Status::OK();
  Status s;
  if (pending_runs_.size() == 1) {
    const ConstPageRun& r = pending_runs_[0];
    s = mgr_->device()->WritePages(r.first, r.pages, r.data);
  } else {
    s = mgr_->device()->WriteRuns(pending_runs_.data(),
                                  pending_runs_.size());
  }
  pending_runs_.clear();
  pending_bufs_.clear();
  return s;
}

Status LobAppender::CloseSegment() {
  if (!cur_.valid()) return Status::OK();
  EOS_RETURN_IF_ERROR(FlushPageBuffer());
  // Leaf data must be durable before the index references it (the same
  // data-before-index order the crash-consistency design relies on).
  EOS_RETURN_IF_ERROR(SubmitPending());
  uint64_t bytes = uint64_t{cur_pages_used_} * mgr_->page_size() +
                   page_buf_.size();
  page_buf_.clear();
  uint32_t used_pages = mgr_->LeafPages(bytes);
  // Trim: give unused pages at the right end back to the free space.
  if (used_pages < cur_.pages) {
    EOS_RETURN_IF_ERROR(mgr_->allocator()->Free(
        Extent{cur_.first + used_pages, cur_.pages - used_pages}));
  }
  Extent seg = cur_;
  cur_ = Extent{};
  if (bytes == 0) {
    return Status::OK();
  }
  // Attach the finished segment as the new rightmost leaf.
  LobEntry entry{bytes, seg.first};
  if (d_->empty()) {
    d_->root.level = 0;
    d_->root.entries.push_back(entry);
    return mgr_->FitRoot(d_);
  }
  std::vector<LobManager::PathLevel> path;
  LobManager::LeafRef leaf;
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(
      mgr_->DescendToLeaf(*d_, d_->size() - 1, &path, &leaf, &local));
  std::vector<LobEntry> repl = {LobEntry{leaf.bytes, leaf.extent.first},
                                entry};
  return mgr_->ReplaceInPath(d_, &path, std::move(repl));
}

LobAppender::SessionState LobAppender::SaveState() const {
  return SessionState{appended_, cur_,        cur_bytes_,
                      cur_pages_used_, next_pages_, page_buf_};
}

void LobAppender::RestoreState(SessionState&& s) {
  appended_ = s.appended;
  cur_ = s.cur;
  cur_bytes_ = s.cur_bytes;
  cur_pages_used_ = s.cur_pages_used;
  next_pages_ = s.next_pages;
  page_buf_ = std::move(s.page_buf);
  pending_runs_.clear();
  pending_bufs_.clear();
}

Status LobAppender::Append(ByteView data) {
  if (finished_) {
    return Status::InvalidArgument("appender already finished");
  }
  if (data.empty()) return Status::OK();
  SessionState before = SaveState();
  Status s =
      mgr_->RunGuarded(d_, "lob.appender_append", [&] { return AppendBody(data); });
  // The guard put the tree and the allocation maps back; put the session
  // back too so the caller may retry (or Finish with what was appended).
  if (!s.ok()) RestoreState(std::move(before));
  return s;
}

Status LobAppender::AppendBody(ByteView data) {
  const uint32_t ps = mgr_->page_size();
  if (appended_ == 0 && !d_->empty() && !cur_.valid() && page_buf_.empty()) {
    // First append to an existing object: absorb the partial tail page so
    // the new segment continues it without overwriting any leaf page, and
    // continue the doubling pattern from the last leaf's size.
    std::vector<LobManager::PathLevel> path;
    LobManager::LeafRef leaf;
    uint64_t local = 0;
    EOS_RETURN_IF_ERROR(
        mgr_->DescendToLeaf(*d_, d_->size() - 1, &path, &leaf, &local));
    next_pages_ = static_cast<uint32_t>(std::min<uint64_t>(
        uint64_t{leaf.extent.pages} * 2, mgr_->max_segment_pages()));
    if (next_pages_ == 0) next_pages_ = 1;
    uint64_t lm = leaf.bytes % ps;
    if (lm != 0) {
      page_buf_.resize(lm);
      EOS_RETURN_IF_ERROR(mgr_->ReadLeafBytes(leaf, leaf.bytes - lm,
                                              leaf.bytes, page_buf_.data()));
      EOS_RETURN_IF_ERROR(mgr_->allocator()->Free(
          Extent{leaf.extent.first + leaf.extent.pages - 1, 1}));
      std::vector<LobEntry> repl;
      if (leaf.bytes > lm) {
        repl.push_back(LobEntry{leaf.bytes - lm, leaf.extent.first});
      }
      EOS_RETURN_IF_ERROR(mgr_->ReplaceInPath(d_, &path, std::move(repl)));
      if (!d_->empty()) {
        EOS_RETURN_IF_ERROR(mgr_->RepairUnderflow(d_, d_->size() - 1));
      }
    }
  }
  size_t pos = 0;
  while (pos < data.size()) {
    EOS_RETURN_IF_ERROR(ScopedOpContext::CheckCurrent("lob.appender"));
    if (!cur_.valid()) {
      EOS_RETURN_IF_ERROR(
          OpenSegment(page_buf_.size() + (data.size() - pos)));
    }
    uint64_t seg_space = uint64_t{cur_.pages} * ps -
                         (uint64_t{cur_pages_used_} * ps + page_buf_.size());
    if (seg_space == 0) {
      EOS_RETURN_IF_ERROR(CloseSegment());
      continue;
    }
    if (page_buf_.empty() && data.size() - pos >= ps && seg_space >= ps) {
      // Bulk path: queue whole pages zero-copy, straight from the caller's
      // data (drained before Append returns).
      uint32_t whole = static_cast<uint32_t>(
          std::min<uint64_t>((data.size() - pos) / ps, seg_space / ps));
      pending_runs_.push_back(ConstPageRun{cur_.first + cur_pages_used_,
                                           whole, data.data() + pos});
      cur_pages_used_ += whole;
      pos += uint64_t{whole} * ps;
      continue;
    }
    size_t take = static_cast<size_t>(std::min<uint64_t>(
        std::min<uint64_t>(ps - page_buf_.size(), data.size() - pos),
        seg_space));
    page_buf_.insert(page_buf_.end(), data.data() + pos,
                     data.data() + pos + take);
    pos += take;
    if (page_buf_.size() == ps) {
      EOS_RETURN_IF_ERROR(FlushPageBuffer());
    }
  }
  EOS_RETURN_IF_ERROR(SubmitPending());
  appended_ += data.size();
  static obs::Counter* chunks =
      obs::MetricsRegistry::Default().counter(obs::kLobAppenderChunks);
  chunks->Inc();
  return Status::OK();
}

Status LobAppender::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  obs::ScopedOp span("lob.appender_finish", 0, mgr_->device());
  Extent open = cur_;  // segment carried in from earlier calls, if any
  Status s = mgr_->RunGuarded(d_, "lob.appender_finish", [&]() -> Status {
    if (!cur_.valid() && !page_buf_.empty()) {
      // Only an absorbed tail remains; give it its own (1-page) segment.
      EOS_RETURN_IF_ERROR(OpenSegment(page_buf_.size()));
    }
    EOS_RETURN_IF_ERROR(CloseSegment());
    return mgr_->FitRoot(d_);
  });
  if (!s.ok()) {
    // The session is over either way. The guard unwound this call's own
    // allocations; the still-open segment predates it and is referenced by
    // nothing, so return it (a nested guard parks this free and resolves
    // it with the outer scope).
    page_buf_.clear();
    pending_runs_.clear();
    pending_bufs_.clear();
    cur_ = Extent{};
    if (open.valid()) (void)mgr_->allocator()->Free(open);
  }
  return span.Close(std::move(s));
}

}  // namespace eos
