// Online scrub and salvage: device-direct verification of an object's
// pages and best-effort extraction of its content for repair (DESIGN.md
// "Integrity & degraded operation").
//
// Both walks read through the raw device rather than the pager: the cache
// would hand back the clean copy it fetched before the media rotted, which
// is precisely what a scrub must not trust. On a VerifiedPageDevice every
// read below re-runs the trailer check (retrying transient faults and
// quarantining persistent ones as a side effect); on a plain device only
// the structural checks apply.

#include <algorithm>
#include <cstring>

#include "lob/lob_manager.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

namespace {

obs::Counter* PagesVerifiedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kScrubPagesVerified);
  return c;
}

obs::Counter* CorruptPagesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kScrubCorruptPages);
  return c;
}

void AddIssue(ScrubReport* report, uint64_t object_id, PageRole role,
              PageId page, std::string message) {
  report->issues.push_back(
      ScrubIssue{object_id, role, page, std::move(message)});
  CorruptPagesCounter()->Inc();
}

// Loads and structurally validates the index node behind `entry`, which the
// parent claims sits at `level` covering entry.count bytes.
Status LoadNodeDirect(PageDevice* dev, uint32_t page_size,
                      const LobEntry& entry, uint16_t level, LobNode* node) {
  Bytes buf(page_size);
  EOS_RETURN_IF_ERROR(dev->ReadPages(entry.page, 1, buf.data()));
  EOS_RETURN_IF_ERROR(NodeFormat::Deserialize(buf.data(), page_size, node));
  if (node->level != level - 1) {
    return Status::Corruption("index node level " +
                              std::to_string(node->level) +
                              " does not match its parent (expected " +
                              std::to_string(level - 1) + ")");
  }
  if (node->Total() != entry.count) {
    return Status::Corruption(
        "index node totals " + std::to_string(node->Total()) +
        " bytes, parent entry says " + std::to_string(entry.count));
  }
  return Status::OK();
}

}  // namespace

const char* PageRoleName(PageRole role) {
  switch (role) {
    case PageRole::kSuperblock:
      return "superblock";
    case PageRole::kAllocatorMap:
      return "allocator-map";
    case PageRole::kDirectory:
      return "directory";
    case PageRole::kIndexNode:
      return "index-node";
    case PageRole::kLeaf:
      return "leaf";
    case PageRole::kLog:
      return "log";
    case PageRole::kUnknown:
      break;
  }
  return "unknown";
}

Status LobManager::ScrubObject(const LobDescriptor& d, uint64_t object_id,
                               ScrubReport* report) {
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(WalkScrub(e, d.root.level, object_id, report));
  }
  return Status::OK();
}

Status LobManager::WalkScrub(const LobEntry& entry, uint16_t level,
                             uint64_t object_id, ScrubReport* report) {
  PageDevice* dev = device();
  if (level == 0) {
    uint32_t pages = LeafPages(entry.count);
    Bytes buf(size_t{pages} * page_size());
    Status s = dev->ReadPages(entry.page, pages, buf.data());
    if (s.ok()) {
      report->pages_verified += pages;
      PagesVerifiedCounter()->Inc(pages);
      return Status::OK();
    }
    // The extent read failed somewhere; re-read page by page to pinpoint
    // exactly which pages are bad (and keep counting the good ones).
    for (uint32_t i = 0; i < pages; ++i) {
      Status ps = dev->ReadPages(entry.page + i, 1, buf.data());
      if (ps.ok()) {
        ++report->pages_verified;
        PagesVerifiedCounter()->Inc();
      } else {
        AddIssue(report, object_id, PageRole::kLeaf, entry.page + i,
                 ps.message());
      }
    }
    return Status::OK();
  }
  LobNode node;
  Status s = LoadNodeDirect(dev, page_size(), entry, level, &node);
  if (!s.ok()) {
    // Unreadable or structurally invalid: report it and stop descending —
    // its children are unreachable without it (salvage handles the bytes).
    AddIssue(report, object_id, PageRole::kIndexNode, entry.page,
             s.message());
    return Status::OK();
  }
  ++report->pages_verified;
  PagesVerifiedCounter()->Inc();
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(WalkScrub(e, node.level, object_id, report));
  }
  return Status::OK();
}

StatusOr<Bytes> LobManager::Salvage(const LobDescriptor& d,
                                    std::vector<HoleRange>* holes) {
  holes->clear();
  Bytes out(d.size(), 0);
  uint64_t offset = 0;
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(
        WalkSalvage(e, d.root.level, offset, out.data(), holes));
    offset += e.count;
  }
  std::sort(holes->begin(), holes->end(),
            [](const HoleRange& a, const HoleRange& b) {
              return a.offset < b.offset;
            });
  std::vector<HoleRange> merged;
  for (const HoleRange& h : *holes) {
    if (!merged.empty() &&
        merged.back().offset + merged.back().length >= h.offset) {
      uint64_t end = std::max(merged.back().offset + merged.back().length,
                              h.offset + h.length);
      merged.back().length = end - merged.back().offset;
    } else {
      merged.push_back(h);
    }
  }
  holes->swap(merged);
  return out;
}

Status LobManager::WalkSalvage(const LobEntry& entry, uint16_t level,
                               uint64_t offset, uint8_t* out,
                               std::vector<HoleRange>* holes) {
  PageDevice* dev = device();
  if (level == 0) {
    uint32_t pages = LeafPages(entry.count);
    Bytes buf(size_t{pages} * page_size());
    if (dev->ReadPages(entry.page, pages, buf.data()).ok()) {
      std::memcpy(out + offset, buf.data(), entry.count);
      return Status::OK();
    }
    for (uint32_t i = 0; i < pages; ++i) {
      uint64_t lo = uint64_t{i} * page_size();
      uint64_t n = std::min<uint64_t>(page_size(), entry.count - lo);
      if (dev->ReadPages(entry.page + i, 1, buf.data()).ok()) {
        std::memcpy(out + offset + lo, buf.data(), n);
      } else {
        holes->push_back(HoleRange{offset + lo, n});
      }
    }
    return Status::OK();
  }
  LobNode node;
  if (!LoadNodeDirect(dev, page_size(), entry, level, &node).ok()) {
    // The whole subtree is unreachable, but the parent entry says exactly
    // how many bytes it held: one hole, zeroes already in place.
    holes->push_back(HoleRange{offset, entry.count});
    return Status::OK();
  }
  uint64_t child_offset = offset;
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(
        WalkSalvage(e, node.level, child_offset, out, holes));
    child_offset += e.count;
  }
  return Status::OK();
}

}  // namespace eos
