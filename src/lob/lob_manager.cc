#include "lob/lob_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "cache/extent_cache.h"
#include "common/math.h"
#include "io/buffer_pool.h"
#include "lob/walker.h"
#include "obs/metric_names.h"
#include "obs/op_tracer.h"
#include "txn/log_manager.h"

namespace eos {

LobManager::LobManager(Pager* pager, SegmentAllocator* allocator,
                       const LobConfig& config)
    : config_(config),
      store_(pager, allocator, allocator->geometry().page_size) {
  uint32_t buddy_max = allocator->geometry().max_segment_pages();
  max_segment_pages_ =
      config.max_segment_pages == 0
          ? buddy_max
          : std::min(config.max_segment_pages, buddy_max);
  uint32_t root_bytes =
      config.max_root_bytes == 0 ? page_size() : config.max_root_bytes;
  root_capacity_ = std::max<uint32_t>(
      2, std::min(LobDescriptor::MaxEntriesFor(root_bytes),
                  NodeFormat::Capacity(page_size())));
  if (config_.threshold_pages == 0) config_.threshold_pages = 1;
  if (config_.threshold_pages > max_segment_pages_) {
    config_.threshold_pages = max_segment_pages_;
  }
}

uint32_t LobManager::LeafPages(uint64_t bytes) const {
  return static_cast<uint32_t>(CeilDiv(bytes, page_size()));
}

obs::CostInputs LobManager::CostFacts(const LobDescriptor& d) const {
  obs::CostInputs in;
  in.object_bytes = d.size();
  in.depth = d.root.level;
  in.page_size = page_size();
  in.max_segment_pages = max_segment_pages_;
  return in;
}

uint32_t LobManager::EffectiveThreshold(const LobDescriptor& d,
                                        size_t parent_entries) const {
  uint32_t t = d.threshold_hint == 0 ? config_.threshold_pages
                                     : d.threshold_hint;
  if (t > max_segment_pages_) t = max_segment_pages_;
  if (config_.adaptive_threshold) {
    // [Bili91a]: raise T as the parent index node approaches a split, so
    // segments get coarser exactly when indexing pressure is highest.
    double fill = static_cast<double>(parent_entries) / store_.capacity();
    uint32_t base = t;
    t = static_cast<uint32_t>(t * (1.0 + fill));
    if (t > max_segment_pages_) t = max_segment_pages_;
    if (t < base) t = base;
  }
  return t;
}

// ----- descent ---------------------------------------------------------------

Status LobManager::DescendToLeaf(const LobDescriptor& d, uint64_t offset,
                                 std::vector<PathLevel>* path, LeafRef* leaf,
                                 uint64_t* local) const {
  if (offset >= d.size()) {
    return Status::OutOfRange("offset beyond object size");
  }
  path->clear();
  PathLevel level;
  level.page = kInvalidPage;
  level.node = d.root;
  uint64_t off = offset;
  for (;;) {
    level.child_idx = level.node.FindChild(&off);
    const LobEntry& e = level.node.entries[level.child_idx];
    uint16_t child_level = level.node.level;
    path->push_back(level);
    if (child_level == 0) {
      leaf->extent = Extent{e.page, LeafPages(e.count)};
      leaf->bytes = e.count;
      *local = off;
      return Status::OK();
    }
    PathLevel next;
    next.page = e.page;
    auto node = const_cast<NodeStore&>(store_).Load(e.page);
    if (!node.ok()) return node.status();
    next.node = std::move(node).value();
    if (next.node.level != child_level - 1) {
      return Status::Corruption("index node level mismatch");
    }
    level = std::move(next);
  }
}

// ----- leaf I/O --------------------------------------------------------------

bool LobManager::CacheHasExtent(const Extent& extent) const {
  const ScopedExtentCacheRef::Binding* b = ScopedExtentCacheRef::Current();
  return b != nullptr &&
         b->cache->Contains(b->object_id, b->vseq, extent.first);
}

Status LobManager::ReadLeafBytes(const LeafRef& leaf, uint64_t lo, uint64_t hi,
                                 uint8_t* out) {
  assert(lo <= hi && hi <= leaf.bytes);
  if (lo == hi) return Status::OK();
  const ScopedExtentCacheRef::Binding* cache = ScopedExtentCacheRef::Current();
  if (cache != nullptr) {
    if (cache->cache->Lookup(cache->object_id, cache->vseq, leaf.extent.first,
                             lo, hi, out)) {
      return Status::OK();  // zero-I/O hit off the immutable version extent
    }
    // Miss: fill with the whole extent image so any later touch of this
    // segment hits. A partial-range miss would amplify the fill into a
    // whole-extent over-read, so it pays that only when the admission
    // sketch says the extent would actually enter the cache — a one-touch
    // cold scan takes the direct read below at no amplification — and
    // never under a bounded operation (deadline pressure must not pay for
    // speculative bytes) or during emergency-reserve work.
    bool whole = lo == 0 && hi == leaf.bytes;
    const OpContext* op = ScopedOpContext::Current();
    bool skip_fill =
        SegmentAllocator::EmergencyScope::active() ||
        (!whole &&
         ((op != nullptr && op->bounded()) ||
          !cache->cache->WouldAdmit(cache->object_id, cache->vseq,
                                    leaf.extent.first, leaf.bytes)));
    if (!skip_fill) {
      static obs::Counter* fill_fail =
          obs::MetricsRegistry::Default().counter(obs::kCacheFillFail);
      uint32_t npages = LeafPages(leaf.bytes);
      BufferPool::Buffer buf =
          BufferPool::Default()->Acquire(size_t{npages} * page_size());
      Status s = device()->ReadPages(leaf.extent.first, npages, buf.data());
      if (s.ok()) {
        std::memcpy(out, buf.data() + lo, hi - lo);
        cache->cache->Insert(cache->object_id, cache->vseq,
                             leaf.extent.first, buf.data(), leaf.bytes);
        return Status::OK();
      }
      // A failed fill (injected fault, transient error) degrades to the
      // direct read below, which carries the authoritative retry/report
      // semantics.
      fill_fail->Inc();
    }
  }
  uint32_t ps = page_size();
  uint64_t p0 = lo / ps;
  uint64_t p1 = (hi - 1) / ps;
  uint32_t n = static_cast<uint32_t>(p1 - p0 + 1);
  if (lo % ps == 0 && (hi - lo) % ps == 0) {
    // Page-aligned range: transfer straight into the caller's buffer,
    // no staging copy at all.
    return device()->ReadPages(leaf.extent.first + p0, n, out);
  }
  BufferPool::Buffer buf = BufferPool::Default()->Acquire(size_t{n} * ps);
  EOS_RETURN_IF_ERROR(
      device()->ReadPages(leaf.extent.first + p0, n, buf.data()));
  std::memcpy(out, buf.data() + (lo - p0 * ps), hi - lo);
  return Status::OK();
}

Status LobManager::WriteLeafPages(PageId first, ByteView data) {
  uint32_t ps = page_size();
  uint32_t n = LeafPages(data.size());
  if (n == 0) return Status::OK();
  if (data.size() % ps == 0) {
    return device()->WritePages(first, n, data.data());
  }
  // Pad the trailing partial page with zeroes. The pooled buffer arrives
  // uninitialized, so the tail must be zeroed explicitly.
  BufferPool::Buffer buf = BufferPool::Default()->Acquire(size_t{n} * ps);
  std::memcpy(buf.data(), data.data(), data.size());
  std::memset(buf.data() + data.size(), 0, size_t{n} * ps - data.size());
  return device()->WritePages(first, n, buf.data());
}

StatusOr<std::vector<LobEntry>> LobManager::WriteSegments(ByteView data) {
  static obs::Counter* written =
      obs::MetricsRegistry::Default().counter(obs::kLobSegmentsWritten);
  static obs::Histogram* seg_pages =
      obs::MetricsRegistry::Default().histogram(obs::kLobSegmentPages);
  std::vector<LobEntry> entries;
  uint64_t pos = 0;
  uint64_t max_bytes = uint64_t{max_segment_pages_} * page_size();
  while (pos < data.size()) {
    EOS_RETURN_IF_ERROR(ScopedOpContext::CheckCurrent("lob.write_segments"));
    uint64_t chunk = std::min<uint64_t>(data.size() - pos, max_bytes);
    EOS_ASSIGN_OR_RETURN(Extent e,
                         allocator()->Allocate(LeafPages(chunk)));
    EOS_RETURN_IF_ERROR(WriteLeafPages(e.first, data.Slice(pos, chunk)));
    written->Inc();
    seg_pages->Record(LeafPages(chunk));
    entries.push_back(LobEntry{chunk, e.first});
    pos += chunk;
  }
  return entries;
}

// ----- spine write-back ------------------------------------------------------

StatusOr<std::vector<LobEntry>> LobManager::WriteNodeMaybeSplit(
    PageId orig_page, LobNode&& node) {
  uint32_t cap = store_.capacity();
  std::vector<LobEntry> out;
  if (node.entries.size() <= cap) {
    if (node.entries.empty()) {
      if (orig_page != kInvalidPage) {
        EOS_RETURN_IF_ERROR(store_.FreePage(orig_page));
      }
      return out;
    }
    PageId page = orig_page;
    if (page == kInvalidPage) {
      EOS_ASSIGN_OR_RETURN(page, store_.WriteNew(node));
    } else {
      EOS_RETURN_IF_ERROR(store_.Write(&page, node));
    }
    out.push_back(LobEntry{node.Total(), page});
    return out;
  }
  // Split into evenly sized chunks, each at least half full.
  size_t n = node.entries.size();
  size_t q = CeilDiv(n, cap);
  size_t base = n / q;
  size_t extra = n % q;
  size_t pos = 0;
  for (size_t i = 0; i < q; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    LobNode chunk;
    chunk.level = node.level;
    chunk.entries.assign(node.entries.begin() + pos,
                         node.entries.begin() + pos + len);
    pos += len;
    PageId page;
    if (i == 0 && orig_page != kInvalidPage) {
      page = orig_page;
      EOS_RETURN_IF_ERROR(store_.Write(&page, chunk));
    } else {
      EOS_ASSIGN_OR_RETURN(page, store_.WriteNew(chunk));
    }
    out.push_back(LobEntry{chunk.Total(), page});
  }
  return out;
}

Status LobManager::ReplaceInPath(LobDescriptor* d,
                                 std::vector<PathLevel>* path,
                                 std::vector<LobEntry> repl) {
  for (size_t i = path->size(); i-- > 1;) {
    PathLevel& lvl = (*path)[i];
    lvl.node.entries.erase(lvl.node.entries.begin() + lvl.child_idx);
    lvl.node.entries.insert(lvl.node.entries.begin() + lvl.child_idx,
                            repl.begin(), repl.end());
    if (config_.adaptive_threshold && lvl.node.level == 0 &&
        lvl.node.entries.size() > store_.capacity()) {
      EOS_RETURN_IF_ERROR(CompactUnsafeRuns(&lvl.node));
    }
    EOS_ASSIGN_OR_RETURN(repl,
                         WriteNodeMaybeSplit(lvl.page, std::move(lvl.node)));
  }
  PathLevel& top = path->front();
  assert(top.page == kInvalidPage);
  top.node.entries.erase(top.node.entries.begin() + top.child_idx);
  top.node.entries.insert(top.node.entries.begin() + top.child_idx,
                          repl.begin(), repl.end());
  d->root = std::move(top.node);
  EOS_RETURN_IF_ERROR(FitRoot(d));
  EOS_RETURN_IF_ERROR(CollapseRoot(d));
  static obs::Gauge* tree_level =
      obs::MetricsRegistry::Default().gauge(obs::kLobTreeLevel);
  tree_level->Set(d->root.level);
  return Status::OK();
}

Status LobManager::FitRoot(LobDescriptor* d) {
  uint32_t cap = store_.capacity();
  while (d->root.entries.size() > root_capacity_) {
    size_t n = d->root.entries.size();
    // q == 1 yields the stable single-child root (CollapseRoot will not
    // re-pull a child larger than the root capacity); q >= 2 chunks are
    // each at least two entries because node capacity is at least 3.
    size_t q = CeilDiv(n, cap);
    size_t base = n / q;
    size_t extra = n % q;
    LobNode new_root;
    new_root.level = d->root.level + 1;
    size_t pos = 0;
    for (size_t i = 0; i < q; ++i) {
      size_t len = base + (i < extra ? 1 : 0);
      LobNode child;
      child.level = d->root.level;
      child.entries.assign(d->root.entries.begin() + pos,
                           d->root.entries.begin() + pos + len);
      pos += len;
      EOS_ASSIGN_OR_RETURN(PageId page, store_.WriteNew(child));
      new_root.entries.push_back(LobEntry{child.Total(), page});
    }
    d->root = std::move(new_root);
  }
  return Status::OK();
}

Status LobManager::CollapseRoot(LobDescriptor* d) {
  while (d->root.level > 0 && d->root.entries.size() == 1) {
    PageId child_page = d->root.entries[0].page;
    EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(child_page));
    if (child.entries.size() > root_capacity_) break;
    EOS_RETURN_IF_ERROR(store_.FreePage(child_page));
    d->root = std::move(child);
  }
  return Status::OK();
}

// ----- guarded execution -----------------------------------------------------

Status LobManager::RunGuarded(LobDescriptor* d, const char* what,
                              const std::function<Status()>& body) {
  EOS_RETURN_IF_ERROR(ScopedOpContext::CheckCurrent(what));
  SpaceReservation res(allocator());
  if (!res.active()) return body();  // nested: the outer guard unwinds
  LobDescriptor before;
  if (d != nullptr) before = *d;
  Status s = body();
  if (s.ok()) return res.Commit();
  // Unwind happens in ~SpaceReservation; put the descriptor back so the
  // caller's handle matches the restored on-disk state.
  if (d != nullptr) *d = before;
  return s;
}

// ----- lifecycle -------------------------------------------------------------

StatusOr<LobDescriptor> LobManager::CreateFrom(ByteView data) {
  obs::ScopedOp span("lob.create_from", 0, device());
  LobDescriptor out;
  Status s = RunGuarded(nullptr, "lob.create_from", [&]() -> Status {
    EOS_ASSIGN_OR_RETURN(out, CreateFromImpl(data));
    return Status::OK();
  });
  span.set_ok(s.ok());
  if (!s.ok()) return s;
  return out;
}

StatusOr<LobDescriptor> LobManager::CreateFromImpl(ByteView data) {
  LobDescriptor d = CreateEmpty();
  LobAppender app(this, &d, data.size());
  EOS_RETURN_IF_ERROR(app.Append(data));
  EOS_RETURN_IF_ERROR(app.Finish());
  return d;
}

Status LobManager::FreeSubtree(const LobEntry& entry, uint16_t level) {
  if (level == 0) {
    return allocator()->Free(Extent{entry.page, LeafPages(entry.count)});
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(FreeSubtree(e, level - 1));
  }
  return store_.FreePage(entry.page);
}

Status LobManager::Destroy(LobDescriptor* d) {
  obs::ScopedOp span("lob.destroy", 0, device());
  return span.Close(
      RunGuarded(d, "lob.destroy", [&] { return DestroyImpl(d); }));
}

Status LobManager::DestroyImpl(LobDescriptor* d) {
  if (log_ != nullptr) {
    // The undo image must be captured before the segments are freed.
    EOS_ASSIGN_OR_RETURN(Bytes old, ReadAll(*d));
    EOS_RETURN_IF_ERROR(log_->LogDestroy(d, old));
  }
  for (const LobEntry& e : d->root.entries) {
    EOS_RETURN_IF_ERROR(FreeSubtree(e, d->root.level));
  }
  d->root = LobNode{};
  return Status::OK();
}

// ----- reads -----------------------------------------------------------------

Status LobManager::Read(const LobDescriptor& d, uint64_t offset, uint64_t n,
                        Bytes* out) {
  obs::ScopedOp span("lob.read", 0, device());
  EOS_RETURN_IF_ERROR(span.Close(ScopedOpContext::CheckCurrent("lob.read")));
  obs::CostScope cost(obs::CostOp::kRead,
                      obs::ExpectedReadCost(CostFacts(d), offset, n),
                      device());
  Status s = ReadImpl(d, offset, n, out);
  cost.set_ok(s.ok());
  return span.Close(std::move(s));
}

Status LobManager::ReadImpl(const LobDescriptor& d, uint64_t offset,
                            uint64_t n, Bytes* out) {
  if (offset > d.size()) {
    return Status::OutOfRange("read offset beyond object size");
  }
  n = std::min(n, d.size() - offset);
  out->resize(n);
  if (n == 0) return Status::OK();
  LeafWalker walker(this, d);
  EOS_RETURN_IF_ERROR(walker.Seek(offset));
  uint64_t done = 0;
  uint64_t local = walker.local();
  if (exec_ != nullptr) {
    // Parallel plan: first walk the index collecting every leaf chunk the
    // range touches (pager-cached descent, cheap), then fan the device
    // transfers out to the executor workers and join. Each chunk lands in
    // its own disjoint slice of *out, so the tasks share nothing.
    struct LeafChunk {
      LeafRef leaf;
      uint64_t lo, hi, out_off;
    };
    std::vector<LeafChunk> chunks;
    while (done < n) {
      uint64_t chunk = std::min(n - done, walker.leaf_bytes() - local);
      chunks.push_back(LeafChunk{walker.leaf_, local, local + chunk, done});
      done += chunk;
      local = 0;
      if (done < n) {
        EOS_ASSIGN_OR_RETURN(bool more, walker.Next());
        if (!more) return Status::Corruption("object ended before its size");
      }
    }
    if (chunks.size() < 2) {
      for (const LeafChunk& c : chunks) {
        EOS_RETURN_IF_ERROR(
            ReadLeafBytes(c.leaf, c.lo, c.hi, out->data() + c.out_off));
      }
      return Status::OK();
    }
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(chunks.size());
    uint8_t* base = out->data();
    // The cache binding is thread-local; copy it by value so the executor
    // workers see the submitting operation's (cache, object, vseq).
    ScopedExtentCacheRef::Binding cache_ref;
    if (const auto* b = ScopedExtentCacheRef::Current()) cache_ref = *b;
    for (const LeafChunk& c : chunks) {
      tasks.push_back([this, &c, base, cache_ref] {
        ScopedExtentCacheRef cache_scope(cache_ref);
        return ReadLeafBytes(c.leaf, c.lo, c.hi, base + c.out_off);
      });
    }
    return exec_->RunBatch(std::move(tasks));
  }
  while (done < n) {
    EOS_RETURN_IF_ERROR(ScopedOpContext::CheckCurrent("lob.read"));
    uint64_t chunk = std::min(n - done, walker.leaf_bytes() - local);
    EOS_RETURN_IF_ERROR(
        walker.ReadLeafBytes(local, local + chunk, out->data() + done));
    done += chunk;
    local = 0;
    if (done < n) {
      EOS_ASSIGN_OR_RETURN(bool more, walker.Next());
      if (!more) return Status::Corruption("object ended before its size");
    }
  }
  return Status::OK();
}

StatusOr<Bytes> LobManager::ReadAll(const LobDescriptor& d) {
  Bytes out;
  EOS_RETURN_IF_ERROR(Read(d, 0, d.size(), &out));
  return out;
}

// ----- replace ---------------------------------------------------------------

Status LobManager::Replace(LobDescriptor* d, uint64_t offset, ByteView data) {
  obs::ScopedOp span("lob.replace", 0, device());
  if (cow_replace_) {
    // MVCC mode: affected segments are rewritten into fresh extents and the
    // spine republished, so a snapshot of the old version keeps reading its
    // own leaf pages; a mid-op failure is repaired by reservation unwind.
    return span.Close(RunGuarded(
        d, "lob.replace", [&] { return ReplaceCowImpl(d, offset, data); }));
  }
  // Replace mutates leaf pages in place under write-ahead logging, so a
  // partial run is repaired by recovery, not by unwind — only the entry
  // deadline gate applies (a mid-loop expiry would leave half-new bytes).
  EOS_RETURN_IF_ERROR(
      span.Close(ScopedOpContext::CheckCurrent("lob.replace")));
  return span.Close(ReplaceImpl(d, offset, data));
}

Status LobManager::ReplaceImpl(LobDescriptor* d, uint64_t offset,
                               ByteView data) {
  if (offset + data.size() > d->size()) {
    return Status::OutOfRange("replace range beyond object size");
  }
  if (data.empty()) return Status::OK();
  if (log_ != nullptr) {
    Bytes old;
    EOS_RETURN_IF_ERROR(Read(*d, offset, data.size(), &old));
    EOS_RETURN_IF_ERROR(log_->LogReplace(d, offset, old, data));
  }
  uint32_t ps = page_size();
  LeafWalker walker(this, *d);
  EOS_RETURN_IF_ERROR(walker.Seek(offset));
  uint64_t done = 0;
  uint64_t local = walker.local();
  while (done < data.size()) {
    uint64_t chunk = std::min<uint64_t>(data.size() - done,
                                        walker.leaf_bytes() - local);
    uint64_t p0 = local / ps;
    uint64_t p1 = (local + chunk - 1) / ps;
    uint32_t npages = static_cast<uint32_t>(p1 - p0 + 1);
    BufferPool::Buffer buf =
        BufferPool::Default()->Acquire(size_t{npages} * ps);
    // Replace updates leaf pages in place (the only operation that does;
    // it is protected by logging rather than shadowing, Section 4.5).
    EOS_RETURN_IF_ERROR(
        device()->ReadPages(walker.extent().first + p0, npages, buf.data()));
    std::memcpy(buf.data() + (local - p0 * ps), data.data() + done, chunk);
    EOS_RETURN_IF_ERROR(
        device()->WritePages(walker.extent().first + p0, npages,
                             buf.data()));
    done += chunk;
    local = 0;
    if (done < data.size()) {
      EOS_ASSIGN_OR_RETURN(bool more, walker.Next());
      if (!more) return Status::Corruption("object ended before its size");
    }
  }
  return Status::OK();
}

Status LobManager::ReplaceCowImpl(LobDescriptor* d, uint64_t offset,
                                  ByteView data) {
  if (offset + data.size() > d->size()) {
    return Status::OutOfRange("replace range beyond object size");
  }
  if (data.empty()) return Status::OK();
  if (log_ != nullptr) {
    Bytes old;
    EOS_RETURN_IF_ERROR(Read(*d, offset, data.size(), &old));
    EOS_RETURN_IF_ERROR(log_->LogReplace(d, offset, old, data));
  }
  // One segment per round: read the whole old segment, overlay the new
  // bytes, write the merged content into a fresh extent of the same page
  // count, splice it into the spine (shadowed), and free the old extent —
  // the free is parked by the enclosing reservation until commit, so a
  // snapshot pinning the old version keeps its bytes.
  uint64_t done = 0;
  while (done < data.size()) {
    EOS_RETURN_IF_ERROR(ScopedOpContext::CheckCurrent("lob.replace"));
    std::vector<PathLevel> path;
    LeafRef leaf;
    uint64_t local = 0;
    EOS_RETURN_IF_ERROR(
        DescendToLeaf(*d, offset + done, &path, &leaf, &local));
    uint64_t chunk =
        std::min<uint64_t>(data.size() - done, leaf.bytes - local);
    Bytes merged(leaf.bytes);
    EOS_RETURN_IF_ERROR(ReadLeafBytes(leaf, 0, leaf.bytes, merged.data()));
    std::memcpy(merged.data() + local, data.data() + done, chunk);
    EOS_ASSIGN_OR_RETURN(Extent fresh,
                         allocator()->Allocate(leaf.extent.pages));
    EOS_RETURN_IF_ERROR(WriteLeafPages(
        fresh.first, ByteView(merged.data(), merged.size())));
    EOS_RETURN_IF_ERROR(allocator()->Free(leaf.extent));
    EOS_RETURN_IF_ERROR(
        ReplaceInPath(d, &path, {LobEntry{leaf.bytes, fresh.first}}));
    done += chunk;
  }
  return Status::OK();
}

Status LobManager::Reorganize(LobDescriptor* d) {
  obs::ScopedOp span("lob.reorganize", 0, device());
  return span.Close(
      RunGuarded(d, "lob.reorganize", [&] { return ReorganizeImpl(d); }));
}

Status LobManager::ReorganizeImpl(LobDescriptor* d) {
  if (d->empty()) return Status::OK();
  // Stream the old object into a freshly allocated one, then swap. The
  // copy is chunked, so memory stays bounded for huge objects.
  LobDescriptor fresh = CreateEmpty();
  fresh.lsn = d->lsn;
  {
    LobAppender app(this, &fresh, d->size());
    LobReader reader(this, *d);
    const uint64_t kChunk = uint64_t{4} << 20;
    Bytes buf(std::min(kChunk, d->size()));
    while (!reader.AtEnd()) {
      EOS_ASSIGN_OR_RETURN(uint64_t got, reader.Read(buf.size(), buf.data()));
      if (got == 0) break;
      EOS_RETURN_IF_ERROR(app.Append(ByteView(buf.data(), got)));
    }
    EOS_RETURN_IF_ERROR(app.Finish());
  }
  if (fresh.size() != d->size()) {
    return Status::Corruption("reorganize produced a different size");
  }
  LogManager* log = log_;
  log_ = nullptr;  // content-neutral: nothing to log
  Status st = Destroy(d);
  log_ = log;
  EOS_RETURN_IF_ERROR(st);
  *d = std::move(fresh);
  return Status::OK();
}

Status LobManager::Write(LobDescriptor* d, uint64_t offset, ByteView data) {
  obs::ScopedOp span("lob.write", 0, device());
  if (offset > d->size()) {
    return span.Close(Status::OutOfRange("write offset beyond object size"));
  }
  uint64_t overlap = std::min<uint64_t>(data.size(), d->size() - offset);
  if (overlap > 0) {
    Status s = Replace(d, offset, data.Slice(0, overlap));
    if (!s.ok()) return span.Close(std::move(s));
  }
  if (overlap < data.size()) {
    Status s = Append(d, data.Slice(overlap, data.size() - overlap));
    if (!s.ok()) return span.Close(std::move(s));
  }
  return span.Close(Status::OK());
}

Status LobManager::Truncate(LobDescriptor* d, uint64_t new_size) {
  obs::ScopedOp span("lob.truncate", 0, device());
  if (new_size > d->size()) {
    return span.Close(Status::OutOfRange("truncate beyond object size"));
  }
  return span.Close(Delete(d, new_size, d->size() - new_size));
}

// ----- stats & invariants ----------------------------------------------------

Status LobManager::WalkStats(const LobEntry& entry, uint16_t level,
                             LobStats* stats) {
  if (level == 0) {
    uint64_t pages = LeafPages(entry.count);
    ++stats->num_segments;
    stats->leaf_pages += pages;
    stats->min_segment_pages = stats->num_segments == 1
                                   ? pages
                                   : std::min(stats->min_segment_pages, pages);
    stats->max_segment_pages = std::max(stats->max_segment_pages, pages);
    if (pages < config_.threshold_pages) ++stats->unsafe_segments;
    return Status::OK();
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  ++stats->index_pages;
  if (node.entries.size() < store_.min_entries()) ++stats->underfull_nodes;
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(WalkStats(e, level - 1, stats));
  }
  return Status::OK();
}

StatusOr<LobStats> LobManager::Stats(const LobDescriptor& d) {
  LobStats stats;
  stats.size_bytes = d.size();
  stats.depth = d.root.level;
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(WalkStats(e, d.root.level, &stats));
  }
  if (stats.num_segments > 0) {
    stats.avg_segment_pages =
        static_cast<double>(stats.leaf_pages) / stats.num_segments;
  }
  if (stats.leaf_pages > 0) {
    stats.leaf_utilization = static_cast<double>(stats.size_bytes) /
                             (static_cast<double>(stats.leaf_pages) *
                              page_size());
    stats.total_utilization =
        static_cast<double>(stats.size_bytes) /
        (static_cast<double>(stats.leaf_pages + stats.index_pages) *
         page_size());
  }
  return stats;
}

Status LobManager::WalkCheck(const LobEntry& entry, uint16_t level,
                             bool is_root_child) {
  if (entry.count == 0) {
    return Status::Corruption("zero-count entry");
  }
  if (level == 0) {
    if (entry.page == kInvalidPage) {
      return Status::Corruption("leaf entry without segment address");
    }
    // Cross-check against the buddy system: the segment's pages must be
    // live allocations (a dangling reference would read freed storage).
    EOS_ASSIGN_OR_RETURN(
        bool live,
        allocator()->IsAllocated(Extent{entry.page, LeafPages(entry.count)}));
    if (!live) {
      return Status::Corruption("leaf segment at page " +
                                std::to_string(entry.page) +
                                " references unallocated storage");
    }
    return Status::OK();
  }
  EOS_ASSIGN_OR_RETURN(bool node_live,
                       allocator()->IsAllocated(Extent{entry.page, 1}));
  if (!node_live) {
    return Status::Corruption("index node page " +
                              std::to_string(entry.page) +
                              " references unallocated storage");
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  if (node.level != level - 1) {
    return Status::Corruption("child node level mismatch");
  }
  if (node.Total() != entry.count) {
    return Status::Corruption("child subtree total does not match parent "
                              "entry count");
  }
  if (node.entries.empty() || node.entries.size() > store_.capacity()) {
    return Status::Corruption("index node entry count out of range");
  }
  // Non-root nodes normally hold >= 2 entries; children of a small client
  // root are exempt (see DESIGN.md).
  if (!is_root_child && node.entries.size() < 2) {
    return Status::Corruption("internal node with a single entry");
  }
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(WalkCheck(e, level - 1, false));
  }
  return Status::OK();
}

Status LobManager::CheckInvariants(const LobDescriptor& d) {
  if (d.root.entries.size() > root_capacity_) {
    return Status::Corruption("root exceeds its configured capacity");
  }
  if (d.root.level > 0 && d.root.entries.size() == 1) {
    // Transient single-child roots are collapsed by every update; finding
    // one at rest means CollapseRoot was skipped.
    EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(d.root.entries[0].page));
    if (child.entries.size() <= root_capacity_) {
      return Status::Corruption("uncollapsed single-child root");
    }
  }
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(WalkCheck(e, d.root.level, true));
  }
  return Status::OK();
}

Status LobManager::WalkCollect(const LobEntry& entry, uint16_t level,
                               std::vector<Extent>* out) {
  if (level == 0) {
    out->push_back(Extent{entry.page, LeafPages(entry.count)});
    return Status::OK();
  }
  out->push_back(Extent{entry.page, 1});
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(WalkCollect(e, level - 1, out));
  }
  return Status::OK();
}

Status LobManager::CollectExtents(const LobDescriptor& d,
                                  std::vector<Extent>* out) {
  for (const LobEntry& e : d.root.entries) {
    EOS_RETURN_IF_ERROR(WalkCollect(e, d.root.level, out));
  }
  return Status::OK();
}

}  // namespace eos
