// Byte-range delete (Section 4.3.2) with page reshuffling (Section 4.4).
//
// Phase 1 resolves the boundary leaves S (containing the first deleted
// byte) and S' (containing the last), computes L / N / R, reshuffles,
// writes the new segment N and frees the vacated leaf pages. Phase 2 walks
// the tree once, freeing wholly deleted subtrees from their parents'
// entries alone (no leaf access) and splicing the boundary replacements in,
// merging or rotating underfull nodes with siblings on the way back up.

#include <algorithm>
#include <cassert>

#include "common/math.h"
#include "lob/leaf_io.h"
#include "lob/lob_manager.h"
#include "lob/reshuffle.h"
#include "obs/op_tracer.h"
#include "txn/log_manager.h"

namespace eos {

struct LobManager::LeafSubst {
  PageId s_page = kInvalidPage;   // first page of S (left boundary leaf)
  PageId s2_page = kInvalidPage;  // first page of S' (right boundary leaf)
  std::vector<LobEntry> left;     // L (0 or 1 entries)
  std::vector<LobEntry> mid;      // N segment(s), placed at S's position
  std::vector<LobEntry> right;    // R (0 or 1 entries)
};

// During tree surgery, wholly deleted subtrees are freed from index
// information alone — but the two boundary leaves' pages were already freed
// (or partially kept) by phase 1, so they must be skipped here.
Status LobManager::FreeSubtreeForDelete(const LobEntry& entry, uint16_t level,
                                        const LeafSubst& subst) {
  if (level == 0) {
    if (entry.page == subst.s_page || entry.page == subst.s2_page) {
      return Status::OK();  // phase 1 already disposed of these pages
    }
    return allocator()->Free(Extent{entry.page, LeafPages(entry.count)});
  }
  EOS_ASSIGN_OR_RETURN(LobNode node, store_.Load(entry.page));
  for (const LobEntry& e : node.entries) {
    EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(e, level - 1, subst));
  }
  return store_.FreePage(entry.page);
}

Status LobManager::RepairUnderflow(LobDescriptor* d, uint64_t offset) {
  if (d->empty() || d->root.level == 0) return Status::OK();
  offset = std::min(offset, d->size() - 1);
  // Each round fixes the highest violation on the path; a fix at level L
  // gives the node at L-1 siblings to merge with next round.
  for (int guard = 0; guard < 128; ++guard) {
    std::vector<PathLevel> path;
    LeafRef leaf;
    uint64_t local = 0;
    EOS_RETURN_IF_ERROR(DescendToLeaf(*d, offset, &path, &leaf, &local));
    size_t bad = path.size();
    for (size_t i = 1; i < path.size(); ++i) {
      if (path[i].node.entries.size() < 2 &&
          path[i - 1].node.entries.size() >= 2) {
        bad = i;
        break;
      }
    }
    if (bad == path.size()) return Status::OK();
    PathLevel& parent = path[bad - 1];
    EOS_RETURN_IF_ERROR(
        FixUnderfullChild(&parent.node, parent.child_idx));
    if (bad == 1) {
      d->root = std::move(parent.node);
      EOS_RETURN_IF_ERROR(CollapseRoot(d));
    } else {
      EOS_ASSIGN_OR_RETURN(
          std::vector<LobEntry> repl,
          WriteNodeMaybeSplit(parent.page, std::move(parent.node)));
      path.resize(bad - 1);
      EOS_RETURN_IF_ERROR(ReplaceInPath(d, &path, std::move(repl)));
    }
  }
  return Status::OK();
}

Status LobManager::RepairJunction(LobNode* node, size_t junction) {
  if (node->level == 0) return Status::OK();  // children are segments
  // Check the two children adjacent to the junction; a fix can shift the
  // position by one, so loop a few bounded rounds.
  for (int round = 0; round < 4; ++round) {
    if (node->entries.size() < 2) return Status::OK();
    bool fixed = false;
    size_t candidates[2] = {junction > 0 ? junction - 1 : 0,
                            std::min(junction,
                                     node->entries.size() - 1)};
    for (size_t j : candidates) {
      if (j >= node->entries.size()) continue;
      EOS_ASSIGN_OR_RETURN(LobNode child,
                           store_.Load(node->entries[j].page));
      if (child.entries.size() < 2) {
        EOS_RETURN_IF_ERROR(FixUnderfullChild(node, j));
        fixed = true;
        break;
      }
    }
    if (!fixed) break;
  }
  return Status::OK();
}

Status LobManager::FixUnderfullChild(LobNode* parent, size_t idx) {
  if (parent->entries.size() < 2) {
    // No sibling to merge with; the single-entry chain dissolves at the
    // root (CollapseRoot), via RepairJunction when an ancestor merges, or
    // on the next update touching this path. See DESIGN.md.
    return Status::OK();
  }
  size_t li = idx > 0 ? idx - 1 : idx;
  size_t ri = li + 1;
  PageId lpage = parent->entries[li].page;
  PageId rpage = parent->entries[ri].page;
  EOS_ASSIGN_OR_RETURN(LobNode lnode, store_.Load(lpage));
  EOS_ASSIGN_OR_RETURN(LobNode rnode, store_.Load(rpage));
  size_t ln = lnode.entries.size();
  if (ln + rnode.entries.size() <= store_.capacity()) {
    // Merge right into left, then repair the junction: a merged-in
    // single-entry node may carry an underfull child of its own.
    lnode.entries.insert(lnode.entries.end(), rnode.entries.begin(),
                         rnode.entries.end());
    EOS_RETURN_IF_ERROR(RepairJunction(&lnode, ln));
    EOS_RETURN_IF_ERROR(store_.Write(&lpage, lnode));
    EOS_RETURN_IF_ERROR(store_.FreePage(rpage));
    parent->entries[li] = LobEntry{lnode.Total(), lpage};
    parent->entries.erase(parent->entries.begin() + ri);
    return Status::OK();
  }
  // Rotate: redistribute entries evenly between the two siblings, then
  // repair whichever side inherited the junction.
  std::vector<LobEntry> all(std::move(lnode.entries));
  all.insert(all.end(), rnode.entries.begin(), rnode.entries.end());
  size_t half = all.size() / 2;
  lnode.entries.assign(all.begin(), all.begin() + half);
  rnode.entries.assign(all.begin() + half, all.end());
  if (ln <= half) {
    EOS_RETURN_IF_ERROR(RepairJunction(&lnode, ln));
  }
  if (ln >= half) {
    EOS_RETURN_IF_ERROR(RepairJunction(&rnode, ln - half));
  }
  EOS_RETURN_IF_ERROR(store_.Write(&lpage, lnode));
  EOS_RETURN_IF_ERROR(store_.Write(&rpage, rnode));
  parent->entries[li] = LobEntry{lnode.Total(), lpage};
  parent->entries[ri] = LobEntry{rnode.Total(), rpage};
  return Status::OK();
}

StatusOr<LobNode> LobManager::DeleteInNode(LobNode node, uint64_t lo,
                                           uint64_t hi,
                                           const LeafSubst& subst) {
  const uint64_t total = node.Total();
  (void)total;
  assert(lo < hi && hi <= total && (lo > 0 || hi < total));
  uint64_t off_l = lo;
  int il = node.FindChild(&off_l);
  uint64_t off_r = hi - 1;
  int ir = node.FindChild(&off_r);
  assert(il <= ir);
  const uint32_t min_entries = std::max<uint32_t>(2, store_.min_entries());

  if (node.level == 0) {
    // Leaf-parent: splice the precomputed boundary replacements and free
    // the fully deleted leaves in between (their addresses and sizes come
    // from this node's entries alone — no leaf page is touched).
    std::vector<LobEntry> spliced(node.entries.begin(),
                                  node.entries.begin() + il);
    for (int j = il; j <= ir; ++j) {
      const LobEntry& e = node.entries[j];
      // N (mid) is anchored at S''s position: when N is non-empty, S' has
      // surviving bytes past the deletion end, so its subtree is never
      // dropped wholesale — unlike S's, whose subtree vanishes entirely
      // when the deletion starts at its first byte.
      if (e.page == subst.s_page) {
        spliced.insert(spliced.end(), subst.left.begin(), subst.left.end());
        if (subst.s2_page == subst.s_page) {
          spliced.insert(spliced.end(), subst.mid.begin(), subst.mid.end());
          spliced.insert(spliced.end(), subst.right.begin(),
                         subst.right.end());
        }
      } else if (e.page == subst.s2_page) {
        spliced.insert(spliced.end(), subst.mid.begin(), subst.mid.end());
        spliced.insert(spliced.end(), subst.right.begin(),
                       subst.right.end());
      } else {
        EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(e, 0, subst));
      }
    }
    spliced.insert(spliced.end(), node.entries.begin() + ir + 1,
                   node.entries.end());
    node.entries = std::move(spliced);
    return node;
  }

  // Internal node: free wholly deleted child subtrees.
  for (int j = il + 1; j < ir; ++j) {
    EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(node.entries[j], node.level, subst));
  }

  if (il == ir) {
    const LobEntry e = node.entries[il];
    uint64_t lo_c = off_l;
    uint64_t hi_c = hi - (lo - off_l);  // hi rebased to the child
    if (lo_c == 0 && hi_c == e.count) {
      // The child is wholly deleted (boundary substitutions are provably
      // empty in this case — surviving bytes would extend the range).
      EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(e, node.level, subst));
      node.entries.erase(node.entries.begin() + il);
      return node;
    }
    EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(e.page));
    EOS_ASSIGN_OR_RETURN(LobNode res,
                         DeleteInNode(std::move(child), lo_c, hi_c, subst));
    size_t res_n = res.entries.size();
    EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> repl,
                         WriteNodeMaybeSplit(e.page, std::move(res)));
    node.entries.erase(node.entries.begin() + il);
    node.entries.insert(node.entries.begin() + il, repl.begin(), repl.end());
    if (repl.size() == 1 && res_n < min_entries) {
      EOS_RETURN_IF_ERROR(FixUnderfullChild(&node, il));
    }
    return node;
  }

  // Boundaries in different children: recurse into each side.
  const LobEntry el = node.entries[il];
  const LobEntry er = node.entries[ir];
  uint64_t lo_c = off_l;            // deletion start within left child
  uint64_t hi_r = off_r + 1;        // deletion end within right child
  bool have_l = lo_c > 0;
  bool have_r = hi_r < er.count;
  LobNode lres, rres;
  if (have_l) {
    EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(el.page));
    EOS_ASSIGN_OR_RETURN(
        lres, DeleteInNode(std::move(child), lo_c, el.count, subst));
  } else {
    EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(el, node.level, subst));
  }
  if (have_r) {
    EOS_ASSIGN_OR_RETURN(LobNode child, store_.Load(er.page));
    EOS_ASSIGN_OR_RETURN(rres,
                         DeleteInNode(std::move(child), 0, hi_r, subst));
  } else {
    EOS_RETURN_IF_ERROR(FreeSubtreeForDelete(er, node.level, subst));
  }

  std::vector<LobEntry> repl;
  bool check_underflow = false;
  if (have_l && have_r) {
    // The two boundary children become adjacent. Concatenating and letting
    // the splitter rebalance handles every size combination: a small merge
    // becomes one node, an underfull neighbor is topped up, and a child
    // that outgrew its page (new N entries) is split.
    size_t junction = lres.entries.size();
    lres.entries.insert(lres.entries.end(), rres.entries.begin(),
                        rres.entries.end());
    EOS_RETURN_IF_ERROR(RepairJunction(&lres, junction));
    size_t n = lres.entries.size();
    EOS_RETURN_IF_ERROR(store_.FreePage(er.page));
    EOS_ASSIGN_OR_RETURN(repl, WriteNodeMaybeSplit(el.page,
                                                   std::move(lres)));
    check_underflow = repl.size() == 1 && n < min_entries;
  } else if (have_l || have_r) {
    LobNode& res = have_l ? lres : rres;
    PageId orig = have_l ? el.page : er.page;
    size_t n = res.entries.size();
    EOS_ASSIGN_OR_RETURN(repl, WriteNodeMaybeSplit(orig, std::move(res)));
    check_underflow = repl.size() == 1 && n < min_entries;
  }
  node.entries.erase(node.entries.begin() + il,
                     node.entries.begin() + ir + 1);
  node.entries.insert(node.entries.begin() + il, repl.begin(), repl.end());
  if (check_underflow) {
    EOS_RETURN_IF_ERROR(FixUnderfullChild(&node, il));
  }
  return node;
}

Status LobManager::Delete(LobDescriptor* d, uint64_t offset, uint64_t n) {
  obs::ScopedOp span("lob.delete", 0, device());
  obs::CostScope cost(obs::CostOp::kDelete,
                      obs::ExpectedDeleteCost(CostFacts(*d), offset, n,
                                              config_.threshold_pages),
                      device());
  Status s =
      RunGuarded(d, "lob.delete", [&] { return DeleteImpl(d, offset, n); });
  cost.set_ok(s.ok());
  return span.Close(std::move(s));
}

Status LobManager::DeleteImpl(LobDescriptor* d, uint64_t offset, uint64_t n) {
  if (offset > d->size()) {
    return Status::OutOfRange("delete offset beyond object size");
  }
  n = std::min(n, d->size() - offset);
  if (n == 0) return Status::OK();
  if (log_ != nullptr) {
    Bytes old;
    EOS_RETURN_IF_ERROR(Read(*d, offset, n, &old));
    EOS_RETURN_IF_ERROR(log_->LogDelete(d, offset, old));
  }
  const uint64_t start = offset;
  const uint64_t end = offset + n;
  if (start == 0 && end == d->size()) {
    // Object truncation at byte 0: equivalent to deleting the object;
    // no segment page is accessed (Section 4.3.2).
    LogManager* log = log_;
    log_ = nullptr;  // already logged above
    Status s = Destroy(d);
    log_ = log;
    return s;
  }

  const uint32_t ps = page_size();
  std::vector<PathLevel> path_l, path_r;
  LeafRef leaf_l, leaf_r;
  uint64_t local_l = 0, local_r = 0;
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, start, &path_l, &leaf_l, &local_l));
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, end - 1, &path_r, &leaf_r, &local_r));
  const bool same_leaf = leaf_l.extent.first == leaf_r.extent.first;

  // Step 2: L from S around page P; N and R from S' around page Q.
  const uint64_t p = local_l / ps;
  const uint64_t pb = local_l % ps;
  const uint64_t lc = p * ps + pb;
  const uint64_t s2c = leaf_r.bytes;
  const uint64_t s2p = leaf_r.extent.pages;
  const uint64_t q = local_r / ps;
  const uint64_t qb = local_r % ps;
  const uint64_t qc = (q == s2p - 1) ? s2c - q * ps : ps;
  const uint64_t nc = qc - (qb + 1);
  const uint64_t rc = (q == s2p - 1) ? 0 : s2c - (q + 1) * ps;

  ReshuffleInput in;
  in.lc = lc;
  in.nc = nc;
  in.rc = rc;
  in.page_size = ps;
  in.threshold = EffectiveThreshold(*d, path_l.back().node.entries.size());
  in.max_segment_pages = max_segment_pages_;
  ReshufflePlan plan = PlanReshuffle(in);

  // Steps 3-4: gather N's bytes (from L's tail, Q's suffix, R's head),
  // write N, then free the vacated leaf pages.
  Bytes nbuf;
  if (plan.nc > 0) {
    std::vector<std::pair<uint64_t, uint64_t>> l_ranges = {{plan.lc, lc}};
    std::vector<std::pair<uint64_t, uint64_t>> r_ranges = {
        {q * ps + qb + 1, q * ps + qc},
        {(q + 1) * ps, (q + 1) * ps + plan.from_r},
    };
    std::vector<Bytes> parts;
    if (same_leaf) {
      std::vector<std::pair<uint64_t, uint64_t>> ranges = {
          l_ranges[0], r_ranges[0], r_ranges[1]};
      EOS_RETURN_IF_ERROR(lob_internal::ReadLeafRuns(
          device(), ps, leaf_l.extent.first, ranges, &parts));
    } else {
      std::vector<Bytes> lparts, rparts;
      EOS_RETURN_IF_ERROR(lob_internal::ReadLeafRuns(
          device(), ps, leaf_l.extent.first, l_ranges, &lparts));
      EOS_RETURN_IF_ERROR(lob_internal::ReadLeafRuns(
          device(), ps, leaf_r.extent.first, r_ranges, &rparts));
      parts = {std::move(lparts[0]), std::move(rparts[0]),
               std::move(rparts[1])};
    }
    nbuf.reserve(plan.nc);
    for (const Bytes& part : parts) {
      nbuf.insert(nbuf.end(), part.begin(), part.end());
    }
    assert(nbuf.size() == plan.nc);
  }
  EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> mid, WriteSegments(nbuf));

  const uint64_t l_pages = LeafPages(plan.lc);
  const uint64_t r_shift =
      rc == 0 ? 0 : (plan.rc == 0 ? s2p - (q + 1) : plan.from_r / ps);
  const uint64_t r_keep = q + 1 + r_shift;  // first surviving page of S'
  if (same_leaf) {
    if (r_keep > l_pages) {
      EOS_RETURN_IF_ERROR(allocator()->Free(
          Extent{leaf_l.extent.first + l_pages,
                 static_cast<uint32_t>(r_keep - l_pages)}));
    }
  } else {
    if (leaf_l.extent.pages > l_pages) {
      EOS_RETURN_IF_ERROR(allocator()->Free(
          Extent{leaf_l.extent.first + l_pages,
                 static_cast<uint32_t>(leaf_l.extent.pages - l_pages)}));
    }
    if (r_keep > 0) {
      EOS_RETURN_IF_ERROR(allocator()->Free(
          Extent{leaf_r.extent.first, static_cast<uint32_t>(r_keep)}));
    }
  }

  LeafSubst subst;
  subst.s_page = leaf_l.extent.first;
  subst.s2_page = leaf_r.extent.first;
  if (plan.lc > 0) {
    subst.left.push_back(LobEntry{plan.lc, leaf_l.extent.first});
  }
  subst.mid = std::move(mid);
  if (plan.rc > 0) {
    subst.right.push_back(LobEntry{plan.rc, leaf_r.extent.first + r_keep});
  }

  // Step 5: tree surgery + count propagation; step 6: root fix.
  EOS_ASSIGN_OR_RETURN(LobNode new_root,
                       DeleteInNode(std::move(d->root), start, end, subst));
  d->root = std::move(new_root);
  EOS_RETURN_IF_ERROR(FitRoot(d));
  EOS_RETURN_IF_ERROR(CollapseRoot(d));
  // The cut's two sides (bytes start-1 and start) may live in different
  // subtrees; repair the path to each.
  if (start > 0) {
    EOS_RETURN_IF_ERROR(RepairUnderflow(d, start - 1));
  }
  return RepairUnderflow(d, start);
}

}  // namespace eos
