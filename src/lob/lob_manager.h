#ifndef EOS_LOB_LOB_MANAGER_H_
#define EOS_LOB_LOB_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "buddy/segment_allocator.h"
#include "buddy/space_reservation.h"
#include "common/deadline.h"
#include "common/bytes.h"
#include "common/status.h"
#include "io/buffer_pool.h"
#include "io/io_executor.h"
#include "io/pager.h"
#include "lob/descriptor.h"
#include "lob/lob_config.h"
#include "lob/node.h"
#include "obs/cost_model.h"

namespace eos {

class LogManager;

// Aggregate shape/utilization statistics of one large object.
struct LobStats {
  uint64_t size_bytes = 0;
  uint64_t num_segments = 0;
  uint64_t leaf_pages = 0;
  uint64_t index_pages = 0;  // internal nodes, excluding the root
  uint32_t depth = 0;        // 0: root entries point directly at segments
  uint64_t min_segment_pages = 0;
  uint64_t max_segment_pages = 0;
  double avg_segment_pages = 0.0;
  // Segments smaller than the threshold T (the clustering-decay metric of
  // Section 4.4).
  uint64_t unsafe_segments = 0;
  // Nodes (excluding root) below half-full; normal splits never produce
  // them, but boundary cases of range deletion may (see DESIGN.md).
  uint64_t underfull_nodes = 0;

  // size / (leaf_pages * page_size): the paper's storage utilization.
  double leaf_utilization = 0.0;
  // size / ((leaf_pages + index_pages) * page_size): utilization including
  // index overhead.
  double total_utilization = 0.0;
};

// Byte range of an object that repair could not recover. Reads of a
// repaired object return zeroes for these bytes; the Database layer
// persists the ranges alongside the object's root so clients can tell
// degraded data from real zeroes.
struct HoleRange {
  uint64_t offset = 0;
  uint64_t length = 0;
};

inline bool operator==(const HoleRange& a, const HoleRange& b) {
  return a.offset == b.offset && a.length == b.length;
}

// What a scrubbed page was serving as when it failed verification.
enum class PageRole : uint8_t {
  kUnknown = 0,
  kSuperblock,
  kAllocatorMap,  // a buddy space's directory page
  kDirectory,     // index or leaf page of the object directory
  kIndexNode,     // index node of a user object
  kLeaf,          // leaf segment page of a user object
  kLog,           // write-ahead log storage
};

const char* PageRoleName(PageRole role);

// One page scrub could not read back clean.
struct ScrubIssue {
  uint64_t object_id = 0;  // 0: not object-scoped (superblock, amap, dir)
  PageRole role = PageRole::kUnknown;
  PageId page = kInvalidPage;
  std::string message;
};

struct ScrubReport {
  uint64_t pages_verified = 0;
  // Pages rewritten from their mirror copy during this pass (volume sets
  // only): the scrub read found one copy bad and healed it in place, so
  // the page does not appear in `issues`.
  uint64_t repaired_from_replica = 0;
  std::vector<ScrubIssue> issues;

  bool clean() const { return issues.empty(); }
};

// The EOS large object manager (Section 4).
//
// A large object is an uninterpreted byte string stored in a sequence of
// variable-size segments of physically contiguous pages, indexed by a
// positional B-tree whose root (the LobDescriptor) is placed by the client.
// Operations: append, read, replace, insert, delete — each touching I/O
// proportional to the bytes involved, not the object size.
//
// Leaf data deliberately bypasses the page cache and is transferred with
// one multi-page access per physically contiguous run, so the device's
// IoStats reflect the paper's seek/transfer cost model.
//
// Not thread-safe per object: callers serialize operations on one
// descriptor (lock the root, Section 4.5).
class LobManager {
 public:
  LobManager(Pager* pager, SegmentAllocator* allocator,
             const LobConfig& config);

  // ----- lifecycle ---------------------------------------------------------

  // A fresh zero-length object. No storage is allocated until data arrives.
  LobDescriptor CreateEmpty() const { return LobDescriptor{}; }

  // Convenience: creates an object holding `data`, sized exactly (the
  // "size known in advance" path of Section 4.1).
  StatusOr<LobDescriptor> CreateFrom(ByteView data);

  // Frees every segment and index page of the object; descriptor becomes
  // a valid empty object.
  Status Destroy(LobDescriptor* d);

  // ----- reads -------------------------------------------------------------

  // Reads min(n, size - offset) bytes starting at `offset` into *out
  // (replacing its contents). offset > size is OutOfRange.
  Status Read(const LobDescriptor& d, uint64_t offset, uint64_t n,
              Bytes* out);

  StatusOr<Bytes> ReadAll(const LobDescriptor& d);

  // ----- updates -----------------------------------------------------------

  // Overwrites data.size() bytes in place starting at `offset`; the range
  // must lie within the object (replace never grows it, Section 4.2).
  Status Replace(LobDescriptor* d, uint64_t offset, ByteView data);

  // Inserts `data` so that its first byte lands at byte `offset`
  // (0 <= offset <= size; offset == size appends). Section 4.3.1 / 4.4.
  Status Insert(LobDescriptor* d, uint64_t offset, ByteView data);

  // Deletes n bytes starting at `offset` (clamped to the object end).
  // Section 4.3.2 / 4.4.
  Status Delete(LobDescriptor* d, uint64_t offset, uint64_t n);

  // Appends at the end (one-shot; for multi-append building use
  // LobAppender, which applies the doubling growth scheme + final trim).
  Status Append(LobDescriptor* d, ByteView data);

  // pwrite-style convenience: overwrites in place within the current size
  // and appends whatever extends past the end (offset <= size). Composed
  // from Replace and Append, so the same logging/shadowing rules apply to
  // each part.
  Status Write(LobDescriptor* d, uint64_t offset, ByteView data);

  // Deletes every byte from new_size to the end. Touches no leaf pages
  // (Section 4.3.2's special case).
  Status Truncate(LobDescriptor* d, uint64_t new_size);

  // Rewrites the object into its optimal layout — a minimal sequence of
  // maximal segments, utilization back to ~100% — as if it had been
  // created with its size known in advance. Useful once an often-edited
  // object becomes read-mostly ("for more static objects the larger the
  // segment size the better", Section 4.4). Content is unchanged; the
  // operation is not logged.
  Status Reorganize(LobDescriptor* d);

  // ----- introspection -----------------------------------------------------

  StatusOr<LobStats> Stats(const LobDescriptor& d);

  // Structural validation: counts consistent, levels monotone, entries in
  // [1, capacity] ([2, cap] for internal nodes), segment page counts equal
  // ceil(bytes/page_size) by construction of the traversal.
  Status CheckInvariants(const LobDescriptor& d);

  // Appends every extent the object occupies — index-node pages and leaf
  // segments — to *out. Crash recovery's reachability scan rebuilds the
  // allocation maps from the union of these over all recovered roots.
  Status CollectExtents(const LobDescriptor& d, std::vector<Extent>* out);

  // ----- scrub / salvage (integrity layer) ---------------------------------

  // Verifies every page the object occupies by reading it back through the
  // *device* — deliberately bypassing the pager, whose cached copies would
  // mask on-media rot (callers flush first). On a verified device each read
  // is checksum-checked; structurally invalid index nodes are reported even
  // when the checksum passes. Every unreadable page becomes one issue
  // tagged `object_id` (roles kIndexNode/kLeaf); intact subtrees keep being
  // scanned, so the report names exactly the corrupt pages.
  Status ScrubObject(const LobDescriptor& d, uint64_t object_id,
                     ScrubReport* report);

  // Best-effort device-direct extraction of the object's content for
  // repair: unreadable leaf pages are zero-filled and recorded in *holes;
  // an unreadable index node drops its whole byte range (the parent entry
  // says how long it is) into one hole. The result is always exactly
  // d.size() bytes, with *holes sorted and coalesced.
  StatusOr<Bytes> Salvage(const LobDescriptor& d,
                          std::vector<HoleRange>* holes);

  // -------------------------------------------------------------------------

  uint32_t page_size() const { return store_.page_size(); }
  uint32_t max_segment_pages() const { return max_segment_pages_; }
  uint32_t root_capacity() const { return root_capacity_; }
  const LobConfig& config() const { return config_; }

  // The cheap shape facts the paper's cost formulas consume, for the
  // obs::CostScope conformance probes in the public wrappers and the
  // aging/defrag tooling. Utilization is left at 1.0 (the fresh ideal) so
  // a ratio against these inputs measures layout drift, not expectations
  // about it.
  obs::CostInputs CostFacts(const LobDescriptor& d) const;
  NodeStore* node_store() { return &store_; }
  SegmentAllocator* allocator() { return store_.allocator(); }
  PageDevice* device() { return store_.pager()->device(); }

  // Section 4.5 hooks: logical logging and index-page shadowing.
  void set_log_manager(LogManager* log) { log_ = log; }
  LogManager* log_manager() const { return log_; }
  void set_shadowing(bool on) { store_.set_shadowing(on); }

  // Copy-on-write Replace (MVCC mode, DESIGN.md §13). Replace is the one
  // operation that normally overwrites leaf pages in place; with CoW on,
  // every affected segment is instead rewritten into a fresh extent and
  // spliced into the spine through the ordinary shadowed path, so a
  // concurrent snapshot reader of the superseded version never observes
  // half-replaced bytes. The rewrite runs under RunGuarded: a mid-op
  // failure unwinds to the exact pre-op tree.
  void set_cow_replace(bool on) { cow_replace_ = on; }
  bool cow_replace() const { return cow_replace_; }

  // True when the ambient ScopedExtentCacheRef binding (if any) already
  // holds this leaf extent's image; read-ahead skips prefetching it.
  bool CacheHasExtent(const Extent& extent) const;

  // Parallel leaf I/O: with a non-null executor, multi-segment reads fan
  // their device transfers out to the executor's workers and join before
  // returning. Off (nullptr, the default) every transfer is issued inline
  // in tree order, which keeps the device's seek accounting deterministic —
  // the cost-model tests rely on that. The executor must outlive the
  // manager.
  void set_io_executor(IoExecutor* exec) { exec_ = exec; }
  IoExecutor* io_executor() const { return exec_; }

 private:
  friend class LobAppender;
  friend class LeafWalker;

  // Runs `body` under a SpaceReservation so a mid-operation failure —
  // injected NoSpace, I/O error, expired deadline — unwinds every page the
  // operation touched and restores *d to its pre-op value. Nested calls
  // (Insert delegating to Append, Write composing Replace+Append) are
  // pass-throughs: the outermost guard owns the unwind. `d` may be null
  // (CreateFrom has no prior descriptor to restore).
  Status RunGuarded(LobDescriptor* d, const char* what,
                    const std::function<Status()>& body);

  // The public operations above are thin obs::ScopedOp span wrappers (see
  // src/obs/op_tracer.h) around these bodies.
  StatusOr<LobDescriptor> CreateFromImpl(ByteView data);
  Status DestroyImpl(LobDescriptor* d);
  Status ReadImpl(const LobDescriptor& d, uint64_t offset, uint64_t n,
                  Bytes* out);
  Status ReplaceImpl(LobDescriptor* d, uint64_t offset, ByteView data);
  Status ReplaceCowImpl(LobDescriptor* d, uint64_t offset, ByteView data);
  Status InsertImpl(LobDescriptor* d, uint64_t offset, ByteView data);
  Status DeleteImpl(LobDescriptor* d, uint64_t offset, uint64_t n);
  Status AppendImpl(LobDescriptor* d, ByteView data);
  Status ReorganizeImpl(LobDescriptor* d);

  struct PathLevel {
    PageId page = kInvalidPage;  // kInvalidPage for the root level
    LobNode node;
    int child_idx = -1;
  };

  // A leaf segment as seen from its parent entry.
  struct LeafRef {
    Extent extent;
    uint64_t bytes = 0;
  };

  uint32_t LeafPages(uint64_t bytes) const;

  // Descends to the leaf containing byte `offset` (offset < size), filling
  // the path (root first) and the leaf-local offset.
  Status DescendToLeaf(const LobDescriptor& d, uint64_t offset,
                       std::vector<PathLevel>* path, LeafRef* leaf,
                       uint64_t* local) const;

  // Replaces the child entry recorded in path.back() with `repl`, then
  // writes the spine back bottom-up, splitting nodes as needed and growing
  // the root level on root overflow.
  Status ReplaceInPath(LobDescriptor* d, std::vector<PathLevel>* path,
                       std::vector<LobEntry> repl);

  // Splits an oversized entry list into chunks and writes each as a node,
  // reusing `orig_page` for the first chunk when valid. Returns the parent
  // entries describing the written nodes.
  StatusOr<std::vector<LobEntry>> WriteNodeMaybeSplit(PageId orig_page,
                                                      LobNode&& node);

  // Pushes root entries down into fresh nodes until they fit root_capacity.
  Status FitRoot(LobDescriptor* d);

  // Collapses single-child roots (Section 4.3.2 step 6).
  Status CollapseRoot(LobDescriptor* d);

  // Allocates segments for `data` (sequence of maximal segments, last one
  // exactly sized) and writes it; returns the leaf entries.
  StatusOr<std::vector<LobEntry>> WriteSegments(ByteView data);

  // Direct leaf I/O, bypassing the pager.
  Status ReadLeafBytes(const LeafRef& leaf, uint64_t lo, uint64_t hi,
                       uint8_t* out);
  Status WriteLeafPages(PageId first, ByteView data);

  // Frees the whole subtree under `entry` at `level` (level 0 = leaf).
  Status FreeSubtree(const LobEntry& entry, uint16_t level);

  // Dissolves underfull (single-entry) nodes left on the path to `offset`
  // when a splice could not find siblings at its own level; iterating
  // top-down gives lower levels new siblings, so chains unravel within
  // depth rounds. See delete.cc.
  Status RepairUnderflow(LobDescriptor* d, uint64_t offset);

  // Delete recursion over an in-memory node; see delete.cc.
  struct LeafSubst;
  Status FreeSubtreeForDelete(const LobEntry& entry, uint16_t level,
                              const LeafSubst& subst);
  StatusOr<LobNode> DeleteInNode(LobNode node, uint64_t lo, uint64_t hi,
                                 const LeafSubst& subst);
  Status FixUnderfullChild(LobNode* parent, size_t idx);

  // After two sibling nodes' entry lists are joined inside `node` at
  // position `junction`, the adjacent child nodes may be single-entry
  // chains inherited from a side that had no siblings of its own; now that
  // they do, merge/rotate them (recursively down the chain).
  Status RepairJunction(LobNode* node, size_t junction);

  // Effective threshold for an update on `d` whose leaf-parent currently
  // holds `parent_entries` entries: the object's hint (or the manager
  // default), scaled by the [Bili91a] adaptive policy when enabled.
  uint32_t EffectiveThreshold(const LobDescriptor& d,
                              size_t parent_entries) const;

  // [Bili91a]: when the leaf-parent is about to split, coalesce runs of
  // adjacent unsafe segments into single larger segments.
  Status CompactUnsafeRuns(LobNode* leaf_parent);

  // Device-direct tree walks of the integrity layer; see scrub.cc.
  Status WalkScrub(const LobEntry& entry, uint16_t level, uint64_t object_id,
                   ScrubReport* report);
  Status WalkSalvage(const LobEntry& entry, uint16_t level, uint64_t offset,
                     uint8_t* out, std::vector<HoleRange>* holes);

  Status WalkStats(const LobEntry& entry, uint16_t level, LobStats* stats);
  Status WalkCheck(const LobEntry& entry, uint16_t level, bool is_root_child);
  Status WalkCollect(const LobEntry& entry, uint16_t level,
                     std::vector<Extent>* out);

  LobConfig config_;
  NodeStore store_;
  uint32_t max_segment_pages_;
  uint32_t root_capacity_;
  LogManager* log_ = nullptr;
  IoExecutor* exec_ = nullptr;
  bool cow_replace_ = false;
};

// Multi-append session (Section 4.1): when the eventual size is unknown,
// successively allocated segments double in size until the maximum; a final
// Finish() trims the last segment's unused pages back to the buddy system
// with one-page precision. With a size hint, segments are allocated exactly.
//
//   LobAppender app(&mgr, &desc);          // or (&mgr, &desc, total_hint)
//   app.Append(chunk1); app.Append(chunk2);
//   app.Finish();
class LobAppender {
 public:
  LobAppender(LobManager* mgr, LobDescriptor* d, uint64_t size_hint = 0);
  ~LobAppender();  // Finish() if the caller forgot (errors are dropped)

  LobAppender(const LobAppender&) = delete;
  LobAppender& operator=(const LobAppender&) = delete;

  Status Append(ByteView data);
  Status Finish();

 private:
  // Session state snapshot for per-call unwind: a failed Append() puts the
  // appender (and, via the enclosing SpaceReservation, the tree and the
  // allocation maps) back exactly as they were before the call.
  struct SessionState {
    uint64_t appended;
    Extent cur;
    uint64_t cur_bytes;
    uint32_t cur_pages_used;
    uint32_t next_pages;
    Bytes page_buf;
  };
  SessionState SaveState() const;
  void RestoreState(SessionState&& s);

  Status AppendBody(ByteView data);  // Append() minus the guard

  Status OpenSegment(uint64_t want_bytes);
  Status CloseSegment();  // trim + attach entry to the tree
  Status FlushPageBuffer();
  // Hands the queued page runs to the device as one vectored batch. Runs
  // into the open segment are queued rather than written immediately, so a
  // page-buffer flush followed by a bulk append lands in a single
  // scatter-gather submit; every Append/CloseSegment drains the queue
  // before returning because bulk runs alias the caller's data.
  Status SubmitPending();

  LobManager* mgr_;
  LobDescriptor* d_;
  uint64_t size_hint_;
  uint64_t appended_ = 0;
  bool finished_ = false;

  Extent cur_;                 // open segment (invalid if none)
  uint64_t cur_bytes_ = 0;     // bytes logically in the open segment
  uint32_t cur_pages_used_ = 0;  // full pages already written
  uint32_t next_pages_ = 1;    // doubling growth state
  Bytes page_buf_;             // partial trailing page
  std::vector<ConstPageRun> pending_runs_;
  std::vector<BufferPool::Buffer> pending_bufs_;  // staging for padded pages
};

}  // namespace eos

#endif  // EOS_LOB_LOB_MANAGER_H_
