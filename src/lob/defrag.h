#ifndef EOS_LOB_DEFRAG_H_
#define EOS_LOB_DEFRAG_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "lob/lob_manager.h"
#include "obs/metrics.h"

namespace eos {

// Online defragmentation (DESIGN.md §12). Weeks of create/append/delete
// churn shatter segments and free space until per-object read cost drifts
// off the Section 4 model ("To BLOB or Not To BLOB" measures 2-4x). The
// defragmenter reverses that drift in the background: each tick it scans
// the object population, scores every object's *scatter* (current per-scan
// page I/O over the same bytes' ideal layout — no physical reads needed),
// and migrates the worst cold offenders through LobManager::Reorganize.

struct DefragOptions {
  // Start the background tick thread when the database opens. Off by
  // default; DefragTick() always works regardless, so tests and tools can
  // drive deterministic single ticks.
  bool enabled = false;
  uint64_t interval_ms = 250;

  // Migration threshold: objects whose scatter is below this are left
  // alone. 1.0 is a perfectly laid-out object; the bench gate treats 1.25
  // as "conforming", so the default only chases clearly degraded objects.
  double min_scatter = 1.4;

  // Per-tick throttle. Migration is foreground-blocking per object (it
  // takes the database's writer latch), so these bound the latency bubble
  // a single tick may introduce.
  uint32_t max_objects_per_tick = 4;
  uint64_t max_bytes_per_tick = 16ull << 20;

  // Per-migration deadline (0 = none). A migration that blows the budget
  // aborts mid-walk via the thread's OpContext and unwinds; the object
  // stays on its old layout and is retried on a later tick.
  uint64_t migrate_deadline_ms = 0;

  // After a tick that migrated anything, checkpoint so the superseded
  // extents (parked in crash-safe mode) actually return to the buddy
  // system. Without this a crash-safe volume defragments logically but
  // frees nothing until the client's next Checkpoint().
  bool checkpoint_after_tick = true;
};

struct DefragCandidate {
  uint64_t id = 0;
  uint64_t bytes = 0;
  double scatter = 1.0;
};

struct DefragReport {
  uint64_t scanned = 0;
  uint64_t migrated = 0;
  uint64_t migrated_bytes = 0;
  uint64_t skipped_hot = 0;  // above threshold but mutated since last tick
  uint64_t refused = 0;      // admission control said the volume is too full
  uint64_t failed = 0;       // migration errored or hit its deadline
  double max_scatter_seen = 0.0;
  std::vector<DefragCandidate> migrated_objects;
};

// What the defragmenter needs from its host (implemented by eos::Database;
// an interface so eos_lob does not depend back on eos_db). All methods must
// be safe to call from the background tick thread; the host provides its
// own synchronization against foreground operations.
class DefragHost {
 public:
  struct ObjectFacts {
    uint64_t id = 0;
    LobStats stats;
    // Host mutation-clock value of the object's last foreground mutation
    // (0 = never mutated through this handle).
    uint64_t last_mutation = 0;
  };

  virtual ~DefragHost() = default;

  // Snapshot of every object's shape and heat.
  virtual StatusOr<std::vector<ObjectFacts>> CollectObjectFacts() = 0;

  // Monotone clock ticked by every foreground mutation.
  virtual uint64_t MutationClock() = 0;

  // Admission-checked Reorganize of one object, serialized against
  // foreground operations by the host. Must refuse with Busy — counted as
  // skipped-hot, not failed — if the object was mutated after `horizon`;
  // the scan's cold classification is stale by then. `headroom_pages` is
  // the transient extra footprint (reorganize holds old and new copies
  // until the root swap) for the admission probe.
  virtual Status MigrateObject(uint64_t id, uint64_t horizon,
                               uint32_t headroom_pages) = 0;

  // Makes migrated-away storage reusable (checkpoint in crash-safe mode,
  // no-op otherwise).
  virtual Status ReleaseMigratedStorage() = 0;

  // Refreshes the volume-level frag.* gauges (SegmentAllocator::FragStats).
  virtual void RefreshFragGauges() = 0;
};

class Defragmenter {
 public:
  Defragmenter(DefragHost* host, LobManager* lob, const DefragOptions& opt);
  ~Defragmenter();

  Defragmenter(const Defragmenter&) = delete;
  Defragmenter& operator=(const Defragmenter&) = delete;

  // One scan-and-migrate pass; safe to call concurrently with the
  // background thread (ticks serialize) and with foreground operations.
  Status Tick(DefragReport* report = nullptr);

  void Start();
  void Stop();
  bool running() const;

  const DefragOptions& options() const { return opt_; }

  // Scatter score of one object: the seek-weighted cost of a full scan of
  // the current layout over the same cost for the ideal layout of
  // `size_bytes` bytes — a unitless estimate of the object's read-cost
  // drift. >= 1.0; a fresh object scores ~1.
  static double ScatterOf(const LobStats& stats, uint32_t page_size,
                          uint32_t max_segment_pages);

 private:
  void Loop();

  DefragHost* host_;
  LobManager* lob_;
  DefragOptions opt_;

  Latch tick_latch_;  // serializes Tick() across callers
  // Mutation-clock horizon separating cold from hot: objects mutated after
  // the previous tick's scan began are hot this tick. Guarded by
  // tick_latch_.
  uint64_t cold_horizon_ = 0;

  mutable std::mutex mu_;  // guards thread lifecycle + stop flag
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;

  obs::Counter* m_ticks_;
  obs::Counter* m_scanned_;
  obs::Counter* m_migrated_;
  obs::Counter* m_bytes_;
  obs::Counter* m_failed_;
  obs::Counter* m_skipped_hot_;
  obs::Counter* m_refused_;
  obs::Histogram* m_scatter_;
};

}  // namespace eos

#endif  // EOS_LOB_DEFRAG_H_
