#ifndef EOS_LOB_LOB_CONFIG_H_
#define EOS_LOB_LOB_CONFIG_H_

#include <cstdint>

namespace eos {

// Per-object (or per-file) tuning knobs of the large object manager.
struct LobConfig {
  // Segment size threshold T (Section 4.4): it must never be the case that
  // bytes are kept in two logically adjacent segments, one of which has
  // fewer than T pages, if they could be stored in one. T = 1 disables
  // page reshuffling (the basic algorithms of Section 4.3).
  uint32_t threshold_pages = 8;

  // [Bili91a] extension: scale the effective threshold with the fan-out of
  // the parent index node of the leaf being updated, and compact runs of
  // adjacent unsafe segments when the parent is about to split.
  bool adaptive_threshold = false;

  // Maximum size of a leaf segment in pages; 0 means the buddy system's
  // maximum (2*page_size pages). Appends use doubling growth up to this.
  uint32_t max_segment_pages = 0;

  // Maximum serialized size of the object root in bytes; the root placement
  // is left to the client (e.g. inside a small record), so it is usually
  // much smaller than a page. 0 means one page.
  uint32_t max_root_bytes = 0;
};

}  // namespace eos

#endif  // EOS_LOB_LOB_CONFIG_H_
