#ifndef EOS_LOB_NODE_H_
#define EOS_LOB_NODE_H_

#include <cstdint>
#include <vector>

#include "buddy/segment_allocator.h"
#include "common/status.h"
#include "io/pager.h"

namespace eos {

// One (count, page) pair of a positional-tree node. On disk, counts are
// cumulative within the node (the paper's c[i]); in memory we keep each
// child's *total* byte count, which makes splicing entries trivial.
struct LobEntry {
  uint64_t count = 0;  // bytes stored in the child subtree / leaf segment
  PageId page = kInvalidPage;
};

inline bool operator==(const LobEntry& a, const LobEntry& b) {
  return a.count == b.count && a.page == b.page;
}

// An in-memory positional-tree node.
//
// level == 0: entries point to leaf segments. A leaf segment holding C
// bytes occupies exactly ceil(C / page_size) physically contiguous pages
// (segments have no holes; only the last page may be partial), so no
// separate size field is needed — precisely the paper's representation.
//
// level >= 1: entries point to index nodes of level - 1.
struct LobNode {
  uint16_t level = 0;
  std::vector<LobEntry> entries;

  uint64_t Total() const {
    uint64_t t = 0;
    for (const LobEntry& e : entries) t += e.count;
    return t;
  }

  // Smallest index i with cumulative_count(i) > offset, i.e. the child
  // holding byte `offset`; also rebases *offset to be child-relative.
  // offset must be < Total().
  int FindChild(uint64_t* offset) const;
};

// On-page node image:
//   [magic u16][nentries u16][level u16][reserved u16]
//   [cumulative_count u64][page u64] x nentries
class NodeFormat {
 public:
  static constexpr uint16_t kMagic = 0x10B1;
  static constexpr uint32_t kHeaderBytes = 8;
  static constexpr uint32_t kEntryBytes = 16;

  // Entries that fit in one page of `page_size` bytes.
  static uint32_t Capacity(uint32_t page_size) {
    return (page_size - kHeaderBytes) / kEntryBytes;
  }
  // Minimum entries of a non-root node ("half full to completely full").
  static uint32_t MinEntries(uint32_t page_size) {
    return Capacity(page_size) / 2;
  }

  static void Serialize(const LobNode& node, uint8_t* page,
                        uint32_t page_size);
  static Status Deserialize(const uint8_t* page, uint32_t page_size,
                            LobNode* node);
};

// Loads, writes, allocates and frees index-node pages. Node pages are
// 1-page segments from the buddy system and go through the pager (they are
// hot and revisited); leaf segment data never does.
//
// When `shadow` is on, WriteExisting allocates a fresh page and returns its
// id instead of overwriting — the shadow-paging mode of Section 4.5 for
// index pages (leaf pages are never overwritten by insert/delete/append by
// construction).
class NodeStore {
 public:
  NodeStore(Pager* pager, SegmentAllocator* allocator, uint32_t page_size)
      : pager_(pager), allocator_(allocator), page_size_(page_size) {}

  uint32_t capacity() const { return NodeFormat::Capacity(page_size_); }
  uint32_t min_entries() const { return NodeFormat::MinEntries(page_size_); }
  uint32_t page_size() const { return page_size_; }

  StatusOr<LobNode> Load(PageId page);

  // Writes `node` to `page`; if shadowing is enabled, writes to a newly
  // allocated page, frees the old one, and stores the new id in *page.
  Status Write(PageId* page, const LobNode& node);

  // Writes `node` to a freshly allocated page.
  StatusOr<PageId> WriteNew(const LobNode& node);

  Status FreePage(PageId page);

  void set_shadowing(bool on) { shadowing_ = on; }
  bool shadowing() const { return shadowing_; }

  Pager* pager() { return pager_; }
  SegmentAllocator* allocator() { return allocator_; }

 private:
  Pager* pager_;
  SegmentAllocator* allocator_;
  uint32_t page_size_;
  bool shadowing_ = false;
};

}  // namespace eos

#endif  // EOS_LOB_NODE_H_
