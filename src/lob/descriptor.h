#ifndef EOS_LOB_DESCRIPTOR_H_
#define EOS_LOB_DESCRIPTOR_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "lob/node.h"

namespace eos {

// The root of a large object. EOS manages its internals but leaves its
// placement to the client — it can live alongside other roots on a shared
// page or inside a field of a small record (Section 4). It serializes to
// the same wire format as an index node, sized by LobConfig.max_root_bytes.
//
// The root *is* a LobNode: when level == 0 its entries point directly to
// leaf segments (Figure 5.a/5.b); otherwise to index nodes.
struct LobDescriptor {
  LobNode root;

  // Log sequence number of the last logged update, kept in the root so
  // updates can be undone/redone idempotently (Section 4.5).
  uint64_t lsn = 0;

  // Per-object segment size threshold hint (Section 4.4: "threshold values
  // can be specified as a hint on a per-object or per-file basis" and may
  // change each time the object is opened). 0 = use the manager's default.
  // Runtime-only: the client re-supplies it at open; it is not serialized.
  uint32_t threshold_hint = 0;

  uint64_t size() const { return root.Total(); }
  bool empty() const { return root.entries.empty(); }

  // Serialized image: node wire format followed by the 8-byte LSN; at most
  // max_root_bytes long in total.
  static uint32_t MaxEntriesFor(uint32_t max_root_bytes) {
    if (max_root_bytes <= NodeFormat::kHeaderBytes + 8) return 0;
    return (max_root_bytes - NodeFormat::kHeaderBytes - 8) /
           NodeFormat::kEntryBytes;
  }

  uint32_t SerializedBytes() const {
    return NodeFormat::kHeaderBytes +
           static_cast<uint32_t>(root.entries.size()) *
               NodeFormat::kEntryBytes +
           8;
  }

  Bytes Serialize() const {
    Bytes out(SerializedBytes(), 0);
    // NodeFormat::Serialize asserts against a page-size capacity; the root
    // buffer is exactly as large as needed, so pass a size that admits it.
    NodeFormat::Serialize(root, out.data(), SerializedBytes());
    EncodeU64(out.data() + SerializedBytes() - 8, lsn);
    return out;
  }

  static StatusOr<LobDescriptor> Deserialize(ByteView bytes) {
    if (bytes.size() < NodeFormat::kHeaderBytes + 8) {
      return Status::Corruption("large object root too short");
    }
    LobDescriptor d;
    EOS_RETURN_IF_ERROR(NodeFormat::Deserialize(
        bytes.data(), static_cast<uint32_t>(bytes.size() - 8), &d.root));
    if (d.SerializedBytes() != bytes.size()) {
      return Status::Corruption("large object root size mismatch");
    }
    d.lsn = DecodeU64(bytes.data() + bytes.size() - 8);
    return d;
  }
};

}  // namespace eos

#endif  // EOS_LOB_DESCRIPTOR_H_
