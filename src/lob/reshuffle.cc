#include "lob/reshuffle.h"

#include <cassert>

#include "common/math.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

namespace {

uint64_t Pages(uint64_t bytes, uint32_t ps) { return CeilDiv(bytes, ps); }

}  // namespace

ReshufflePlan PlanReshuffle(const ReshuffleInput& in) {
  const uint32_t ps = in.page_size;
  const uint64_t max_bytes = uint64_t{in.max_segment_pages} * ps;
  assert(ps > 0 && in.max_segment_pages > 0);
  assert(in.threshold <= in.max_segment_pages);

  static obs::Counter* plans =
      obs::MetricsRegistry::Default().counter(obs::kLobReshufflePlans);
  static obs::Counter* page_mode =
      obs::MetricsRegistry::Default().counter(obs::kLobReshufflePageMode);
  static obs::Counter* byte_mode =
      obs::MetricsRegistry::Default().counter(obs::kLobReshuffleByteMode);
  static obs::Histogram* moved =
      obs::MetricsRegistry::Default().histogram(obs::kLobReshuffleMovedBytes);
  plans->Inc();

  ReshufflePlan plan;
  plan.lc = in.lc;
  plan.nc = in.nc;
  plan.rc = in.rc;
  // "If Nc = 0, go to step 5": nothing is being materialized.
  if (in.nc == 0) return plan;

  auto unsafe = [&](uint64_t c) {
    return c > 0 && Pages(c, ps) < in.threshold;
  };

  // Page reshuffling loop (Section 4.4, steps 3.1 - 3.3).
  for (;;) {
    bool l_un = unsafe(plan.lc);
    bool r_un = unsafe(plan.rc);
    bool n_un = unsafe(plan.nc);
    // 3.1.a / 3.1.b: everything safe, or no neighbors at all.
    if ((!l_un && !r_un && !n_un) || (plan.lc == 0 && plan.rc == 0)) break;
    if (l_un || r_un) {
      // An unsafe neighbor is always the smaller one (safe >= T > unsafe).
      uint64_t smallest =
          l_un && r_un ? (plan.lc < plan.rc ? plan.lc : plan.rc)
                       : (l_un ? plan.lc : plan.rc);
      // 3.1.c: if even the smallest unsafe segment cannot be stored with N
      // in one maximal segment, give up on page reshuffling.
      if (smallest + plan.nc > max_bytes) break;
      // 3.2: merge the smaller unsafe neighbor into N entirely.
      if (l_un && (!r_un || plan.lc <= plan.rc)) {
        plan.from_l += plan.lc;
        plan.nc += plan.lc;
        plan.lc = 0;
      } else {
        plan.from_r += plan.rc;
        plan.nc += plan.rc;
        plan.rc = 0;
      }
      continue;
    }
    // 3.3: only N is unsafe; take whole pages from the smaller non-empty
    // neighbor until N is safe (or the donor runs dry).
    uint64_t need = in.threshold - Pages(plan.nc, ps);
    assert(need > 0);
    bool donor_l;
    if (plan.lc == 0) {
      donor_l = false;
    } else if (plan.rc == 0) {
      donor_l = true;
    } else {
      donor_l = plan.lc <= plan.rc;
    }
    if (donor_l) {
      uint64_t lp = Pages(plan.lc, ps);
      uint64_t p = need < lp ? need : lp;
      uint64_t take = plan.lc - (lp - p) * ps;  // tail pages incl. partial
      plan.from_l += take;
      plan.nc += take;
      plan.lc -= take;
    } else {
      uint64_t rp = Pages(plan.rc, ps);
      uint64_t p = need < rp ? need : rp;
      // Head pages of R are full except when taking R entirely.
      uint64_t take = p == rp ? plan.rc : p * ps;
      plan.from_r += take;
      plan.nc += take;
      plan.rc -= take;
    }
  }

  // from_l/from_r so far were produced by whole-page movement; anything
  // added past this point is byte reshuffling.
  const uint64_t page_moved = plan.from_l + plan.from_r;
  auto finish = [&]() {
    uint64_t total = plan.from_l + plan.from_r;
    if (page_moved > 0) page_mode->Inc();
    if (total > page_moved) byte_mode->Inc();
    if (total > 0) moved->Record(total);
    return plan;
  };

  // Byte reshuffling (Section 4.3.1 step 3 / Section 4.4 step 3.4).
  uint64_t nm = plan.nc % ps;
  if (nm == 0) return finish();  // "If Nm = PS skip this step."

  auto last_page_bytes = [&](uint64_t c) {
    return c % ps == 0 ? uint64_t{ps} : c % ps;
  };
  uint64_t lm = plan.lc == 0 ? 0 : last_page_bytes(plan.lc);
  bool cand_l = plan.lc > 0 && lm + nm <= ps;
  bool cand_r = plan.rc > 0 && Pages(plan.rc, ps) == 1 && plan.rc + nm <= ps;
  bool take_l = false;
  bool take_r = false;
  if (cand_l && cand_r) {
    if (lm + plan.rc + nm <= ps) {
      take_l = take_r = true;  // both groups fit in N's last page
    } else if (ps - lm >= ps - plan.rc) {
      take_l = true;  // L's last page has the larger free space
    } else {
      take_r = true;
    }
  } else {
    take_l = cand_l;
    take_r = cand_r;
  }
  if (take_l) {
    plan.from_l += lm;
    plan.nc += lm;
    plan.lc -= lm;
  }
  if (take_r) {
    plan.from_r += plan.rc;
    plan.nc += plan.rc;
    plan.rc = 0;
  }
  // Balance the free space between the last pages of L and N by borrowing
  // bytes from L (no page is eliminated; both slacks converge).
  if (plan.lc > 0) {
    lm = last_page_bytes(plan.lc);
    nm = plan.nc % ps;
    if (nm != 0 && lm < ps && lm > nm) {
      uint64_t x = (lm - nm) / 2;
      if (x > 0 && nm + x <= ps) {
        plan.from_l += x;
        plan.nc += x;
        plan.lc -= x;
      }
    }
  }
  // N may legitimately exceed one maximal segment for huge inserts (the
  // caller then writes it as a sequence of segments); page reshuffling
  // itself never pushes it past the cap.
  assert(plan.nc <= max_bytes || in.nc > max_bytes);
  return finish();
}

}  // namespace eos
