#include "lob/leaf_io.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "io/buffer_pool.h"

namespace eos {
namespace lob_internal {

Status ReadLeafRuns(PageDevice* device, uint32_t page_size, PageId leaf_first,
                    const std::vector<std::pair<uint64_t, uint64_t>>& ranges,
                    std::vector<Bytes>* out, IoExecutor* exec) {
  out->assign(ranges.size(), Bytes());

  struct Run {
    uint64_t p0;
    uint64_t p1;  // inclusive
    BufferPool::Buffer data;
  };
  std::vector<Run> runs;
  runs.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    if (lo == hi) continue;
    assert(lo < hi);
    uint64_t p0 = lo / page_size;
    uint64_t p1 = (hi - 1) / page_size;
    if (!runs.empty() && p0 <= runs.back().p1 + 1) {
      runs.back().p1 = std::max(runs.back().p1, p1);
    } else {
      runs.push_back(Run{p0, p1, {}});
    }
  }

  auto read_run = [&](Run& r) -> Status {
    uint32_t n = static_cast<uint32_t>(r.p1 - r.p0 + 1);
    r.data = BufferPool::Default()->Acquire(size_t{n} * page_size);
    return device->ReadPages(leaf_first + r.p0, n, r.data.data());
  };
  if (exec != nullptr && runs.size() >= 2) {
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(runs.size());
    for (Run& r : runs) {
      tasks.push_back([&read_run, &r] { return read_run(r); });
    }
    EOS_RETURN_IF_ERROR(exec->RunBatch(std::move(tasks)));
  } else {
    for (Run& r : runs) EOS_RETURN_IF_ERROR(read_run(r));
  }

  for (size_t i = 0; i < ranges.size(); ++i) {
    auto [lo, hi] = ranges[i];
    if (lo == hi) continue;
    uint64_t p0 = lo / page_size;
    // Runs are sorted by construction; binary-search the covering run
    // instead of rescanning the whole list per range.
    auto it = std::upper_bound(
        runs.begin(), runs.end(), p0,
        [](uint64_t page, const Run& r) { return page < r.p0; });
    assert(it != runs.begin());
    const Run& r = *std::prev(it);
    assert(p0 >= r.p0 && p0 <= r.p1);
    const uint8_t* base = r.data.data();
    (*out)[i].assign(base + (lo - r.p0 * page_size),
                     base + (hi - r.p0 * page_size));
    assert((*out)[i].size() == hi - lo);
  }
  return Status::OK();
}

}  // namespace lob_internal
}  // namespace eos
