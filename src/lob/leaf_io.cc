#include "lob/leaf_io.h"

#include <cassert>
#include <cstring>

namespace eos {
namespace lob_internal {

Status ReadLeafRuns(PageDevice* device, uint32_t page_size, PageId leaf_first,
                    const std::vector<std::pair<uint64_t, uint64_t>>& ranges,
                    std::vector<Bytes>* out) {
  out->assign(ranges.size(), Bytes());

  struct Run {
    uint64_t p0;
    uint64_t p1;  // inclusive
    Bytes data;
  };
  std::vector<Run> runs;
  for (const auto& [lo, hi] : ranges) {
    if (lo == hi) continue;
    assert(lo < hi);
    uint64_t p0 = lo / page_size;
    uint64_t p1 = (hi - 1) / page_size;
    if (!runs.empty() && p0 <= runs.back().p1 + 1) {
      runs.back().p1 = std::max(runs.back().p1, p1);
    } else {
      runs.push_back(Run{p0, p1, {}});
    }
  }
  for (Run& r : runs) {
    uint32_t n = static_cast<uint32_t>(r.p1 - r.p0 + 1);
    r.data.resize(size_t{n} * page_size);
    EOS_RETURN_IF_ERROR(
        device->ReadPages(leaf_first + r.p0, n, r.data.data()));
  }
  for (size_t i = 0; i < ranges.size(); ++i) {
    auto [lo, hi] = ranges[i];
    if (lo == hi) continue;
    uint64_t p0 = lo / page_size;
    for (const Run& r : runs) {
      if (p0 >= r.p0 && p0 <= r.p1) {
        (*out)[i].assign(r.data.begin() + (lo - r.p0 * page_size),
                         r.data.begin() + (hi - r.p0 * page_size));
        break;
      }
    }
    assert((*out)[i].size() == hi - lo);
  }
  return Status::OK();
}

}  // namespace lob_internal
}  // namespace eos
