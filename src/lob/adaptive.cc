// [Bili91a] extension: when a leaf-parent index node is about to split,
// scan it and coalesce every run of two or more logically adjacent unsafe
// segments (fewer than T pages each) into a single larger segment. Fewer
// leaf entries mean fewer index pages and a shorter tree, which improves
// every operation (Section 4.4, last paragraph).

#include <cassert>

#include "common/math.h"
#include "lob/lob_manager.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

Status LobManager::CompactUnsafeRuns(LobNode* leaf_parent) {
  assert(leaf_parent->level == 0);
  static obs::Counter* runs =
      obs::MetricsRegistry::Default().counter(obs::kLobCompactUnsafeRuns);
  runs->Inc();
  const uint32_t t = config_.threshold_pages;
  std::vector<LobEntry> out;
  out.reserve(leaf_parent->entries.size());
  size_t i = 0;
  while (i < leaf_parent->entries.size()) {
    EOS_RETURN_IF_ERROR(ScopedOpContext::CheckCurrent("lob.compact_runs"));
    if (LeafPages(leaf_parent->entries[i].count) >= t) {
      out.push_back(leaf_parent->entries[i]);
      ++i;
      continue;
    }
    size_t j = i;
    uint64_t run_bytes = 0;
    while (j < leaf_parent->entries.size() &&
           LeafPages(leaf_parent->entries[j].count) < t) {
      run_bytes += leaf_parent->entries[j].count;
      ++j;
    }
    if (j - i < 2) {
      out.push_back(leaf_parent->entries[i]);
      ++i;
      continue;
    }
    // Gather the run's bytes, write them as one segment (or a minimal
    // sequence if the run exceeds the maximum segment size), free the old
    // small segments.
    Bytes buf(run_bytes);
    uint64_t pos = 0;
    for (size_t k = i; k < j; ++k) {
      const LobEntry& e = leaf_parent->entries[k];
      LeafRef leaf{Extent{e.page, LeafPages(e.count)}, e.count};
      EOS_RETURN_IF_ERROR(ReadLeafBytes(leaf, 0, e.count, buf.data() + pos));
      pos += e.count;
    }
    EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> merged, WriteSegments(buf));
    for (size_t k = i; k < j; ++k) {
      const LobEntry& e = leaf_parent->entries[k];
      EOS_RETURN_IF_ERROR(
          allocator()->Free(Extent{e.page, LeafPages(e.count)}));
    }
    out.insert(out.end(), merged.begin(), merged.end());
    i = j;
  }
  leaf_parent->entries = std::move(out);
  return Status::OK();
}

}  // namespace eos
