#include "lob/defrag.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/deadline.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"

namespace eos {

Defragmenter::Defragmenter(DefragHost* host, LobManager* lob,
                           const DefragOptions& opt)
    : host_(host), lob_(lob), opt_(opt) {
  auto& reg = obs::MetricsRegistry::Default();
  m_ticks_ = reg.counter(obs::kDefragTicks);
  m_scanned_ = reg.counter(obs::kDefragObjectsScanned);
  m_migrated_ = reg.counter(obs::kDefragObjectsMigrated);
  m_bytes_ = reg.counter(obs::kDefragBytesMigrated);
  m_failed_ = reg.counter(obs::kDefragMigrateFailed);
  m_skipped_hot_ = reg.counter(obs::kDefragSkippedHot);
  m_refused_ = reg.counter(obs::kDefragRefused);
  m_scatter_ = reg.histogram(obs::kFragObjectScatter);
}

Defragmenter::~Defragmenter() { Stop(); }

double Defragmenter::ScatterOf(const LobStats& stats, uint32_t page_size,
                               uint32_t max_segment_pages) {
  if (stats.size_bytes == 0 || page_size == 0 || max_segment_pages == 0) {
    return 1.0;
  }
  // Cost of a full scan under the DiskModel's accounting: one seek per
  // segment visited (plus one per index page, each its own single-page
  // access in §4.2) and one transfer per page. Seeks are ~8x a page
  // transfer on the 1992 disk, and that weighting is the point — an aged
  // object's pain is almost entirely extra seeks, so an unweighted page
  // count would score a badly shattered object near 1.0 and starve the
  // defragmenter of candidates.
  constexpr double kSeekWeight = 8.0;  // seek_ms / transfer_ms_per_page
  uint64_t ideal_pages =
      (stats.size_bytes + page_size - 1) / page_size;
  uint64_t ideal_segments =
      (ideal_pages + max_segment_pages - 1) / max_segment_pages;
  double actual =
      kSeekWeight * static_cast<double>(stats.num_segments +
                                        stats.index_pages) +
      static_cast<double>(stats.leaf_pages + stats.index_pages);
  double ideal = kSeekWeight * static_cast<double>(ideal_segments) +
                 static_cast<double>(ideal_pages);
  if (ideal <= 0.0) return 1.0;
  return std::max(1.0, actual / ideal);
}

Status Defragmenter::Tick(DefragReport* report) {
  LatchGuard tick(tick_latch_);
  DefragReport rep;
  m_ticks_->Inc();
  uint64_t horizon = cold_horizon_;
  // Objects mutated from here on are hot for the *next* tick.
  uint64_t now_clock = host_->MutationClock();

  EOS_ASSIGN_OR_RETURN(std::vector<DefragHost::ObjectFacts> facts,
                       host_->CollectObjectFacts());
  struct Pick {
    uint64_t id;
    uint64_t bytes;
    uint64_t footprint_pages;
    double scatter;
  };
  std::vector<Pick> picks;
  for (const DefragHost::ObjectFacts& f : facts) {
    ++rep.scanned;
    m_scanned_->Inc();
    double scatter =
        ScatterOf(f.stats, lob_->page_size(), lob_->max_segment_pages());
    m_scatter_->Record(static_cast<uint64_t>(scatter * 100.0));
    rep.max_scatter_seen = std::max(rep.max_scatter_seen, scatter);
    if (scatter < opt_.min_scatter) continue;
    if (f.last_mutation > horizon) {
      ++rep.skipped_hot;
      m_skipped_hot_->Inc();
      continue;
    }
    picks.push_back(Pick{f.id, f.stats.size_bytes,
                         f.stats.leaf_pages + f.stats.index_pages, scatter});
  }
  // Worst offenders first, so a throttled tick spends its budget where the
  // drift is largest.
  std::sort(picks.begin(), picks.end(),
            [](const Pick& a, const Pick& b) { return a.scatter > b.scatter; });

  for (const Pick& p : picks) {
    if (rep.migrated >= opt_.max_objects_per_tick) break;
    if (rep.migrated_bytes + p.bytes > opt_.max_bytes_per_tick &&
        rep.migrated > 0) {
      break;
    }
    // Reorganize holds old and new copies until the root swap, so the
    // admission probe asks for the whole current footprint plus slack for
    // fresh index nodes.
    uint32_t headroom = static_cast<uint32_t>(
        std::min<uint64_t>(p.footprint_pages + 8, 1u << 30));
    std::optional<ScopedDeadline> deadline;
    if (opt_.migrate_deadline_ms > 0) {
      deadline.emplace(std::chrono::milliseconds(opt_.migrate_deadline_ms));
    }
    Status s = host_->MigrateObject(p.id, horizon, headroom);
    if (s.ok()) {
      ++rep.migrated;
      rep.migrated_bytes += p.bytes;
      rep.migrated_objects.push_back(DefragCandidate{p.id, p.bytes, p.scatter});
      m_migrated_->Inc();
      m_bytes_->Inc(p.bytes);
      obs::RecordEvent(obs::EventKind::kNote, "defrag.migrate", p.id, p.bytes,
                       static_cast<uint64_t>(p.scatter * 100.0), /*ok=*/true);
    } else if (s.IsBusy()) {
      // Mutated between scan and migration: hot after all.
      ++rep.skipped_hot;
      m_skipped_hot_->Inc();
    } else if (s.IsNoSpace()) {
      // No headroom to double-buffer a migration; the rest of this tick's
      // picks would only be refused too.
      ++rep.refused;
      m_refused_->Inc();
      break;
    } else {
      ++rep.failed;
      m_failed_->Inc();
      obs::RecordEvent(obs::EventKind::kNote, "defrag.migrate", p.id, p.bytes,
                       static_cast<uint64_t>(p.scatter * 100.0), /*ok=*/false);
    }
  }

  cold_horizon_ = now_clock;
  Status release = Status::OK();
  if (rep.migrated > 0 && opt_.checkpoint_after_tick) {
    release = host_->ReleaseMigratedStorage();
  }
  host_->RefreshFragGauges();
  if (report != nullptr) *report = rep;
  return release;
}

void Defragmenter::Start() {
  std::lock_guard<std::mutex> l(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread(&Defragmenter::Loop, this);
}

void Defragmenter::Stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Defragmenter::running() const {
  std::lock_guard<std::mutex> l(mu_);
  return thread_.joinable() && !stop_;
}

void Defragmenter::Loop() {
  std::unique_lock<std::mutex> l(mu_);
  while (!stop_) {
    cv_.wait_for(l, std::chrono::milliseconds(opt_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    l.unlock();
    DefragReport rep;
    (void)Tick(&rep);
    l.lock();
  }
}

}  // namespace eos
