#ifndef EOS_LOB_RESHUFFLE_H_
#define EOS_LOB_RESHUFFLE_H_

#include <cstdint>

namespace eos {

// Inputs to the reshuffle step shared by insert (Section 4.3.1 step 3) and
// delete (Section 4.3.2 step 3), extended with page reshuffling under the
// segment size threshold T (Section 4.4).
//
// L, N, R are byte counts: L is the surviving prefix segment, N the new
// segment being materialized, R the surviving suffix segment. The planner
// decides how many bytes migrate from the *tail* of L to the head of N and
// from the *head* of R to the tail of N; it never moves bytes out of N.
struct ReshuffleInput {
  uint64_t lc = 0;
  uint64_t nc = 0;
  uint64_t rc = 0;
  uint32_t page_size = 0;
  // Effective threshold T in pages; 1 disables page reshuffling.
  uint32_t threshold = 1;
  // Maximum leaf segment size in pages (2^k from the buddy geometry or the
  // per-object cap, whichever is smaller).
  uint32_t max_segment_pages = 0;
};

struct ReshufflePlan {
  uint64_t from_l = 0;  // bytes moved from the tail of L to the head of N
  uint64_t from_r = 0;  // bytes moved from the head of R to the tail of N
  uint64_t lc = 0;      // resulting byte counts
  uint64_t nc = 0;
  uint64_t rc = 0;
};

// Computes the reshuffle plan. Purely arithmetic — no I/O — so the exact
// case analysis of the paper is unit-testable in isolation. Guarantees:
//  * from_l + lc == input.lc, from_r + rc == input.rc,
//    nc == input.nc + from_l + from_r (bytes are conserved);
//  * nc <= max_segment_pages * page_size;
//  * surviving L ends on a page boundary whenever whole pages were taken
//    from it, and surviving R always loses whole pages from its head.
ReshufflePlan PlanReshuffle(const ReshuffleInput& in);

}  // namespace eos

#endif  // EOS_LOB_RESHUFFLE_H_
