#include "lob/walker.h"

#include <cstring>
#include <utility>

#include "obs/metric_names.h"

namespace eos {

Status LeafWalker::Seek(uint64_t offset) {
  stack_.clear();
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(mgr_->DescendToLeaf(d_, offset, &stack_, &leaf_,
                                          &local));
  local_ = local;
  return Status::OK();
}

StatusOr<bool> LeafWalker::Next() {
  local_ = 0;
  // Pop exhausted levels, then advance and descend leftmost.
  while (!stack_.empty() &&
         stack_.back().child_idx + 1 >=
             static_cast<int>(stack_.back().node.entries.size())) {
    stack_.pop_back();
  }
  if (stack_.empty()) return false;
  ++stack_.back().child_idx;
  for (;;) {
    LobManager::PathLevel& top = stack_.back();
    const LobEntry& e = top.node.entries[top.child_idx];
    if (top.node.level == 0) {
      leaf_.extent = Extent{e.page, mgr_->LeafPages(e.count)};
      leaf_.bytes = e.count;
      return true;
    }
    LobManager::PathLevel next;
    next.page = e.page;
    EOS_ASSIGN_OR_RETURN(next.node, mgr_->store_.Load(e.page));
    next.child_idx = 0;
    stack_.push_back(std::move(next));
  }
}

StatusOr<bool> LeafWalker::PeekNextLeaf(Extent* extent, uint64_t* bytes) {
  // Same traversal as Next(), on a copy of the ancestor stack. Index nodes
  // come from the pager, so the common peek costs no device I/O.
  std::vector<LobManager::PathLevel> stack = stack_;
  while (!stack.empty() &&
         stack.back().child_idx + 1 >=
             static_cast<int>(stack.back().node.entries.size())) {
    stack.pop_back();
  }
  if (stack.empty()) return false;
  ++stack.back().child_idx;
  for (;;) {
    LobManager::PathLevel& top = stack.back();
    const LobEntry& e = top.node.entries[top.child_idx];
    if (top.node.level == 0) {
      *extent = Extent{e.page, mgr_->LeafPages(e.count)};
      *bytes = e.count;
      return true;
    }
    LobManager::PathLevel next;
    next.page = e.page;
    EOS_ASSIGN_OR_RETURN(next.node, mgr_->store_.Load(e.page));
    next.child_idx = 0;
    stack.push_back(std::move(next));
  }
}

// ----- LobReader -------------------------------------------------------------

LobReader::~LobReader() { DropPrefetch(/*count_cancelled=*/true); }

void LobReader::EnableReadAhead(IoExecutor* exec) {
  prefetch_exec_ = exec;
  if (m_issued_ == nullptr) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    m_issued_ = reg.counter(obs::kIoPrefetchIssued);
    m_hit_ = reg.counter(obs::kIoPrefetchHit);
    m_cancelled_ = reg.counter(obs::kIoPrefetchCancelled);
  }
}

void LobReader::DropPrefetch(bool count_cancelled) {
  if (prefetch_armed_) {
    // A still-queued task observes the token and skips its transfer; one
    // already running finishes into a buffer nobody will read. Either way
    // the join below keeps the buffer-lifetime contract.
    prefetch_cancel_.Cancel();
    (void)prefetch_ticket_.Wait();
    prefetch_armed_ = false;
    if (count_cancelled && m_cancelled_ != nullptr) m_cancelled_->Inc();
  }
  prefetch_buf_.Release();
  serving_ = false;
}

void LobReader::ArmPrefetch() {
  if (prefetch_exec_ == nullptr || prefetch_armed_) return;
  Extent next;
  uint64_t next_bytes = 0;
  StatusOr<bool> more = walker_.PeekNextLeaf(&next, &next_bytes);
  // Peek failures are not read failures: the real descent will surface the
  // error (with retry semantics) when the scan actually gets there.
  if (!more.ok() || !more.value()) return;
  // The next segment is already resident in the extent cache: its bytes
  // will be served as a memcpy, so a device prefetch would be redundant
  // I/O. Counted as a cancelled prefetch (cancelled before issue).
  if (mgr_->CacheHasExtent(next)) {
    if (m_cancelled_ != nullptr) m_cancelled_->Inc();
    return;
  }
  // Keep the buffer alive in the reader and hand the worker the raw
  // pointer; DropPrefetch always joins the ticket before touching the
  // buffer, so the pointer outlives the task.
  prefetch_buf_.Release();
  serving_ = false;
  prefetch_buf_ = BufferPool::Default()->Acquire(size_t{next.pages} *
                                                 mgr_->page_size());
  prefetch_extent_ = next;
  uint8_t* dst = prefetch_buf_.data();
  PageDevice* dev = mgr_->device();
  prefetch_cancel_ = CancelToken::Make();
  CancelToken cancel = prefetch_cancel_;
  prefetch_ticket_ = prefetch_exec_->Submit([dev, next, dst, cancel] {
    if (cancel.cancelled()) {
      return Status::DeadlineExceeded("prefetch cancelled");
    }
    return dev->ReadPages(next.first, next.pages, dst);
  });
  prefetch_armed_ = true;
  m_issued_->Inc();
}

void LobReader::SettlePrefetch() {
  if (!prefetch_armed_) return;
  prefetch_armed_ = false;
  Status s = prefetch_ticket_.Wait();
  if (s.ok() && prefetch_extent_ == walker_.extent()) {
    // The scan arrived at the prefetched segment: serve it from memory.
    serving_ = true;
    m_hit_->Inc();
    return;
  }
  // Stale (reader seeked elsewhere) or failed: fall back to direct reads —
  // a prefetch error must never fail the scan, the authoritative read path
  // retries and reports on its own.
  prefetch_buf_.Release();
  serving_ = false;
  if (m_cancelled_ != nullptr) m_cancelled_->Inc();
}

Status LobReader::ReadCurrentLeaf(uint64_t lo, uint64_t hi, uint8_t* out) {
  if (serving_) {
    std::memcpy(out, prefetch_buf_.data() + lo, hi - lo);
    return Status::OK();
  }
  return walker_.ReadLeafBytes(lo, hi, out);
}

Status LobReader::Seek(uint64_t offset) {
  if (offset > d_.size()) {
    return Status::OutOfRange("seek beyond object size");
  }
  // An in-flight fetch targets the old position's successor; drop it.
  DropPrefetch(/*count_cancelled=*/true);
  pos_ = offset;
  positioned_ = false;  // lazily re-positioned on the next Read
  return Status::OK();
}

StatusOr<uint64_t> LobReader::Read(uint64_t n, uint8_t* out) {
  if (AtEnd() || n == 0) return uint64_t{0};
  if (!positioned_) {
    EOS_RETURN_IF_ERROR(walker_.Seek(pos_));
    positioned_ = true;
    serving_ = false;
    ArmPrefetch();
  }
  uint64_t want = std::min(n, d_.size() - pos_);
  uint64_t done = 0;
  while (done < want) {
    uint64_t in_leaf = walker_.leaf_bytes() - walker_.local();
    if (in_leaf == 0) {
      EOS_ASSIGN_OR_RETURN(bool more, walker_.Next());
      if (!more) break;
      SettlePrefetch();
      ArmPrefetch();
      continue;
    }
    uint64_t chunk = std::min(want - done, in_leaf);
    EOS_RETURN_IF_ERROR(ReadCurrentLeaf(
        walker_.local(), walker_.local() + chunk, out + done));
    done += chunk;
    pos_ += chunk;
    if (chunk == in_leaf) {
      EOS_ASSIGN_OR_RETURN(bool more, walker_.Next());
      if (!more && done < want) break;
      if (more) {
        SettlePrefetch();
        ArmPrefetch();
      }
    } else {
      // Partially consumed leaf: remember the intra-leaf position.
      walker_.ConsumeLocal(chunk);
    }
  }
  return done;
}

}  // namespace eos
