#include "lob/walker.h"

namespace eos {

Status LeafWalker::Seek(uint64_t offset) {
  stack_.clear();
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(mgr_->DescendToLeaf(d_, offset, &stack_, &leaf_,
                                          &local));
  local_ = local;
  return Status::OK();
}

StatusOr<bool> LeafWalker::Next() {
  local_ = 0;
  // Pop exhausted levels, then advance and descend leftmost.
  while (!stack_.empty() &&
         stack_.back().child_idx + 1 >=
             static_cast<int>(stack_.back().node.entries.size())) {
    stack_.pop_back();
  }
  if (stack_.empty()) return false;
  ++stack_.back().child_idx;
  for (;;) {
    LobManager::PathLevel& top = stack_.back();
    const LobEntry& e = top.node.entries[top.child_idx];
    if (top.node.level == 0) {
      leaf_.extent = Extent{e.page, mgr_->LeafPages(e.count)};
      leaf_.bytes = e.count;
      return true;
    }
    LobManager::PathLevel next;
    next.page = e.page;
    EOS_ASSIGN_OR_RETURN(next.node, mgr_->store_.Load(e.page));
    next.child_idx = 0;
    stack_.push_back(std::move(next));
  }
}

Status LobReader::Seek(uint64_t offset) {
  if (offset > d_.size()) {
    return Status::OutOfRange("seek beyond object size");
  }
  pos_ = offset;
  positioned_ = false;  // lazily re-positioned on the next Read
  return Status::OK();
}

StatusOr<uint64_t> LobReader::Read(uint64_t n, uint8_t* out) {
  if (AtEnd() || n == 0) return uint64_t{0};
  if (!positioned_) {
    EOS_RETURN_IF_ERROR(walker_.Seek(pos_));
    positioned_ = true;
  }
  uint64_t want = std::min(n, d_.size() - pos_);
  uint64_t done = 0;
  while (done < want) {
    uint64_t in_leaf = walker_.leaf_bytes() - walker_.local();
    if (in_leaf == 0) {
      EOS_ASSIGN_OR_RETURN(bool more, walker_.Next());
      if (!more) break;
      continue;
    }
    uint64_t chunk = std::min(want - done, in_leaf);
    EOS_RETURN_IF_ERROR(walker_.ReadLeafBytes(
        walker_.local(), walker_.local() + chunk, out + done));
    done += chunk;
    pos_ += chunk;
    if (chunk == in_leaf) {
      EOS_ASSIGN_OR_RETURN(bool more, walker_.Next());
      if (!more && done < want) break;
    } else {
      // Partially consumed leaf: remember the intra-leaf position.
      walker_.ConsumeLocal(chunk);
    }
  }
  return done;
}

}  // namespace eos
