#ifndef EOS_LOB_WALKER_H_
#define EOS_LOB_WALKER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/buffer_pool.h"
#include "io/io_executor.h"
#include "lob/lob_manager.h"
#include "obs/metrics.h"

namespace eos {

// Iterates the leaf segments of an object left to right starting from a
// byte offset, keeping the ancestor stack like the search algorithm of
// Section 4.2. The descriptor must not be mutated while a walker is live.
class LeafWalker {
 public:
  LeafWalker(LobManager* mgr, const LobDescriptor& d) : mgr_(mgr), d_(d) {}

  // Positions on the leaf containing `offset` (offset < size).
  Status Seek(uint64_t offset);

  // The current leaf segment and the byte offset within it that Seek
  // targeted (0 after Next()).
  const Extent& extent() const { return leaf_.extent; }
  uint64_t leaf_bytes() const { return leaf_.bytes; }
  uint64_t local() const { return local_; }

  // Advances to the next leaf; returns false at the end of the object.
  StatusOr<bool> Next();

  // Looks one leaf ahead without moving: fills *next with the segment
  // Next() would land on, or returns false at the end. Works on a copy of
  // the ancestor stack, so the walker itself is untouched. Read-ahead uses
  // this to start fetching segment k+1 while k is being consumed.
  StatusOr<bool> PeekNextLeaf(Extent* extent, uint64_t* bytes);

  // Advances the intra-leaf position by n consumed bytes.
  void ConsumeLocal(uint64_t n) { local_ += n; }

  // Reads bytes [lo, hi) of the current leaf directly from the device.
  Status ReadLeafBytes(uint64_t lo, uint64_t hi, uint8_t* out) {
    return mgr_->ReadLeafBytes(leaf_, lo, hi, out);
  }

 private:
  friend class LobManager;

  LobManager* mgr_;
  const LobDescriptor& d_;
  std::vector<LobManager::PathLevel> stack_;
  LobManager::LeafRef leaf_;
  uint64_t local_ = 0;
};

// Forward sequential reader over a large object with an explicit position,
// built on LeafWalker. Useful for streaming consumption (audio/video
// playback, network transfer) without materializing the object.
class LobReader {
 public:
  // The descriptor is captured by reference; do not mutate the object
  // while reading.
  LobReader(LobManager* mgr, const LobDescriptor& d)
      : mgr_(mgr), d_(d), walker_(mgr, d) {}

  ~LobReader();

  uint64_t size() const { return d_.size(); }
  uint64_t position() const { return pos_; }
  bool AtEnd() const { return pos_ >= d_.size(); }

  Status Seek(uint64_t offset);

  // Reads up to `n` bytes into `out`, returning the count (0 at the end).
  StatusOr<uint64_t> Read(uint64_t n, uint8_t* out);

  StatusOr<Bytes> ReadNext(uint64_t n) {
    Bytes out(n);
    EOS_ASSIGN_OR_RETURN(uint64_t got, Read(n, out.data()));
    out.resize(got);
    return out;
  }

  // Sequential-scan read-ahead: while leaf segment k is being consumed,
  // segment k+1 is fetched on `exec` into a pooled buffer; if the scan
  // reaches it the bytes are served from memory (io.prefetch_hit) instead
  // of waiting on the device. A Seek or destruction drains the in-flight
  // fetch (io.prefetch_cancelled if unused). Off by default — prefetching
  // reads pages the caller never asked for, which would skew the
  // seek/transfer accounting the cost-model tests pin down.
  void EnableReadAhead(IoExecutor* exec);

 private:
  // Serves [lo, hi) of the current leaf, from the prefetched buffer when
  // it covers the current segment, from the device otherwise.
  Status ReadCurrentLeaf(uint64_t lo, uint64_t hi, uint8_t* out);

  // Starts fetching the leaf after the current one, if any and not
  // already in flight.
  void ArmPrefetch();

  // Called after walker_.Next() succeeded: promotes a matching in-flight
  // fetch to "serving" or discards a stale one.
  void SettlePrefetch();

  void DropPrefetch(bool cancelled);

  LobManager* mgr_;
  const LobDescriptor& d_;
  LeafWalker walker_;
  uint64_t pos_ = 0;
  bool positioned_ = false;

  IoExecutor* prefetch_exec_ = nullptr;
  IoExecutor::Ticket prefetch_ticket_;
  CancelToken prefetch_cancel_;  // flags the in-flight fetch as abandoned
  BufferPool::Buffer prefetch_buf_;
  Extent prefetch_extent_;       // segment the in-flight fetch targets
  bool prefetch_armed_ = false;  // a fetch is in flight
  bool serving_ = false;         // current leaf is served from prefetch_buf_
  obs::Counter* m_issued_ = nullptr;
  obs::Counter* m_hit_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
};

}  // namespace eos

#endif  // EOS_LOB_WALKER_H_
