#include "lob/node.h"

#include <cassert>

#include "common/bytes.h"

namespace eos {

int LobNode::FindChild(uint64_t* offset) const {
  assert(!entries.empty());
  // Binary search over cumulative counts: smallest i with cum(i) > offset.
  // Cumulative counts are reconstructed on the fly from totals.
  uint64_t off = *offset;
  uint64_t cum = 0;
  // Entries are few (<= page/16); linear scan is cache-friendly and avoids
  // materializing the cumulative array. The on-disk search (Section 4.2)
  // binary-searches the serialized cumulative form.
  for (size_t i = 0; i < entries.size(); ++i) {
    if (off < cum + entries[i].count) {
      *offset = off - cum;
      return static_cast<int>(i);
    }
    cum += entries[i].count;
  }
  assert(false && "offset beyond subtree total");
  return static_cast<int>(entries.size()) - 1;
}

void NodeFormat::Serialize(const LobNode& node, uint8_t* page,
                           uint32_t page_size) {
  (void)page_size;
  assert(node.entries.size() <= Capacity(page_size));
  EncodeU16(page, kMagic);
  EncodeU16(page + 2, static_cast<uint16_t>(node.entries.size()));
  EncodeU16(page + 4, node.level);
  EncodeU16(page + 6, 0);
  uint64_t cum = 0;
  uint8_t* p = page + kHeaderBytes;
  for (const LobEntry& e : node.entries) {
    cum += e.count;
    EncodeU64(p, cum);
    EncodeU64(p + 8, e.page);
    p += kEntryBytes;
  }
}

Status NodeFormat::Deserialize(const uint8_t* page, uint32_t page_size,
                               LobNode* node) {
  if (DecodeU16(page) != kMagic) {
    return Status::Corruption("large-object index node magic mismatch");
  }
  uint16_t n = DecodeU16(page + 2);
  if (n > Capacity(page_size)) {
    return Status::Corruption("index node entry count exceeds capacity");
  }
  node->level = DecodeU16(page + 4);
  node->entries.clear();
  node->entries.reserve(n);
  uint64_t prev = 0;
  const uint8_t* p = page + kHeaderBytes;
  for (uint16_t i = 0; i < n; ++i) {
    uint64_t cum = DecodeU64(p);
    if (cum <= prev) {
      return Status::Corruption("index node counts not strictly increasing");
    }
    node->entries.push_back(LobEntry{cum - prev, DecodeU64(p + 8)});
    prev = cum;
    p += kEntryBytes;
  }
  return Status::OK();
}

StatusOr<LobNode> NodeStore::Load(PageId page) {
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Fetch(page));
  LobNode node;
  EOS_RETURN_IF_ERROR(NodeFormat::Deserialize(h.data(), page_size_, &node));
  return node;
}

Status NodeStore::Write(PageId* page, const LobNode& node) {
  if (shadowing_) {
    EOS_ASSIGN_OR_RETURN(PageId fresh, WriteNew(node));
    EOS_RETURN_IF_ERROR(FreePage(*page));
    *page = fresh;
    return Status::OK();
  }
  // In-place overwrite: under a reservation, save the pre-op image first so
  // a mid-operation failure can put the spine back exactly.
  if (SpaceReservation* res = SpaceReservation::ActiveFor(allocator_)) {
    EOS_ASSIGN_OR_RETURN(PageHandle old, pager_->Fetch(*page));
    res->RecordPageImage(*page, old.data(), page_size_);
  }
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Zeroed(*page));
  NodeFormat::Serialize(node, h.data(), page_size_);
  h.MarkDirty();
  return Status::OK();
}

StatusOr<PageId> NodeStore::WriteNew(const LobNode& node) {
  EOS_ASSIGN_OR_RETURN(Extent e, allocator_->Allocate(1));
  EOS_ASSIGN_OR_RETURN(PageHandle h, pager_->Zeroed(e.first));
  NodeFormat::Serialize(node, h.data(), page_size_);
  h.MarkDirty();
  return e.first;
}

Status NodeStore::FreePage(PageId page) {
  // Under a reservation the free below is merely parked, so an unwind
  // brings this page back live — but Invalidate may drop a not-yet-flushed
  // frame. Save the current image so unwind can rewrite it.
  if (SpaceReservation* res = SpaceReservation::ActiveFor(allocator_)) {
    auto old = pager_->Fetch(page);
    if (old.ok()) {
      res->RecordPageImage(page, old.value().data(), page_size_);
    }
  }
  pager_->Invalidate(page);
  return allocator_->Free(Extent{page, 1});
}

}  // namespace eos
