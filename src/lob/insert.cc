// Byte-range insert (Section 4.3.1) with page reshuffling under the
// segment size threshold (Section 4.4), and the one-shot append path.

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/math.h"
#include "lob/leaf_io.h"
#include "lob/lob_manager.h"
#include "lob/reshuffle.h"
#include "obs/op_tracer.h"
#include "txn/log_manager.h"

namespace eos {

Status LobManager::Insert(LobDescriptor* d, uint64_t offset, ByteView data) {
  obs::ScopedOp span("lob.insert", 0, device());
  obs::CostScope cost(
      obs::CostOp::kInsert,
      obs::ExpectedInsertCost(CostFacts(*d), data.size(),
                              config_.threshold_pages),
      device());
  Status s =
      RunGuarded(d, "lob.insert", [&] { return InsertImpl(d, offset, data); });
  cost.set_ok(s.ok());
  return span.Close(std::move(s));
}

Status LobManager::InsertImpl(LobDescriptor* d, uint64_t offset,
                              ByteView data) {
  if (offset > d->size()) {
    return Status::OutOfRange("insert offset beyond object size");
  }
  if (data.empty()) return Status::OK();
  if (offset == d->size()) return Append(d, data);
  if (log_ != nullptr) {
    EOS_RETURN_IF_ERROR(log_->LogInsert(d, offset, data));
  }

  const uint32_t ps = page_size();
  std::vector<PathLevel> path;
  LeafRef leaf;
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, offset, &path, &leaf, &local));

  // Step 2 (preparation): carve S into L | page P | R around byte B.
  const uint64_t sc = leaf.bytes;
  const uint64_t sp = leaf.extent.pages;
  const uint64_t p = local / ps;   // page of S holding byte B
  const uint64_t pb = local % ps;  // byte within P where insertion starts
  const uint64_t pc = (p == sp - 1) ? sc - p * ps : ps;  // bytes stored in P
  const uint64_t lc = p * ps + pb;
  const uint64_t rc = (p == sp - 1) ? 0 : sc - (p + 1) * ps;
  const uint64_t nc = data.size() + (pc - pb);

  // Step 3: byte + page reshuffling.
  ReshuffleInput in;
  in.lc = lc;
  in.nc = nc;
  in.rc = rc;
  in.page_size = ps;
  in.threshold = EffectiveThreshold(*d, path.back().node.entries.size());
  in.max_segment_pages = max_segment_pages_;
  ReshufflePlan plan = PlanReshuffle(in);

  // Step 4: read the affected pages of S (one physically contiguous access
  // unless R contributes from beyond a gap), assemble N, write it out.
  std::vector<std::pair<uint64_t, uint64_t>> ranges = {
      {plan.lc, lc},                          // bytes migrating from L's tail
      {local, p * ps + pc},                   // P's suffix at/after Pb
      {(p + 1) * ps, (p + 1) * ps + plan.from_r},  // bytes from R's head
  };
  std::vector<Bytes> parts;
  EOS_RETURN_IF_ERROR(lob_internal::ReadLeafRuns(
      device(), ps, leaf.extent.first, ranges, &parts));

  Bytes nbuf;
  nbuf.reserve(plan.nc);
  nbuf.insert(nbuf.end(), parts[0].begin(), parts[0].end());
  nbuf.insert(nbuf.end(), data.data(), data.data() + data.size());
  nbuf.insert(nbuf.end(), parts[1].begin(), parts[1].end());
  nbuf.insert(nbuf.end(), parts[2].begin(), parts[2].end());
  assert(nbuf.size() == plan.nc);
  EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> mid, WriteSegments(nbuf));

  // Free the pages of S that ended up in N: everything between the
  // surviving L prefix and the surviving R suffix.
  const uint64_t l_pages = LeafPages(plan.lc);
  const uint64_t r_shift =
      rc == 0 ? 0
              : (plan.rc == 0 ? sp - (p + 1) : plan.from_r / ps);
  const uint64_t freed_lo = l_pages;
  const uint64_t freed_hi = p + 1 + r_shift;
  if (freed_hi > freed_lo) {
    EOS_RETURN_IF_ERROR(allocator()->Free(
        Extent{leaf.extent.first + freed_lo,
               static_cast<uint32_t>(freed_hi - freed_lo)}));
  }

  // Step 5: fix the parent with entries for L, N, R and propagate.
  std::vector<LobEntry> repl;
  if (plan.lc > 0) repl.push_back(LobEntry{plan.lc, leaf.extent.first});
  repl.insert(repl.end(), mid.begin(), mid.end());
  if (plan.rc > 0) {
    repl.push_back(
        LobEntry{plan.rc, leaf.extent.first + p + 1 + r_shift});
  }
  return ReplaceInPath(d, &path, std::move(repl));
}

Status LobManager::Append(LobDescriptor* d, ByteView data) {
  obs::ScopedOp span("lob.append", 0, device());
  obs::CostScope cost(obs::CostOp::kAppend,
                      obs::ExpectedAppendCost(CostFacts(*d), data.size()),
                      device());
  Status s = RunGuarded(d, "lob.append", [&] { return AppendImpl(d, data); });
  cost.set_ok(s.ok());
  return span.Close(std::move(s));
}

Status LobManager::AppendImpl(LobDescriptor* d, ByteView data) {
  if (data.empty()) return Status::OK();
  if (log_ != nullptr) {
    EOS_RETURN_IF_ERROR(log_->LogAppend(d, data));
  }
  const uint32_t ps = page_size();
  if (d->empty()) {
    EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> segs, WriteSegments(data));
    d->root.level = 0;
    d->root.entries = std::move(segs);
    return FitRoot(d);
  }
  std::vector<PathLevel> path;
  LeafRef leaf;
  uint64_t local = 0;
  EOS_RETURN_IF_ERROR(DescendToLeaf(*d, d->size() - 1, &path, &leaf, &local));

  const uint64_t lm = leaf.bytes % ps;  // bytes in the partial last page
  std::vector<LobEntry> repl;
  if (lm == 0) {
    // The last page is full: simply add new segments after the last leaf.
    EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> segs, WriteSegments(data));
    repl.push_back(LobEntry{leaf.bytes, leaf.extent.first});
    repl.insert(repl.end(), segs.begin(), segs.end());
  } else {
    // Move the partial tail into the new segment instead of overwriting the
    // last leaf page (Section 4.5: append never overwrites leaf pages).
    Bytes buf(lm + data.size());
    EOS_RETURN_IF_ERROR(
        ReadLeafBytes(leaf, leaf.bytes - lm, leaf.bytes, buf.data()));
    std::memcpy(buf.data() + lm, data.data(), data.size());
    EOS_ASSIGN_OR_RETURN(std::vector<LobEntry> segs, WriteSegments(buf));
    // Trim the now-unused last page of the old leaf.
    EOS_RETURN_IF_ERROR(allocator()->Free(
        Extent{leaf.extent.first + leaf.extent.pages - 1, 1}));
    if (leaf.bytes > lm) {
      repl.push_back(LobEntry{leaf.bytes - lm, leaf.extent.first});
    }
    repl.insert(repl.end(), segs.begin(), segs.end());
  }
  EOS_RETURN_IF_ERROR(ReplaceInPath(d, &path, std::move(repl)));
  return RepairUnderflow(d, d->size() - 1);
}

}  // namespace eos
