#include "obs/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/op_tracer.h"

namespace eos {
namespace obs {

std::string SnapshotJson() {
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Number(1));
  root.Set("enabled", JsonValue::Bool(Enabled()));
  root.Set("metrics", MetricsRegistry::Default().ToJsonValue());
  root.Set("trace", OpTracer::Default().ToJsonValue());
  return root.Dump();
}

std::string SnapshotPathFor(const std::string& volume_path) {
  return volume_path + ".obs.json";
}

Status WriteSnapshotFile(const std::string& path) {
  std::string json = SnapshotJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  size_t put = std::fwrite(json.data(), 1, json.size(), f);
  int werr = std::ferror(f);
  if (std::fputc('\n', f) == EOF) werr = 1;
  if (std::fclose(f) != 0 || werr != 0 || put != json.size()) {
    return Status::IOError("write(" + path + ") failed");
  }
  return Status::OK();
}

StatusOr<JsonValue> ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  std::string all;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    all.append(buf, n);
  }
  int rerr = std::ferror(f);
  std::fclose(f);
  if (rerr != 0) {
    return Status::IOError("read(" + path + ") failed");
  }
  return JsonValue::Parse(all);
}

}  // namespace obs
}  // namespace eos
