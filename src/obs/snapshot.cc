#include "obs/snapshot.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/op_tracer.h"

namespace eos {
namespace obs {

std::string SnapshotJson() {
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Number(1));
  root.Set("enabled", JsonValue::Bool(Enabled()));
  root.Set("metrics", MetricsRegistry::Default().ToJsonValue());
  root.Set("trace", OpTracer::Default().ToJsonValue());
  return root.Dump();
}

std::string SnapshotPathFor(const std::string& volume_path) {
  return volume_path + ".obs.json";
}

Status WriteSnapshotFile(const std::string& path) {
  std::string json = SnapshotJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  size_t put = std::fwrite(json.data(), 1, json.size(), f);
  int werr = std::ferror(f);
  if (std::fputc('\n', f) == EOF) werr = 1;
  if (std::fclose(f) != 0 || werr != 0 || put != json.size()) {
    return Status::IOError("write(" + path + ") failed");
  }
  return Status::OK();
}

std::string ChromeTraceJson(const JsonValue& snapshot) {
  JsonValue events = JsonValue::Array();
  const JsonValue* trace = snapshot.Find("trace");
  uint64_t synth_ts = 0;  // fallback clock for spans without start_us
  if (trace != nullptr && trace->is_array()) {
    for (const JsonValue& s : trace->elements()) {
      if (!s.is_object()) continue;
      double dur = s.NumberOr("wall_us", 0);
      double ts;
      if (s.Find("start_us") != nullptr) {
        ts = s.NumberOr("start_us", 0);
      } else {
        ts = static_cast<double>(synth_ts);
        synth_ts += static_cast<uint64_t>(dur) + 1;
      }
      JsonValue e = JsonValue::Object();
      const JsonValue* op = s.Find("op");
      e.Set("name", JsonValue::Str(
                        op != nullptr && op->is_string() ? op->str() : "op"));
      e.Set("cat", JsonValue::Str("eos"));
      e.Set("ph", JsonValue::Str("X"));
      e.Set("ts", JsonValue::Number(ts));
      e.Set("dur", JsonValue::Number(dur));
      e.Set("pid", JsonValue::Number(1));
      // Nested spans get their own rows so they stack under the outermost.
      e.Set("tid", JsonValue::Number(1 + s.NumberOr("depth", 0)));
      JsonValue args = JsonValue::Object();
      args.Set("object", JsonValue::Number(s.NumberOr("object", 0)));
      args.Set("seeks", JsonValue::Number(s.NumberOr("seeks", 0)));
      args.Set("pages_read", JsonValue::Number(s.NumberOr("pages_read", 0)));
      args.Set("pages_written",
               JsonValue::Number(s.NumberOr("pages_written", 0)));
      const JsonValue* ok = s.Find("ok");
      args.Set("ok", JsonValue::Bool(ok == nullptr || ok->boolean()));
      e.Set("args", std::move(args));
      events.Push(std::move(e));
    }
  }
  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", JsonValue::Str("ms"));
  return root.Dump();
}

StatusOr<JsonValue> ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  std::string all;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    all.append(buf, n);
  }
  int rerr = std::ferror(f);
  std::fclose(f);
  if (rerr != 0) {
    return Status::IOError("read(" + path + ") failed");
  }
  return JsonValue::Parse(all);
}

// ----- background snapshot writer --------------------------------------------

SnapshotWriter::~SnapshotWriter() { Stop(); }

void SnapshotWriter::Start(std::string path, uint64_t interval_ms) {
  Stop();
  std::lock_guard<std::mutex> g(mu_);
  path_ = std::move(path);
  interval_ms_ = interval_ms == 0 ? 1000 : interval_ms;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void SnapshotWriter::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> g(mu_);
  running_ = false;
}

bool SnapshotWriter::running() const {
  std::lock_guard<std::mutex> g(mu_);
  return running_;
}

uint64_t SnapshotWriter::writes() const {
  std::lock_guard<std::mutex> g(mu_);
  return writes_;
}

void SnapshotWriter::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    std::string path = path_;
    lk.unlock();
    Status s = WriteSnapshotFile(path);
    lk.lock();
    if (s.ok()) ++writes_;
    if (stop_) return;  // the write above was the final one
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) {
      // One last write so the file reflects the state at Stop().
      std::string final_path = path_;
      lk.unlock();
      if (WriteSnapshotFile(final_path).ok()) {
        lk.lock();
        ++writes_;
      } else {
        lk.lock();
      }
      return;
    }
  }
}

}  // namespace obs
}  // namespace eos
