#include "obs/event_journal.h"

#include <unistd.h>

#include "obs/metric_names.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eos {
namespace obs {

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kOpBegin:
      return "op_begin";
    case EventKind::kOpEnd:
      return "op_end";
    case EventKind::kIoBatch:
      return "io_batch";
    case EventKind::kChecksumFail:
      return "checksum_fail";
    case EventKind::kQuarantine:
      return "quarantine";
    case EventKind::kReservationUnwind:
      return "reservation_unwind";
    case EventKind::kChaosFault:
      return "chaos_fault";
    case EventKind::kCrash:
      return "crash";
    case EventKind::kFatal:
      return "fatal";
    case EventKind::kNote:
      return "note";
  }
  return "unknown";
}

// Per-thread ring. The latch is owned by exactly one recording thread and
// taken by readers only during a dump, so recording is effectively
// uncontended; it exists to make the slot bytes themselves race-free under
// TSan when a dump snapshots a live ring.
struct EventJournal::Ring {
  Ring(size_t cap, uint32_t tid_in) : tid(tid_in) { slots.resize(cap); }

  const uint32_t tid;  // registration index, stable for the thread's life
  mutable Latch latch;
  std::vector<JournalEvent> slots;
  size_t next = 0;      // insertion cursor once full
  size_t filled = 0;    // <= slots.size()
  uint64_t recorded = 0;  // events ever recorded by this thread
};

namespace {

std::atomic<uint64_t> g_journal_ids{1};

obs::Counter* EventsCounter() {
  static Counter* c =
      MetricsRegistry::Default().counter(kJournalEvents);
  return c;
}

obs::Counter* PostMortemsCounter() {
  static Counter* c =
      MetricsRegistry::Default().counter(kJournalPostMortems);
  return c;
}

}  // namespace

EventJournal& EventJournal::Default() {
  static EventJournal* journal = new EventJournal();
  return *journal;
}

EventJournal::EventJournal(size_t per_thread_capacity)
    : cap_(per_thread_capacity == 0 ? 1 : per_thread_capacity),
      id_(g_journal_ids.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

EventJournal::~EventJournal() = default;

EventJournal::Ring* EventJournal::RingForThisThread() {
  // One-entry cache: the common case is a thread talking to the default
  // journal only, so the registration latch is taken once per thread.
  thread_local uint64_t cached_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_id == id_) return cached_ring;
  LatchGuard g(latch_);
  auto it = by_thread_.find(std::this_thread::get_id());
  Ring* ring;
  if (it != by_thread_.end()) {
    ring = it->second;
  } else {
    rings_.push_back(
        std::make_unique<Ring>(cap_, static_cast<uint32_t>(rings_.size())));
    ring = rings_.back().get();
    by_thread_[std::this_thread::get_id()] = ring;
  }
  cached_id = id_;
  cached_ring = ring;
  return ring;
}

void EventJournal::Record(EventKind kind, const char* label, uint64_t a,
                          uint64_t b, uint64_t c, bool ok) {
  if (!Enabled()) return;
  Ring* ring = RingForThisThread();
  JournalEvent e;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  e.t_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  e.kind = kind;
  e.label = label;
  e.a = a;
  e.b = b;
  e.c = c;
  e.ok = ok;
  e.tid = ring->tid;
  LatchGuard g(ring->latch);
  if (ring->filled < ring->slots.size()) {
    ring->slots[ring->filled++] = e;
  } else {
    ring->slots[ring->next] = e;
    ring->next = (ring->next + 1) % ring->slots.size();
  }
  ++ring->recorded;
  EventsCounter()->Inc();
}

uint64_t EventJournal::total_recorded() const {
  LatchGuard g(latch_);
  uint64_t total = 0;
  for (const auto& r : rings_) {
    LatchGuard rg(r->latch);
    total += r->recorded;
  }
  return total;
}

size_t EventJournal::threads_seen() const {
  LatchGuard g(latch_);
  return rings_.size();
}

void EventJournal::Clear() {
  LatchGuard g(latch_);
  for (const auto& r : rings_) {
    LatchGuard rg(r->latch);
    r->next = 0;
    r->filled = 0;
    r->recorded = 0;
  }
  seq_.store(0, std::memory_order_relaxed);
}

std::vector<JournalEvent> EventJournal::MergedEvents() const {
  std::vector<JournalEvent> out;
  {
    LatchGuard g(latch_);
    for (const auto& r : rings_) {
      LatchGuard rg(r->latch);
      // Oldest first within the ring: next points at the oldest once full.
      size_t n = r->filled;
      size_t start = r->filled < r->slots.size() ? 0 : r->next;
      for (size_t i = 0; i < n; ++i) {
        out.push_back(r->slots[(start + i) % r->slots.size()]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalEvent& x, const JournalEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

JsonValue EventJournal::ToJsonValue() const {
  std::vector<JournalEvent> events = MergedEvents();
  uint64_t recorded = total_recorded();
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Number(1));
  root.Set("recorded", JsonValue::Number(static_cast<double>(recorded)));
  root.Set("dropped", JsonValue::Number(static_cast<double>(
                          recorded - events.size())));
  JsonValue arr = JsonValue::Array();
  for (const JournalEvent& e : events) {
    JsonValue o = JsonValue::Object();
    o.Set("seq", JsonValue::Number(static_cast<double>(e.seq)));
    o.Set("t_us", JsonValue::Number(static_cast<double>(e.t_us)));
    o.Set("tid", JsonValue::Number(e.tid));
    o.Set("kind", JsonValue::Str(EventKindName(e.kind)));
    o.Set("label", JsonValue::Str(e.label));
    o.Set("a", JsonValue::Number(static_cast<double>(e.a)));
    o.Set("b", JsonValue::Number(static_cast<double>(e.b)));
    o.Set("c", JsonValue::Number(static_cast<double>(e.c)));
    o.Set("ok", JsonValue::Bool(e.ok));
    arr.Push(std::move(o));
  }
  root.Set("events", std::move(arr));
  return root;
}

// ----- post-mortem dumps -----------------------------------------------------

namespace {

Latch g_postmortem_latch;
std::string* g_postmortem_dir = nullptr;  // guarded by g_postmortem_latch

std::string DefaultPostMortemDir() {
  const char* e = std::getenv("EOS_JOURNAL_DIR");
  return e != nullptr && e[0] != '\0' ? e : ".";
}

}  // namespace

void SetPostMortemDir(const std::string& dir) {
  LatchGuard g(g_postmortem_latch);
  if (g_postmortem_dir == nullptr) g_postmortem_dir = new std::string();
  *g_postmortem_dir = dir;
}

std::string PostMortemDir() {
  LatchGuard g(g_postmortem_latch);
  if (g_postmortem_dir != nullptr && !g_postmortem_dir->empty()) {
    return *g_postmortem_dir;
  }
  return DefaultPostMortemDir();
}

StatusOr<std::string> WritePostMortem(const char* reason) {
  if (!Enabled()) {
    return Status::NotFound("observability disabled: no journal to dump");
  }
  std::string path = PostMortemDir() + "/eos_postmortem." +
                     std::to_string(getpid()) + "." + reason + ".json";
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Number(1));
  root.Set("reason", JsonValue::Str(reason));
  root.Set("pid", JsonValue::Number(getpid()));
  const char* seed = std::getenv("EOS_TEST_SEED");
  root.Set("eos_test_seed",
           seed != nullptr ? JsonValue::Str(seed) : JsonValue());
  root.Set("journal", EventJournal::Default().ToJsonValue());
  std::string json = root.Dump();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  size_t put = std::fwrite(json.data(), 1, json.size(), f);
  int werr = std::ferror(f);
  if (std::fputc('\n', f) == EOF) werr = 1;
  if (std::fclose(f) != 0 || werr != 0 || put != json.size()) {
    return Status::IOError("write(" + path + ") failed");
  }
  PostMortemsCounter()->Inc();
  return path;
}

void DumpPostMortemBestEffort(const char* reason) {
  auto path = WritePostMortem(reason);
  if (path.ok()) {
    std::fprintf(stderr, "eos: post-mortem journal: %s\n", path->c_str());
  }
}

}  // namespace obs
}  // namespace eos
