#ifndef EOS_OBS_OP_TRACER_H_
#define EOS_OBS_OP_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/latch.h"
#include "io/io_stats.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace eos {

class PageDevice;

namespace obs {

// One completed traced operation: wall time plus the deltas of the paper's
// cost quantities (seeks, transfers) and the component counters, attributed
// to the logical operation that caused them. Deltas are computed from the
// process-wide metric counters, so concurrent operations see each other's
// activity folded in — spans attribute cost exactly in the single-writer
// regime the paper (Section 4.5: lock the root) prescribes per object.
struct OpSpan {
  const char* op = "";      // static string, e.g. "db.append"
  uint64_t object_id = 0;   // 0 when unknown at this layer
  uint64_t seq = 0;         // monotone per tracer
  uint32_t depth = 0;       // nesting depth at begin (0 = outermost)
  bool ok = true;
  uint64_t start_us = 0;    // begin time, us since the process trace epoch
  uint64_t wall_us = 0;
  IoStats io;               // device seeks/transfers during the span
  uint64_t pager_hits = 0;
  uint64_t pager_misses = 0;
  uint64_t pager_evictions = 0;
  uint64_t buddy_allocs = 0;
  uint64_t buddy_frees = 0;
  uint64_t buddy_coalesces = 0;
  uint64_t reshuffles = 0;
  uint64_t log_records = 0;
};

// Bounded in-memory ring of recent spans. Recording is O(1) and keeps the
// last `capacity` spans; total() still counts every span ever recorded so
// wraparound is observable.
class OpTracer {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  // The process-wide tracer every built-in hook reports to.
  static OpTracer& Default();

  explicit OpTracer(size_t capacity = kDefaultCapacity);

  // Drops recorded spans when shrinking; capacity must be >= 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Clear();
  uint64_t total() const;  // spans ever recorded (>= Spans().size())

  // Retained spans, oldest first.
  std::vector<OpSpan> Spans() const;

  JsonValue ToJsonValue() const;
  std::string ToText() const;

 private:
  friend class ScopedOp;

  void Push(OpSpan&& span);
  uint32_t Enter() { return depth_.fetch_add(1, std::memory_order_relaxed); }
  void Exit() { depth_.fetch_sub(1, std::memory_order_relaxed); }

  mutable Latch latch_;
  size_t cap_;
  std::vector<OpSpan> ring_;  // circular once full
  size_t next_ = 0;           // insertion cursor
  uint64_t total_ = 0;
  std::atomic<uint32_t> depth_{0};
};

// RAII span: snapshots the device IoStats and the well-known component
// counters at construction, and on destruction records the deltas (plus
// wall time) into the tracer's ring and an "op.<name>.us" latency histogram
// in the default registry. Inert when observability is disabled.
class ScopedOp {
 public:
  // `device` may be null (no I/O attribution); `tracer` defaults to
  // OpTracer::Default().
  ScopedOp(const char* op, uint64_t object_id, PageDevice* device,
           OpTracer* tracer = nullptr);
  ~ScopedOp();

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

  void set_ok(bool ok) { ok_ = ok; }
  // Convenience for `return span.Close(status);` call sites.
  Status Close(Status s) {
    ok_ = s.ok();
    return s;
  }

 private:
  struct CounterSnap {
    uint64_t pager_hits = 0;
    uint64_t pager_misses = 0;
    uint64_t pager_evictions = 0;
    uint64_t buddy_allocs = 0;
    uint64_t buddy_frees = 0;
    uint64_t buddy_coalesces = 0;
    uint64_t reshuffles = 0;
    uint64_t log_records = 0;
  };
  static CounterSnap Snap();

  bool active_ = false;
  bool ok_ = true;
  const char* op_;
  uint64_t object_id_;
  PageDevice* device_;
  OpTracer* tracer_ = nullptr;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  IoStats io_start_;
  CounterSnap snap_;
};

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_OP_TRACER_H_
