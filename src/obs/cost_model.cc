#include "obs/cost_model.h"

#include <algorithm>
#include <cmath>

#include "io/page_device.h"
#include "obs/metric_names.h"

namespace eos {
namespace obs {

namespace {

double CeilDiv(double a, double b) { return std::ceil(a / b); }

// Pages overlapped by [offset, offset+len) at the given page size.
double PagesSpanned(uint64_t offset, uint64_t len, uint32_t ps) {
  if (len == 0) return 0;
  uint64_t first = offset / ps;
  uint64_t last = (offset + len - 1) / ps;
  return static_cast<double>(last - first + 1);
}

}  // namespace

CostEstimate ExpectedReadCost(const CostInputs& in, uint64_t offset,
                              uint64_t len) {
  CostEstimate e;
  if (in.object_bytes == 0 || len == 0) return e;
  len = std::min(len, in.object_bytes - std::min(offset, in.object_bytes));
  if (len == 0) return e;
  double u = in.utilization > 0 ? std::min(in.utilization, 1.0) : 1.0;
  // Leaf transfers: the pages overlapping the range; when leaves run at
  // utilization u the same bytes occupy 1/u as many pages (Section 4.4's
  // "storage utilization" is exactly bytes / leaf pages).
  e.leaf_reads = PagesSpanned(offset, len, in.page_size) / u;
  // Segments touched: one per max-size extent the range spans, plus one
  // for straddling a boundary at each end's partial segment.
  double max_seg = std::max<double>(in.max_segment_pages, 1);
  double segments = CeilDiv(e.leaf_reads, max_seg) + 1;
  // Descent reads one index node per level; each additional segment
  // re-walks at most the same spine (Section 4.2's h single-page accesses
  // per boundary). Buffered ancestors make this an upper bound.
  e.index_reads = static_cast<double>(in.depth) * segments;
  // One seek per segment (its pages are physically contiguous) and one
  // per index node, the paper's seek accounting.
  e.seeks = segments + e.index_reads;
  return e;
}

CostEstimate ExpectedInsertCost(const CostInputs& in, uint64_t len,
                                uint32_t threshold_pages) {
  CostEstimate e;
  if (len == 0) return e;
  double t = std::max<double>(threshold_pages, 1);
  // "One or two (physically adjacent) pages from the original leaf segment
  // have to be read" (4.3.1); page reshuffling may pull up to T-1 more
  // from within the segment to make the new neighbour safe (4.4).
  e.leaf_reads = 2 + (t - 1);
  // The new bytes land in fresh segments; the cut leaf halves are written
  // back (at most 2 pages), and reshuffled pages are rewritten too.
  e.leaf_writes = CeilDiv(static_cast<double>(len), in.page_size) + 2 + (t - 1);
  // The spine is read on descent and written back bottom-up, with at most
  // one split per level plus root growth.
  e.index_reads = in.depth;
  e.index_writes = in.depth + 2;
  // Allocation-map directory pages for the new segments (Section 3): one
  // read-modify-write per allocation, amortized ~2 pages.
  e.index_writes += 2;
  e.seeks = 2 /* leaf in+out */ + e.index_reads + e.index_writes;
  return e;
}

CostEstimate ExpectedAppendCost(const CostInputs& in, uint64_t len) {
  CostEstimate e;
  if (len == 0) return e;
  // Fresh pages for the appended bytes plus the re-written partial
  // trailing page (read, filled, written back) — Section 4.1.
  e.leaf_reads = 1;
  e.leaf_writes = CeilDiv(static_cast<double>(len), in.page_size) + 1;
  e.index_reads = in.depth;
  e.index_writes = in.depth + 2;
  e.index_writes += 2;  // allocation-map directory pages
  e.seeks = 2 + e.index_reads + e.index_writes;
  return e;
}

CostEstimate ExpectedDeleteCost(const CostInputs& in, uint64_t offset,
                                uint64_t len, uint32_t threshold_pages) {
  CostEstimate e;
  if (len == 0 || in.object_bytes == 0) return e;
  double t = std::max<double>(threshold_pages, 1);
  uint64_t end = offset + std::min(len, in.object_bytes - offset);
  bool lo_aligned = offset % in.page_size == 0;
  bool hi_aligned = end % in.page_size == 0 || end == in.object_bytes;
  // "Deletions where the last byte ... happens to be the last byte of a
  // page can be completed without accessing any segment" (4.3.2): interior
  // whole segments are dropped through the index alone. Only ragged range
  // ends touch leaves — one page each, plus up to T-1 reshuffled pages.
  double ragged = (lo_aligned ? 0 : 1) + (hi_aligned ? 0 : 1);
  if (ragged > 0) {
    e.leaf_reads = ragged + (t - 1);
    e.leaf_writes = ragged + (t - 1);
  }
  // The spine rewrite may splice at every level; freed segments return to
  // the allocation maps (~2 directory pages).
  e.index_reads = in.depth;
  e.index_writes = in.depth + 2 + 2;
  e.seeks = ragged + e.index_reads + e.index_writes;
  return e;
}

// ----- conformance telemetry -------------------------------------------------

const char* CostOpName(CostOp op) {
  switch (op) {
    case CostOp::kRead:
      return "read";
    case CostOp::kInsert:
      return "insert";
    case CostOp::kAppend:
      return "append";
    case CostOp::kDelete:
      return "delete";
  }
  return "unknown";
}

namespace {

struct ConformanceMetrics {
  Histogram* ratio[4];
  Histogram* model_pages;
  Histogram* actual_pages;
  Counter* ops;
};

const ConformanceMetrics& Metrics() {
  static ConformanceMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    auto* mm = new ConformanceMetrics();
    mm->ratio[static_cast<int>(CostOp::kRead)] =
        r.histogram(kCostReadRatio);
    mm->ratio[static_cast<int>(CostOp::kInsert)] =
        r.histogram(kCostInsertRatio);
    mm->ratio[static_cast<int>(CostOp::kAppend)] =
        r.histogram(kCostAppendRatio);
    mm->ratio[static_cast<int>(CostOp::kDelete)] =
        r.histogram(kCostDeleteRatio);
    mm->model_pages = r.histogram(kCostModelPages);
    mm->actual_pages = r.histogram(kCostActualPages);
    mm->ops = r.counter(kCostOpsCompared);
    return mm;
  }();
  return *m;
}

}  // namespace

void RecordConformance(CostOp op, const CostEstimate& model,
                       const IoStats& actual) {
  if (!Enabled()) return;
  double predicted = model.transfers();
  if (predicted < 1.0) predicted = 1.0;  // never divide by a zero estimate
  uint64_t measured = actual.transfers();
  uint64_t ratio_pct = static_cast<uint64_t>(
      std::llround(100.0 * static_cast<double>(measured) / predicted));
  const ConformanceMetrics& m = Metrics();
  m.ratio[static_cast<int>(op)]->Record(ratio_pct);
  m.model_pages->Record(static_cast<uint64_t>(std::llround(predicted)));
  m.actual_pages->Record(measured);
  m.ops->Inc();
}

CostScope::CostScope(CostOp op, const CostEstimate& model,
                     const PageDevice* dev)
    : op_(op), model_(model), dev_(dev) {
  if (!Enabled() || dev == nullptr) return;
  active_ = true;
  start_ = dev->stats();
}

CostScope::~CostScope() {
  if (!active_ || !ok_) return;
  RecordConformance(op_, model_, dev_->stats() - start_);
}

}  // namespace obs
}  // namespace eos
