#ifndef EOS_OBS_COST_MODEL_H_
#define EOS_OBS_COST_MODEL_H_

#include <cstdint>

#include "io/io_stats.h"
#include "obs/metrics.h"

namespace eos {

class PageDevice;

namespace obs {

// The paper's analytic per-operation I/O cost model (Biliris, ICDE 1992,
// Sections 4.1-4.4), evaluated from the cheap facts an object's root
// already records: its size, its tree level, the manager's maximum segment
// size, and a utilization assumption. The estimates deliberately describe
// the *ideal* layout (utilization 1.0, maximal segments) — comparing them
// against the measured per-op I/O turns the 1992 formulas into a drift
// detector: a conformance ratio creeping above 1 means the physical layout
// has degraded away from the model (the fragmentation-aging signal of
// Sears/van Ingen).

// The shape facts the formulas consume. `depth` is the number of index
// levels below the client-held root (root.level in this codebase): a
// root whose entries point directly at segments has depth 0.
struct CostInputs {
  uint64_t object_bytes = 0;
  uint32_t depth = 0;
  uint32_t page_size = 4096;
  uint32_t max_segment_pages = 1;  // the manager's maximum leaf segment
  double utilization = 1.0;        // expected leaf utilization (fresh = 1)
};

// Expected physical I/O of one operation, split the way the paper argues:
// index-page accesses (always single-page, each potentially a seek) and
// leaf transfers (multi-page runs, roughly one seek per segment).
struct CostEstimate {
  double index_reads = 0;
  double index_writes = 0;
  double leaf_reads = 0;
  double leaf_writes = 0;
  double seeks = 0;

  double pages_read() const { return index_reads + leaf_reads; }
  double pages_written() const { return index_writes + leaf_writes; }
  double transfers() const { return pages_read() + pages_written(); }
};

// Section 4.2: reading `len` bytes at `offset` touches the pages that
// overlap the range (scaled by 1/utilization when leaves are not full),
// one descent of `depth` index nodes per segment boundary crossed, and
// one seek per segment plus one per index node.
CostEstimate ExpectedReadCost(const CostInputs& in, uint64_t offset,
                              uint64_t len);

// Section 4.3.1 / 4.4: an insert reads one or two pages of the original
// leaf segment (plus up to threshold-1 more when page reshuffling makes
// the new segment safe), writes the new bytes as fresh segments, and
// rewrites the index spine.
CostEstimate ExpectedInsertCost(const CostInputs& in, uint64_t len,
                                uint32_t threshold_pages);

// Section 4.1: an append writes ceil(len/PS) fresh pages, re-reads and
// rewrites the partial trailing page, and rewrites the index spine.
CostEstimate ExpectedAppendCost(const CostInputs& in, uint64_t len);

// Section 4.3.2: a page-aligned delete touches no leaf page at all; a
// general delete reads/writes the one or two boundary pages (plus up to
// threshold-1 reshuffled pages) and rewrites the index spine.
CostEstimate ExpectedDeleteCost(const CostInputs& in, uint64_t offset,
                                uint64_t len, uint32_t threshold_pages);

// ----- conformance telemetry -------------------------------------------------

// Operation classes the conformance histograms are keyed by.
enum class CostOp : uint8_t { kRead = 0, kInsert, kAppend, kDelete };

const char* CostOpName(CostOp op);  // "read", "insert", ...

// Records one op's predicted-vs-actual page I/O into the registry:
//   cost.<op>_actual_over_model   histogram of 100 * actual / model
//   cost.model_pages              histogram of predicted transfers
//   cost.actual_pages             histogram of measured transfers
// A ratio persistently above 100 is the fragmentation early-warning
// (ROADMAP item 4). No-op when observability is disabled.
void RecordConformance(CostOp op, const CostEstimate& model,
                       const IoStats& actual);

// RAII conformance probe wrapped around an instrumented operation:
// snapshots the device stats at construction and records
// predicted-vs-actual at destruction — but only after set_ok(true), so an
// operation that errored or never ran contributes no sample. Inert (no
// snapshot, no estimate consumed) when observability is disabled or the
// device is null.
class CostScope {
 public:
  CostScope(CostOp op, const CostEstimate& model, const PageDevice* dev);
  ~CostScope();

  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

  void set_ok(bool ok) { ok_ = ok; }

 private:
  bool active_ = false;
  bool ok_ = false;
  CostOp op_;
  CostEstimate model_;
  const PageDevice* dev_;
  IoStats start_;
};

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_COST_MODEL_H_
