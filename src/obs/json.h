#ifndef EOS_OBS_JSON_H_
#define EOS_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace eos {
namespace obs {

// Minimal JSON document model for the observability exporters and for
// eos_inspect, which reads snapshot files back. Deliberately tiny: numbers
// are doubles, object keys keep insertion order (exports stay stable and
// diffable), and parsing accepts exactly the JSON this module emits plus
// ordinary hand-written JSON (escapes, nesting, whitespace).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  uint64_t u64() const;
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& elements() const { return elements_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object lookup; nullptr when absent (or when this is not an object).
  const JsonValue* Find(const std::string& key) const;
  // Number shortcut: Find(key)->number() with a fallback default.
  double NumberOr(const std::string& key, double fallback) const;

  // Builders (no-ops on the wrong kind).
  void Set(std::string key, JsonValue v);
  void Push(JsonValue v);

  // Compact single-line serialization.
  std::string Dump() const;

  static StatusOr<JsonValue> Parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes a string for embedding in JSON output (adds no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_JSON_H_
