#ifndef EOS_OBS_EVENT_JOURNAL_H_
#define EOS_OBS_EVENT_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace eos {
namespace obs {

// What an event records. The numeric args a/b/c are kind-specific; the
// full schema is in DESIGN.md ("Observability", flight recorder).
enum class EventKind : uint8_t {
  kOpBegin = 0,        // a = object id
  kOpEnd,              // a = object id, b = wall us, c = page transfers
  kIoBatch,            // a = runs in the batch, b = 0 read / 1 write
  kChecksumFail,       // a = page id
  kQuarantine,         // a = page id
  kReservationUnwind,  // a = extents returned
  kChaosFault,         // a = kind-specific detail (page id, kept pages)
  kCrash,              // simulated power loss
  kFatal,              // a non-recoverable status surfaced; label names it
  kNote,               // free-form marker
};

const char* EventKindName(EventKind k);

// One flight-recorder event. POD-light on purpose: `label` must be a
// static string (operation name, fault name) so recording never allocates.
struct JournalEvent {
  uint64_t seq = 0;   // global order across all threads
  uint64_t t_us = 0;  // microseconds since the journal's epoch
  uint32_t tid = 0;   // per-journal thread index (registration order)
  EventKind kind = EventKind::kNote;
  const char* label = "";
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  bool ok = true;
};

// Lock-light flight recorder: each thread records into its own bounded
// ring (one uncontended latch per ring, so writers never queue behind each
// other), and a global relaxed-atomic sequence number makes the merged
// order reconstructible. Keeps the last `per_thread_capacity` events per
// thread; total_recorded() counts every event ever recorded so wraparound
// is observable. Recording is a single branch when observability is
// disabled, and nothing — no ring, no sequence advance — is ever
// allocated on the disabled path.
class EventJournal {
 public:
  static constexpr size_t kDefaultPerThreadCapacity = 1024;

  // The process-wide journal every built-in hook reports to.
  static EventJournal& Default();

  explicit EventJournal(size_t per_thread_capacity = kDefaultPerThreadCapacity);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  void Record(EventKind kind, const char* label, uint64_t a = 0,
              uint64_t b = 0, uint64_t c = 0, bool ok = true);

  uint64_t total_recorded() const;
  size_t threads_seen() const;
  size_t per_thread_capacity() const { return cap_; }
  void Clear();

  // All retained events merged across threads, ascending by seq.
  std::vector<JournalEvent> MergedEvents() const;

  // {"version":1,"recorded":N,"dropped":N,"events":[...]}
  JsonValue ToJsonValue() const;

 private:
  struct Ring;

  Ring* RingForThisThread();

  const size_t cap_;
  const uint64_t id_;  // process-unique, validates the thread-local cache
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> seq_{0};

  mutable Latch latch_;  // guards rings_/by_thread_ registration
  std::vector<std::unique_ptr<Ring>> rings_;
  std::unordered_map<std::thread::id, Ring*> by_thread_;
};

// Records into the default journal; the hook every component uses.
inline void RecordEvent(EventKind kind, const char* label, uint64_t a = 0,
                        uint64_t b = 0, uint64_t c = 0, bool ok = true) {
  if (!Enabled()) return;
  EventJournal::Default().Record(kind, label, a, b, c, ok);
}

// ----- post-mortem dumps -----------------------------------------------------
//
// On any fatal event — ChaosPageDevice::Crash(), a failed torture
// assertion (tests install a gtest listener), an unrecoverable status —
// the default journal is dumped to
//   <dir>/eos_postmortem.<pid>.<reason>.json
// so every red run ships its own black box. `dir` defaults to
// $EOS_JOURNAL_DIR, else the working directory. The dump bundles the
// EOS_TEST_SEED environment variable so the run is reproducible from the
// file alone.

void SetPostMortemDir(const std::string& dir);
std::string PostMortemDir();

// Writes the dump and returns its path; no-op NotFound when observability
// is disabled (there is nothing to dump).
StatusOr<std::string> WritePostMortem(const char* reason);

// WritePostMortem + a stderr line with the path; errors are swallowed.
// Safe to call from destructors and failure paths.
void DumpPostMortemBestEffort(const char* reason);

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_EVENT_JOURNAL_H_
