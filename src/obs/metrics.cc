#include "obs/metrics.h"

#include <cstdlib>
#include <cstring>

namespace eos {
namespace obs {

namespace internal {

namespace {
bool InitFromEnv() {
  const char* e = std::getenv("EOS_OBS");
  return e == nullptr || std::strcmp(e, "0") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{InitFromEnv()};

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

size_t Histogram::BucketOf(uint64_t v) {
  if (v == 0) return 0;
  size_t b = 1;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b < kBuckets ? b : kBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested quantile, 1-based: ceil(p * total), at least 1.
  // Rounding up keeps the result conservative — p99 over two samples must
  // report the larger one, not the smaller.
  double exact = p * static_cast<double>(total);
  uint64_t rank = static_cast<uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) return BucketUpperBound(b);
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  LatchGuard g(latch_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  LatchGuard g(latch_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  LatchGuard g(latch_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  LatchGuard g(latch_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, gg] : gauges_) gg->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToText() const {
  LatchGuard g(latch_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name + " = " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, gg] : gauges_) {
    out += name + " = " + std::to_string(gg->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += name + ": count=" + std::to_string(h->count()) +
           " mean=" + std::to_string(h->mean()) +
           " p50=" + std::to_string(h->Percentile(0.50)) +
           " p99=" + std::to_string(h->Percentile(0.99)) +
           " max=" + std::to_string(h->max()) + "\n";
  }
  return out;
}

JsonValue MetricsRegistry::ToJsonValue() const {
  LatchGuard g(latch_);
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, JsonValue::Number(static_cast<double>(c->value())));
  }
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gg] : gauges_) {
    gauges.Set(name, JsonValue::Number(static_cast<double>(gg->value())));
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    JsonValue hist = JsonValue::Object();
    hist.Set("count", JsonValue::Number(static_cast<double>(h->count())));
    hist.Set("sum", JsonValue::Number(static_cast<double>(h->sum())));
    hist.Set("mean", JsonValue::Number(h->mean()));
    hist.Set("p50",
             JsonValue::Number(static_cast<double>(h->Percentile(0.50))));
    hist.Set("p90",
             JsonValue::Number(static_cast<double>(h->Percentile(0.90))));
    hist.Set("p99",
             JsonValue::Number(static_cast<double>(h->Percentile(0.99))));
    hist.Set("max", JsonValue::Number(static_cast<double>(h->max())));
    histograms.Set(name, std::move(hist));
  }
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::ToJson() const { return ToJsonValue().Dump(); }

namespace {

std::string PromName(const std::string& name) {
  std::string out = "eos_";
  for (char ch : name) {
    out += (ch == '.' || ch == '-') ? '_' : ch;
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  LatchGuard g(latch_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + "_total counter\n";
    out += p + "_total " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, gg] : gauges_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(gg->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cum = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = h->bucket(b);
      if (n == 0) continue;
      cum += n;
      out += p + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(b)) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += p + "_sum " + std::to_string(h->sum()) + "\n";
    out += p + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace eos
