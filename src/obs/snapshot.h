#ifndef EOS_OBS_SNAPSHOT_H_
#define EOS_OBS_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"

namespace eos {
namespace obs {

// A snapshot bundles the default registry's metrics and the default
// tracer's retained spans into one JSON document:
//   {"version":1,"enabled":...,"metrics":{...},"trace":[...]}
// Processes that exercise a volume (examples, benches) write it next to the
// volume as "<volume>.obs.json"; `eos_inspect stats|trace` reads it back —
// metrics are in-memory state, so cross-process inspection goes through
// this file.
std::string SnapshotJson();

// Conventional sidecar path for a volume file.
std::string SnapshotPathFor(const std::string& volume_path);

Status WriteSnapshotFile(const std::string& path);

// NotFound when the file does not exist; InvalidArgument on parse errors.
StatusOr<JsonValue> ReadSnapshotFile(const std::string& path);

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_SNAPSHOT_H_
