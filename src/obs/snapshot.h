#ifndef EOS_OBS_SNAPSHOT_H_
#define EOS_OBS_SNAPSHOT_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/json.h"

namespace eos {
namespace obs {

// A snapshot bundles the default registry's metrics and the default
// tracer's retained spans into one JSON document:
//   {"version":1,"enabled":...,"metrics":{...},"trace":[...]}
// Processes that exercise a volume (examples, benches) write it next to the
// volume as "<volume>.obs.json"; `eos_inspect stats|trace` reads it back —
// metrics are in-memory state, so cross-process inspection goes through
// this file.
std::string SnapshotJson();

// Conventional sidecar path for a volume file.
std::string SnapshotPathFor(const std::string& volume_path);

Status WriteSnapshotFile(const std::string& path);

// NotFound when the file does not exist; InvalidArgument on parse errors.
StatusOr<JsonValue> ReadSnapshotFile(const std::string& path);

// Converts a snapshot document's "trace" spans into Chrome trace-event
// JSON ({"traceEvents":[{ph:"X",ts,dur,...}]}), loadable in
// chrome://tracing or Perfetto. Spans written before start_us existed get
// synthetic back-to-back timestamps so old sidecars still render.
std::string ChromeTraceJson(const JsonValue& snapshot);

// Background exporter: rewrites `path` with a fresh snapshot every
// `interval_ms`, plus once immediately on Start and once more on Stop so
// short-lived processes still leave a final state behind. Stop is
// idempotent and joins the thread; write failures are silently dropped
// (the exporter must never take the process down).
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void Start(std::string path, uint64_t interval_ms);
  void Stop();

  bool running() const;
  uint64_t writes() const;  // snapshots written so far (telemetry/tests)

 private:
  void Loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::string path_;
  uint64_t interval_ms_ = 0;
  uint64_t writes_ = 0;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_SNAPSHOT_H_
