#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eos {
namespace obs {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

uint64_t JsonValue::u64() const {
  if (number_ <= 0) return 0;
  return static_cast<uint64_t>(number_ + 0.5);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number() : fallback;
}

void JsonValue::Set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) return;
  for (auto& [k, old] : members_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::Push(JsonValue v) {
  if (kind_ != Kind::kArray) return;
  elements_.push_back(std::move(v));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void DumpNumber(double d, std::string* out) {
  // Integral values (the overwhelmingly common case for counters) print
  // without a decimal point so they parse back exactly.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      DumpNumber(number_, &out);
      break;
    case Kind::kString:
      out = "\"" + JsonEscape(string_) + "\"";
      break;
    case Kind::kArray: {
      out = "[";
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out += ",";
        out += elements_[i].Dump();
      }
      out += "]";
      break;
    }
    case Kind::kObject: {
      out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscape(members_[i].first) + "\":";
        out += members_[i].second.Dump();
      }
      out += "}";
      break;
    }
  }
  return out;
}

namespace {

// Recursive-descent parser over [p, end).
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  StatusOr<JsonValue> ParseValue() {
    SkipWs();
    if (p_ >= end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        EOS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        EOS_RETURN_IF_ERROR(Expect("true"));
        return JsonValue::Bool(true);
      case 'f':
        EOS_RETURN_IF_ERROR(Expect("false"));
        return JsonValue::Bool(false);
      case 'n':
        EOS_RETURN_IF_ERROR(Expect("null"));
        return JsonValue();
      default: return ParseNumber();
    }
  }

  Status Finish() {
    SkipWs();
    if (p_ != end_) return Err("trailing characters after JSON value");
    return Status::OK();
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(offset_base_ + used()));
  }

  size_t used() const { return static_cast<size_t>(p_ - start_); }

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  Status Expect(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ >= end_ || *p_ != *w) return Err("bad literal");
    }
    return Status::OK();
  }

  StatusOr<JsonValue> ParseNumber() {
    const char* s = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    if (p_ == s) return Err("expected a value");
    std::string text(s, p_);
    char* parse_end = nullptr;
    double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) return Err("bad number");
    return JsonValue::Number(d);
  }

  StatusOr<std::string> ParseString() {
    ++p_;  // opening quote
    std::string out;
    while (p_ < end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ >= end_) return Err("unterminated escape");
      char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (end_ - p_ < 4) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // Snapshots only ever contain ASCII; encode the rest as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Err("unknown escape");
      }
    }
    if (p_ >= end_) return Err("unterminated string");
    ++p_;  // closing quote
    return out;
  }

  StatusOr<JsonValue> ParseArray() {
    ++p_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return arr;
    }
    while (true) {
      EOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Push(std::move(v));
      SkipWs();
      if (p_ >= end_) return Err("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return arr;
      }
      return Err("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++p_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (p_ >= end_ || *p_ != '"') return Err("expected object key");
      EOS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (p_ >= end_ || *p_ != ':') return Err("expected ':'");
      ++p_;
      EOS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWs();
      if (p_ >= end_) return Err("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return obj;
      }
      return Err("expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
  const char* start_ = p_;
  size_t offset_base_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  EOS_ASSIGN_OR_RETURN(JsonValue v, parser.ParseValue());
  EOS_RETURN_IF_ERROR(parser.Finish());
  return v;
}

}  // namespace obs
}  // namespace eos
