#include "obs/op_tracer.h"

#include <cstdio>

#include "io/page_device.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"

namespace eos {
namespace obs {

namespace {

// Shared zero point for every span's start_us, so spans from different
// threads line up on one Chrome-trace timeline.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

OpTracer& OpTracer::Default() {
  static OpTracer* tracer = new OpTracer();
  return *tracer;
}

OpTracer::OpTracer(size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(cap_);
}

void OpTracer::SetCapacity(size_t capacity) {
  LatchGuard g(latch_);
  cap_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(cap_);
  next_ = 0;
}

size_t OpTracer::capacity() const {
  LatchGuard g(latch_);
  return cap_;
}

void OpTracer::Clear() {
  LatchGuard g(latch_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

uint64_t OpTracer::total() const {
  LatchGuard g(latch_);
  return total_;
}

void OpTracer::Push(OpSpan&& span) {
  LatchGuard g(latch_);
  span.seq = ++total_;
  if (ring_.size() < cap_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % cap_;
  }
}

std::vector<OpSpan> OpTracer::Spans() const {
  LatchGuard g(latch_);
  std::vector<OpSpan> out;
  out.reserve(ring_.size());
  // Once the ring is full, next_ points at the oldest retained span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

JsonValue OpTracer::ToJsonValue() const {
  JsonValue arr = JsonValue::Array();
  for (const OpSpan& s : Spans()) {
    JsonValue o = JsonValue::Object();
    o.Set("seq", JsonValue::Number(static_cast<double>(s.seq)));
    o.Set("op", JsonValue::Str(s.op));
    o.Set("object", JsonValue::Number(static_cast<double>(s.object_id)));
    o.Set("depth", JsonValue::Number(s.depth));
    o.Set("ok", JsonValue::Bool(s.ok));
    o.Set("start_us", JsonValue::Number(static_cast<double>(s.start_us)));
    o.Set("wall_us", JsonValue::Number(static_cast<double>(s.wall_us)));
    o.Set("seeks", JsonValue::Number(static_cast<double>(s.io.seeks)));
    o.Set("pages_read",
          JsonValue::Number(static_cast<double>(s.io.pages_read)));
    o.Set("pages_written",
          JsonValue::Number(static_cast<double>(s.io.pages_written)));
    o.Set("pager_hits",
          JsonValue::Number(static_cast<double>(s.pager_hits)));
    o.Set("pager_misses",
          JsonValue::Number(static_cast<double>(s.pager_misses)));
    o.Set("pager_evictions",
          JsonValue::Number(static_cast<double>(s.pager_evictions)));
    o.Set("buddy_allocs",
          JsonValue::Number(static_cast<double>(s.buddy_allocs)));
    o.Set("buddy_frees",
          JsonValue::Number(static_cast<double>(s.buddy_frees)));
    o.Set("buddy_coalesces",
          JsonValue::Number(static_cast<double>(s.buddy_coalesces)));
    o.Set("reshuffles", JsonValue::Number(static_cast<double>(s.reshuffles)));
    o.Set("log_records",
          JsonValue::Number(static_cast<double>(s.log_records)));
    arr.Push(std::move(o));
  }
  return arr;
}

std::string OpTracer::ToText() const {
  std::string out =
      "   seq depth op                     obj       us  seeks  xfers "
      "hit/miss  ok\n";
  char line[160];
  for (const OpSpan& s : Spans()) {
    std::snprintf(line, sizeof(line),
                  "%6llu %5u %-20s %4llu %8llu %6llu %6llu %4llu/%-4llu %3s\n",
                  static_cast<unsigned long long>(s.seq), s.depth, s.op,
                  static_cast<unsigned long long>(s.object_id),
                  static_cast<unsigned long long>(s.wall_us),
                  static_cast<unsigned long long>(s.io.seeks),
                  static_cast<unsigned long long>(s.io.transfers()),
                  static_cast<unsigned long long>(s.pager_hits),
                  static_cast<unsigned long long>(s.pager_misses),
                  s.ok ? "ok" : "ERR");
    out += line;
  }
  return out;
}

namespace {

struct WellKnown {
  Counter* pager_hit;
  Counter* pager_miss;
  Counter* pager_eviction;
  Counter* buddy_alloc;
  Counter* buddy_free;
  Counter* buddy_coalesce;
  Counter* reshuffle;
  Counter* log_records;
};

const WellKnown& Counters() {
  static WellKnown* w = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    auto* ww = new WellKnown();
    ww->pager_hit = r.counter(kPagerHit);
    ww->pager_miss = r.counter(kPagerMiss);
    ww->pager_eviction = r.counter(kPagerEviction);
    ww->buddy_alloc = r.counter(kBuddyAlloc);
    ww->buddy_free = r.counter(kBuddyFree);
    ww->buddy_coalesce = r.counter(kBuddyCoalesce);
    ww->reshuffle = r.counter(kLobReshufflePlans);
    ww->log_records = r.counter(kTxnLogRecords);
    return ww;
  }();
  return *w;
}

}  // namespace

ScopedOp::CounterSnap ScopedOp::Snap() {
  const WellKnown& w = Counters();
  CounterSnap s;
  s.pager_hits = w.pager_hit->value();
  s.pager_misses = w.pager_miss->value();
  s.pager_evictions = w.pager_eviction->value();
  s.buddy_allocs = w.buddy_alloc->value();
  s.buddy_frees = w.buddy_free->value();
  s.buddy_coalesces = w.buddy_coalesce->value();
  s.reshuffles = w.reshuffle->value();
  s.log_records = w.log_records->value();
  return s;
}

ScopedOp::ScopedOp(const char* op, uint64_t object_id, PageDevice* device,
                   OpTracer* tracer)
    : op_(op), object_id_(object_id), device_(device) {
  if (!Enabled()) return;
  active_ = true;
  tracer_ = tracer != nullptr ? tracer : &OpTracer::Default();
  depth_ = tracer_->Enter();
  TraceEpoch();  // pin the epoch no later than the first span's start
  start_ = std::chrono::steady_clock::now();
  if (device_ != nullptr) io_start_ = device_->stats();
  snap_ = Snap();
  RecordEvent(EventKind::kOpBegin, op_, object_id_);
}

ScopedOp::~ScopedOp() {
  if (!active_) return;
  tracer_->Exit();
  OpSpan span;
  span.op = op_;
  span.object_id = object_id_;
  span.depth = depth_;
  span.ok = ok_;
  span.start_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start_ -
                                                            TraceEpoch())
          .count());
  span.wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (device_ != nullptr) span.io = device_->stats() - io_start_;
  CounterSnap now = Snap();
  span.pager_hits = now.pager_hits - snap_.pager_hits;
  span.pager_misses = now.pager_misses - snap_.pager_misses;
  span.pager_evictions = now.pager_evictions - snap_.pager_evictions;
  span.buddy_allocs = now.buddy_allocs - snap_.buddy_allocs;
  span.buddy_frees = now.buddy_frees - snap_.buddy_frees;
  span.buddy_coalesces = now.buddy_coalesces - snap_.buddy_coalesces;
  span.reshuffles = now.reshuffles - snap_.reshuffles;
  span.log_records = now.log_records - snap_.log_records;
  MetricsRegistry::Default()
      .histogram(std::string("op.") + op_ + ".us")
      ->Record(span.wall_us);
  RecordEvent(EventKind::kOpEnd, op_, object_id_, span.wall_us,
              span.io.transfers(), ok_);
  tracer_->Push(std::move(span));
}

}  // namespace obs
}  // namespace eos
