#ifndef EOS_OBS_METRICS_H_
#define EOS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/latch.h"
#include "obs/json.h"

namespace eos {
namespace obs {

// Process-wide observability switch. Metrics default to ON; the environment
// variable EOS_OBS=0 (checked once, at static init) or SetEnabled(false)
// turns every hook into a relaxed load + branch. Defining EOS_OBS_DISABLED
// at compile time removes the hooks entirely.
namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline constexpr bool CompiledIn() {
#ifdef EOS_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

inline bool Enabled() {
  if (!CompiledIn()) return false;
  return internal::g_enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool on);

// Monotone event counter. Updates are relaxed atomics: hooks sit on hot
// paths (pager fetch, buddy allocate) and must never contend.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!Enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time signed value (free pages, cached pages, tree level).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t d) {
    if (!Enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket power-of-two histogram for latencies (microseconds) and
// sizes (pages, bytes). Bucket 0 holds the value 0; bucket b >= 1 holds
// values in [2^(b-1), 2^b). Percentile() returns the inclusive upper bound
// of the bucket containing the requested rank, so reported quantiles are
// conservative (never understated) and the memory cost is 65 atomics.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t v) {
    if (!Enabled()) return;
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  uint64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  // p in [0, 1]; e.g. 0.5 and 0.99. Returns 0 for an empty histogram.
  uint64_t Percentile(double p) const;

  void Reset();

  static size_t BucketOf(uint64_t v);
  // Inclusive upper bound of bucket b (0 for bucket 0).
  static uint64_t BucketUpperBound(size_t b);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> max_{0};
};

// Named metric registry. Registration takes a latch; the returned pointers
// are stable for the registry's lifetime, so instrumented components look
// a metric up once (constructor or function-local static) and update it
// with plain atomics thereafter. ResetAll() zeroes values but never
// invalidates pointers.
class MetricsRegistry {
 public:
  // The process-wide registry every built-in hook reports to.
  static MetricsRegistry& Default();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  void ResetAll();

  // Human-readable multi-line listing (sorted by name).
  std::string ToText() const;
  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  //  p50,p90,p99,max}}}
  JsonValue ToJsonValue() const;
  std::string ToJson() const;

  // Prometheus text exposition (version 0.0.4). Metric names gain an
  // "eos_" prefix and dots become underscores: counters render as
  // eos_<name>_total, gauges as eos_<name>, histograms as the cumulative
  // eos_<name>_bucket{le="..."} series plus _sum and _count. Only
  // non-empty power-of-two buckets are emitted (plus the mandatory +Inf),
  // keeping scrapes proportional to live data.
  std::string RenderPrometheus() const;

 private:
  mutable Latch latch_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_METRICS_H_
