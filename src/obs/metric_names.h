#ifndef EOS_OBS_METRIC_NAMES_H_
#define EOS_OBS_METRIC_NAMES_H_

// Canonical metric names shared by the instrumented components, the
// OpTracer snapshots, and eos_inspect. Units are part of the contract and
// documented in DESIGN.md ("Observability"): counters are event counts,
// *_pages gauges/histograms are in pages, *_bytes in bytes, op.*.us
// histograms in microseconds of wall time.

namespace eos {
namespace obs {

// --- pager -----------------------------------------------------------------
inline constexpr char kPagerHit[] = "pager.hit";
inline constexpr char kPagerMiss[] = "pager.miss";
inline constexpr char kPagerEviction[] = "pager.eviction";
inline constexpr char kPagerWriteback[] = "pager.writeback";
inline constexpr char kPagerCachedPages[] = "pager.cached_pages";  // gauge

// --- buddy space manager ---------------------------------------------------
inline constexpr char kBuddyAlloc[] = "buddy.alloc";
inline constexpr char kBuddyAllocPages[] = "buddy.alloc_pages";  // histogram
inline constexpr char kBuddyFree[] = "buddy.free";
inline constexpr char kBuddyFreeDeferred[] = "buddy.free_deferred";
inline constexpr char kBuddySplit[] = "buddy.split";
inline constexpr char kBuddyCoalesce[] = "buddy.coalesce";
inline constexpr char kBuddyFreePages[] = "buddy.free_pages";        // gauge
inline constexpr char kBuddyManagedPages[] = "buddy.managed_pages";  // gauge
inline constexpr char kBuddySpaceAdded[] = "buddy.space_added";
inline constexpr char kBuddyDirectoryVisit[] = "buddy.directory_visit";

// --- large object manager --------------------------------------------------
inline constexpr char kLobReshufflePlans[] = "lob.reshuffle.plans";
// Plans computed with threshold T > 1 (page reshuffling enabled) vs T == 1
// (pure byte reshuffling), the Section 4.4 decision.
inline constexpr char kLobReshufflePageMode[] = "lob.reshuffle.page_mode";
inline constexpr char kLobReshuffleByteMode[] = "lob.reshuffle.byte_mode";
inline constexpr char kLobReshuffleMovedBytes[] =
    "lob.reshuffle.moved_bytes";  // histogram
inline constexpr char kLobSegmentsWritten[] = "lob.segments_written";
inline constexpr char kLobSegmentPages[] = "lob.segment_pages";  // histogram
inline constexpr char kLobTreeLevel[] = "lob.tree_level";        // gauge
inline constexpr char kLobCompactUnsafeRuns[] = "lob.compact_unsafe_runs";
inline constexpr char kLobAppenderChunks[] = "lob.appender.chunks";

// --- transactions / recovery -----------------------------------------------
inline constexpr char kTxnLogRecords[] = "txn.log.records";
inline constexpr char kTxnLogBytes[] = "txn.log.bytes";
inline constexpr char kTxnRedoApplied[] = "txn.recovery.redo";
inline constexpr char kTxnUndoApplied[] = "txn.recovery.undo";
inline constexpr char kTxnObjectsRecovered[] = "txn.recovery.objects";

// --- multi-version concurrency (snapshot MVCC, DESIGN.md §13) ---------------
inline constexpr char kTxnSnapshotsOpen[] = "txn.snapshots_open";  // gauge
inline constexpr char kTxnVersionsPublished[] = "txn.versions_published";
inline constexpr char kTxnVersionsGcd[] = "txn.versions_gcd";
// Commit markers made durable per shared fsync (group commit).
inline constexpr char kTxnGroupCommitBatch[] =
    "txn.group_commit_batch";  // histogram

// --- verified I/O (page integrity layer) -----------------------------------
inline constexpr char kIoChecksumFail[] = "io.checksum_fail";
inline constexpr char kIoReadRetry[] = "io.read_retry";
inline constexpr char kIoWriteRetry[] = "io.write_retry";
inline constexpr char kIoQuarantinedPages[] = "io.quarantined_pages";

// --- device byte throughput (rate source for `eos_inspect top`) -------------
inline constexpr char kIoBytesRead[] = "io.bytes_read";
inline constexpr char kIoBytesWritten[] = "io.bytes_written";

// --- parallel I/O engine (executor, batch API, read-ahead) ------------------
inline constexpr char kIoBatchRuns[] = "io.batch_runs";
inline constexpr char kIoPrefetchIssued[] = "io.prefetch_issued";
inline constexpr char kIoPrefetchHit[] = "io.prefetch_hit";
inline constexpr char kIoPrefetchCancelled[] = "io.prefetch_cancelled";

// --- buffer pool (zero-copy staging) ----------------------------------------
inline constexpr char kPoolBuffersReused[] = "pool.buffers_reused";
inline constexpr char kPoolBuffersAllocated[] = "pool.buffers_allocated";

// --- hot-object DRAM cache tier (DESIGN.md §14) -----------------------------
inline constexpr char kCacheHit[] = "cache.hit";
inline constexpr char kCacheMiss[] = "cache.miss";
inline constexpr char kCacheAdmit[] = "cache.admit";
inline constexpr char kCacheReject[] = "cache.reject";
inline constexpr char kCacheEvict[] = "cache.evict";
inline constexpr char kCacheInvalidate[] = "cache.invalidate";
inline constexpr char kCacheFillFail[] = "cache.fill_fail";
inline constexpr char kCacheResidentBytes[] = "cache.resident_bytes";  // gauge
inline constexpr char kCacheLogicalBytes[] = "cache.logical_bytes";    // gauge

// --- scrub / repair ---------------------------------------------------------
inline constexpr char kScrubPagesVerified[] = "scrub.pages_verified";
inline constexpr char kScrubCorruptPages[] = "scrub.corrupt_pages";
inline constexpr char kScrubRepairedObjects[] = "scrub.repaired_objects";

// --- space reservation / admission control ---------------------------------
inline constexpr char kSpaceReserved[] = "space.reserved";
inline constexpr char kSpaceRefused[] = "space.refused";
inline constexpr char kSpaceUnwoundExtents[] = "space.unwound_extents";

// --- cost-model conformance (predicted vs actual I/O, DESIGN.md §6) ---------
// Histograms of 100 * actual page transfers / model-predicted transfers;
// a value persistently above 100 is the fragmentation early-warning.
inline constexpr char kCostReadRatio[] = "cost.read_actual_over_model";
inline constexpr char kCostInsertRatio[] = "cost.insert_actual_over_model";
inline constexpr char kCostAppendRatio[] = "cost.append_actual_over_model";
inline constexpr char kCostDeleteRatio[] = "cost.delete_actual_over_model";
inline constexpr char kCostModelPages[] = "cost.model_pages";    // histogram
inline constexpr char kCostActualPages[] = "cost.actual_pages";  // histogram
inline constexpr char kCostOpsCompared[] = "cost.ops_compared";

// --- fragmentation aging (free-space shape + per-object scatter) ------------
// Gauges refreshed by SegmentAllocator::FragStats(); the entropy gauge is
// the normalized [0,1] free-list entropy scaled to thousandths.
inline constexpr char kFragFreeEntropy[] = "frag.free_entropy";    // gauge
inline constexpr char kFragFreeSegments[] = "frag.free_segments";  // gauge
inline constexpr char kFragLargestFreePages[] =
    "frag.largest_free_pages";  // gauge
// Histogram of 100 * (per-scan page I/O of the object's current layout /
// the same object's ideal layout), recorded for every object a defrag scan
// visits. Values persistently above 100 mirror cost.read_actual_over_model
// without needing a physical read.
inline constexpr char kFragObjectScatter[] = "frag.object_scatter";

// --- online defragmenter (background reorganizer, DESIGN.md §12) ------------
inline constexpr char kDefragTicks[] = "defrag.ticks";
inline constexpr char kDefragObjectsScanned[] = "defrag.objects_scanned";
inline constexpr char kDefragObjectsMigrated[] = "defrag.objects_migrated";
inline constexpr char kDefragBytesMigrated[] = "defrag.bytes_migrated";
inline constexpr char kDefragMigrateFailed[] = "defrag.migrate_failed";
inline constexpr char kDefragSkippedHot[] = "defrag.skipped_hot";
inline constexpr char kDefragRefused[] = "defrag.refused";

// --- multi-volume set (placement, failover, repair, DESIGN.md §15) ----------
inline constexpr char kVolumeFailoverReads[] = "volume.failover_read";
inline constexpr char kVolumeRepairedPages[] = "volume.repaired_from_replica";
inline constexpr char kVolumeDegradedWrites[] = "volume.degraded_write";
inline constexpr char kVolumeShedPlacements[] = "volume.placement_shed";
inline constexpr char kVolumeMembersOffline[] =
    "volume.members_offline";  // gauge

// --- event journal (flight recorder) ----------------------------------------
inline constexpr char kJournalEvents[] = "journal.events";
inline constexpr char kJournalPostMortems[] = "journal.postmortems";

// --- chaos device (fault injection) ----------------------------------------
inline constexpr char kChaosInjectedFaults[] = "chaos.injected_faults";
inline constexpr char kChaosTornWrites[] = "chaos.torn_writes";
inline constexpr char kChaosBitRot[] = "chaos.bit_rot";
inline constexpr char kChaosCrashes[] = "chaos.crashes";

}  // namespace obs
}  // namespace eos

#endif  // EOS_OBS_METRIC_NAMES_H_
