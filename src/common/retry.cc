#include "common/retry.h"

#include <time.h>

#include <chrono>

#include "common/deadline.h"

namespace eos {

void BackoffSleep(uint32_t us) {
  if (us == 0) return;
  struct timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = static_cast<long>(us % 1000000) * 1000;
  ::nanosleep(&ts, nullptr);
}

uint32_t RetryPolicy::BackoffUs(int retry) const {
  if (base_backoff_us == 0 || retry <= 0) return 0;
  uint64_t us = uint64_t{base_backoff_us} << (retry - 1);
  return static_cast<uint32_t>(us < max_backoff_us ? us : max_backoff_us);
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op,
                    const std::function<void()>& on_retry) {
  Status s = op();
  for (int retry = 1; retry < policy.max_attempts; ++retry) {
    if (s.ok() || !policy.RetriableError(s)) return s;
    // Deadline-aware backoff: a retry loop must never sleep an operation
    // past its own deadline. If the ambient OpContext has already expired
    // (or is cancelled) return the typed error now; if the next backoff
    // would outlive the remaining budget, sleep only the remainder and
    // let the expiry check fire instead of the retry.
    uint32_t backoff_us = policy.BackoffUs(retry);
    if (const OpContext* ctx = ScopedOpContext::Current()) {
      Status bound = ctx->Check("retry backoff");
      if (!bound.ok()) return bound;
      std::chrono::nanoseconds left = ctx->deadline.remaining();
      if (!ctx->deadline.infinite()) {
        uint64_t left_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(left)
                .count());
        if (uint64_t{backoff_us} >= left_us) {
          BackoffSleep(static_cast<uint32_t>(left_us));
          return Status::DeadlineExceeded(
              "deadline expired while backing off for retry: " +
              s.ToString());
        }
      }
    }
    BackoffSleep(backoff_us);
    if (on_retry != nullptr) on_retry();
    s = op();
  }
  return s;
}

}  // namespace eos
