#include "common/retry.h"

#include <time.h>

namespace eos {

void BackoffSleep(uint32_t us) {
  if (us == 0) return;
  struct timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = static_cast<long>(us % 1000000) * 1000;
  ::nanosleep(&ts, nullptr);
}

uint32_t RetryPolicy::BackoffUs(int retry) const {
  if (base_backoff_us == 0 || retry <= 0) return 0;
  uint64_t us = uint64_t{base_backoff_us} << (retry - 1);
  return static_cast<uint32_t>(us < max_backoff_us ? us : max_backoff_us);
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op,
                    const std::function<void()>& on_retry) {
  Status s = op();
  for (int retry = 1; retry < policy.max_attempts; ++retry) {
    if (s.ok() || !policy.RetriableError(s)) return s;
    BackoffSleep(policy.BackoffUs(retry));
    if (on_retry != nullptr) on_retry();
    s = op();
  }
  return s;
}

}  // namespace eos
