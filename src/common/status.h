#ifndef EOS_COMMON_STATUS_H_
#define EOS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace eos {

// Operation result for everything in the library that can fail at run time.
// Modeled after the Status idiom used by database storage engines: cheap to
// return, carries a machine-checkable code plus a human-readable message.
// The library never throws; every fallible public API returns Status or
// StatusOr<T>.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNoSpace = 5,
    kOutOfRange = 6,
    kNotSupported = 7,
    kBusy = 8,
    kDeadlineExceeded = 9,
    kUnavailable = 10,
  };

  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NoSpace(std::string_view msg) {
    return Status(Code::kNoSpace, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }
  // A whole backing resource (e.g. one volume of a set) is out of service.
  // Distinct from kIOError so callers can tell "this transfer failed" from
  // "this device is gone"; retry loops treat it as non-transient.
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // "OK" or "<code>: <message>"; for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

// Holds either a value of T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace eos

// Propagates a non-OK Status from an expression returning Status.
#define EOS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::eos::Status _eos_status = (expr);          \
    if (!_eos_status.ok()) return _eos_status;   \
  } while (0)

// Evaluates an expression returning StatusOr<T>; on error propagates the
// Status, otherwise assigns the value to `lhs` (which must be declared by
// the caller, e.g. `EOS_ASSIGN_OR_RETURN(auto x, Foo());`).
#define EOS_ASSIGN_OR_RETURN(lhs, expr)                     \
  EOS_ASSIGN_OR_RETURN_IMPL_(                               \
      EOS_STATUS_CONCAT_(_eos_statusor, __LINE__), lhs, expr)

#define EOS_STATUS_CONCAT_INNER_(a, b) a##b
#define EOS_STATUS_CONCAT_(a, b) EOS_STATUS_CONCAT_INNER_(a, b)

#define EOS_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr)   \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#endif  // EOS_COMMON_STATUS_H_
