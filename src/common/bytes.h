#ifndef EOS_COMMON_BYTES_H_
#define EOS_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace eos {

// Non-owning view of a read-only byte range, analogous to a storage-engine
// Slice. Used for all data passed into write paths.
class ByteView {
 public:
  ByteView() = default;
  ByteView(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  ByteView(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  ByteView(const std::string& s)  // NOLINT
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  ByteView(const std::vector<uint8_t>& v)  // NOLINT
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  // Sub-view of [offset, offset+len); caller guarantees bounds.
  ByteView Slice(size_t offset, size_t len) const {
    return ByteView(data_ + offset, len);
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

inline bool operator==(ByteView a, ByteView b) {
  return a.size() == b.size() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

// Owning byte buffer used by read paths.
using Bytes = std::vector<uint8_t>;

inline Bytes ToBytes(ByteView v) { return Bytes(v.data(), v.data() + v.size()); }

// Little-endian fixed-width encoding helpers for on-page structures.
inline void EncodeU16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}
inline uint16_t DecodeU16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         (static_cast<uint16_t>(src[1]) << 8);
}
inline void EncodeU32(uint8_t* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(src[i]) << (8 * i);
  return v;
}
inline void EncodeU64(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

}  // namespace eos

#endif  // EOS_COMMON_BYTES_H_
