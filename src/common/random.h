#ifndef EOS_COMMON_RANDOM_H_
#define EOS_COMMON_RANDOM_H_

#include <cstdint>

#include "common/bytes.h"

namespace eos {

// Deterministic xorshift64* generator. Tests and benches seed it explicitly
// so every run, and every reported experiment, is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  // Uniform in [0, n); n must be non-zero.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi]; lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Fills `out` with `n` pseudo-random bytes.
  void Fill(Bytes* out, size_t n) {
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = static_cast<uint8_t>(Next());
  }

  Bytes NewBytes(size_t n) {
    Bytes b;
    Fill(&b, n);
    return b;
  }

 private:
  uint64_t state_;
};

}  // namespace eos

#endif  // EOS_COMMON_RANDOM_H_
