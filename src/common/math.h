#ifndef EOS_COMMON_MATH_H_
#define EOS_COMMON_MATH_H_

#include <cassert>
#include <cstdint>

namespace eos {

// ceil(a / b) for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// floor(log2(x)); x must be non-zero.
inline uint32_t FloorLog2(uint64_t x) {
  assert(x != 0);
  uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

// ceil(log2(x)); x must be non-zero. CeilLog2(1) == 0.
inline uint32_t CeilLog2(uint64_t x) {
  assert(x != 0);
  uint32_t f = FloorLog2(x);
  return IsPowerOfTwo(x) ? f : f + 1;
}

// Smallest power of two >= x; x must be non-zero.
inline uint64_t NextPowerOfTwo(uint64_t x) { return uint64_t{1} << CeilLog2(x); }

// Largest power of two that divides x; x must be non-zero.
// This bounds the size of a buddy segment that may start at address x.
inline uint64_t LargestAlignedSize(uint64_t x) {
  assert(x != 0);
  return x & (~x + 1);  // isolate lowest set bit
}

}  // namespace eos

#endif  // EOS_COMMON_MATH_H_
