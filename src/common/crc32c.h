#ifndef EOS_COMMON_CRC32C_H_
#define EOS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace eos {

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
// checksum storage engines use for page and record integrity. Software
// slice-by-8 kernel: eight table lookups per 8 input bytes, no special
// instructions required, ~1 byte/cycle — far faster than the page I/O it
// guards.
//
// The value is the "plain" CRC32C (init 0xFFFFFFFF, final xor), matching
// the common test vector Crc32c("123456789") == 0xE3069283.

// One-shot checksum of `n` bytes.
uint32_t Crc32c(const void* data, size_t n);

// Incremental form: Extend(Init(), a, na) then Extend(crc, b, nb) equals
// a one-shot pass over the concatenation; Finalize() produces the value.
inline uint32_t Crc32cInit() { return 0xFFFFFFFFu; }
uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n);
inline uint32_t Crc32cFinalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace eos

#endif  // EOS_COMMON_CRC32C_H_
