#ifndef EOS_COMMON_CRC32C_H_
#define EOS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace eos {

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78), the
// checksum storage engines use for page and record integrity.
//
// Two kernels, selected once at process start:
//   * hardware: the dedicated CRC32C instructions (SSE4.2 `crc32` on x86,
//     ARMv8 `crc32c*`), ~8-16 bytes/cycle — checksum verification all but
//     disappears from the read path;
//   * software slice-by-8 fallback: eight table lookups per 8 input bytes,
//     no special instructions required, ~1 byte/cycle.
// Both compute the identical function; Crc32cBackend() names the one in
// use and the software kernel stays callable for cross-checking.
//
// The value is the "plain" CRC32C (init 0xFFFFFFFF, final xor), matching
// the common test vector Crc32c("123456789") == 0xE3069283.

// One-shot checksum of `n` bytes.
uint32_t Crc32c(const void* data, size_t n);

// Incremental form: Extend(Init(), a, na) then Extend(crc, b, nb) equals
// a one-shot pass over the concatenation; Finalize() produces the value.
inline uint32_t Crc32cInit() { return 0xFFFFFFFFu; }
uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n);
inline uint32_t Crc32cFinalize(uint32_t state) { return state ^ 0xFFFFFFFFu; }

// The portable slice-by-8 kernel, always available; tests cross-check the
// dispatched kernel against it.
uint32_t Crc32cExtendSoftware(uint32_t state, const void* data, size_t n);

// Name of the kernel runtime dispatch selected: "sse4.2", "armv8-crc",
// or "slice-by-8".
const char* Crc32cBackend();

}  // namespace eos

#endif  // EOS_COMMON_CRC32C_H_
