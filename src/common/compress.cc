#include "common/compress.h"

#include <cstring>

namespace eos {

namespace {

constexpr size_t kMinMatch = 4;       // shortest match worth a token
constexpr size_t kMaxOffset = 65535;  // 2-byte distance field
constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Hash32(uint32_t v) {
  // Fibonacci hashing on the 4 bytes under the cursor.
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a length in the token's nibble-plus-extension scheme. Returns the
// bytes written to the extension area (not counting the nibble), or
// SIZE_MAX when `cap` would be exceeded.
size_t PutLength(size_t len, uint8_t* dst, size_t cap) {
  size_t written = 0;
  if (len < 15) return 0;  // fits in the nibble, no extension bytes
  len -= 15;
  while (len >= 255) {
    if (written >= cap) return SIZE_MAX;
    dst[written++] = 255;
    len -= 255;
  }
  if (written >= cap) return SIZE_MAX;
  dst[written++] = static_cast<uint8_t>(len);
  return written;
}

}  // namespace

size_t CompressBound(size_t n) {
  // All-literal worst case: one token + length extension per 15+255*k run.
  return n + n / 255 + 16;
}

size_t CompressBlock(const uint8_t* src, size_t n, uint8_t* dst,
                     size_t dst_cap) {
  if (n == 0) return 0;
  uint32_t table[kHashSize];
  std::memset(table, 0xFF, sizeof(table));  // 0xFFFFFFFF = empty slot

  size_t out = 0;
  size_t anchor = 0;  // first literal not yet emitted
  size_t pos = 0;
  // The last kMinMatch-1 bytes can never start a match; sweep stops early
  // enough that Load32 stays in bounds.
  size_t match_limit = n >= kMinMatch ? n - kMinMatch + 1 : 0;

  auto emit = [&](size_t lit_len, size_t match_len, size_t offset) -> bool {
    if (out >= dst_cap) return false;
    size_t token_at = out++;
    uint8_t token = 0;
    // Literal run.
    size_t ext = PutLength(lit_len, dst + out, dst_cap - out);
    if (ext == SIZE_MAX) return false;
    out += ext;
    token |= static_cast<uint8_t>((lit_len < 15 ? lit_len : 15) << 4);
    if (out + lit_len > dst_cap) return false;
    std::memcpy(dst + out, src + anchor, lit_len);
    out += lit_len;
    // Match.
    if (match_len > 0) {
      size_t code = match_len - kMinMatch;
      if (out + 2 > dst_cap) return false;
      dst[out++] = static_cast<uint8_t>(offset & 0xFF);
      dst[out++] = static_cast<uint8_t>(offset >> 8);
      ext = PutLength(code, dst + out, dst_cap - out);
      if (ext == SIZE_MAX) return false;
      out += ext;
      token |= static_cast<uint8_t>(code < 15 ? code : 15);
    }
    dst[token_at] = token;
    return true;
  };

  while (pos < match_limit) {
    uint32_t seq = Load32(src + pos);
    uint32_t h = Hash32(seq);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (cand == 0xFFFFFFFFu || pos - cand > kMaxOffset ||
        Load32(src + cand) != seq) {
      ++pos;
      continue;
    }
    // Extend the match forward.
    size_t len = kMinMatch;
    while (pos + len < n && src[cand + len] == src[pos + len]) ++len;
    if (!emit(pos - anchor, len, pos - cand)) return 0;
    pos += len;
    anchor = pos;
  }
  // Trailing literals; when the input ended exactly on a match there is
  // nothing left and the stream ends with that match.
  if (anchor < n && !emit(n - anchor, 0, 0)) return 0;
  return out;
}

Status DecompressBlock(const uint8_t* src, size_t n, uint8_t* dst,
                       size_t out_n) {
  size_t in = 0;
  size_t out = 0;
  auto get_length = [&](size_t nibble, size_t* len) -> bool {
    *len = nibble;
    if (nibble != 15) return true;
    uint8_t b;
    do {
      if (in >= n) return false;
      b = src[in++];
      *len += b;
    } while (b == 255);
    return true;
  };
  while (out < out_n) {
    if (in >= n) return Status::Corruption("compressed stream truncated");
    uint8_t token = src[in++];
    size_t lit_len;
    if (!get_length(token >> 4, &lit_len)) {
      return Status::Corruption("compressed literal length truncated");
    }
    if (in + lit_len > n || out + lit_len > out_n) {
      return Status::Corruption("compressed literal run out of bounds");
    }
    std::memcpy(dst + out, src + in, lit_len);
    in += lit_len;
    out += lit_len;
    if (out == out_n && in == n) break;  // final literal-only block
    if (in + 2 > n) return Status::Corruption("compressed match truncated");
    size_t offset = src[in] | (size_t{src[in + 1]} << 8);
    in += 2;
    size_t match_len;
    if (!get_length(token & 0xF, &match_len)) {
      return Status::Corruption("compressed match length truncated");
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > out || out + match_len > out_n) {
      return Status::Corruption("compressed match out of bounds");
    }
    // Overlapping copies (offset < match_len) are the RLE case and must
    // run byte-wise front to back.
    const uint8_t* from = dst + out - offset;
    uint8_t* to = dst + out;
    if (offset >= match_len) {
      std::memcpy(to, from, match_len);
    } else {
      for (size_t i = 0; i < match_len; ++i) to[i] = from[i];
    }
    out += match_len;
  }
  if (out != out_n || in != n) {
    return Status::Corruption("compressed stream length mismatch");
  }
  return Status::OK();
}

}  // namespace eos
