#ifndef EOS_COMMON_DEADLINE_H_
#define EOS_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"

namespace eos {

// Wall-clock bound on one operation (DESIGN.md "Degraded operation under
// resource exhaustion"). Deadlines are absolute points on the steady clock,
// so they compose across layers: a caller arms one and every layer below —
// chunk loops, executor tasks, injected device latency — measures against
// the same instant.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // No bound: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline After(std::chrono::nanoseconds budget) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + budget;
    return d;
  }

  bool infinite() const { return infinite_; }

  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  // Time left before expiry; zero once expired, an effectively unbounded
  // value when infinite.
  std::chrono::nanoseconds remaining() const {
    if (infinite_) return std::chrono::nanoseconds::max();
    Clock::time_point now = Clock::now();
    if (now >= at_) return std::chrono::nanoseconds::zero();
    return at_ - now;
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

// Shared cancellation flag: cheap to copy into task closures, checked
// cooperatively at operation boundaries. A default-constructed token is
// never cancelled.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool valid() const { return flag_ != nullptr; }

  void Cancel() {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Deadline + cancellation carried by one logical operation. Checked at
// chunk boundaries of the data paths and before each queued executor task
// runs; copyable by value into task closures so worker threads observe the
// submitting operation's bound.
struct OpContext {
  Deadline deadline;
  CancelToken cancel;

  bool bounded() const { return !deadline.infinite() || cancel.valid(); }

  // OK while the operation may continue; a typed error once it may not.
  Status Check(const char* what) const {
    if (cancel.cancelled()) {
      return Status::DeadlineExceeded(std::string("cancelled during ") +
                                      what);
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(std::string("deadline exceeded in ") +
                                      what);
    }
    return Status::OK();
  }
};

// Ambient (thread-local) operation context: installing one puts every call
// made on this thread — and every executor task submitted from it — under
// the bound, without threading a parameter through each signature. Scopes
// nest; the innermost wins.
class ScopedOpContext {
 public:
  explicit ScopedOpContext(OpContext ctx) : prev_(Slot()) {
    owned_ = std::move(ctx);
    Slot() = &owned_;
  }
  ~ScopedOpContext() { Slot() = prev_; }

  ScopedOpContext(const ScopedOpContext&) = delete;
  ScopedOpContext& operator=(const ScopedOpContext&) = delete;

  // The innermost context installed on this thread, or nullptr.
  static const OpContext* Current() { return Slot(); }

  // Checks the ambient context if any; OK when none is installed.
  static Status CheckCurrent(const char* what) {
    const OpContext* ctx = Slot();
    return ctx == nullptr ? Status::OK() : ctx->Check(what);
  }

 private:
  static const OpContext*& Slot() {
    thread_local const OpContext* slot = nullptr;
    return slot;
  }

  OpContext owned_;
  const OpContext* prev_;
};

// Convenience: bound every operation in the enclosing scope by `budget`.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(std::chrono::nanoseconds budget)
      : scope_(OpContext{Deadline::After(budget), CancelToken()}) {}

 private:
  ScopedOpContext scope_;
};

}  // namespace eos

#endif  // EOS_COMMON_DEADLINE_H_
