#ifndef EOS_COMMON_COMPRESS_H_
#define EOS_COMMON_COMPRESS_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace eos {

// Dependency-free LZ-class block compressor for the DRAM cache tier
// (DESIGN.md §14). The format is a byte-oriented literal/match token
// stream in the LZ4 family: greedy hash-chain matching on the compress
// side, a branch-light copy loop on the decompress side. Decompression is
// the hot direction (every compressed cache hit pays it), so the format
// favors cheap decode over ratio — typical 2-4x on structured payloads,
// and callers are expected to keep incompressible blocks raw.
//
// Block format, repeated until the input is consumed:
//   token      1 byte: high nibble = literal run length (15 = extended),
//              low nibble = match length - kMinMatch (15 = extended)
//   [ext]      literal length extension: 255-bytes then a terminator < 255
//   literals   the literal run
//   offset     2 bytes little-endian match distance (1..65535); present
//              only when the token encodes a match
//   [ext]      match length extension, same scheme as literals
// The final block carries only literals (match nibble 0, no offset).

// Upper bound on CompressBlock's output for `n` input bytes.
size_t CompressBound(size_t n);

// Compresses [src, src+n) into dst (capacity dst_cap). Returns the
// compressed size, or 0 when the result would not fit — callers use a
// dst_cap below n to demand a minimum ratio and fall back to storing the
// block raw when 0 comes back. n == 0 compresses to 0 bytes.
size_t CompressBlock(const uint8_t* src, size_t n, uint8_t* dst,
                     size_t dst_cap);

// Decompresses a CompressBlock stream of `n` bytes into exactly `out_n`
// bytes. Any malformed input — truncated stream, offset before the start
// of the output, lengths that overrun either buffer — returns typed
// Corruption without writing out of bounds.
Status DecompressBlock(const uint8_t* src, size_t n, uint8_t* dst,
                       size_t out_n);

}  // namespace eos

#endif  // EOS_COMMON_COMPRESS_H_
