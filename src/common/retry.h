#ifndef EOS_COMMON_RETRY_H_
#define EOS_COMMON_RETRY_H_

#include <functional>

#include "common/status.h"

namespace eos {

// Bounded exponential-backoff retry for transient faults (the verified
// device's read/write paths, and anything else that talks to flaky media).
//
// Only IOError and Busy are considered transient; every other code —
// notably Corruption, which retrying cannot fix once re-reads have been
// tried — propagates immediately. The backoff doubles per attempt from
// `base_backoff_us` up to `max_backoff_us`; the default base of 0 makes
// retries immediate, which is what deterministic tests want.
struct RetryPolicy {
  int max_attempts = 4;          // total tries, including the first
  uint32_t base_backoff_us = 0;  // sleep before retry k is base * 2^(k-1)
  uint32_t max_backoff_us = 10000;

  static RetryPolicy None() { return RetryPolicy{1, 0, 0}; }

  bool RetriableError(const Status& s) const {
    return s.IsIOError() || s.IsBusy();
  }

  // Backoff (microseconds) before retry attempt `retry` (1-based).
  uint32_t BackoffUs(int retry) const;
};

// Sleeps for `us` microseconds (no-op for 0). Exposed for callers that run
// their own retry loop but want the same backoff behaviour.
void BackoffSleep(uint32_t us);

// Runs `op` until it succeeds, fails with a non-retriable code, or
// `policy.max_attempts` tries are spent; returns the last status. Each
// retry (not the first attempt) invokes `on_retry` before re-running, which
// is where callers count metrics.
//
// Deadline-aware: when the calling thread has a ScopedOpContext installed,
// the loop never sleeps past its deadline — an expired (or cancelled)
// context returns DeadlineExceeded instead of another backoff, and a
// backoff longer than the remaining budget is clipped to it.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op,
                    const std::function<void()>& on_retry = nullptr);

}  // namespace eos

#endif  // EOS_COMMON_RETRY_H_
