#include "common/crc32c.h"

#include <cstring>

namespace eos {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  uint32_t t[8][256];

  constexpr Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

constexpr Tables kTables{};

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = state;
  // Byte-at-a-time until 4-byte alignment, so the word loads below are
  // aligned on strict targets (memcpy makes them safe everywhere anyway).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  // Slice-by-8: consume two 32-bit words per iteration with eight
  // independent table lookups.
  while (n >= 8) {
    uint32_t lo = LoadLE32(p) ^ crc;
    uint32_t hi = LoadLE32(p + 4);
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFF] ^ kTables.t[2][(hi >> 8) & 0xFF] ^
          kTables.t[1][(hi >> 16) & 0xFF] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  return crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cFinalize(Crc32cExtend(Crc32cInit(), data, n));
}

}  // namespace eos
