#include "common/crc32c.h"

#include <cstdlib>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define EOS_CRC32C_HW_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__GNUC__)
#define EOS_CRC32C_HW_ARM 1
#pragma GCC push_options
#pragma GCC target("+crc")
#include <arm_acle.h>
#pragma GCC pop_options
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace eos {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  uint32_t t[8][256];

  constexpr Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

constexpr Tables kTables{};

inline uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

}  // namespace

uint32_t Crc32cExtendSoftware(uint32_t state, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = state;
  // Byte-at-a-time until 4-byte alignment, so the word loads below are
  // aligned on strict targets (memcpy makes them safe everywhere anyway).
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  // Slice-by-8: consume two 32-bit words per iteration with eight
  // independent table lookups.
  while (n >= 8) {
    uint32_t lo = LoadLE32(p) ^ crc;
    uint32_t hi = LoadLE32(p + 4);
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFF] ^ kTables.t[2][(hi >> 8) & 0xFF] ^
          kTables.t[1][(hi >> 16) & 0xFF] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
    --n;
  }
  return crc;
}

// ---- hardware kernels -------------------------------------------------------

#if defined(EOS_CRC32C_HW_X86)

namespace {

// SSE4.2 CRC32 instruction: 8 bytes per issue, 3-cycle latency. Three
// independent streams would go faster still, but the single-stream form is
// already ~10x slice-by-8 and keeps the combine logic trivial.
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t state,
                                                    const void* data,
                                                    size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if defined(__x86_64__)
  uint64_t crc = state;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(static_cast<uint32_t>(crc), *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = _mm_crc32_u64(crc, v);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
#else
  uint32_t crc32 = state;
  while (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    crc32 = _mm_crc32_u32(crc32, v);
    p += 4;
    n -= 4;
  }
#endif
  while (n > 0) {
    crc32 = _mm_crc32_u8(crc32, *p++);
    --n;
  }
  return crc32;
}

bool HwAvailable() { return __builtin_cpu_supports("sse4.2") != 0; }
constexpr const char* kHwName = "sse4.2";

}  // namespace

#elif defined(EOS_CRC32C_HW_ARM)

namespace {

__attribute__((target("+crc"))) uint32_t ExtendHw(uint32_t state,
                                                  const void* data,
                                                  size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = state;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc = __crc32cd(crc, v);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return crc;
}

bool HwAvailable() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;
#endif
}
constexpr const char* kHwName = "armv8-crc";

}  // namespace

#endif  // hardware kernels

// ---- runtime dispatch -------------------------------------------------------

namespace {

using ExtendFn = uint32_t (*)(uint32_t, const void*, size_t);

struct Dispatch {
  ExtendFn fn;
  const char* name;
};

Dispatch Resolve() {
  // EOS_CRC32C=software pins the portable kernel even when hardware CRC is
  // available — used by benchmarks to A/B the two paths end to end, and as
  // an escape hatch should a platform's instruction prove unreliable.
  const char* force = std::getenv("EOS_CRC32C");
  if (force != nullptr && std::strcmp(force, "software") == 0) {
    return {&Crc32cExtendSoftware, "slice-by-8 (forced)"};
  }
#if defined(EOS_CRC32C_HW_X86) || defined(EOS_CRC32C_HW_ARM)
  if (HwAvailable()) return {&ExtendHw, kHwName};
#endif
  return {&Crc32cExtendSoftware, "slice-by-8"};
}

// Resolved during static initialization: a plain load on every call, no
// atomics or branches beyond the indirect jump.
const Dispatch kDispatch = Resolve();

}  // namespace

uint32_t Crc32cExtend(uint32_t state, const void* data, size_t n) {
  return kDispatch.fn(state, data, n);
}

const char* Crc32cBackend() { return kDispatch.name; }

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cFinalize(Crc32cExtend(Crc32cInit(), data, n));
}

}  // namespace eos
