#ifndef EOS_COMMON_LATCH_H_
#define EOS_COMMON_LATCH_H_

#include <mutex>
#include <shared_mutex>

namespace eos {

// Short-duration lock in the sense of [Moha90]: held only for the duration
// of one read or update of a shared in-memory structure (such as the buddy
// superdirectory), never to transaction end.
class Latch {
 public:
  Latch() = default;
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void Acquire() { mu_.lock(); }
  bool TryAcquire() { return mu_.try_lock(); }
  void Release() { mu_.unlock(); }

 private:
  friend class LatchGuard;
  std::mutex mu_;
};

class LatchGuard {
 public:
  explicit LatchGuard(Latch& latch) : guard_(latch.mu_) {}

 private:
  std::lock_guard<std::mutex> guard_;
};

// Reader/writer latch for structures that are read far more than written.
class SharedLatch {
 public:
  SharedLatch() = default;
  SharedLatch(const SharedLatch&) = delete;
  SharedLatch& operator=(const SharedLatch&) = delete;

  void AcquireShared() { mu_.lock_shared(); }
  void ReleaseShared() { mu_.unlock_shared(); }
  void AcquireExclusive() { mu_.lock(); }
  void ReleaseExclusive() { mu_.unlock(); }

 private:
  friend class SharedLatchGuard;
  friend class ExclusiveLatchGuard;
  std::shared_mutex mu_;
};

class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(SharedLatch& latch) : guard_(latch.mu_) {}

 private:
  std::shared_lock<std::shared_mutex> guard_;
};

class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(SharedLatch& latch) : guard_(latch.mu_) {}

 private:
  std::unique_lock<std::shared_mutex> guard_;
};

}  // namespace eos

#endif  // EOS_COMMON_LATCH_H_
