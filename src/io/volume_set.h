#ifndef EOS_IO_VOLUME_SET_H_
#define EOS_IO_VOLUME_SET_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/latch.h"
#include "common/retry.h"
#include "common/status.h"
#include "io/page_device.h"
#include "io/verified_device.h"
#include "obs/metrics.h"

namespace eos {

// Placement and redundancy knobs for a VolumeSetDevice (DESIGN.md §15).
struct VolumeSetOptions {
  // Every chunk gets a second copy on a different member; reads fail over
  // to it and scrub repairs a bad primary copy from it.
  bool mirrored = true;

  // Pages per placement chunk. The database factory sets this to one buddy
  // space footprint (space_pages + 1) so extents never straddle members;
  // 0 is invalid at Format/Open time. Tests may pick small values for
  // fine-grained striping.
  uint32_t chunk_pages = 0;

  // Optional hard cap on a member's payload pages (0 = unbounded, the
  // backing device decides). The placer treats a capped-out member as full.
  uint64_t member_capacity_pages = 0;

  // When a capped member's remaining capacity drops below this many pages
  // it is marked "shedding": new chunks go to the other members while
  // everything already placed stays readable and writable.
  uint64_t shed_watermark_pages = 0;

  // Retry policy for each member's verified device.
  RetryPolicy io_retry;

  // Trailer epoch each member's pages are sealed with.
  uint16_t format_epoch = 1;
};

// N independent page-device stacks presented as one logical page space
// (DESIGN.md §15, ROADMAP item 3). Each member device is wrapped in its
// own VerifiedPageDevice (CRC trailers and quarantine are per volume, with
// member-local page ids), and the logical space is carved into fixed-size
// chunks placed on the least-loaded member:
//
//   logical page 0            -> chunk 0 (the superblock, alone)
//   logical pages 1 + (c-1)*K -> chunk c, K = chunk_pages
//
// With K = one buddy space footprint, chunk c is exactly space c-1: every
// buddy extent stays within one member, and spaces stripe across members.
//
// In mirrored mode each chunk has a replica on a second member. Reads try
// the primary and fail over to the replica; a member that keeps failing is
// marked offline and skipped (with periodic re-probes), and a read with no
// live copy returns typed Unavailable. Writes go to both copies and fail
// typed when either copy cannot be written — degraded, never diverging
// silently. When a member fills (capacity watermark or a NoSpace from the
// backing device) the placer sheds new chunks to the other members while
// the full member keeps serving reads.
//
// Inside a VolumeRepairScope (installed by Database::Scrub/RepairObject)
// reads compare both copies and rewrite a bad or diverged copy from the
// good one — repair-from-replica instead of zero-filling.
//
// A small header (kHeaderPages payload pages, member-local pages 0..7) on
// every member persists the chunk table, so the set reopens as long as at
// least one member survives; the longest readable table wins. The table is
// fixed-size, so it caps how many chunks a set can hold; Grow returns a
// typed NoSpace once it is full.
class VolumeSetDevice final : public PageDevice {
 public:
  static constexpr uint32_t kHeaderPages = 8;
  static constexpr uint32_t kHeaderMagic = 0x45565354;  // "EVST"
  static constexpr uint32_t kHeaderVersion = 1;
  static constexpr uint16_t kNoReplica = 0xFFFF;

  // Formats a fresh set over `members` (raw devices; each gets its own
  // verified wrapper). All members must share a page size; chunk_pages
  // must be > 0.
  static StatusOr<std::unique_ptr<VolumeSetDevice>> Format(
      std::vector<std::unique_ptr<PageDevice>> members,
      const VolumeSetOptions& options);

  // Opens an existing set. Members must be passed in their formatted
  // order; a member whose header cannot be read starts offline and is
  // served from replicas. Fails unless at least one header is readable.
  static StatusOr<std::unique_ptr<VolumeSetDevice>> Open(
      std::vector<std::unique_ptr<PageDevice>> members,
      const VolumeSetOptions& options);

  ~VolumeSetDevice() override;

  Status Grow(uint64_t new_page_count) override;
  Status Sync() override;

  size_t member_count() const { return members_.size(); }
  const VolumeSetOptions& options() const { return options_; }
  uint32_t chunk_pages() const { return options_.chunk_pages; }

  // The member's verified stack — quarantine inspection for tools/tests.
  VerifiedPageDevice* member_verified(size_t i) {
    return members_[i]->verified.get();
  }
  // The raw device as passed in (a ChaosPageDevice in the torture tiers).
  PageDevice* member_raw(size_t i) { return members_[i]->raw.get(); }

  // Where a logical page lives. Test/tool hook: lets a harness corrupt or
  // inspect one physical copy through the member devices.
  struct Location {
    int member = -1;
    PageId local = kInvalidPage;  // member-local payload page id
    int replica_member = -1;
    PageId replica_local = kInvalidPage;
  };
  StatusOr<Location> Resolve(PageId page) const;

  // ---- health -------------------------------------------------------------
  struct MemberHealth {
    int index = 0;
    bool online = true;
    bool shedding = false;
    uint64_t payload_pages = 0;     // member device size above the trailer
    uint64_t data_blocks = 0;       // chunk-sized blocks placed here
    uint64_t capacity_pages = 0;    // 0 = unbounded
    double fill_percent = 0.0;      // of capacity; of allocated when uncapped
    uint64_t quarantined_pages = 0;
    uint64_t primary_chunks = 0;
    uint64_t replica_chunks = 0;
    uint64_t repaired_pages = 0;    // pages rewritten here from the replica
  };
  struct Health {
    bool mirrored = false;
    uint32_t chunk_pages = 0;
    uint64_t chunks = 0;
    uint64_t failover_reads = 0;
    uint64_t degraded_writes = 0;
    uint64_t shed_placements = 0;
    uint64_t repaired_pages = 0;
    std::vector<MemberHealth> members;
  };
  Health GetHealth() const;

  // Set-local counter mirrors (also exported as volume.* metrics).
  uint64_t failover_reads() const {
    return failover_reads_.load(std::memory_order_relaxed);
  }
  uint64_t repaired_pages() const {
    return repaired_pages_.load(std::memory_order_relaxed);
  }

 protected:
  Status DoRead(PageId first, uint32_t n, uint8_t* out) override;
  Status DoWrite(PageId first, uint32_t n, const uint8_t* data) override;

 private:
  friend class VolumeRepairScope;

  struct Member {
    std::unique_ptr<PageDevice> raw;
    std::unique_ptr<VerifiedPageDevice> verified;
    std::atomic<bool> online{true};
    std::atomic<bool> shedding{false};
    std::atomic<int> fail_streak{0};
    std::atomic<uint64_t> probe_tick{0};
    std::atomic<uint64_t> repaired_pages{0};
    uint64_t next_block = 0;      // under map_latch_ exclusive
    uint64_t primary_blocks = 0;  // chunks whose primary copy is here
  };

  struct Chunk {
    uint16_t primary = 0;
    uint16_t replica = kNoReplica;
    uint32_t primary_block = 0;
    uint32_t replica_block = 0;
  };

  VolumeSetDevice(uint32_t payload_page_size,
                  std::vector<std::unique_ptr<Member>> members,
                  const VolumeSetOptions& options);

  static Status CheckMembers(
      const std::vector<std::unique_ptr<PageDevice>>& members,
      const VolumeSetOptions& options);

  uint64_t chunk_for(PageId page) const {
    return page == 0 ? 0 : 1 + (page - 1) / options_.chunk_pages;
  }
  uint32_t offset_in_chunk(PageId page) const {
    return page == 0 ? 0
                     : static_cast<uint32_t>((page - 1) % options_.chunk_pages);
  }
  PageId local_page(uint32_t block, uint32_t offset) const {
    return kHeaderPages + uint64_t{block} * options_.chunk_pages + offset;
  }
  uint64_t logical_pages_for_chunks(uint64_t chunks) const {
    return chunks == 0 ? 0 : 1 + (chunks - 1) * options_.chunk_pages;
  }

  // One chunk-contiguous subrange of a transfer.
  Status ReadChunkRange(const Chunk& chunk, uint32_t offset, uint32_t n,
                        uint8_t* out);
  Status WriteChunkRange(const Chunk& chunk, uint32_t offset, uint32_t n,
                         const uint8_t* data);
  // Repair-scope read: consult both copies, heal the bad one.
  Status ReadBothAndRepair(const Chunk& chunk, uint32_t offset, uint32_t n,
                           uint8_t* out);

  Status ReadFromMember(int m, PageId local, uint32_t n, uint8_t* out);
  void NoteMemberFailure(int m, const Status& s);
  void NoteMemberSuccess(int m);
  // Whether a read should even try this member (offline members are
  // skipped except for a periodic probe).
  bool ShouldTryMember(int m);

  // Placer: picks the member for a new chunk copy. `exclude` is the
  // primary's member when placing the replica; -1 otherwise. `salt`
  // rotates the scan order so equal loads stripe round-robin; members
  // flagged in `tried` already failed for this chunk and are skipped.
  // `for_primary` breaks load ties toward the member serving the fewest
  // primary copies — without it the least-loaded rule converges on a
  // stable cycle that starves one member of primaries entirely (all its
  // blocks replicas), concentrating read traffic on the others.
  // Returns -1 when no member qualifies.
  int PickMember(int exclude, bool allow_shedding, bool for_primary,
                 uint64_t salt, const std::vector<bool>& tried) const;
  // True if the member can take one more block under its capacity cap.
  bool HasRoomForBlock(int m) const;
  void MarkShedding(int m, const char* why);
  // Sheds the member once its remaining capacity falls under the
  // watermark; called after each successful placement.
  void MaybeShedAfterPlacement(int m);

  // Grows member `m` so block `block` exists; marks it shedding on
  // NoSpace. Caller holds map_latch_ exclusive.
  Status EnsureBlock(int m, uint64_t block);

  // Serializes the chunk table into header images and writes them to every
  // online member; needs at least one success. Caller holds map_latch_.
  Status PersistHeaders();

  Status ParseHeader(const uint8_t* buf, size_t len, uint64_t* uuid,
                     std::vector<Chunk>* chunks) const;

  const VolumeSetOptions options_;
  uint64_t set_uuid_ = 0;
  std::vector<std::unique_ptr<Member>> members_;

  // Guards chunks_ and per-member next_block: shared on the data path,
  // exclusive in Grow.
  mutable SharedLatch map_latch_;
  std::vector<Chunk> chunks_;

  std::atomic<uint64_t> failover_reads_{0};
  std::atomic<uint64_t> degraded_writes_{0};
  std::atomic<uint64_t> shed_placements_{0};
  std::atomic<uint64_t> repaired_pages_{0};

  obs::Counter* m_failover_;
  obs::Counter* m_repaired_;
  obs::Counter* m_degraded_write_;
  obs::Counter* m_shed_;
  obs::Gauge* m_offline_;
};

// While alive on this thread, reads through `set` verify both mirror
// copies and rewrite a bad or diverged copy from the good one. Installed
// by scrub/repair so their existing device-direct walks heal the volume
// set as a side effect. Null set (single-volume database) is a no-op;
// scopes nest.
class VolumeRepairScope {
 public:
  explicit VolumeRepairScope(VolumeSetDevice* set);
  ~VolumeRepairScope();

  VolumeRepairScope(const VolumeRepairScope&) = delete;
  VolumeRepairScope& operator=(const VolumeRepairScope&) = delete;

  // The set under repair on this thread, or nullptr.
  static VolumeSetDevice* ActiveSet();

 private:
  VolumeSetDevice* set_;
  VolumeSetDevice* prev_;
};

}  // namespace eos

#endif  // EOS_IO_VOLUME_SET_H_
