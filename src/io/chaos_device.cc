#include "io/chaos_device.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

namespace {

obs::Counter* FaultCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kChaosInjectedFaults);
  return c;
}

obs::Counter* TornCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kChaosTornWrites);
  return c;
}

obs::Counter* BitRotCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kChaosBitRot);
  return c;
}

obs::Counter* CrashCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kChaosCrashes);
  return c;
}

}  // namespace

ChaosPageDevice::ChaosPageDevice(PageDevice* inner, uint64_t seed)
    : PageDevice(inner->page_size(), inner->page_count()),
      inner_(inner),
      rng_(seed) {}

ChaosPageDevice::ChaosPageDevice(std::unique_ptr<PageDevice> inner,
                                 uint64_t seed)
    : PageDevice(inner->page_size(), inner->page_count()),
      owned_(std::move(inner)),
      inner_(owned_.get()),
      rng_(seed) {}

void ChaosPageDevice::FailReadsAfter(int ops, bool permanent) {
  LatchGuard g(latch_);
  read_fault_ = {ops, permanent};
}

void ChaosPageDevice::FailWritesAfter(int ops, bool permanent) {
  LatchGuard g(latch_);
  write_fault_ = {ops, permanent};
}

void ChaosPageDevice::FailAfter(int ops, bool permanent) {
  LatchGuard g(latch_);
  any_fault_ = {ops, permanent};
}

void ChaosPageDevice::FailNextGrow() {
  LatchGuard g(latch_);
  grow_fault_ = true;
}

void ChaosPageDevice::FailGrowsAfter(int ops, bool permanent) {
  LatchGuard g(latch_);
  grow_nospace_ = {ops, permanent};
}

void ChaosPageDevice::InjectLatency(uint64_t read_us, uint64_t write_us,
                                    uint64_t jitter_us) {
  LatchGuard g(latch_);
  latency_read_us_ = read_us;
  latency_write_us_ = write_us;
  latency_jitter_us_ = jitter_us;
}

Status ChaosPageDevice::MaybeDelay(uint64_t base_us, const char* what) {
  uint64_t jitter = 0;
  {
    LatchGuard g(latch_);
    if (base_us == 0 && latency_jitter_us_ == 0) return Status::OK();
    if (latency_jitter_us_ > 0) jitter = rng_.Uniform(latency_jitter_us_ + 1);
  }
  auto delay = std::chrono::microseconds(base_us + jitter);
  if (delay.count() == 0) return Status::OK();
  if (const OpContext* ctx = ScopedOpContext::Current()) {
    EOS_RETURN_IF_ERROR(ctx->Check(what));
    std::chrono::nanoseconds remaining = ctx->deadline.remaining();
    if (std::chrono::nanoseconds(delay) >= remaining) {
      // The injected service time outlives the operation's budget: wake at
      // the deadline and refuse the transfer.
      std::this_thread::sleep_for(remaining);
      return Status::DeadlineExceeded(
          std::string("injected latency outlived deadline in ") + what);
    }
  }
  std::this_thread::sleep_for(delay);
  return Status::OK();
}

void ChaosPageDevice::SetOffline(bool offline) {
  bool fired = false;
  {
    LatchGuard g(latch_);
    fired = offline && !offline_;
    offline_ = offline;
    if (fired) ++injected_;
  }
  if (fired) {
    FaultCounter()->Inc();
    obs::RecordEvent(obs::EventKind::kChaosFault, "volume_offline", /*a=*/0,
                     /*b=*/0, /*c=*/0, /*ok=*/false);
  }
}

bool ChaosPageDevice::offline() const {
  LatchGuard g(latch_);
  return offline_;
}

void ChaosPageDevice::Heal() {
  LatchGuard g(latch_);
  read_fault_ = Fault{};
  write_fault_ = Fault{};
  any_fault_ = Fault{};
  grow_fault_ = false;
  grow_nospace_ = Fault{};
  tear_countdown_ = -1;
  offline_ = false;
}

void ChaosPageDevice::TearWriteAfter(int ops, uint32_t keep_pages) {
  LatchGuard g(latch_);
  tear_countdown_ = ops;
  tear_keep_pages_ = keep_pages;
}

Status ChaosPageDevice::CorruptPage(PageId page, int bits) {
  if (page >= inner_->page_count()) {
    return Status::OutOfRange("corrupting page beyond volume end");
  }
  std::vector<uint8_t> buf(page_size_);
  EOS_RETURN_IF_ERROR(inner_->ReadPages(page, 1, buf.data()));
  {
    LatchGuard g(latch_);
    for (int i = 0; i < bits; ++i) {
      uint64_t bit = rng_.Uniform(uint64_t{page_size_} * 8);
      buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    ++injected_;
  }
  BitRotCounter()->Inc();
  FaultCounter()->Inc();
  obs::RecordEvent(obs::EventKind::kChaosFault, "bit_rot", page,
                   static_cast<uint64_t>(bits), /*c=*/0, /*ok=*/false);
  return inner_->WritePages(page, 1, buf.data());
}

void ChaosPageDevice::Crash() {
  {
    LatchGuard g(latch_);
    if (crashed_) return;
    crashed_ = true;
    ++injected_;
  }
  CrashCounter()->Inc();
  FaultCounter()->Inc();
  // The flight recorder's reason to exist: every simulated power loss
  // leaves a black box behind, with the crash as its final event.
  obs::RecordEvent(obs::EventKind::kCrash, "chaos_crash", /*a=*/0, /*b=*/0,
                   /*c=*/0, /*ok=*/false);
  obs::DumpPostMortemBestEffort("chaos_crash");
}

void ChaosPageDevice::CrashAfterWrites(uint64_t writes, uint32_t tear_pages) {
  LatchGuard g(latch_);
  crash_write_budget_ = static_cast<int64_t>(writes);
  crash_tear_pages_ = tear_pages;
}

bool ChaosPageDevice::crashed() const {
  LatchGuard g(latch_);
  return crashed_;
}

StatusOr<std::unique_ptr<MemPageDevice>> ChaosPageDevice::CloneImage() {
  uint64_t pages = inner_->page_count();
  std::vector<uint8_t> image(pages * page_size_);
  // Chunked so a huge volume never needs a single giant transfer.
  constexpr uint32_t kChunk = 1024;
  for (uint64_t p = 0; p < pages; p += kChunk) {
    uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(kChunk, pages - p));
    EOS_RETURN_IF_ERROR(
        inner_->ReadPages(p, n, image.data() + p * page_size_));
  }
  return std::make_unique<MemPageDevice>(page_size_, pages, std::move(image));
}

uint64_t ChaosPageDevice::injected_faults() const {
  LatchGuard g(latch_);
  return injected_;
}

Status ChaosPageDevice::Grow(uint64_t new_page_count) {
  {
    LatchGuard g(latch_);
    if (crashed_) return Status::IOError("simulated crash: device offline");
    if (offline_) return Status::Unavailable("injected fault: volume offline");
    if (grow_fault_) {
      grow_fault_ = false;
      ++injected_;
      FaultCounter()->Inc();
      obs::RecordEvent(obs::EventKind::kChaosFault, "grow", new_page_count,
                       /*b=*/0, /*c=*/0, /*ok=*/false);
      return Status::IOError("injected grow fault");
    }
    if (grow_nospace_.countdown >= 0) {
      if (grow_nospace_.countdown == 0) {
        if (!grow_nospace_.permanent) grow_nospace_.countdown = -1;
        ++injected_;
        FaultCounter()->Inc();
        obs::RecordEvent(obs::EventKind::kChaosFault, "disk_full",
                         new_page_count, /*b=*/0, /*c=*/0, /*ok=*/false);
        return Status::NoSpace("injected disk-full: volume cannot grow");
      }
      --grow_nospace_.countdown;
    }
  }
  EOS_RETURN_IF_ERROR(inner_->Grow(new_page_count));
  SetPageCount(inner_->page_count());
  return Status::OK();
}

Status ChaosPageDevice::Sync() {
  {
    LatchGuard g(latch_);
    if (crashed_) return Status::IOError("simulated crash: device offline");
    if (offline_) return Status::Unavailable("injected fault: volume offline");
  }
  return inner_->Sync();
}

Status ChaosPageDevice::Tick(Fault* f, const char* what) {
  if (f->countdown < 0) return Status::OK();
  if (f->countdown == 0) {
    if (!f->permanent) f->countdown = -1;
    ++injected_;
    FaultCounter()->Inc();
    obs::RecordEvent(obs::EventKind::kChaosFault, what, /*a=*/0, /*b=*/0,
                     /*c=*/0, /*ok=*/false);
    return Status::IOError(std::string("injected ") + what + " fault");
  }
  --f->countdown;
  return Status::OK();
}

Status ChaosPageDevice::DoRead(PageId first, uint32_t n, uint8_t* out) {
  {
    LatchGuard g(latch_);
    if (crashed_) return Status::IOError("simulated crash: device offline");
    if (offline_) return Status::Unavailable("injected fault: volume offline");
    EOS_RETURN_IF_ERROR(Tick(&any_fault_, "I/O"));
    EOS_RETURN_IF_ERROR(Tick(&read_fault_, "read"));
  }
  EOS_RETURN_IF_ERROR(MaybeDelay(latency_read_us_, "chaos read"));
  return inner_->ReadPages(first, n, out);
}

Status ChaosPageDevice::DoWrite(PageId first, uint32_t n,
                                const uint8_t* data) {
  uint32_t torn_keep = 0;
  bool torn = false;
  {
    LatchGuard g(latch_);
    if (crashed_) return Status::IOError("simulated crash: device offline");
    if (offline_) return Status::Unavailable("injected fault: volume offline");
    EOS_RETURN_IF_ERROR(Tick(&any_fault_, "I/O"));
    EOS_RETURN_IF_ERROR(Tick(&write_fault_, "write"));
    if (crash_write_budget_ == 0) {
      // The fatal write: power is lost during this call. An optional torn
      // prefix persists first.
      crash_write_budget_ = -1;
      crashed_ = true;
      ++injected_;
      torn = crash_tear_pages_ > 0;
      torn_keep = std::min(crash_tear_pages_, n);
    } else if (crash_write_budget_ > 0) {
      --crash_write_budget_;
    }
  }
  if (crashed()) {
    CrashCounter()->Inc();
    FaultCounter()->Inc();
    if (torn && torn_keep > 0) {
      TornCounter()->Inc();
      (void)inner_->WritePages(first, torn_keep, data);
    }
    obs::RecordEvent(obs::EventKind::kCrash, "crash_mid_write", first,
                     torn_keep, n, /*ok=*/false);
    obs::DumpPostMortemBestEffort("crash_mid_write");
    return Status::IOError("simulated crash: power lost mid-write");
  }
  {
    LatchGuard g(latch_);
    if (tear_countdown_ >= 0) {
      if (tear_countdown_ == 0) {
        tear_countdown_ = -1;
        ++injected_;
        torn = true;
        torn_keep = std::min(tear_keep_pages_, n);
      } else {
        --tear_countdown_;
      }
    }
  }
  if (torn) {
    TornCounter()->Inc();
    FaultCounter()->Inc();
    obs::RecordEvent(obs::EventKind::kChaosFault, "torn_write", first,
                     torn_keep, n, /*ok=*/false);
    if (torn_keep > 0) (void)inner_->WritePages(first, torn_keep, data);
    return Status::IOError("injected torn write: " +
                           std::to_string(torn_keep) + " of " +
                           std::to_string(n) + " pages persisted");
  }
  EOS_RETURN_IF_ERROR(MaybeDelay(latency_write_us_, "chaos write"));
  return inner_->WritePages(first, n, data);
}

}  // namespace eos
