#include "io/page_device.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/event_journal.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace eos {

namespace {

struct DeviceByteCounters {
  obs::Counter* bytes_read;
  obs::Counter* bytes_written;
};

const DeviceByteCounters& ByteCounters() {
  static DeviceByteCounters* c = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    auto* cc = new DeviceByteCounters();
    cc->bytes_read = r.counter(obs::kIoBytesRead);
    cc->bytes_written = r.counter(obs::kIoBytesWritten);
    return cc;
  }();
  return *c;
}

}  // namespace

Status PageDevice::CheckRange(PageId first, uint32_t n) const {
  if (n == 0) return Status::InvalidArgument("zero-page I/O");
  const uint64_t count = page_count();
  if (first + n > count || first + n < first) {
    return Status::OutOfRange("page range [" + std::to_string(first) + ", " +
                              std::to_string(first + n) + ") beyond volume of " +
                              std::to_string(count) + " pages");
  }
  return Status::OK();
}

void PageDevice::Account(bool is_read, PageId first, uint32_t n) {
  if (is_read) {
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    pages_read_.fetch_add(n, std::memory_order_relaxed);
    ByteCounters().bytes_read->Inc(uint64_t{n} * page_size_);
  } else {
    write_calls_.fetch_add(1, std::memory_order_relaxed);
    pages_written_.fetch_add(n, std::memory_order_relaxed);
    ByteCounters().bytes_written->Inc(uint64_t{n} * page_size_);
  }
  PageId prev = head_pos_.exchange(first + n, std::memory_order_relaxed);
  if (prev != first) seeks_.fetch_add(1, std::memory_order_relaxed);
}

Status PageDevice::ReadPages(PageId first, uint32_t n, uint8_t* out) {
  EOS_RETURN_IF_ERROR(CheckRange(first, n));
  Account(/*is_read=*/true, first, n);
  return DoRead(first, n, out);
}

Status PageDevice::WritePages(PageId first, uint32_t n, const uint8_t* data) {
  EOS_RETURN_IF_ERROR(CheckRange(first, n));
  Account(/*is_read=*/false, first, n);
  return DoWrite(first, n, data);
}

namespace {

obs::Counter* BatchRunsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().counter(obs::kIoBatchRuns);
  return c;
}

}  // namespace

Status PageDevice::ReadRuns(const PageRun* runs, size_t n) {
  if (n == 0) return Status::OK();
  for (size_t i = 0; i < n; ++i) {
    EOS_RETURN_IF_ERROR(CheckRange(runs[i].first, runs[i].pages));
  }
  for (size_t i = 0; i < n; ++i) {
    Account(/*is_read=*/true, runs[i].first, runs[i].pages);
  }
  BatchRunsCounter()->Inc(n);
  obs::RecordEvent(obs::EventKind::kIoBatch, "read_runs", n, /*b=*/0);
  return DoReadRuns(runs, n);
}

Status PageDevice::WriteRuns(const ConstPageRun* runs, size_t n) {
  if (n == 0) return Status::OK();
  for (size_t i = 0; i < n; ++i) {
    EOS_RETURN_IF_ERROR(CheckRange(runs[i].first, runs[i].pages));
  }
  for (size_t i = 0; i < n; ++i) {
    Account(/*is_read=*/false, runs[i].first, runs[i].pages);
  }
  BatchRunsCounter()->Inc(n);
  obs::RecordEvent(obs::EventKind::kIoBatch, "write_runs", n, /*b=*/1);
  return DoWriteRuns(runs, n);
}

Status PageDevice::DoReadRuns(const PageRun* runs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    EOS_RETURN_IF_ERROR(DoRead(runs[i].first, runs[i].pages, runs[i].data));
  }
  return Status::OK();
}

Status PageDevice::DoWriteRuns(const ConstPageRun* runs, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    EOS_RETURN_IF_ERROR(DoWrite(runs[i].first, runs[i].pages, runs[i].data));
  }
  return Status::OK();
}

MemPageDevice::MemPageDevice(uint32_t page_size, uint64_t page_count)
    : PageDevice(page_size, page_count),
      mem_(page_size * page_count, 0) {}

MemPageDevice::MemPageDevice(uint32_t page_size, uint64_t page_count,
                             std::vector<uint8_t> image)
    : PageDevice(page_size, page_count), mem_(std::move(image)) {
  mem_.resize(page_size * page_count, 0);
}

Status MemPageDevice::Grow(uint64_t new_page_count) {
  if (new_page_count < page_count()) {
    return Status::InvalidArgument("Grow cannot shrink the volume");
  }
  // Exclusive: resizing may move the backing buffer under readers.
  mem_latch_.AcquireExclusive();
  mem_.resize(new_page_count * page_size_, 0);
  SetPageCount(new_page_count);
  mem_latch_.ReleaseExclusive();
  return Status::OK();
}

Status MemPageDevice::DoRead(PageId first, uint32_t n, uint8_t* out) {
  mem_latch_.AcquireShared();
  std::memcpy(out, &mem_[first * page_size_], size_t{n} * page_size_);
  mem_latch_.ReleaseShared();
  return Status::OK();
}

Status MemPageDevice::DoWrite(PageId first, uint32_t n, const uint8_t* data) {
  mem_latch_.AcquireShared();
  std::memcpy(&mem_[first * page_size_], data, size_t{n} * page_size_);
  mem_latch_.ReleaseShared();
  return Status::OK();
}

FilePageDevice::FilePageDevice(int fd, uint32_t page_size,
                               uint64_t page_count)
    : PageDevice(page_size, page_count), fd_(fd) {
  const char* env = std::getenv("EOS_FULL_SYNC");
  full_sync_ = env != nullptr && env[0] == '1';
}

FilePageDevice::~FilePageDevice() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<FilePageDevice>> FilePageDevice::Create(
    const std::string& path, uint32_t page_size, uint64_t page_count) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(page_count * page_size)) != 0) {
    Status s = Status::IOError("ftruncate(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<FilePageDevice>(
      new FilePageDevice(fd, page_size, page_count));
}

StatusOr<std::unique_ptr<FilePageDevice>> FilePageDevice::Open(
    const std::string& path, uint32_t page_size) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  off_t len = ::lseek(fd, 0, SEEK_END);
  if (len < 0 || len % page_size != 0) {
    ::close(fd);
    return Status::Corruption(path + ": size not a multiple of page size");
  }
  return std::unique_ptr<FilePageDevice>(new FilePageDevice(
      fd, page_size, static_cast<uint64_t>(len) / page_size));
}

Status FilePageDevice::Grow(uint64_t new_page_count) {
  if (new_page_count < page_count()) {
    return Status::InvalidArgument("Grow cannot shrink the volume");
  }
  if (::ftruncate(fd_, static_cast<off_t>(new_page_count * page_size_)) != 0) {
    return Status::IOError(std::string("ftruncate: ") + std::strerror(errno));
  }
  SetPageCount(new_page_count);
  return Status::OK();
}

Status FilePageDevice::Sync() {
  if (full_sync_) {
    if (::fsync(fd_) != 0) {
      return Status::IOError(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status FilePageDevice::DoRead(PageId first, uint32_t n, uint8_t* out) {
  size_t want = size_t{n} * page_size_;
  off_t off = static_cast<off_t>(first * page_size_);
  size_t got = 0;
  while (got < want) {
    ssize_t r = ::pread(fd_, out + got, want - got, off + static_cast<off_t>(got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) return Status::IOError("pread: unexpected EOF");
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

namespace {

#if defined(IOV_MAX)
constexpr size_t kMaxIov = IOV_MAX;
#else
constexpr size_t kMaxIov = 1024;
#endif

// Loops preadv/pwritev until every iovec is fully transferred, advancing
// the array across partial transfers (short counts are legal for both).
Status VectoredIo(int fd, bool is_read, struct iovec* iov, int cnt,
                  off_t off) {
  while (cnt > 0) {
    ssize_t r = is_read ? ::preadv(fd, iov, cnt, off)
                        : ::pwritev(fd, iov, cnt, off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string(is_read ? "preadv: " : "pwritev: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      // Zero progress; looping on it would spin forever.
      return Status::IOError(is_read ? "preadv: unexpected EOF"
                                     : "pwritev: wrote 0 bytes");
    }
    off += r;
    size_t left = static_cast<size_t>(r);
    while (cnt > 0 && left >= iov->iov_len) {
      left -= iov->iov_len;
      ++iov;
      --cnt;
    }
    if (cnt > 0 && left > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + left;
      iov->iov_len -= left;
    }
  }
  return Status::OK();
}

}  // namespace

Status FilePageDevice::DoReadRuns(const PageRun* runs, size_t n) {
  std::vector<struct iovec> iov;
  size_t i = 0;
  while (i < n) {
    // Group maximal sequences of file-adjacent runs into one preadv.
    iov.clear();
    off_t off = static_cast<off_t>(runs[i].first * page_size_);
    PageId next = runs[i].first;
    size_t j = i;
    while (j < n && runs[j].first == next && iov.size() < kMaxIov) {
      iov.push_back({runs[j].data, size_t{runs[j].pages} * page_size_});
      next = runs[j].first + runs[j].pages;
      ++j;
    }
    EOS_RETURN_IF_ERROR(VectoredIo(fd_, /*is_read=*/true, iov.data(),
                                   static_cast<int>(iov.size()), off));
    i = j;
  }
  return Status::OK();
}

Status FilePageDevice::DoWriteRuns(const ConstPageRun* runs, size_t n) {
  std::vector<struct iovec> iov;
  size_t i = 0;
  while (i < n) {
    iov.clear();
    off_t off = static_cast<off_t>(runs[i].first * page_size_);
    PageId next = runs[i].first;
    size_t j = i;
    while (j < n && runs[j].first == next && iov.size() < kMaxIov) {
      // pwritev never writes through iov_base; the const_cast is the
      // standard POSIX interface seam.
      iov.push_back({const_cast<uint8_t*>(runs[j].data),
                     size_t{runs[j].pages} * page_size_});
      next = runs[j].first + runs[j].pages;
      ++j;
    }
    EOS_RETURN_IF_ERROR(VectoredIo(fd_, /*is_read=*/false, iov.data(),
                                   static_cast<int>(iov.size()), off));
    i = j;
  }
  return Status::OK();
}

Status FilePageDevice::DoWrite(PageId first, uint32_t n, const uint8_t* data) {
  size_t want = size_t{n} * page_size_;
  off_t off = static_cast<off_t>(first * page_size_);
  size_t put = 0;
  while (put < want) {
    ssize_t r = ::pwrite(fd_, data + put, want - put, off + static_cast<off_t>(put));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
    }
    if (r == 0) {
      // A 0 return makes no progress; looping on it would spin forever.
      return Status::IOError("pwrite: wrote 0 of the remaining " +
                             std::to_string(want - put) + " bytes at offset " +
                             std::to_string(off + static_cast<off_t>(put)));
    }
    put += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace eos
