#ifndef EOS_IO_VERIFIED_DEVICE_H_
#define EOS_IO_VERIFIED_DEVICE_H_

#include <memory>
#include <set>
#include <vector>

#include "common/latch.h"
#include "common/retry.h"
#include "common/status.h"
#include "io/page_device.h"
#include "obs/metrics.h"

namespace eos {

// Self-verifying page layer (DESIGN.md "Integrity & degraded operation").
//
// Sits between the pager/Database and any raw PageDevice. Each physical
// page of the wrapped device ends in a 16-byte trailer:
//
//   [magic u16][format epoch u16][page id u64][crc32c u32]
//
// where the CRC32C covers the payload followed by the trailer prefix
// (magic, epoch, page id) — so bit-rot anywhere in the page, a page
// written to or read from the wrong address (the id check), and a page
// from a different format generation (the epoch check) all fail closed.
// The payload visible above this layer is page_size() = physical - 16
// bytes; the layer seals the trailer on every write and strips + verifies
// it on every read.
//
// Fault handling on reads, in order:
//   * device errors (IOError/Busy) retry under the bounded
//     exponential-backoff RetryPolicy — transient chaos faults succeed
//     invisibly, with io.read_retry counting the extra attempts;
//   * a trailer that fails verification is re-read up to the same budget
//     (a transient bus flip heals, persisted rot does not);
//   * when the budget is exhausted the failing pages are *quarantined* and
//     the read returns a typed Status::Corruption naming the first bad
//     page. Further reads of a quarantined page fail fast without touching
//     the device. A successful write re-seals the page and lifts the
//     quarantine — that is how repair readmits storage.
//
// An all-zero physical page (no trailer at all) is NOT accepted: the
// layers above never read pages they have not written, so an unwritten
// page on the read path is itself evidence of a torn or misdirected write.
//
// Thread-safe to the same degree as the wrapped device; quarantine state
// is latched.
class VerifiedPageDevice final : public PageDevice {
 public:
  static constexpr uint32_t kTrailerBytes = 16;
  static constexpr uint16_t kTrailerMagic = 0x7C32;  // "|2"

  // Non-owning: `inner` must outlive the wrapper.
  VerifiedPageDevice(PageDevice* inner, uint16_t epoch,
                     const RetryPolicy& retry = RetryPolicy{});
  // Owning.
  VerifiedPageDevice(std::unique_ptr<PageDevice> inner, uint16_t epoch,
                     const RetryPolicy& retry = RetryPolicy{});

  PageDevice* inner() { return inner_; }
  uint16_t epoch() const { return epoch_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // ---- quarantine ---------------------------------------------------------
  std::vector<PageId> Quarantined() const;
  bool IsQuarantined(PageId id) const;
  size_t quarantined_count() const;
  // Lifts a quarantine without rewriting the page (scrub uses this when a
  // later re-read proves the page good; repair relies on writes instead).
  void ClearQuarantine(PageId id);

  Status Grow(uint64_t new_page_count) override;
  Status Sync() override;

  // ---- trailer primitives (shared with tools/tests) -----------------------

  // Seals `physical` (physical_page_size bytes) in place: payload stays,
  // trailer is stamped for (id, epoch).
  static void SealPage(uint8_t* physical, uint32_t physical_page_size,
                       PageId id, uint16_t epoch);

  // OK, or a Corruption explaining which trailer field failed.
  static Status VerifyPage(const uint8_t* physical,
                           uint32_t physical_page_size, PageId id,
                           uint16_t epoch);

 protected:
  Status DoRead(PageId first, uint32_t n, uint8_t* out) override;
  Status DoWrite(PageId first, uint32_t n, const uint8_t* data) override;
  // Batch writes seal every page into one pooled staging buffer and
  // forward a single vectored batch to the wrapped device. Batch reads use
  // the default per-run loop so each run keeps its own retry/quarantine
  // handling — and is verified on whichever executor worker read it.
  Status DoWriteRuns(const ConstPageRun* runs, size_t n) override;

 private:
  uint32_t physical_page_size() const { return inner_->page_size(); }

  // One physical read attempt + verification of all n pages; fills
  // `bad_page` with the first failing page on Corruption.
  Status ReadAndVerifyOnce(PageId first, uint32_t n, uint8_t* staging,
                           uint8_t* out, PageId* bad_page);

  std::unique_ptr<PageDevice> owned_;
  PageDevice* inner_;
  uint16_t epoch_;
  RetryPolicy retry_;

  mutable Latch quarantine_latch_;
  std::set<PageId> quarantined_;

  // Process-wide metric mirrors (stable registry pointers, looked up once).
  obs::Counter* m_checksum_fail_;
  obs::Counter* m_read_retry_;
  obs::Counter* m_write_retry_;
  obs::Counter* m_quarantined_;
};

}  // namespace eos

#endif  // EOS_IO_VERIFIED_DEVICE_H_
