#include "io/verified_device.h"

#include <cassert>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "io/buffer_pool.h"
#include "obs/event_journal.h"
#include "obs/metric_names.h"

namespace eos {

namespace {

// Trailer prefix (the part covered by the CRC together with the payload).
constexpr uint32_t kPrefixBytes = 12;  // magic u16 + epoch u16 + page id u64

uint32_t TrailerCrc(const uint8_t* physical, uint32_t physical_page_size) {
  const uint8_t* trailer = physical + physical_page_size -
                           VerifiedPageDevice::kTrailerBytes;
  uint32_t state = Crc32cInit();
  state = Crc32cExtend(state, physical,
                       physical_page_size - VerifiedPageDevice::kTrailerBytes);
  state = Crc32cExtend(state, trailer, kPrefixBytes);
  return Crc32cFinalize(state);
}

}  // namespace

VerifiedPageDevice::VerifiedPageDevice(PageDevice* inner, uint16_t epoch,
                                       const RetryPolicy& retry)
    : PageDevice(inner->page_size() - kTrailerBytes, inner->page_count()),
      inner_(inner),
      epoch_(epoch),
      retry_(retry) {
  assert(inner->page_size() > 2 * kTrailerBytes);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  m_checksum_fail_ = reg.counter(obs::kIoChecksumFail);
  m_read_retry_ = reg.counter(obs::kIoReadRetry);
  m_write_retry_ = reg.counter(obs::kIoWriteRetry);
  m_quarantined_ = reg.counter(obs::kIoQuarantinedPages);
}

VerifiedPageDevice::VerifiedPageDevice(std::unique_ptr<PageDevice> inner,
                                       uint16_t epoch,
                                       const RetryPolicy& retry)
    : VerifiedPageDevice(inner.get(), epoch, retry) {
  owned_ = std::move(inner);
}

void VerifiedPageDevice::SealPage(uint8_t* physical,
                                  uint32_t physical_page_size, PageId id,
                                  uint16_t epoch) {
  uint8_t* trailer = physical + physical_page_size - kTrailerBytes;
  EncodeU16(trailer, kTrailerMagic);
  EncodeU16(trailer + 2, epoch);
  EncodeU64(trailer + 4, id);
  EncodeU32(trailer + 12, TrailerCrc(physical, physical_page_size));
}

Status VerifiedPageDevice::VerifyPage(const uint8_t* physical,
                                      uint32_t physical_page_size, PageId id,
                                      uint16_t epoch) {
  const uint8_t* trailer = physical + physical_page_size - kTrailerBytes;
  std::string page = "page " + std::to_string(id);
  if (DecodeU16(trailer) != kTrailerMagic) {
    return Status::Corruption(page +
                              ": missing integrity trailer (unwritten, torn "
                              "or pre-checksum page)");
  }
  if (DecodeU16(trailer + 2) != epoch) {
    return Status::Corruption(page + ": format epoch " +
                              std::to_string(DecodeU16(trailer + 2)) +
                              " does not match volume epoch " +
                              std::to_string(epoch));
  }
  if (DecodeU64(trailer + 4) != id) {
    return Status::Corruption(page + ": trailer names page " +
                              std::to_string(DecodeU64(trailer + 4)) +
                              " (misdirected I/O)");
  }
  if (DecodeU32(trailer + 12) != TrailerCrc(physical, physical_page_size)) {
    return Status::Corruption(page + ": checksum mismatch");
  }
  return Status::OK();
}

std::vector<PageId> VerifiedPageDevice::Quarantined() const {
  LatchGuard g(quarantine_latch_);
  return std::vector<PageId>(quarantined_.begin(), quarantined_.end());
}

bool VerifiedPageDevice::IsQuarantined(PageId id) const {
  LatchGuard g(quarantine_latch_);
  return quarantined_.count(id) > 0;
}

size_t VerifiedPageDevice::quarantined_count() const {
  LatchGuard g(quarantine_latch_);
  return quarantined_.size();
}

void VerifiedPageDevice::ClearQuarantine(PageId id) {
  LatchGuard g(quarantine_latch_);
  quarantined_.erase(id);
}

Status VerifiedPageDevice::Grow(uint64_t new_page_count) {
  EOS_RETURN_IF_ERROR(inner_->Grow(new_page_count));
  SetPageCount(inner_->page_count());
  return Status::OK();
}

Status VerifiedPageDevice::Sync() { return inner_->Sync(); }

Status VerifiedPageDevice::ReadAndVerifyOnce(PageId first, uint32_t n,
                                             uint8_t* staging, uint8_t* out,
                                             PageId* bad_page) {
  uint32_t phys = physical_page_size();
  EOS_RETURN_IF_ERROR(inner_->ReadPages(first, n, staging));
  Status verdict;
  for (uint32_t i = 0; i < n; ++i) {
    Status s = VerifyPage(staging + size_t{i} * phys, phys, first + i, epoch_);
    if (!s.ok()) {
      m_checksum_fail_->Inc();
      obs::RecordEvent(obs::EventKind::kChecksumFail, "verify_read",
                       first + i, /*b=*/0, /*c=*/0, /*ok=*/false);
      if (verdict.ok()) {
        verdict = std::move(s);
        *bad_page = first + i;
      }
    }
  }
  if (!verdict.ok()) return verdict;
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(out + size_t{i} * page_size_, staging + size_t{i} * phys,
                page_size_);
  }
  return Status::OK();
}

Status VerifiedPageDevice::DoRead(PageId first, uint32_t n, uint8_t* out) {
  {
    LatchGuard g(quarantine_latch_);
    auto it = quarantined_.lower_bound(first);
    if (it != quarantined_.end() && *it < first + n) {
      return Status::Corruption("page " + std::to_string(*it) +
                                " is quarantined");
    }
  }
  // Pooled staging: steady-state reads perform no heap allocation.
  BufferPool::Buffer staging =
      BufferPool::Default()->Acquire(size_t{n} * physical_page_size());
  PageId bad_page = kInvalidPage;
  Status s;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Device errors and checksum mismatches alike get a fresh transfer:
      // a transient fault or bus flip heals, persisted rot does not.
      BackoffSleep(retry_.BackoffUs(attempt));
      m_read_retry_->Inc();
    }
    bad_page = kInvalidPage;
    s = ReadAndVerifyOnce(first, n, staging.data(), out, &bad_page);
    if (s.ok()) return s;
    if (!retry_.RetriableError(s) && !s.IsCorruption()) return s;
  }
  if (s.IsCorruption() && bad_page != kInvalidPage) {
    // Out of retries with the checksum still failing: persistent
    // corruption. Quarantine every page of the transfer that still fails
    // verification so later reads fail fast.
    uint32_t phys = physical_page_size();
    uint64_t newly = 0;
    {
      LatchGuard g(quarantine_latch_);
      for (uint32_t i = 0; i < n; ++i) {
        if (!VerifyPage(staging.data() + size_t{i} * phys, phys, first + i,
                        epoch_)
                 .ok()) {
          if (quarantined_.insert(first + i).second) {
            ++newly;
            obs::RecordEvent(obs::EventKind::kQuarantine, "persistent_rot",
                             first + i, /*b=*/0, /*c=*/0, /*ok=*/false);
          }
        }
      }
    }
    if (newly > 0) m_quarantined_->Inc(newly);
  }
  return s;
}

Status VerifiedPageDevice::DoWrite(PageId first, uint32_t n,
                                   const uint8_t* data) {
  uint32_t phys = physical_page_size();
  // Payload and trailer together cover every staged byte, so the pooled
  // (uninitialized) buffer never leaks stale bits to the device.
  BufferPool::Buffer staging =
      BufferPool::Default()->Acquire(size_t{n} * phys);
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(staging.data() + size_t{i} * phys,
                data + size_t{i} * page_size_, page_size_);
    SealPage(staging.data() + size_t{i} * phys, phys, first + i, epoch_);
  }
  Status s = RunWithRetry(
      retry_,
      [&] { return inner_->WritePages(first, n, staging.data()); },
      [&] { m_write_retry_->Inc(); });
  if (!s.ok()) return s;
  // A freshly sealed page is good again by definition.
  uint64_t lifted = 0;
  {
    LatchGuard g(quarantine_latch_);
    for (uint32_t i = 0; i < n; ++i) lifted += quarantined_.erase(first + i);
  }
  (void)lifted;
  return Status::OK();
}

Status VerifiedPageDevice::DoWriteRuns(const ConstPageRun* runs, size_t n) {
  uint32_t phys = physical_page_size();
  size_t total_pages = 0;
  for (size_t i = 0; i < n; ++i) total_pages += runs[i].pages;
  BufferPool::Buffer staging =
      BufferPool::Default()->Acquire(total_pages * phys);
  std::vector<ConstPageRun> inner_runs(n);
  uint8_t* dst = staging.data();
  for (size_t i = 0; i < n; ++i) {
    inner_runs[i] = ConstPageRun{runs[i].first, runs[i].pages, dst};
    for (uint32_t p = 0; p < runs[i].pages; ++p) {
      std::memcpy(dst, runs[i].data + size_t{p} * page_size_, page_size_);
      SealPage(dst, phys, runs[i].first + p, epoch_);
      dst += phys;
    }
  }
  Status s = RunWithRetry(
      retry_,
      [&] { return inner_->WriteRuns(inner_runs.data(), n); },
      [&] { m_write_retry_->Inc(); });
  if (!s.ok()) return s;
  {
    LatchGuard g(quarantine_latch_);
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t p = 0; p < runs[i].pages; ++p) {
        quarantined_.erase(runs[i].first + p);
      }
    }
  }
  return Status::OK();
}

}  // namespace eos
