#include "io/io_executor.h"

#include <cstdlib>

namespace eos {

IoExecutor::Ticket& IoExecutor::Ticket::operator=(Ticket&& o) noexcept {
  if (this != &o) {
    (void)Wait();
    state_ = std::move(o.state_);
  }
  return *this;
}

Status IoExecutor::Ticket::Wait() {
  if (state_ == nullptr) return Status::OK();
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  Status s = state_->status;
  lock.unlock();
  state_.reset();
  return s;
}

IoExecutor::IoExecutor(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // With no workers the queue is necessarily empty (Submit ran inline).
}

void IoExecutor::RunTask(TaskState* t) {
  Status s;
  if (t->has_ctx) {
    s = t->ctx.Check("io_executor task");
    if (s.ok()) {
      ScopedOpContext scope(t->ctx);
      s = t->fn();
    }
  } else {
    s = t->fn();
  }
  t->fn = nullptr;  // release captured buffers promptly
  {
    std::lock_guard<std::mutex> lock(t->mu);
    t->status = std::move(s);
    t->done = true;
  }
  t->cv.notify_all();
}

void IoExecutor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<TaskState> t;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // Drain before exiting so queued tasks (and the Tickets joined on
      // them) always complete.
      if (queue_.empty()) return;
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(t.get());
  }
}

IoExecutor::Ticket IoExecutor::Submit(std::function<Status()> fn) {
  auto state = std::make_shared<TaskState>();
  state->fn = std::move(fn);
  if (const OpContext* ctx = ScopedOpContext::Current()) {
    state->ctx = *ctx;
    state->has_ctx = true;
  }
  if (workers_.empty()) {
    RunTask(state.get());
    return Ticket(std::move(state));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(state);
  }
  cv_.notify_one();
  return Ticket(std::move(state));
}

Status IoExecutor::RunBatch(std::vector<std::function<Status()>> tasks) {
  if (tasks.empty()) return Status::OK();
  if (workers_.empty() || tasks.size() == 1) {
    // Inline fallback: serial execution, still first-error-in-order.
    Status first;
    for (auto& fn : tasks) {
      Status s = ScopedOpContext::CheckCurrent("io_executor batch");
      if (s.ok()) s = fn();
      if (first.ok() && !s.ok()) first = std::move(s);
    }
    return first;
  }
  const OpContext* ctx = ScopedOpContext::Current();
  std::vector<std::shared_ptr<TaskState>> states;
  states.reserve(tasks.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& fn : tasks) {
      auto state = std::make_shared<TaskState>();
      state->fn = std::move(fn);
      if (ctx != nullptr) {
        state->ctx = *ctx;
        state->has_ctx = true;
      }
      queue_.push_back(state);
      states.push_back(std::move(state));
    }
  }
  cv_.notify_all();
  // Help drain the shared queue instead of blocking idle: on machines with
  // few cores the submitting thread is a worker too, and every task is
  // independent, so running someone else's task here is always progress.
  for (;;) {
    std::shared_ptr<TaskState> t;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        t = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (t == nullptr) break;
    RunTask(t.get());
  }
  Status first;
  for (auto& state : states) {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    if (first.ok() && !state->status.ok()) first = state->status;
  }
  return first;
}

IoExecutor* IoExecutor::Default() {
  static IoExecutor* exec = [] {
    size_t threads = 4;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && hw < threads) threads = hw;
    if (const char* env = std::getenv("EOS_IO_THREADS")) {
      char* end = nullptr;
      unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && v <= 64) threads = static_cast<size_t>(v);
    }
    return new IoExecutor(threads);  // intentionally immortal
  }();
  return exec;
}

}  // namespace eos
