#ifndef EOS_IO_IO_STATS_H_
#define EOS_IO_IO_STATS_H_

#include <cstdint>
#include <string>

namespace eos {

// Physical I/O accounting in the units the paper states its claims in:
// disk seeks and page transfers. A seek is charged whenever an access does
// not begin at the head position left behind by the previous access, so a
// multi-page read of a physically contiguous segment costs 1 seek + n
// transfers, while n scattered single-page reads cost n seeks + n transfers.
struct IoStats {
  uint64_t read_calls = 0;
  uint64_t write_calls = 0;
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t seeks = 0;

  uint64_t transfers() const { return pages_read + pages_written; }

  IoStats& operator+=(const IoStats& o) {
    read_calls += o.read_calls;
    write_calls += o.write_calls;
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    seeks += o.seeks;
    return *this;
  }
  IoStats& operator-=(const IoStats& o) {
    read_calls -= o.read_calls;
    write_calls -= o.write_calls;
    pages_read -= o.pages_read;
    pages_written -= o.pages_written;
    seeks -= o.seeks;
    return *this;
  }
  IoStats operator-(const IoStats& o) const {
    IoStats r = *this;
    r -= o;
    return r;
  }

  std::string ToString() const {
    return "seeks=" + std::to_string(seeks) +
           " pages_read=" + std::to_string(pages_read) +
           " pages_written=" + std::to_string(pages_written) +
           " read_calls=" + std::to_string(read_calls) +
           " write_calls=" + std::to_string(write_calls);
  }
};

// Time model for a circa-1992 disk: ~12 ms average seek plus ~4 ms half
// rotation folded into seek_ms, and ~2 MB/s media rate (about 2 ms per 4 KB
// page). Benches report modeled milliseconds so the *shape* of the paper's
// claims (seek-bound vs transfer-bound) is visible regardless of the host.
struct DiskModel {
  double seek_ms = 16.0;
  double transfer_ms_per_page = 2.0;

  double EstimateMs(const IoStats& s) const {
    return static_cast<double>(s.seeks) * seek_ms +
           static_cast<double>(s.transfers()) * transfer_ms_per_page;
  }
};

}  // namespace eos

#endif  // EOS_IO_IO_STATS_H_
