#ifndef EOS_IO_CHAOS_DEVICE_H_
#define EOS_IO_CHAOS_DEVICE_H_

#include <memory>

#include "common/latch.h"
#include "common/random.h"
#include "common/status.h"
#include "io/page_device.h"

namespace eos {

// Deterministic fault-injection wrapper over any PageDevice (DESIGN.md,
// "Testing & fault model").
//
// A seeded schedule arms faults that fire on upcoming operations:
//   * transient or permanent I/O errors on reads, writes, or either;
//   * a one-shot Grow failure;
//   * torn multi-page writes — the first k of n pages persist and the call
//     still fails, modelling power loss mid-transfer;
//   * bit-rot on a chosen page (seeded pseudo-random bit flips);
//   * a crash: immediately, or after a budget of further successful write
//     calls, the device "loses power" — every later read, write, grow and
//     sync fails — while the bytes persisted so far can be cloned into a
//     fresh MemPageDevice so a new stack can be re-opened on the image.
//
// Countdowns are in successful operations of the gated kind, matching the
// crash-point enumeration in tests/crash_recovery_torture_test.cc: arm
// CrashAfterWrites(k) for k = 0..W-1 to visit every write call of a
// workload that performs W of them. Faults fire in DoRead/DoWrite, i.e.
// after the base class's range check and accounting, mirroring a device
// that fails the transfer itself; stats() therefore counts attempted
// calls, which is what the enumeration needs.
//
// Fault state is latched, so the wrapper is as thread-safe as the wrapped
// device.
class ChaosPageDevice final : public PageDevice {
 public:
  // Non-owning: `inner` must outlive the wrapper.
  explicit ChaosPageDevice(PageDevice* inner, uint64_t seed = 0);
  // Owning.
  explicit ChaosPageDevice(std::unique_ptr<PageDevice> inner,
                           uint64_t seed = 0);

  PageDevice* inner() { return inner_; }

  // ---- scheduled I/O errors -----------------------------------------------
  // Arms a fault that fires after `ops` further successful operations of
  // the given kind (0 = the very next one). Transient faults clear after
  // firing once; permanent ones fail every subsequent operation until
  // Heal().
  void FailReadsAfter(int ops, bool permanent = false);
  void FailWritesAfter(int ops, bool permanent = false);
  void FailAfter(int ops, bool permanent = false);  // reads and writes
  void FailNextGrow();
  // Disk-full schedule: after `ops` further successful Grow calls the next
  // Grow fails with typed NoSpace (permanent = every subsequent Grow, i.e.
  // the volume has reached its physical end). Distinct from FailNextGrow,
  // which models an I/O error during the grow itself.
  void FailGrowsAfter(int ops, bool permanent = false);

  // ---- whole-device faults --------------------------------------------------
  // Takes the entire volume out of service: every read, write, grow and
  // sync returns typed Unavailable until SetOffline(false) or Heal(). The
  // persisted bytes survive — unlike Crash(), an offline volume can come
  // back. Models a pulled cable / dead controller in a volume set.
  void SetOffline(bool offline);
  bool offline() const;

  // ---- latency injection ----------------------------------------------------
  // Delays every read/write by the given base plus a seeded uniform jitter
  // in [0, jitter_us]. Deadline-aware: a delayed call whose ambient
  // OpContext expires mid-sleep wakes at the deadline and returns
  // DeadlineExceeded instead of transferring. Zeros disable.
  void InjectLatency(uint64_t read_us, uint64_t write_us,
                     uint64_t jitter_us = 0);
  // Clears every armed error fault. A crash is not healable: the power is
  // off and the harness must re-open the persisted image.
  void Heal();

  // The write call `ops` writes from now persists only its first
  // `keep_pages` pages and returns IOError. One-shot.
  void TearWriteAfter(int ops, uint32_t keep_pages);

  // Flips `bits` seeded pseudo-random bits in the persisted copy of
  // `page`, bypassing the fault gates.
  Status CorruptPage(PageId page, int bits = 1);

  // ---- crash --------------------------------------------------------------
  void Crash();
  // Loses power after `writes` further successful write calls; if
  // `tear_pages` > 0 the fatal write first persists min(tear_pages, n) of
  // its leading pages before power is lost.
  void CrashAfterWrites(uint64_t writes, uint32_t tear_pages = 0);
  bool crashed() const;

  // Snapshot of the persisted bytes as a fresh in-memory device a new
  // stack can open. Works while crashed — the "disk" survives power loss.
  StatusOr<std::unique_ptr<MemPageDevice>> CloneImage();

  // Total faults injected so far (errors, tears, corruptions, crashes).
  uint64_t injected_faults() const;

  Status Grow(uint64_t new_page_count) override;
  Status Sync() override;

 protected:
  Status DoRead(PageId first, uint32_t n, uint8_t* out) override;
  Status DoWrite(PageId first, uint32_t n, const uint8_t* data) override;

 private:
  struct Fault {
    int countdown = -1;  // -1 = unarmed; fires when it reaches 0
    bool permanent = false;
  };

  // Advances `f` by one operation; returns the injected error if it fires.
  Status Tick(Fault* f, const char* what);

  // Sleeps the configured injected latency, honouring the ambient deadline.
  Status MaybeDelay(uint64_t base_us, const char* what);

  std::unique_ptr<PageDevice> owned_;
  PageDevice* inner_;

  mutable Latch latch_;
  Random rng_;
  Fault read_fault_;
  Fault write_fault_;
  Fault any_fault_;
  bool grow_fault_ = false;
  Fault grow_nospace_;  // disk-full schedule (typed NoSpace on Grow)
  uint64_t latency_read_us_ = 0;
  uint64_t latency_write_us_ = 0;
  uint64_t latency_jitter_us_ = 0;
  int tear_countdown_ = -1;  // -1 = unarmed
  uint32_t tear_keep_pages_ = 0;
  bool crashed_ = false;
  bool offline_ = false;
  int64_t crash_write_budget_ = -1;  // -1 = unarmed
  uint32_t crash_tear_pages_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace eos

#endif  // EOS_IO_CHAOS_DEVICE_H_
