#ifndef EOS_IO_PAGE_DEVICE_H_
#define EOS_IO_PAGE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "io/io_stats.h"

namespace eos {

// Identifies a page within a volume. Page 0 is the superblock.
using PageId = uint64_t;

constexpr PageId kInvalidPage = ~uint64_t{0};

// A physically contiguous run of pages, the unit the buddy system hands out.
struct Extent {
  PageId first = kInvalidPage;
  uint32_t pages = 0;

  bool valid() const { return first != kInvalidPage && pages > 0; }
  PageId end() const { return first + pages; }
};

inline bool operator==(const Extent& a, const Extent& b) {
  return a.first == b.first && a.pages == b.pages;
}

// One scatter-gather element of a batch transfer: `pages` physically
// adjacent pages starting at `first`, moved to/from `data`
// (pages * page_size bytes). Runs in a batch need not be sorted or
// disjoint; each is charged like one ReadPages/WritePages call.
struct PageRun {
  PageId first = kInvalidPage;
  uint32_t pages = 0;
  uint8_t* data = nullptr;
};

struct ConstPageRun {
  PageId first = kInvalidPage;
  uint32_t pages = 0;
  const uint8_t* data = nullptr;
};

// Random-access array of fixed-size pages with physical-contiguity-aware
// I/O accounting. Subclasses provide the backing store; seek/transfer
// accounting lives here so every backend charges identically.
//
// Thread-safe: accounting is lock-free (relaxed atomic counters plus one
// atomic exchange for the head position, so it never serializes parallel
// transfers), and both backends perform the data transfer itself safely
// under concurrency (pread/pwrite for files; the in-memory backend
// serializes transfers against Grow).
class PageDevice {
 public:
  PageDevice(uint32_t page_size, uint64_t page_count)
      : page_size_(page_size), page_count_(page_count) {}
  virtual ~PageDevice() = default;

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint64_t page_count() const {
    return page_count_.load(std::memory_order_relaxed);
  }

  // Reads `n` physically adjacent pages starting at `first` into `out`
  // (n * page_size bytes). Charged as one access: at most one seek.
  Status ReadPages(PageId first, uint32_t n, uint8_t* out);

  // Writes `n` physically adjacent pages starting at `first`.
  Status WritePages(PageId first, uint32_t n, const uint8_t* data);

  // Scatter-gather batch: transfers every run, charging each run like one
  // ReadPages/WritePages call. The default implementation loops over the
  // runs; FilePageDevice combines file-adjacent runs into single
  // preadv/pwritev submissions. All runs are range-checked up front, so a
  // failed batch has transferred only whole runs.
  Status ReadRuns(const PageRun* runs, size_t n);
  Status WriteRuns(const ConstPageRun* runs, size_t n);

  // Extends the volume to `new_page_count` pages of zeroes.
  virtual Status Grow(uint64_t new_page_count) = 0;

  // Durably flushes buffered writes (no-op for the memory backend).
  virtual Status Sync() { return Status::OK(); }

  IoStats stats() const {
    IoStats s;
    s.read_calls = read_calls_.load(std::memory_order_relaxed);
    s.write_calls = write_calls_.load(std::memory_order_relaxed);
    s.pages_read = pages_read_.load(std::memory_order_relaxed);
    s.pages_written = pages_written_.load(std::memory_order_relaxed);
    s.seeks = seeks_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    read_calls_.store(0, std::memory_order_relaxed);
    write_calls_.store(0, std::memory_order_relaxed);
    pages_read_.store(0, std::memory_order_relaxed);
    pages_written_.store(0, std::memory_order_relaxed);
    seeks_.store(0, std::memory_order_relaxed);
  }

  // Forgets the head position so the next access is charged a seek;
  // benches call this to measure cold costs.
  void ForgetHeadPosition() {
    head_pos_.store(kInvalidPage, std::memory_order_relaxed);
  }

 protected:
  virtual Status DoRead(PageId first, uint32_t n, uint8_t* out) = 0;
  virtual Status DoWrite(PageId first, uint32_t n, const uint8_t* data) = 0;
  virtual Status DoReadRuns(const PageRun* runs, size_t n);
  virtual Status DoWriteRuns(const ConstPageRun* runs, size_t n);

  // Grow paths record the new size only after the backing store has
  // actually grown; a failed Grow must leave the count untouched, or the
  // range check would admit I/O beyond the real end of the volume.
  // Relaxed: readers racing a concurrent Grow may see either the old or
  // the new count; both are safe (the count never shrinks), and the grow
  // path publishes the new pages to other threads via its own latch.
  void SetPageCount(uint64_t n) {
    page_count_.store(n, std::memory_order_relaxed);
  }

  uint32_t page_size_;

 private:
  Status CheckRange(PageId first, uint32_t n) const;

  // One access worth of accounting: a call, n transferred pages, and a
  // seek when the access does not continue from the previous head
  // position. The head update is a single atomic exchange (the CAS-style
  // serialization point), so concurrent accesses from the worker pool
  // never queue behind a stats mutex; each still observes *some*
  // interleaving's head position, which is exactly what a shared disk arm
  // would serve.
  void Account(bool is_read, PageId first, uint32_t n);

  std::atomic<uint64_t> page_count_;

  std::atomic<uint64_t> read_calls_{0};
  std::atomic<uint64_t> write_calls_{0};
  std::atomic<uint64_t> pages_read_{0};
  std::atomic<uint64_t> pages_written_{0};
  std::atomic<uint64_t> seeks_{0};
  std::atomic<PageId> head_pos_{kInvalidPage};  // page the head reads next
};

// Volatile vector-backed device for tests and simulation benches.
class MemPageDevice final : public PageDevice {
 public:
  MemPageDevice(uint32_t page_size, uint64_t page_count);

  // Device pre-loaded with `image` (page_count * page_size bytes, shorter
  // images are zero-padded) — crash simulation re-opens a snapshot of a
  // ChaosPageDevice's persisted bytes this way.
  MemPageDevice(uint32_t page_size, uint64_t page_count,
                std::vector<uint8_t> image);

  Status Grow(uint64_t new_page_count) override;

  // Testing hook: direct access to raw page bytes without I/O accounting.
  uint8_t* raw(PageId id) { return &mem_[id * page_size_]; }

 protected:
  Status DoRead(PageId first, uint32_t n, uint8_t* out) override;
  Status DoWrite(PageId first, uint32_t n, const uint8_t* data) override;

 private:
  mutable SharedLatch mem_latch_;  // Grow is exclusive; transfers shared
  std::vector<uint8_t> mem_;
};

// POSIX file-backed device; the volume is a flat file of pages.
class FilePageDevice final : public PageDevice {
 public:
  ~FilePageDevice() override;

  // Creates a new volume file (truncating any existing one).
  static StatusOr<std::unique_ptr<FilePageDevice>> Create(
      const std::string& path, uint32_t page_size, uint64_t page_count);

  // Opens an existing volume file; page_size must match how it was created
  // (the superblock layer above verifies this).
  static StatusOr<std::unique_ptr<FilePageDevice>> Open(
      const std::string& path, uint32_t page_size);

  Status Grow(uint64_t new_page_count) override;

  // Durability barrier. Page writes never change file metadata the data
  // depends on (the size only moves at Grow, whose ftruncate the next
  // barrier covers), so the default is the cheaper fdatasync. Full fsync
  // can be forced per device with set_full_sync(true) or process-wide with
  // EOS_FULL_SYNC=1 in the environment (read once per device at creation).
  Status Sync() override;

  void set_full_sync(bool on) { full_sync_ = on; }
  bool full_sync() const { return full_sync_; }

 protected:
  Status DoRead(PageId first, uint32_t n, uint8_t* out) override;
  Status DoWrite(PageId first, uint32_t n, const uint8_t* data) override;
  // File-adjacent runs are combined into single preadv/pwritev
  // submissions: one syscall moves many scattered buffers.
  Status DoReadRuns(const PageRun* runs, size_t n) override;
  Status DoWriteRuns(const ConstPageRun* runs, size_t n) override;

 private:
  FilePageDevice(int fd, uint32_t page_size, uint64_t page_count);

  int fd_ = -1;
  bool full_sync_ = false;
};

}  // namespace eos

#endif  // EOS_IO_PAGE_DEVICE_H_
