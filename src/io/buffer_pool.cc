#include "io/buffer_pool.h"

#include <cstdlib>
#include <new>

#include "obs/metric_names.h"

namespace eos {

namespace {

constexpr size_t kAlignment = 4096;

uint8_t* AlignedAlloc(size_t bytes) {
  return static_cast<uint8_t*>(
      ::operator new(bytes, std::align_val_t{kAlignment}));
}

void AlignedFree(uint8_t* p) {
  ::operator delete(p, std::align_val_t{kAlignment});
}

}  // namespace

BufferPool::Buffer& BufferPool::Buffer::operator=(Buffer&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    data_ = o.data_;
    size_ = o.size_;
    size_class_ = o.size_class_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
    o.size_class_ = -1;
  }
  return *this;
}

void BufferPool::Buffer::Release() {
  if (data_ == nullptr) return;
  if (size_class_ >= 0 && pool_ != nullptr) {
    pool_->Return(data_, size_class_);
  } else {
    AlignedFree(data_);
  }
  pool_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  size_class_ = -1;
}

BufferPool::BufferPool(size_t max_per_class, size_t max_idle_bytes)
    : max_per_class_(max_per_class), max_idle_bytes_(max_idle_bytes) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  m_reused_ = reg.counter(obs::kPoolBuffersReused);
  m_allocated_ = reg.counter(obs::kPoolBuffersAllocated);
}

BufferPool::~BufferPool() {
  for (auto& cls : free_) {
    for (uint8_t* p : cls) AlignedFree(p);
  }
}

int BufferPool::SizeClass(size_t n) {
  if (n > kMaxPooledBytes) return -1;
  int c = 0;
  size_t bytes = kMinClassBytes;
  while (bytes < n) {
    bytes <<= 1;
    ++c;
  }
  return c;
}

BufferPool::Buffer BufferPool::Acquire(size_t n) {
  if (n == 0) n = 1;
  int c = SizeClass(n);
  if (c < 0) {
    // Too large to recycle; plain aligned allocation, freed on release.
    m_allocated_->Inc();
    return Buffer(this, AlignedAlloc(n), n, -1);
  }
  {
    LatchGuard g(latch_);
    if (!free_[c].empty()) {
      uint8_t* p = free_[c].back();
      free_[c].pop_back();
      idle_bytes_ -= ClassBytes(c);
      m_reused_->Inc();
      return Buffer(this, p, n, c);
    }
  }
  m_allocated_->Inc();
  return Buffer(this, AlignedAlloc(ClassBytes(c)), n, c);
}

void BufferPool::Return(uint8_t* data, int size_class) {
  size_t bytes = ClassBytes(size_class);
  {
    LatchGuard g(latch_);
    if (free_[size_class].size() < max_per_class_ &&
        idle_bytes_ + bytes <= max_idle_bytes_) {
      free_[size_class].push_back(data);
      idle_bytes_ += bytes;
      return;
    }
  }
  AlignedFree(data);
}

size_t BufferPool::idle_buffers() const {
  LatchGuard g(latch_);
  size_t n = 0;
  for (const auto& cls : free_) n += cls.size();
  return n;
}

size_t BufferPool::idle_bytes() const {
  LatchGuard g(latch_);
  return idle_bytes_;
}

BufferPool* BufferPool::Default() {
  static BufferPool* pool = new BufferPool();  // intentionally immortal
  return pool;
}

}  // namespace eos
